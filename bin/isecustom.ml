(* isecustom — command-line front end for the instruction-set
   customization toolchain.

   Subcommands:
     kernels                      list the modelled benchmark kernels
     curve <kernel>               configuration curve (identify + select)
     select <kernels...>          optimal inter-task selection (EDF/RMS)
     iterate <kernels...>         Chapter 5 iterative customization
     pareto <kernel>              exact / approximate workload-area fronts
     experiment <id>              run one experiment from the registry
     stats <id>                   run an experiment and print its span tree,
                                  histogram percentiles and telemetry
                                  (--prometheus / --flight for machine form)
     metrics serve                expose /metrics, /healthz and /flight over
                                  HTTP (TCP and/or Unix socket) while running
                                  a workload loop — the daemon's scrape surface
     cache show|clear             inspect / empty the persistent curve cache
     batch <requests.jsonl>       answer a JSONL stream of solver requests with
                                  structural dedup, budget-sweep sharing and
                                  sharded memo tables; --connect sends the
                                  stream to a resident daemon instead
     serve                        resident solver daemon: persistent JSONL
                                  connections over one warm memo and domain
                                  pool, admission control, graceful drain
     check [replay F | selftest | faults]
                                  property-based differential testing of the
                                  solver stack against brute-force oracles;
                                  `faults` exercises every fault-injection point

   Observability and resilience flags shared by the solver-running commands:
     --trace FILE       Chrome trace_event JSON (about:tracing / Perfetto)
     --log-level LEVEL  error | warn | info | debug   (default warn)
     --log-json FILE    JSONL log sink in addition to stderr
     --metrics-out FILE telemetry + histogram percentiles as JSON
     --deadline S       wall-clock budget per solver run (anytime degradation)
     --max-nodes N      deterministic fuel budget per solver run
     --fault-spec SPEC  seeded fault injection, e.g. seed=7,cache.write=0.1 *)

open Cmdliner

let fmt = Format.std_formatter

(* Flags shared by the curve-generating commands. *)

let generator_conv =
  let parse s =
    match Ise.Isegen.choice_of_string s with
    | Some c -> Ok c
    | None ->
      Error (`Msg (Printf.sprintf "unknown generator %S (expected %s)" s
                     (String.concat ", "
                        (List.map Ise.Isegen.choice_to_string
                           Ise.Isegen.all_choices))))
  in
  let print fmt c = Format.pp_print_string fmt (Ise.Isegen.choice_to_string c) in
  Arg.conv (parse, print)

let generator_arg =
  let doc =
    "Candidate generator: $(b,exhaustive) (capped breadth-first      enumeration, exact within its budget), $(b,isegen) (ISEGEN-style      iterative improvement, scales past the enumeration caps) or      $(b,auto) (exhaustive, switching to isegen when a cap saturates)."
  in
  Arg.(value
       & opt generator_conv Ise.Isegen.Exhaustive
       & info [ "generator" ] ~docv:"GEN" ~doc)

let hw_model_conv =
  let parse s =
    match Isa.Hw_model.backend_of_name s with
    | Some b -> Ok b
    | None ->
      Error (`Msg (Printf.sprintf "unknown hardware model %S (expected %s)" s
                     (String.concat ", "
                        (List.map (fun (b : Isa.Hw_model.backend) -> b.name)
                           Isa.Hw_model.backends))))
  in
  let print fmt (b : Isa.Hw_model.backend) = Format.pp_print_string fmt b.name in
  Arg.conv (parse, print)

let hw_model_arg =
  let doc =
    "Hardware cost backend for candidate evaluation: $(b,uniform) (the      thesis's synthesis tables) or $(b,riscv) (DSP multiplier,      per-register-port area, 100 MHz clock)."
  in
  Arg.(value
       & opt hw_model_conv Isa.Hw_model.uniform
       & info [ "hw-model" ] ~docv:"MODEL" ~doc)

let no_cache_arg =
  let doc = "Bypass the persistent curve cache (neither read nor write it)." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let stats_arg =
  let doc =
    "Dump solver telemetry (counters, timers and histogram percentiles) \
     after the run."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* Observability flags: parsed into a record by [obs_term]; [obs_finish]
   writes the requested artifacts once the command's work is done. *)

let trace_file_arg =
  let doc =
    "Record hierarchical spans and write them to $(docv) in Chrome \
     trace_event JSON, viewable in about:tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Log verbosity: $(b,error), $(b,warn), $(b,info) or $(b,debug)." in
  Arg.(value & opt string "warn" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_json_arg =
  let doc = "Also append log records to $(docv), one JSON object per line." in
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "After the run, write solver telemetry and histogram percentiles to \
     $(docv) as JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Resilience flags: a process-wide solver budget (--deadline /
   --max-nodes, see Engine.Guard) and seeded fault injection
   (--fault-spec, see Engine.Fault). *)

let deadline_arg =
  let doc =
    "Wall-clock budget in $(docv) seconds for each exponential solver \
     run; on expiry the solver stops and returns its best result so \
     far, reported as partial."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let max_nodes_arg =
  let doc =
    "Deterministic work budget (search nodes / fuel units) per solver \
     run.  Unlike $(b,--deadline), equal budgets reproduce bit-identical \
     partial results on any machine."
  in
  Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N" ~doc)

let fault_spec_arg =
  let doc =
    "Enable seeded fault injection, e.g. \
     $(b,seed=7,cache.write=0.1,parallel.worker=1x2).  Also settable \
     via ISECUSTOM_FAULT_SPEC."
  in
  Arg.(value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

type obs = {
  trace_file : string option;
  metrics_file : string option;
  (* registry state when the command started; --metrics-out reports the
     delta against it, so module-init declares and earlier activity in
     the process never leak into a command's numbers *)
  baseline : Obs.Snapshot.t;
}

let obs_setup trace_file log_level log_json metrics_file deadline max_nodes
    fault_spec =
  (match Engine.Log.level_of_string log_level with
   | Ok l -> Engine.Log.set_level l
   | Error msg ->
     Format.eprintf "%s@." msg;
     exit 1);
  Engine.Log.set_json_file log_json;
  if trace_file <> None then Engine.Trace.set_enabled true;
  (match deadline with
   | Some d when d <= 0. ->
     Format.eprintf "--deadline must be positive@.";
     exit 1
   | _ -> ());
  (match max_nodes with
   | Some n when n <= 0 ->
     Format.eprintf "--max-nodes must be positive@.";
     exit 1
   | _ -> ());
  if deadline <> None || max_nodes <> None then
    Engine.Guard.set_default_spec
      { Engine.Guard.deadline_s = deadline; fuel = max_nodes };
  (match fault_spec with
   | None -> ()
   | Some s ->
     (match Engine.Fault.parse s with
      | Ok spec -> Engine.Fault.configure spec
      | Error msg ->
        Format.eprintf "--fault-spec: %s@." msg;
        exit 1));
  (* Every solver-running command flies recorded: if the run ends with
     a Warn+ event (guard exhaustion, injected fault, cache degrade) or
     an uncaught exception, the ring lands in _flight/ as JSONL. *)
  Obs.Flight.arm ();
  { trace_file; metrics_file; baseline = Obs.Snapshot.take () }

let obs_term =
  Term.(
    const obs_setup $ trace_file_arg $ log_level_arg $ log_json_arg
    $ metrics_out_arg $ deadline_arg $ max_nodes_arg $ fault_spec_arg)

let metrics_json obs =
  (* Snapshot delta, not reset-then-read: epoch-safe even while pool
     workers are still reporting (see Obs.Snapshot). *)
  let d = Obs.Snapshot.delta ~before:obs.baseline ~after:(Obs.Snapshot.take ()) in
  Printf.sprintf "{\"telemetry\": %s, \"histograms\": %s}\n"
    (Obs.Snapshot.telemetry_json d)
    (Obs.Snapshot.histograms_json d)

let obs_finish obs =
  (match obs.trace_file with
   | None -> ()
   | Some file ->
     Engine.Trace.write_chrome file;
     Engine.Log.info "trace written to %s" file);
  match obs.metrics_file with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (metrics_json obs));
    Engine.Log.info "metrics written to %s" file

let jobs_arg =
  let doc =
    "Create one persistent work-stealing pool of $(docv) domains for \
     the whole command and run every parallel phase (curve generation, \
     batch groups) on it (default: sequential, no pool).  Results are \
     bit-identical to a sequential run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* The pool is created here, once per command, and the handle threaded
   down — lower layers take [?pool] and never read a jobs count
   themselves.  Shutdown is double-covered: the normal path unwinds
   through Fun.protect, and an [at_exit] hook catches commands that end
   in [exit] (which does not unwind).  Pool.shutdown is idempotent, so
   running both is fine. *)
let live_pools = Atomic.make ([] : Engine.Parallel.Pool.t list)

let pools_at_exit =
  lazy
    (at_exit (fun () ->
         List.iter Engine.Parallel.Pool.shutdown (Atomic.get live_pools)))

let with_jobs_pool jobs f =
  match jobs with
  | None -> f None
  | Some j ->
    Lazy.force pools_at_exit;
    let pool = Engine.Parallel.Pool.create ~jobs:j () in
    Atomic.set live_pools (pool :: Atomic.get live_pools);
    Fun.protect
      ~finally:(fun () -> Engine.Parallel.Pool.shutdown pool)
      (fun () -> f (Some pool))

let apply_no_cache no_cache = if no_cache then Engine.Cache.set_enabled false

let print_stats stats =
  if stats then begin
    Format.fprintf fmt "@.--- telemetry ---@.";
    Engine.Telemetry.pp_table fmt ();
    Format.fprintf fmt "@.--- histograms ---@.";
    Engine.Histogram.pp_table fmt ()
  end

(* ------------------------------------------------------------------ *)

let kernels_cmd =
  let run () =
    Format.fprintf fmt "%-14s %-14s %-8s %-8s@." "kernel" "wcet" "max bb" "avg bb";
    List.iter
      (fun (name, cfg) ->
        Format.fprintf fmt "%-14s %-14d %-8d %-8.1f@." name (Ir.Cfg.wcet cfg)
          (Ir.Cfg.max_block_size cfg) (Ir.Cfg.avg_block_size cfg))
      (Kernels.all ());
    Format.pp_print_flush fmt ()
  in
  Cmd.v (Cmd.info "kernels" ~doc:"List the modelled benchmark kernels.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let kernel_arg =
  let doc = "Benchmark kernel name (see $(b,kernels))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let kernel_list_arg =
  let doc = "Benchmark kernel names (see $(b,kernels))." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"KERNEL" ~doc)

let resolve name =
  match Kernels.find_opt name with
  | Some cfg -> cfg
  | None ->
    Format.eprintf "unknown kernel %s; try `isecustom kernels'@." name;
    exit 1

let curve_cmd =
  let run obs no_cache stats generator hw name =
    apply_no_cache no_cache;
    Experiments.Curves.set_generator generator;
    Experiments.Curves.set_hw hw;
    ignore (resolve name);
    let curve = Experiments.Curves.curve name in
    Format.fprintf fmt "%-16s %-14s %s@." "area (adders)" "cycles" "speedup";
    let base = float_of_int (Isa.Config.base_cycles curve) in
    Array.iter
      (fun (p : Isa.Config.point) ->
        Format.fprintf fmt "%-16.1f %-14d %.3fx@."
          (Isa.Hw_model.adders_of_units p.area)
          p.cycles
          (base /. float_of_int p.cycles))
      (Isa.Config.points curve);
    print_stats stats;
    obs_finish obs;
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "curve"
       ~doc:"Generate a kernel's configuration curve (identification + selection).")
    Term.(
      const run $ obs_term $ no_cache_arg $ stats_arg $ generator_arg
      $ hw_model_arg $ kernel_arg)

(* ------------------------------------------------------------------ *)

let utilization_arg =
  let doc = "Target software-only utilization of the task set." in
  Arg.(value & opt float 1.1 & info [ "u"; "utilization" ] ~docv:"U" ~doc)

let budget_arg =
  let doc = "Area budget as a fraction of the summed maximum areas." in
  Arg.(value & opt float 0.5 & info [ "b"; "budget" ] ~docv:"FRACTION" ~doc)

let policy_arg =
  let doc = "Scheduling policy: edf or rms." in
  Arg.(value & opt (enum [ ("edf", `Edf); ("rms", `Rms) ]) `Edf
       & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let select_cmd =
  let run obs u budget_fraction policy generator names =
    Experiments.Curves.set_generator generator;
    let tasks = Experiments.Curves.tasks_of ~u names in
    let max_area = Experiments.Curves.max_area_of tasks in
    let budget =
      int_of_float (budget_fraction *. float_of_int max_area)
    in
    Format.fprintf fmt "task set: %s@." (String.concat ", " names);
    Format.fprintf fmt "software utilization %.3f; budget %.1f adders@."
      (Rt.Task.set_utilization tasks)
      (Isa.Hw_model.adders_of_units budget);
    (match policy with
     | `Edf ->
       let sel = Core.Edf_select.run ~budget tasks in
       Format.fprintf fmt "%a@." Core.Selection.pp sel;
       if sel.Core.Selection.utilization > 1. then
         Format.fprintf fmt "not EDF-schedulable at this budget@."
     | `Rms ->
       (match Core.Rms_select.run_guarded ~budget tasks with
        | Some sel, status ->
          Format.fprintf fmt "%a@." Core.Selection.pp sel;
          (match status with
           | Engine.Guard.Exact -> ()
           | s ->
             Format.fprintf fmt
               "(%s — best incumbent found, optimality not proven)@."
               (Engine.Guard.string_of_status s))
        | None, Engine.Guard.Exact ->
          Format.fprintf fmt "not RMS-schedulable at this budget@."
        | None, (Engine.Guard.Partial _ as s) ->
          Format.fprintf fmt
            "no feasible selection found before the budget ran out (%s)@."
            (Engine.Guard.string_of_status s)));
    obs_finish obs;
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "select"
       ~doc:"Optimal inter-task custom-instruction selection (Chapter 3).")
    Term.(
      const run $ obs_term $ utilization_arg $ budget_arg $ policy_arg
      $ generator_arg $ kernel_list_arg)

(* ------------------------------------------------------------------ *)

let iterate_cmd =
  let run obs u generator names =
    let inputs =
      Iterative.Driver.tasks_of_kernels ~u
        (List.map (fun n -> (n, resolve n)) names)
    in
    let result = Iterative.Driver.run ~generator inputs in
    List.iter
      (fun (it : Iterative.Driver.iteration) ->
        Format.fprintf fmt "iteration %d: customized %-12s U=%.4f area=%.1f adders@."
          it.index it.task it.utilization
          (Isa.Hw_model.adders_of_units it.area))
      result.Iterative.Driver.iterations;
    Format.fprintf fmt "final: U=%.4f (%s), %d custom instructions, %.1f adders@."
      result.Iterative.Driver.utilization
      (if result.Iterative.Driver.schedulable then "schedulable" else "infeasible")
      result.Iterative.Driver.instruction_count
      (Isa.Hw_model.adders_of_units result.Iterative.Driver.total_area);
    obs_finish obs;
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "iterate"
       ~doc:"Iterative top-down customization until the task set schedules \
             (Chapter 5).")
    Term.(const run $ obs_term $ utilization_arg $ generator_arg $ kernel_list_arg)

(* ------------------------------------------------------------------ *)

let eps_arg =
  let doc = "Approximation parameter epsilon; omit for the exact front." in
  Arg.(value & opt (some float) None & info [ "e"; "eps" ] ~docv:"EPS" ~doc)

let pareto_cmd =
  let run obs eps name =
    ignore (resolve name);
    let workload, front = Pareto.Stages.Intra.of_task ?eps (resolve name) in
    Format.fprintf fmt "%s: workload %d cycles, %d front points%s@." name workload
      (List.length front)
      (match eps with
       | Some e -> Printf.sprintf " (eps = %.2f)" e
       | None -> " (exact)");
    List.iter
      (fun (p : Util.Pareto_front.point) ->
        Format.fprintf fmt "  area %-8.1f -> %.0f cycles@."
          (Isa.Hw_model.adders_of_units p.cost)
          p.value)
      front;
    obs_finish obs;
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Workload-area Pareto front of a kernel, exact or \
             epsilon-approximate (Chapter 4).")
    Term.(const run $ obs_term $ eps_arg $ kernel_arg)

(* ------------------------------------------------------------------ *)

let dot_cmd =
  let run name =
    let cfg = resolve name in
    let blocks = Ir.Cfg.blocks cfg in
    let big =
      List.fold_left
        (fun acc (b : Ir.Cfg.block) ->
          if Ir.Dfg.node_count b.Ir.Cfg.body > Ir.Dfg.node_count acc.Ir.Cfg.body
          then b
          else acc)
        (List.hd blocks) blocks
    in
    let cis = Iterative.Mlgp.cover_dfg big.Ir.Cfg.body in
    let highlight =
      List.mapi
        (fun i (ci : Isa.Custom_inst.t) ->
          (ci.Isa.Custom_inst.nodes, Printf.sprintf "CI%d (gain %d)" i (Isa.Custom_inst.gain ci)))
        cis
    in
    print_string (Ir.Dot.dfg ~highlight big.Ir.Cfg.body)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit Graphviz for a kernel's largest block with its MLGP \
             custom instructions highlighted.")
    Term.(const run $ kernel_arg)

(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (e.g. f3.3); use --list to enumerate." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.")
  in
  let run obs list jobs no_cache stats generator id =
    apply_no_cache no_cache;
    Experiments.Curves.set_generator generator;
    if list then
      List.iter
        (fun (e : Experiments.Registry.experiment) ->
          Format.fprintf fmt "%-8s %s@." e.id e.title)
        Experiments.Registry.all
    else
      match id with
      | None ->
        Format.eprintf "an experiment id or --list is required@.";
        exit 1
      | Some id ->
        (match Experiments.Registry.find id with
         | Some e ->
           let result =
             with_jobs_pool jobs (function
               | Some pool -> Experiments.Registry.run_parallel ~pool e
               | None -> e.run ())
           in
           Experiments.Report.render fmt result;
           print_stats stats;
           obs_finish obs
         | None ->
           Format.eprintf "unknown experiment %s@." id;
           exit 1);
        Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one experiment from the evaluation registry.")
    Term.(
      const run $ obs_term $ list_arg $ jobs_arg $ no_cache_arg $ stats_arg
      $ generator_arg $ id_arg)

(* ------------------------------------------------------------------ *)

(* `stats <id>` — the profiling view of `experiment <id>`: tracing is
   forced on, and instead of the experiment's table the command reports
   where the solver effort went (span tree, per-event distributions,
   cumulative counters). *)
let profile_cmd =
  let id_arg =
    let doc = "Experiment id (e.g. f3.3); see $(b,experiment --list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let prometheus_arg =
    let doc =
      "Instead of the human-readable tables, print the labeled metric \
       registry to standard output in Prometheus text exposition format \
       v0.0.4 (what $(b,metrics serve) answers on /metrics)."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let flight_arg =
    let doc =
      "After the run, dump the flight-recorder ring to standard output \
       as JSONL (one structured event per line, oldest first)."
    in
    Arg.(value & flag & info [ "flight" ] ~doc)
  in
  let run obs jobs no_cache prometheus flight id =
    apply_no_cache no_cache;
    match Experiments.Registry.find id with
    | None ->
      Format.eprintf "unknown experiment %s@." id;
      exit 1
    | Some e ->
      Engine.Trace.set_enabled true;
      let result =
        with_jobs_pool jobs (function
          | Some pool -> Experiments.Registry.run_parallel ~pool e
          | None -> e.run ())
      in
      if prometheus || flight then begin
        (* machine-readable one-shot views own stdout; the banner goes
           to stderr so the output stays parseable *)
        Format.eprintf "=== %s: %s (%.1fs) ===@." e.id e.title result.elapsed;
        if prometheus then print_string (Obs.Prometheus.render ());
        if flight then print_string (Obs.Flight.to_jsonl ())
      end
      else begin
        Format.fprintf fmt "=== %s: %s (%.1fs) ===@." e.id e.title
          result.elapsed;
        Format.fprintf fmt "@.--- span tree ---@.";
        Engine.Trace.pp_tree fmt ();
        Format.fprintf fmt "@.--- histograms ---@.";
        Engine.Histogram.pp_table fmt ();
        Format.fprintf fmt "@.--- telemetry ---@.";
        Engine.Telemetry.pp_table fmt ()
      end;
      obs_finish obs;
      Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an experiment and print its span tree, histogram \
             percentiles and telemetry counters — or the raw registry \
             ($(b,--prometheus)) and flight recorder ($(b,--flight)).")
    Term.(
      const run $ obs_term $ jobs_arg $ no_cache_arg $ prometheus_arg
      $ flight_arg $ id_arg)

(* ------------------------------------------------------------------ *)

(* `metrics serve` — the scrape surface of the future resident daemon:
   bind /metrics, /healthz and /flight, then keep the registry live by
   looping a workload (curve warms over the named kernels plus a small
   synthetic batch round) until killed or --iterations runs out. *)
let metrics_serve_cmd =
  let port_arg =
    let doc =
      "Listen for HTTP scrapes on 127.0.0.1:$(docv); 0 binds an \
       ephemeral port (printed on startup)."
    in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let unix_arg =
    let doc = "Listen on a Unix-domain socket at $(docv) (removed on exit)." in
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after $(docv) workload iterations (0 = run until killed)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let serve_kernels_arg =
    let doc =
      "Kernels whose curve suite each workload iteration regenerates \
       (default: batch rounds only)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL" ~doc)
  in
  let batch_round memo pool i =
    let inst = Check.Gen.instance (Util.Prng.create (0x5eed + (i mod 64))) in
    let reqs =
      List.mapi
        (fun j op ->
          { Batch.Protocol.id = Printf.sprintf "serve-%d-%d" i j;
            op;
            instance = inst;
            generator = Ise.Isegen.Exhaustive })
        [ Batch.Protocol.Edf; Batch.Protocol.Rms;
          Batch.Protocol.Pareto_approx; Batch.Protocol.Curve ]
    in
    ignore (Batch.Service.run ?pool ~memo (reqs @ reqs))
  in
  let run obs no_cache jobs port unix_path iterations names =
    apply_no_cache no_cache;
    if port = None && unix_path = None then begin
      Format.eprintf "metrics serve: --port and/or --unix is required@.";
      exit 1
    end;
    List.iter (fun n -> ignore (resolve n)) names;
    let server = Obs.Serve.start ?port ?unix_path () in
    (match Obs.Serve.port server with
     | Some p ->
       Format.eprintf
         "metrics: serving /metrics /healthz /flight on http://127.0.0.1:%d@." p
     | None -> ());
    Option.iter
      (fun p -> Format.eprintf "metrics: unix socket at %s@." p)
      unix_path;
    let memo = Engine.Memo.create ~shards:4 ~namespace:"serve" () in
    with_jobs_pool jobs (fun pool ->
        let rec loop i =
          if iterations = 0 || i < iterations then begin
            if names <> [] then begin
              (* drop the in-process curve memo so every iteration
                 exercises the cache/curve pipeline, not a hashtable *)
              Experiments.Curves.reset ();
              Experiments.Curves.warm ?pool names
            end;
            batch_round memo pool i;
            Engine.Memo.observe_occupancy memo;
            if names = [] then Unix.sleepf 0.05;
            loop (i + 1)
          end
        in
        loop 0);
    Obs.Serve.stop server;
    obs_finish obs
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve /metrics (Prometheus text format v0.0.4), /healthz and \
             /flight over HTTP while looping a curve + batch workload — \
             the first running brick of the resident solver daemon.")
    Term.(
      const run $ obs_term $ no_cache_arg $ jobs_arg $ port_arg $ unix_arg
      $ iterations_arg $ serve_kernels_arg)

let metrics_cmd =
  Cmd.group
    (Cmd.info "metrics"
       ~doc:"Observability service endpoints (currently: $(b,serve)).")
    [ metrics_serve_cmd ]

(* ------------------------------------------------------------------ *)

let cache_cmd =
  let action_arg =
    let doc = "$(b,show) lists the cached entries; $(b,clear) deletes them." in
    Arg.(required
         & pos 0 (some (enum [ ("show", `Show); ("clear", `Clear) ])) None
         & info [] ~docv:"ACTION" ~doc)
  in
  let run action =
    (match action with
     | `Show ->
       (match Engine.Cache.entries () with
        | [] -> Format.fprintf fmt "cache %s is empty@." (Engine.Cache.dir ())
        | entries ->
          Format.fprintf fmt "%-14s %-10s %s@." "namespace" "bytes" "key";
          List.iter
            (fun (e : Engine.Cache.entry) ->
              Format.fprintf fmt "%-14s %-10d %s@." e.namespace e.size e.key)
            entries)
     | `Clear ->
       let n = Engine.Cache.clear () in
       Format.fprintf fmt "removed %d entr%s from %s@." n
         (if n = 1 then "y" else "ies")
         (Engine.Cache.dir ()));
    Format.pp_print_flush fmt ()
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect or empty the persistent curve cache (_cache/, \
             overridable with ISECUSTOM_CACHE_DIR).")
    Term.(const run $ action_arg)

(* ------------------------------------------------------------------ *)

let batch_cmd =
  let file_arg =
    let doc =
      "Request stream, one JSON object per line \
       ($(b,{\"id\": ..., \"op\": ..., \"instance\": ...})); $(b,-) reads \
       standard input."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUESTS" ~doc)
  in
  let shards_arg =
    let doc = "Shards of the in-memory memo table." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write response lines to $(docv) instead of standard output." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let sequential_arg =
    let doc =
      "Answer requests one at a time (the reference path): no dedup, no \
       sweep grouping, no memo.  Byte-identical to the batched answers — \
       that is the service's central invariant."
    in
    Arg.(value & flag & info [ "sequential" ] ~doc)
  in
  let read_lines ic =
    let rec go acc =
      match input_line ic with
      | line -> go (if String.trim line = "" then acc else line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let connect_arg =
    let doc =
      "Send the requests to a resident daemon (see $(b,serve)) instead of \
       solving in-process: $(docv) is the daemon's Unix socket path, or a \
       bare integer for a loopback TCP port.  Answers are byte-identical \
       to the in-process paths; parse errors are still reported locally."
    in
    Arg.(value
         & opt (some string) None
         & info [ "connect" ] ~docv:"PATH|PORT" ~doc)
  in
  let run obs no_cache stats_flag jobs shards out_file sequential connect file =
    apply_no_cache no_cache;
    let lines =
      if file = "-" then read_lines stdin
      else if not (Sys.file_exists file) then begin
        Format.eprintf "no such file: %s@." file;
        exit 2
      end
      else begin
        let ic = open_in file in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_lines ic)
      end
    in
    let indexed = List.mapi (fun i line -> (i, Batch.Protocol.parse_request line)) lines in
    let oks = List.filter_map (function i, Ok r -> Some (i, r) | _ -> None) indexed in
    let answered, stats =
      match connect with
      | Some target ->
        (* one persistent connection, one rpc per request in input
           order — the daemon owns the pool/memo, so --jobs/--shards
           do not apply here *)
        let client =
          try
            match int_of_string_opt target with
            | Some port -> Daemon.Client.connect ~port ()
            | None -> Daemon.Client.connect ~unix_path:target ()
          with Unix.Unix_error (e, _, _) ->
            Format.eprintf "batch --connect %s: %s@." target
              (Unix.error_message e);
            exit 3
        in
        Fun.protect
          ~finally:(fun () -> Daemon.Client.close client)
          (fun () ->
            ( List.map
                (fun (i, r) ->
                  match Daemon.Client.rpc client r with
                  | Ok line -> (i, line)
                  | Error msg ->
                    Format.eprintf "batch --connect: %s@." msg;
                    exit 3)
                oks,
              None ))
      | None ->
        (* the at_exit hook inside with_jobs_pool covers the [exit]
           calls below, which do not unwind Fun.protect *)
        with_jobs_pool jobs (fun pool ->
            if sequential then
              (List.map (fun (i, r) -> (i, Batch.Service.respond r)) oks, None)
            else begin
              let memo = Engine.Memo.create ~shards ~namespace:"batch" () in
              let out, stats = Batch.Service.run ?pool ~memo (List.map snd oks) in
              (List.map2 (fun (i, _) line -> (i, line)) oks out, Some stats)
            end)
    in
    let responses =
      List.map
        (function
          | i, Ok _ -> List.assoc i answered
          | i, Error msg ->
            Check.Repro.(
              to_string
                (Obj
                   [ ("line", Num (float_of_int (i + 1))); ("error", Str msg) ])))
        indexed
    in
    let emit oc = List.iter (fun l -> output_string oc l; output_char oc '\n') responses in
    (match out_file with
     | None -> emit stdout
     | Some f ->
       let oc = open_out f in
       Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> emit oc));
    Option.iter (fun s -> Format.eprintf "%a@." Batch.Service.pp_stats s) stats;
    (* responses own stdout, so the telemetry dump goes to stderr here *)
    if stats_flag then begin
      Format.eprintf "@.--- telemetry ---@.";
      Engine.Telemetry.pp_table Format.err_formatter ();
      Format.eprintf "@.--- histograms ---@.";
      Engine.Histogram.pp_table Format.err_formatter ()
    end;
    obs_finish obs;
    let errors = List.length indexed - List.length oks in
    if errors > 0 then begin
      Format.eprintf "%d request line%s could not be parsed@." errors
        (if errors = 1 then "" else "s");
      exit 1
    end;
    exit 0
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Answer a JSONL stream of solver requests as one batch: \
             canonicalize and hash every request, dedup exact duplicates, \
             share one DP across each budget sweep, run groups on the \
             domain pool against sharded memo tables spilling to the \
             persistent cache.")
    Term.(
      const run $ obs_term $ no_cache_arg $ stats_arg $ jobs_arg $ shards_arg
      $ out_arg $ sequential_arg $ connect_arg $ file_arg)

(* ------------------------------------------------------------------ *)

(* `serve` — the resident solver daemon: a long-lived Batch.Protocol
   JSONL server over one shared memo and one shared pool, with the
   metrics/health surface of `metrics serve` riding alongside.  SIGTERM
   and SIGINT trigger a graceful drain: stop accepting, flip /healthz
   to 503, finish in-flight requests, then exit 0. *)
let serve_cmd =
  let port_arg =
    let doc =
      "Accept solver connections on 127.0.0.1:$(docv); 0 binds an \
       ephemeral port (printed on startup)."
    in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let unix_arg =
    let doc =
      "Accept solver connections on a Unix-domain socket at $(docv) \
       (removed on exit)."
    in
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)
  in
  let metrics_port_arg =
    let doc = "Serve /metrics, /healthz and /flight on 127.0.0.1:$(docv)." in
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let metrics_unix_arg =
    let doc = "Serve /metrics, /healthz and /flight on a Unix socket at $(docv)." in
    Arg.(value & opt (some string) None
         & info [ "metrics-unix" ] ~docv:"PATH" ~doc)
  in
  let shards_arg =
    let doc = "Shards of the shared in-memory memo table." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Admission bound: at most $(docv) requests in flight across all \
       connections; beyond it requests are shed with an \
       $(b,overloaded) response."
    in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_request_bytes_arg =
    let doc =
      "Cap one request line at $(docv) bytes; a longer line is answered \
       with an $(b,oversized) error and the connection closed."
    in
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-request-bytes" ] ~docv:"BYTES" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Close a connection silent for $(docv) seconds; 0 disables the \
       idle reaper."
    in
    Arg.(value & opt float 600. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let line_timeout_arg =
    let doc =
      "Close a connection that takes longer than $(docv) seconds to \
       finish one request line (slow-loris guard); 0 disables it."
    in
    Arg.(value & opt float 60. & info [ "line-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let class_fuel_arg =
    let doc =
      "Per-class fuel budget $(b,OP=N) (repeatable), e.g. \
       $(b,--class-fuel pareto_exact=200000).  OP is a protocol op; \
       unlisted ops keep the process default budget."
    in
    Arg.(value & opt_all string [] & info [ "class-fuel" ] ~docv:"OP=N" ~doc)
  in
  let class_deadline_arg =
    let doc =
      "Per-class wall-clock budget $(b,OP=SECONDS) (repeatable), e.g. \
       $(b,--class-deadline curve=0.5)."
    in
    Arg.(value & opt_all string [] & info [ "class-deadline" ] ~docv:"OP=S" ~doc)
  in
  let parse_class_flag ~what ~parse_v flag =
    match String.index_opt flag '=' with
    | None ->
      Format.eprintf "--class-%s: expected OP=%s, got %s@." what
        (String.uppercase_ascii what) flag;
      exit 1
    | Some i ->
      let opn = String.sub flag 0 i in
      let v = String.sub flag (i + 1) (String.length flag - i - 1) in
      (match Batch.Protocol.op_of_name opn with
       | None ->
         Format.eprintf "--class-%s: unknown op %s@." what opn;
         exit 1
       | Some op ->
         (match parse_v v with
          | Some v -> (op, v)
          | None ->
            Format.eprintf "--class-%s: bad value %s@." what v;
            exit 1))
  in
  let classes_of fuels deadlines =
    let fuels =
      List.map
        (parse_class_flag ~what:"fuel" ~parse_v:(fun v ->
             match int_of_string_opt v with
             | Some n when n > 0 -> Some n
             | _ -> None))
        fuels
    in
    let deadlines =
      List.map
        (parse_class_flag ~what:"deadline" ~parse_v:(fun v ->
             match float_of_string_opt v with
             | Some s when s > 0. -> Some s
             | _ -> None))
        deadlines
    in
    let ops =
      List.sort_uniq compare (List.map fst fuels @ List.map fst deadlines)
    in
    List.map
      (fun op ->
        let base = Engine.Guard.default_spec () in
        ( op,
          { Engine.Guard.fuel =
              (match List.assoc_opt op fuels with
               | Some _ as f -> f
               | None -> base.Engine.Guard.fuel);
            deadline_s =
              (match List.assoc_opt op deadlines with
               | Some _ as d -> d
               | None -> base.Engine.Guard.deadline_s) } ))
      ops
  in
  let run obs no_cache jobs shards max_inflight max_request_bytes idle_timeout
      line_timeout port unix_path metrics_port metrics_unix class_fuels
      class_deadlines =
    apply_no_cache no_cache;
    if port = None && unix_path = None then begin
      Format.eprintf "serve: --port and/or --unix is required@.";
      exit 1
    end;
    if max_inflight < 1 then begin
      Format.eprintf "serve: --max-inflight must be >= 1@.";
      exit 1
    end;
    if max_request_bytes < 1 then begin
      Format.eprintf "serve: --max-request-bytes must be >= 1@.";
      exit 1
    end;
    if idle_timeout < 0. || line_timeout < 0. then begin
      Format.eprintf "serve: timeouts must be >= 0 (0 disables)@.";
      exit 1
    end;
    let opt_timeout s = if s = 0. then None else Some s in
    let classes = classes_of class_fuels class_deadlines in
    let memo = Engine.Memo.create ~shards ~namespace:"daemon" () in
    let stop_requested = Atomic.make false in
    let on_signal _ = Atomic.set stop_requested true in
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle on_signal));
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle on_signal));
    with_jobs_pool jobs (fun pool ->
        let daemon =
          Daemon.Server.start ?host:None ?port ?unix_path ~max_inflight
            ~classes ?pool ~memo ~max_request_bytes
            ~idle_timeout_s:(opt_timeout idle_timeout)
            ~line_timeout_s:(opt_timeout line_timeout) ()
        in
        let metrics_srv =
          if metrics_port = None && metrics_unix = None then None
          else
            Some
              (Obs.Serve.start ?port:metrics_port ?unix_path:metrics_unix
                 ~healthz:(fun () -> Daemon.Server.healthy daemon)
                 ())
        in
        (match Daemon.Server.port daemon with
         | Some p -> Format.eprintf "serve: solver on 127.0.0.1:%d@." p
         | None -> ());
        Option.iter
          (fun p -> Format.eprintf "serve: solver on unix socket %s@." p)
          unix_path;
        (match Option.bind metrics_srv Obs.Serve.port with
         | Some p ->
           Format.eprintf
             "serve: /metrics /healthz /flight on http://127.0.0.1:%d@." p
         | None -> ());
        Option.iter
          (fun p -> Format.eprintf "serve: metrics on unix socket %s@." p)
          metrics_unix;
        while not (Atomic.get stop_requested) do
          Unix.sleepf 0.05
        done;
        Format.eprintf "serve: draining...@.";
        Daemon.Server.stop daemon;
        Option.iter Obs.Serve.stop metrics_srv;
        Format.eprintf "serve: drained, %d request(s) served@."
          (Daemon.Server.served daemon));
    obs_finish obs;
    exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident solver daemon: a persistent \
             $(b,Batch.Protocol) JSONL server (Unix socket and/or \
             loopback TCP) answering requests on a shared domain pool \
             against one warm memo, with admission control \
             ($(b,--max-inflight)), per-class budgets and a Prometheus \
             scrape surface.  SIGTERM/SIGINT drain gracefully.")
    Term.(
      const run $ obs_term $ no_cache_arg $ jobs_arg $ shards_arg
      $ max_inflight_arg $ max_request_bytes_arg $ idle_timeout_arg
      $ line_timeout_arg $ port_arg $ unix_arg $ metrics_port_arg
      $ metrics_unix_arg $ class_fuel_arg $ class_deadline_arg)

(* ------------------------------------------------------------------ *)

let check_cmd =
  let seed_arg =
    let doc = "Seed for the deterministic generators; equal seeds replay \
               identical instances." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let check_budget_arg =
    let doc = "Random cases to run per property." in
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let suite_arg =
    let doc =
      "Restrict to one suite (repeatable): select, sched, pareto, curve, \
       engine, parallel, isegen or batch."
    in
    Arg.(value & opt_all string [] & info [ "suite" ] ~docv:"SUITE" ~doc)
  in
  let repro_dir_arg =
    let doc = "Directory failure repro files are written to." in
    Arg.(value & opt string "." & info [ "repro-dir" ] ~docv:"DIR" ~doc)
  in
  let action_arg =
    let doc =
      "Optional action: $(b,replay) $(i,FILE) re-runs a recorded \
       counterexample; $(b,selftest) injects an off-by-one solver bug and \
       verifies the harness catches, shrinks and persists it; $(b,faults) \
       fires every fault-injection point and verifies each is survived."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"ACTION" ~doc)
  in
  let run obs seed budget suites repro_dir action =
    (* the batch properties live above lib/check in the library graph,
       so the composition happens here *)
    let all_props = Check.Prop.all @ Batch.Props.all in
    let all_suites = Check.Prop.suites @ [ "batch" ] in
    let unknown = List.filter (fun s -> not (List.mem s all_suites)) suites in
    if unknown <> [] then begin
      Format.eprintf "unknown suite%s %s; available: %s@."
        (if List.length unknown = 1 then "" else "s")
        (String.concat ", " unknown)
        (String.concat ", " all_suites);
      exit 1
    end;
    let props =
      if suites = [] then all_props
      else List.filter (fun (p : Check.Prop.t) -> List.mem p.suite suites) all_props
    in
    let config = { Check.Runner.seed; budget; suites; repro_dir } in
    let status =
      match action with
      | [] ->
        let summary = Check.Runner.run ~fmt ~props config in
        if Check.Runner.ok summary then 0 else 1
      | [ "replay"; file ] ->
        (match Check.Runner.replay ~fmt ~props:all_props file with
         | Ok true -> 0
         | Ok false -> 1
         | Error msg ->
           Format.eprintf "%s@." msg;
           2)
      | [ "selftest" ] ->
        (match Check.Runner.selftest ~fmt ~seed ~repro_dir () with
         | Ok msg ->
           Format.fprintf fmt "self-test ok: %s@." msg;
           0
         | Error msg ->
           Format.eprintf "self-test FAILED: %s@." msg;
           1)
      | [ "faults" ] ->
        (match Check.Runner.fault_selftest ~fmt () with
         | Ok msg ->
           Format.fprintf fmt "fault self-test ok: %s@." msg;
           0
         | Error msg ->
           Format.eprintf "fault self-test FAILED: %s@." msg;
           1)
      | _ ->
        Format.eprintf
          "usage: isecustom check [OPTS] [replay FILE | selftest | faults]@.";
        exit 2
    in
    obs_finish obs;
    Format.pp_print_flush fmt ();
    exit status
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Property-based differential testing: random workloads, \
             brute-force oracles, greedy shrinking, replayable repro files.")
    Term.(
      const run $ obs_term $ seed_arg $ check_budget_arg $ suite_arg
      $ repro_dir_arg $ action_arg)

let () =
  let info =
    Cmd.info "isecustom" ~version:"1.0.0"
      ~doc:"Instruction-set customization for real-time embedded systems."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ kernels_cmd; curve_cmd; select_cmd; iterate_cmd; pareto_cmd;
            dot_cmd; experiment_cmd; profile_cmd; metrics_cmd; cache_cmd;
            batch_cmd; serve_cmd; check_cmd ]))
