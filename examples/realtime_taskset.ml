(* A flight-style multi-rate control workload (the setting the paper's
   introduction motivates): four periodic tasks on one customizable
   core.  Software-only the set misses deadlines; we explore how much
   silicon buys schedulability under both EDF and RMS, then check the
   analytic answer against a cycle-accurate scheduler simulation.

   Run with: dune exec examples/realtime_taskset.exe *)

let () =
  let fmt = Format.std_formatter in
  let names = [ "crc32"; "adpcm_enc"; "lms"; "edn" ] in
  Format.fprintf fmt "workload: %s@." (String.concat ", " names);

  (* Configuration curves from the identification/selection pipeline. *)
  let tasks =
    List.map
      (fun name ->
        let curve =
          Ise.Curve.generate ~params:Ise.Curve.small (Kernels.find name)
        in
        Rt.Task.make ~name ~period:1 curve)
      names
    |> Rt.Task.with_target_utilization 1.08
  in
  Format.fprintf fmt "software-only utilization: %.3f (unschedulable)@."
    (Rt.Task.set_utilization tasks);

  let max_area =
    Util.Numeric.sum_by (fun (t : Rt.Task.t) -> Isa.Config.max_area t.curve) tasks
  in
  Format.fprintf fmt "@.%-10s %-12s %-12s %-14s@." "budget" "EDF U" "RMS U" "energy (EDF)";
  List.iter
    (fun percent ->
      let budget = max_area * percent / 100 in
      let edf = Core.Edf_select.run ~budget tasks in
      let edf_u = edf.Core.Selection.utilization in
      let rms_text =
        match Core.Rms_select.run ~budget tasks with
        | Some sel -> Printf.sprintf "%.3f" sel.Core.Selection.utilization
        | None -> "miss"
      in
      let energy =
        if edf_u <= 1. then
          Printf.sprintf "-%.1f%%"
            (Rt.Energy.saving_percent Rt.Energy.Edf ~n_tasks:(List.length tasks)
               ~base:(1.0, 1.0) ~custom:(edf_u, edf_u))
        else "--"
      in
      Format.fprintf fmt "%-10s %-12.3f %-12s %-14s@."
        (Printf.sprintf "%d%%" percent) edf_u rms_text energy)
    [ 0; 10; 20; 30; 50; 75; 100 ];

  (* Cross-validate the cheapest schedulable EDF selection by simulating
     the actual preemptive schedule over a long horizon. *)
  let budget = max_area / 2 in
  let sel = Core.Edf_select.run ~budget tasks in
  let pairs =
    List.map
      (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
      sel.Core.Selection.assignment
  in
  let horizon = 50 * List.fold_left (fun acc (_, p) -> max acc p) 0 pairs in
  let outcome = Rt.Sim.run ~horizon ~policy:Rt.Sim.Edf pairs in
  Format.fprintf fmt
    "@.simulation of the 50%%-area EDF selection over %d cycles:@." horizon;
  Format.fprintf fmt "  deadline misses: %d, preemptions: %d, idle: %d cycles@."
    outcome.Rt.Sim.deadline_misses outcome.Rt.Sim.preemptions outcome.Rt.Sim.idle;
  assert (outcome.Rt.Sim.deadline_misses = 0)
