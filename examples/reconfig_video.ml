(* Runtime reconfiguration for a video pipeline (the Chapter 6 use
   case): the fabric is too small for every stage's custom instructions
   at once, so the partitioning algorithm clubs them into
   configurations that are swapped as the frame moves through the
   pipeline.

   Run with: dune exec examples/reconfig_video.exe *)

let () =
  let fmt = Format.std_formatter in
  (* Hot loops of a motion-JPEG-style encoder, with custom-instruction
     set versions produced by the identification/selection pipeline on
     representative blocks. *)
  let prng = Util.Prng.create 42 in
  let mk_loop name mix size iterations =
    let dfg = Kernels.Blockgen.block prng ~loads:4 ~stores:2 ~size mix in
    let cfg = { Ir.Cfg.name; code = Ir.Cfg.loop iterations (Ir.Cfg.block "body" dfg) } in
    let curve = Ise.Curve.generate ~params:Ise.Curve.small cfg in
    let base = Isa.Config.base_cycles curve in
    let versions =
      Array.to_list (Isa.Config.points curve)
      |> List.filter_map (fun (p : Isa.Config.point) ->
             if p.area = 0 then None else Some (base - p.cycles, p.area))
      |> List.sort_uniq compare
    in
    (* a handful of versions is enough to expose the trade-off *)
    let n = List.length versions in
    let stride = max 1 (n / 4) in
    let sampled =
      List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) versions
      |> List.sort_uniq compare
    in
    Reconfig.Problem.loop name sampled
  in
  let loops =
    [ mk_loop "motion_est" Kernels.Blockgen.dsp_mix 96 128;
      mk_loop "dct" Kernels.Blockgen.dsp_mix 72 256;
      mk_loop "quant" Kernels.Blockgen.control_mix 28 256;
      mk_loop "entropy" Kernels.Blockgen.control_mix 44 128;
      mk_loop "deblock" Kernels.Blockgen.dsp_mix 56 64 ]
  in
  List.iter
    (fun (l : Reconfig.Problem.hot_loop) ->
      Format.fprintf fmt "%-12s versions:" l.name;
      Array.iteri
        (fun i (v : Reconfig.Problem.version) ->
          if i > 0 then Format.fprintf fmt " %d cycles/%.0f adders"
              v.gain (Isa.Hw_model.adders_of_units v.area))
        l.versions;
      Format.fprintf fmt "@.")
    loops;

  (* Batch-mode frame processing (the thesis's Figure 6.2 scenario): each
     stage sweeps all macroblock rows before the next stage starts, so
     stage switches — the only reconfiguration points — happen a handful
     of times per frame. *)
  let stage name = List.init 16 (fun _ -> name) in
  let frame =
    stage "motion_est" @ stage "dct" @ stage "quant" @ stage "entropy"
    @ stage "deblock"
  in
  let trace = Ir.Trace.repeat frame 30 in
  Format.fprintf fmt "trace: %d loop activations@." (Ir.Trace.length trace);

  List.iter
    (fun (max_area, reconfig_cost) ->
      let p = { Reconfig.Problem.loops; trace; max_area; reconfig_cost } in
      let show label placement =
        Format.fprintf fmt "  %-10s net gain %-8d (%d configurations, %d reloads)@."
          label
          (Reconfig.Problem.net_gain p placement)
          (Reconfig.Problem.num_configs placement)
          (Reconfig.Problem.reconfigurations p placement)
      in
      Format.fprintf fmt "@.fabric %.0f adders, reload cost %d cycles:@."
        (Isa.Hw_model.adders_of_units max_area) reconfig_cost;
      show "greedy" (Reconfig.Algorithms.greedy p);
      show "iterative" (Reconfig.Algorithms.iterative p);
      match Reconfig.Algorithms.exhaustive p with
      | Some placement -> show "optimal" placement
      | None -> Format.fprintf fmt "  optimal    (too many loops)@.")
    [ (250, 20); (600, 200); (600, 20_000); (1500, 200) ]
