(* Benchmark harness: regenerates every table and figure of the
   evaluation.  With no arguments it runs everything in paper order
   (plus the engine benchmark); pass experiment ids (e.g. `f3.3 t6.1`)
   or `engine` to run a subset, or `--list` to enumerate them. *)

let fmt = Format.std_formatter

let usage () =
  Format.printf "usage: main.exe [--list | id ...]@.ids:@.";
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      Format.printf "  %-8s %s@." e.id e.title)
    Experiments.Registry.all;
  Format.printf "  %-8s %s@." "engine"
    "curve-generation engine: cold/warm cache, 1 vs N domains (BENCH_engine.json)";
  Format.printf "  %-8s %s@." "batch"
    "batch solver service: dedup/memo hit-rate vs sequential (BENCH_engine.json)";
  Format.printf "  %-8s %s@." "daemon"
    "resident daemon: warm vs cold-batch latency, queue-wait under 4 clients \
     (BENCH_engine.json)";
  Format.printf "  %-8s %s@." "generator"
    "candidate generators: isegen vs saturated exhaustive on above-cap \
     blocks (BENCH_engine.json)"

let run_one (e : Experiments.Registry.experiment) =
  let result = e.run () in
  Experiments.Report.render fmt result;
  Format.fprintf fmt "[%s completed in %.1fs]@." e.id result.elapsed;
  Format.pp_print_flush fmt ();
  flush stdout

(* The full sweep goes through [run_sweep]: a crashing driver is
   reported in place and the rest of the paper still regenerates. *)
let run_all ?pool () =
  let outcomes = Experiments.Registry.run_sweep ?pool Experiments.Registry.all in
  let failures =
    List.filter_map
      (fun ((e : Experiments.Registry.experiment), outcome) ->
        (match outcome with
         | Ok result ->
           Experiments.Report.render fmt result;
           Format.fprintf fmt "[%s completed in %.1fs]@." e.id result.elapsed
         | Error msg ->
           Format.fprintf fmt "@.=== %s: %s ===@.[FAILED: %s]@." e.id e.title
             msg);
        Format.pp_print_flush fmt ();
        flush stdout;
        match outcome with Ok _ -> None | Error _ -> Some e.id)
      outcomes
  in
  (match failures with
   | [] -> ()
   | ids ->
     Format.fprintf fmt "@.[%d experiment(s) failed: %s]@." (List.length ids)
       (String.concat ", " ids));
  failures = []

(* Downstream dashboards key on these fields; fail the bench loudly if
   the file we just wrote lost one, rather than letting a rename surface
   as a silent gap in the performance trajectory. *)
let bench_keys =
  [ "kernels"; "jobs"; "cold_sequential_s"; "cold_parallel_s"; "warm_cache_s";
    "parallel_speedup"; "warm_speedup"; "jobs_scaling"; "pool"; "spawned";
    "reused"; "steals"; "items"; "cache_hits"; "cache_misses";
    "curve_latency"; "p50_s"; "p90_s"; "p99_s"; "max_s"; "status";
    "telemetry"; "histograms"; "obs_overhead"; "obs_on_s"; "obs_off_s";
    "overhead_frac" ]

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let validate_bench_json ?(keys = bench_keys) path =
  let content = read_file path in
  let has key =
    let needle = "\"" ^ key ^ "\"" in
    let n = String.length content and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub content i m = needle || scan (i + 1)) in
    scan 0
  in
  match List.filter (fun k -> not (has k)) keys with
  | [] -> ()
  | missing ->
    Format.eprintf "engine bench: %s is missing expected key%s: %s@." path
      (if List.length missing = 1 then "" else "s")
      (String.concat ", " missing);
    exit 2

(* The engine benchmark: how long the shared task-set curves take to
   generate cold-sequential, cold-parallel and warm-from-disk.  Uses its
   own cache directory so it never pollutes (or is flattered by) the
   user's `_cache/`. *)
let engine_bench () =
  let module Curves = Experiments.Curves in
  let names =
    List.concat_map Curves.taskset_ch3 [ 1; 2; 3; 4; 5; 6 ]
    |> List.sort_uniq compare
  in
  let saved_dir = Engine.Cache.dir () in
  Engine.Cache.set_dir "_cache.bench";
  Fun.protect ~finally:(fun () -> Engine.Cache.set_dir saved_dir) @@ fun () ->
  ignore (Engine.Cache.clear ());
  (* epoch boundary: a snapshot instead of reset-then-read, so every
     counter/histogram below is the delta over exactly this bench run *)
  let s0 = Obs.Snapshot.take () in
  Format.fprintf fmt "@.=== engine: curve generation, %d kernels ===@."
    (List.length names);
  (* one cold pass per pool width, each from an empty disk cache on a
     fresh pool, so the scaling rows isolate the pool's contribution *)
  let time_cold jobs =
    ignore (Engine.Cache.clear ());
    Curves.reset ();
    let (), t =
      Experiments.Report.timed (fun () ->
          if jobs <= 1 then Curves.warm names
          else
            Engine.Parallel.Pool.with_pool ~jobs (fun pool ->
                Curves.warm ~pool names))
    in
    t
  in
  let scaling = List.map (fun j -> (j, time_cold j)) [ 1; 2; 4 ] in
  let cold_seq = List.assoc 1 scaling in
  let cold_par = List.assoc 2 scaling in
  let speedup_at t = cold_seq /. Float.max 1e-9 t in
  Curves.reset ();
  let (), warm = Experiments.Report.timed (fun () -> Curves.warm names) in
  let d = Obs.Snapshot.delta ~before:s0 ~after:(Obs.Snapshot.take ()) in
  let dcounter name = int_of_float (Obs.Snapshot.counter d name) in
  let hits = dcounter "cache.hits" and misses = dcounter "cache.misses" in
  Format.fprintf fmt "cold, sequential      %8.2f s@." cold_seq;
  List.iter
    (fun (j, t) ->
      if j > 1 then
        Format.fprintf fmt "cold, %2d jobs         %8.2f s  (%.2fx)@." j t
          (speedup_at t))
    scaling;
  Format.fprintf fmt "warm disk cache       %8.2f s  (%.0fx)@." warm
    (cold_seq /. Float.max 1e-9 warm);
  Format.fprintf fmt "cache hits/misses     %d/%d@." hits misses;
  Format.fprintf fmt
    "pool                  %d spawned, %d ops reused domains, %d items, %d steals@."
    (dcounter "pool.spawned") (dcounter "pool.reused") (dcounter "pool.items")
    (dcounter "pool.steals");
  (* The 1.5x floor at 2 jobs is the point of the persistent pool; it
     is only physics on a host that actually has a second core, so on
     single-core runners the scaling is recorded but not enforced. *)
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 && speedup_at cold_par < 1.5 then begin
    Format.eprintf
      "engine bench: cold parallel_speedup %.2f below the 1.5 floor at 2 jobs@."
      (speedup_at cold_par);
    exit 2
  end;
  if cores < 2 then
    Format.fprintf fmt
      "[single-core host: %.2fx at 2 jobs recorded, 1.5x floor not enforced]@."
      (speedup_at cold_par);
  (* Per-curve latency distribution over both cold passes (the warm pass
     generates nothing, so it contributes no samples). *)
  let latency =
    match Obs.Snapshot.hist_stats d "curve.generate_s" with
    | None ->
      Format.eprintf "engine bench: no curve.generate_s samples recorded@.";
      exit 2
    | Some (s : Obs.Metrics.hstats) ->
      Format.fprintf fmt
        "curve latency         p50 %.4f s, p90 %.4f s, p99 %.4f s, max %.4f s@."
        s.p50 s.p90 s.p99 s.max;
      Printf.sprintf
        "{\"count\": %d, \"p50_s\": %.6f, \"p90_s\": %.6f, \"p99_s\": %.6f, \
         \"max_s\": %.6f}"
        s.count s.p50 s.p90 s.p99 s.max
  in
  (* the delta starts at the bench's snapshot, so any guard exhaustion
     counted here happened during these measurements *)
  let status = if dcounter "guard.exhausted" > 0 then "partial" else "exact" in
  (* Observability overhead: one more cold sequential pass with the
     whole obs layer (registry + flight ring) disabled, one with it on.
     The delta is what instrumentation costs the curve suite; the bench
     enforces the < 5% ceiling whenever the timings are long enough to
     be signal rather than scheduler noise. *)
  let time_obs enabled =
    Obs.Metrics.set_enabled enabled;
    Obs.Flight.set_enabled enabled;
    ignore (Engine.Cache.clear ());
    Curves.reset ();
    let (), t = Experiments.Report.timed (fun () -> Curves.warm names) in
    Obs.Metrics.set_enabled true;
    Obs.Flight.set_enabled true;
    t
  in
  let obs_off_s = time_obs false in
  let obs_on_s = time_obs true in
  let overhead_frac = (obs_on_s -. obs_off_s) /. Float.max 1e-9 obs_off_s in
  Format.fprintf fmt
    "obs overhead          %8.2f s on, %.2f s off  (%+.1f%%)@." obs_on_s
    obs_off_s (100. *. overhead_frac);
  if obs_off_s >= 0.5 && overhead_frac > 0.05 then begin
    Format.eprintf
      "engine bench: observability overhead %.1f%% above the 5%% ceiling@."
      (100. *. overhead_frac);
    exit 2
  end;
  if obs_off_s < 0.5 then
    Format.fprintf fmt
      "[suite under 0.5 s: overhead recorded, 5%% ceiling not enforced]@.";
  let jobs_scaling =
    String.concat ", "
      (List.map
         (fun (j, t) ->
           Printf.sprintf
             "{\"jobs\": %d, \"cold_s\": %.4f, \"speedup\": %.3f}" j t
             (speedup_at t))
         scaling)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"kernels\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"cold_sequential_s\": %.4f,\n\
      \  \"cold_parallel_s\": %.4f,\n\
      \  \"warm_cache_s\": %.4f,\n\
      \  \"parallel_speedup\": %.3f,\n\
      \  \"warm_speedup\": %.3f,\n\
      \  \"jobs_scaling\": [%s],\n\
      \  \"pool\": {\"spawned\": %d, \"reused\": %d, \"items\": %d, \
       \"steals\": %d},\n\
      \  \"cache_hits\": %d,\n\
      \  \"cache_misses\": %d,\n\
      \  \"curve_latency\": %s,\n\
      \  \"status\": \"%s\",\n\
      \  \"obs_overhead\": {\"obs_on_s\": %.4f, \"obs_off_s\": %.4f, \
       \"overhead_frac\": %.4f},\n\
      \  \"telemetry\": %s,\n\
      \  \"histograms\": %s\n\
       }\n"
      (List.length names) 2 cold_seq cold_par warm (speedup_at cold_par)
      (cold_seq /. Float.max 1e-9 warm)
      jobs_scaling
      (dcounter "pool.spawned") (dcounter "pool.reused") (dcounter "pool.items")
      (dcounter "pool.steals") hits misses latency status obs_on_s obs_off_s
      overhead_frac
      (Obs.Snapshot.telemetry_json d)
      (Obs.Snapshot.histograms_json d)
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc json;
  close_out oc;
  validate_bench_json "BENCH_engine.json";
  Format.fprintf fmt "[engine timings written to BENCH_engine.json]@.";
  Format.pp_print_flush fmt ()

(* The batch-service benchmark: a 200-request stream with 4x
   duplication, answered sequentially and then through the batching
   service (cold, then memo-warm).  The three answer sets must be
   byte-identical — the bench doubles as the large-stream acceptance
   check — and the cold hit-rate must clear 50%.  Results merge into
   BENCH_engine.json under a "batch" key, preserving whatever the
   engine bench wrote. *)
let batch_keys =
  [ "batch"; "requests"; "unique"; "groups"; "dedup_hits"; "memo_hits";
    "swept"; "hit_rate"; "sequential_s"; "batch_cold_s"; "batch_warm_s";
    "batch_speedup"; "warm_speedup"; "jobs_scaling" ]

let merge_key_json path key value =
  let existing =
    if Sys.file_exists path then
      match Check.Repro.parse (read_file path) with
      | Check.Repro.Obj fields -> fields
      | _ | (exception Check.Repro.Parse_error _) ->
        Format.eprintf "bench: %s is not a JSON object; rewriting@." path;
        []
    else []
  in
  let fields =
    List.filter (fun (k, _) -> k <> key) existing @ [ (key, value) ]
  in
  let oc = open_out path in
  output_string oc (Check.Repro.to_string (Check.Repro.Obj fields));
  output_string oc "\n";
  close_out oc

let batch_bench () =
  let module P = Batch.Protocol in
  let module S = Batch.Service in
  let uniques =
    List.concat_map
      (fun i ->
        let inst = Check.Gen.instance (Util.Prng.create (100 + i)) in
        List.map
          (fun op -> (op, inst))
          [ P.Edf; P.Rms; P.Pareto_exact; P.Pareto_approx; P.Curve ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let requests =
    List.mapi
      (fun i (op, instance) -> { P.id = Printf.sprintf "b%03d" i; op; instance;
        generator = Ise.Isegen.Exhaustive })
      (uniques @ uniques @ uniques @ uniques)
  in
  Format.fprintf fmt "@.=== batch: %d requests (4x duplication) ===@."
    (List.length requests);
  let seq_lines, seq_s =
    Experiments.Report.timed (fun () -> List.map S.respond requests)
  in
  (* one cold run per pool width, each against a fresh memo and checked
     byte-for-byte against the sequential reference *)
  let cold_at jobs =
    let memo = Engine.Memo.create ~shards:8 ~spill:false ~namespace:"bench" () in
    let (lines, stats), t =
      Experiments.Report.timed (fun () ->
          Engine.Parallel.Pool.with_pool ~jobs (fun pool ->
              S.run ~pool ~memo requests))
    in
    if lines <> seq_lines then begin
      Format.eprintf
        "batch bench: batched responses at %d jobs differ from the \
         sequential reference@."
        jobs;
      exit 2
    end;
    (jobs, t, stats, memo)
  in
  let scaling = List.map cold_at [ 1; 2; 4 ] in
  let _, cold_s, cold_stats, memo =
    List.find (fun (j, _, _, _) -> j = 2) scaling
  in
  let (warm_lines, warm_stats), warm_s =
    Experiments.Report.timed (fun () ->
        Engine.Parallel.Pool.with_pool ~jobs:2 (fun pool ->
            S.run ~pool ~memo requests))
  in
  if warm_lines <> seq_lines then begin
    Format.eprintf
      "batch bench: memo-warm responses differ from the sequential reference@.";
    exit 2
  end;
  let rate = S.hit_rate cold_stats in
  let jobs = 2 in
  Format.fprintf fmt "sequential            %8.2f s@." seq_s;
  List.iter
    (fun (j, t, _, _) ->
      Format.fprintf fmt "batch, cold, %d jobs   %8.2f s  (%.2fx)@." j t
        (seq_s /. Float.max 1e-9 t))
    scaling;
  Format.fprintf fmt "batch, memo-warm      %8.2f s  (%.2fx)  %a@." warm_s
    (seq_s /. Float.max 1e-9 warm_s) S.pp_stats warm_stats;
  if rate < 0.5 then begin
    Format.eprintf "batch bench: cold hit-rate %.2f below the 0.5 floor@." rate;
    exit 2
  end;
  (* Speedup must not regress as the pool widens; like the engine floor
     this is only enforceable where the cores exist (1->2 needs 2,
     2->4 needs 4), and a 10% tolerance absorbs scheduler noise. *)
  let cores = Domain.recommended_domain_count () in
  let time_at j = let _, t, _, _ = List.find (fun (j', _, _, _) -> j' = j) scaling in t in
  if cores >= 2 && time_at 2 > time_at 1 *. 1.1 then begin
    Format.eprintf "batch bench: 2 jobs (%.2f s) slower than 1 job (%.2f s)@."
      (time_at 2) (time_at 1);
    exit 2
  end;
  if cores >= 4 && time_at 4 > time_at 2 *. 1.1 then begin
    Format.eprintf "batch bench: 4 jobs (%.2f s) slower than 2 jobs (%.2f s)@."
      (time_at 4) (time_at 2);
    exit 2
  end;
  if cores < 2 then
    Format.fprintf fmt
      "[single-core host: per-jobs scaling recorded, monotonicity not \
       enforced]@.";
  let num f = Check.Repro.Num f and numi i = Check.Repro.Num (float_of_int i) in
  merge_key_json "BENCH_engine.json" "batch"
    (Check.Repro.Obj
       [ ("requests", numi cold_stats.S.requests);
         ("unique", numi cold_stats.S.unique);
         ("groups", numi cold_stats.S.groups);
         ("dedup_hits", numi cold_stats.S.dedup_hits);
         ("memo_hits", numi cold_stats.S.memo_hits);
         ("swept", numi cold_stats.S.swept);
         ("hit_rate", num rate);
         ("warm_memo_hits", numi warm_stats.S.memo_hits);
         ("jobs", numi jobs);
         ("sequential_s", num seq_s);
         ("batch_cold_s", num cold_s);
         ("batch_warm_s", num warm_s);
         ("batch_speedup", num (seq_s /. Float.max 1e-9 cold_s));
         ("warm_speedup", num (seq_s /. Float.max 1e-9 warm_s));
         ( "jobs_scaling",
           Check.Repro.Arr
             (List.map
                (fun (j, t, _, _) ->
                  Check.Repro.Obj
                    [ ("jobs", numi j);
                      ("cold_s", num t);
                      ("speedup", num (seq_s /. Float.max 1e-9 t)) ])
                scaling) ) ]);
  validate_bench_json ~keys:batch_keys "BENCH_engine.json";
  Format.fprintf fmt "[batch counters merged into BENCH_engine.json]@.";
  Format.pp_print_flush fmt ()

(* The daemon benchmark: the same kind of request stream, answered by
   (a) the one-shot batch service from a cold memo and (b) a resident
   daemon whose memo the first pass warmed — the paper-trajectory claim
   is that a warm daemon answers a repeat stream much faster than
   standing up a cold batch.  Byte-identity with the sequential
   reference is asserted on every path, 4 concurrent clients hammer the
   daemon to put samples behind the queue-wait histogram, and the
   results merge into BENCH_engine.json under a "daemon" key. *)
let daemon_keys =
  [ "daemon"; "requests"; "cold_batch_s"; "daemon_cold_s"; "daemon_warm_s";
    "warm_speedup_vs_cold_batch"; "concurrent_clients"; "concurrent_s";
    "queue_wait_p50_s"; "queue_wait_p99_s"; "shed" ]

let daemon_bench () =
  let module P = Batch.Protocol in
  let module S = Batch.Service in
  let uniques =
    List.concat_map
      (fun i ->
        let inst = Check.Gen.instance (Util.Prng.create (500 + i)) in
        List.map
          (fun op -> (op, inst))
          [ P.Edf; P.Rms; P.Pareto_exact; P.Pareto_approx; P.Curve ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let requests =
    List.mapi
      (fun i (op, instance) -> { P.id = Printf.sprintf "d%03d" i; op; instance;
        generator = Ise.Isegen.Exhaustive })
      (uniques @ uniques)
  in
  let n = List.length requests in
  Format.fprintf fmt "@.=== daemon: %d requests, warm resident vs cold batch ===@." n;
  let seq_lines = List.map S.respond requests in
  (* cold one-shot batch: fresh memo + fresh pool, the cost a client
     pays today for every stream *)
  let (cold_lines, _), cold_batch_s =
    Experiments.Report.timed (fun () ->
        Engine.Parallel.Pool.with_pool ~jobs:2 (fun pool ->
            S.run ~pool
              ~memo:(Engine.Memo.create ~shards:8 ~spill:false ~namespace:"bench" ())
              requests))
  in
  if cold_lines <> seq_lines then begin
    Format.eprintf "daemon bench: cold batch differs from sequential@.";
    exit 2
  end;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "isecustom-bench-%d.sock" (Unix.getpid ()))
  in
  Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d =
    Daemon.Server.start ~unix_path:sock ~pool
      ~memo:(Engine.Memo.create ~shards:8 ~spill:false ~namespace:"bench-daemon" ())
      ()
  in
  Fun.protect ~finally:(fun () -> Daemon.Server.stop d) @@ fun () ->
  let replay_stream () =
    let c = Daemon.Client.connect ~unix_path:sock () in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        List.map
          (fun req ->
            match Daemon.Client.rpc c req with
            | Ok line -> line
            | Error msg -> failwith ("daemon bench: " ^ msg))
          requests)
  in
  (* first pass warms the daemon's memo (and is itself checked); the
     timed warm pass is then pure protocol + memo round-trips *)
  let daemon_cold_lines, daemon_cold_s = Experiments.Report.timed replay_stream in
  if daemon_cold_lines <> seq_lines then begin
    Format.eprintf "daemon bench: cold daemon pass differs from sequential@.";
    exit 2
  end;
  let daemon_warm_lines, daemon_warm_s = Experiments.Report.timed replay_stream in
  if daemon_warm_lines <> seq_lines then begin
    Format.eprintf "daemon bench: warm daemon pass differs from sequential@.";
    exit 2
  end;
  (* 4 concurrent clients over the warm daemon: queue-wait percentiles
     from the snapshot delta, byte-identity per client *)
  let s0 = Obs.Snapshot.take () in
  let clients = 4 in
  let failures = Atomic.make 0 in
  let (), concurrent_s =
    Experiments.Report.timed (fun () ->
        let threads =
          List.init clients (fun _ ->
              Thread.create
                (fun () ->
                  if replay_stream () <> seq_lines then Atomic.incr failures)
                ())
        in
        List.iter Thread.join threads)
  in
  if Atomic.get failures > 0 then begin
    Format.eprintf "daemon bench: %d concurrent client(s) saw drift@."
      (Atomic.get failures);
    exit 2
  end;
  let delta = Obs.Snapshot.delta ~before:s0 ~after:(Obs.Snapshot.take ()) in
  let shed =
    List.fold_left
      (fun acc op ->
        acc
        + int_of_float
            (Obs.Snapshot.counter delta
               ~labels:[ ("op", P.op_name op); ("outcome", "overloaded") ]
               "daemon.requests"))
      0
      [ P.Edf; P.Rms; P.Pareto_exact; P.Pareto_approx; P.Curve ]
  in
  let qw_p50, qw_p99 =
    match Obs.Snapshot.hist_stats delta "daemon.queue_wait_s" with
    | Some (s : Obs.Metrics.hstats) -> (s.p50, s.p99)
    | None ->
      Format.eprintf "daemon bench: no daemon.queue_wait_s samples recorded@.";
      exit 2
  in
  let warm_speedup = cold_batch_s /. Float.max 1e-9 daemon_warm_s in
  Format.fprintf fmt "cold one-shot batch   %8.3f s@." cold_batch_s;
  Format.fprintf fmt "daemon, cold memo     %8.3f s@." daemon_cold_s;
  Format.fprintf fmt "daemon, warm memo     %8.3f s  (%.1fx vs cold batch)@."
    daemon_warm_s warm_speedup;
  Format.fprintf fmt
    "4 clients, warm       %8.3f s  queue-wait p50 %.6f s, p99 %.6f s@."
    concurrent_s qw_p50 qw_p99;
  (* The warm-resident speedup is the daemon's reason to exist; like the
     other floors it is only physics with real cores and real timings,
     so tiny-corpus or single-core runs record it without enforcing. *)
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 && cold_batch_s >= 0.2 && warm_speedup < 1.2 then begin
    Format.eprintf
      "daemon bench: warm daemon %.2fx vs cold batch, below the 1.2 floor@."
      warm_speedup;
    exit 2
  end;
  if cores < 2 || cold_batch_s < 0.2 then
    Format.fprintf fmt
      "[%s: %.2fx warm speedup recorded, 1.2x floor not enforced]@."
      (if cores < 2 then "single-core host" else "suite under 0.2 s")
      warm_speedup;
  let num f = Check.Repro.Num f and numi i = Check.Repro.Num (float_of_int i) in
  merge_key_json "BENCH_engine.json" "daemon"
    (Check.Repro.Obj
       [ ("requests", numi n);
         ("cold_batch_s", num cold_batch_s);
         ("daemon_cold_s", num daemon_cold_s);
         ("daemon_warm_s", num daemon_warm_s);
         ("warm_speedup_vs_cold_batch", num warm_speedup);
         ("concurrent_clients", numi clients);
         ("concurrent_s", num concurrent_s);
         ("queue_wait_p50_s", num qw_p50);
         ("queue_wait_p99_s", num qw_p99);
         ("shed", numi shed) ]);
  validate_bench_json ~keys:daemon_keys "BENCH_engine.json";
  Format.fprintf fmt "[daemon counters merged into BENCH_engine.json]@.";
  Format.pp_print_flush fmt ()

(* The generator benchmark: on blocks big enough to saturate the
   exhaustive enumerator's small budget, the ISEGEN iterative generator
   must recover strictly more selectable gain (the cap-breaking claim)
   without blowing the time budget.  Results merge into
   BENCH_engine.json under a "generator_scaling" key. *)
let generator_keys =
  [ "generator_scaling"; "exhaustive_saturated"; "exhaustive_gain";
    "isegen_gain"; "gain_ratio"; "exhaustive_s"; "isegen_s"; "time_ratio" ]

let generator_bench () =
  let module E = Ise.Enumerate in
  let biggest name =
    let blocks = Ir.Cfg.blocks (Kernels.find name) in
    (List.fold_left
       (fun acc (b : Ir.Cfg.block) ->
         if Ir.Dfg.node_count b.Ir.Cfg.body > Ir.Dfg.node_count acc.Ir.Cfg.body
         then b
         else acc)
       (List.hd blocks) blocks)
      .Ir.Cfg.body
  in
  let blocks =
    [ ("sha", biggest "sha"); ("rijndael", biggest "rijndael");
      ( "blockgen-400",
        Kernels.Blockgen.block (Util.Prng.create 7) ~size:400
          Kernels.Blockgen.dsp_mix ) ]
  in
  Format.fprintf fmt
    "@.=== generator: isegen vs saturated exhaustive, %d blocks ===@."
    (List.length blocks);
  (* Gain a selector can bank under the real ISA constraint: a handful
     of free opcodes, so the 8 best pairwise-disjoint candidates.  This
     is where pool depth (not pool size) pays — a saturated breadth-first
     enumeration is rich in small subgraphs but never reaches the deep
     ones an iterative walk climbs to. *)
  let opcodes = 8 in
  let selected_gain dfg cands =
    let used = Util.Bitset.create (Ir.Dfg.node_count dfg) in
    let sorted =
      List.stable_sort
        (fun a b -> compare (Isa.Custom_inst.gain b) (Isa.Custom_inst.gain a))
        cands
    in
    let rec go acc left = function
      | [] -> acc
      | _ when left = 0 -> acc
      | (ci : Isa.Custom_inst.t) :: rest ->
        if Util.Bitset.intersects ci.Isa.Custom_inst.nodes used then
          go acc left rest
        else begin
          Util.Bitset.union_into used ci.Isa.Custom_inst.nodes;
          go (acc +. float_of_int (Isa.Custom_inst.gain ci)) (left - 1) rest
        end
    in
    go 0. opcodes sorted
  in
  (* Two exhaustive references per block: the affordable small budget
     (what a production sweep can pay per block — its max_size 8 is the
     combinatorial ceiling) and the deep default budget (max_size 14,
     the only exhaustive route to the candidates isegen walks to).  The
     gain floor is against the former, the wall-clock ceiling against
     the latter — beating the cheap run on quality while staying within
     2x of the expensive run's cost is the cap-breaking claim. *)
  let row (name, dfg) =
    let (ex_small_cands, saturation), ex_small_s =
      Experiments.Report.timed (fun () ->
          E.connected_full ~budget:E.small_budget dfg)
    in
    let (ex_deep_cands, _), ex_deep_s =
      Experiments.Report.timed (fun () ->
          E.connected_full ~budget:E.default_budget dfg)
    in
    (* coverage scales with the block: seed a walk from (almost) every
       node, the merge pool from the richer pool *)
    let params =
      { Ise.Isegen.default_params with
        Ise.Isegen.restarts = min 256 (Ir.Dfg.node_count dfg);
        merge_pool = 48 }
    in
    let ise_cands, ise_s =
      Experiments.Report.timed (fun () -> Ise.Isegen.generate ~params dfg)
    in
    let ex_gain = selected_gain dfg ex_small_cands in
    let ex_deep_gain = selected_gain dfg ex_deep_cands in
    let ise_gain = selected_gain dfg ise_cands in
    let gain_ratio = ise_gain /. Float.max 1e-9 ex_gain in
    let time_ratio = ise_s /. Float.max 1e-9 ex_deep_s in
    Format.fprintf fmt
      "%-12s %4d nodes  exhaustive %s %6.1f gain in %.3f s (deep %6.1f in \
       %.3f s) | isegen %6.1f gain in %.3f s  (%.2fx gain, %.2fx deep time)@."
      name (Ir.Dfg.node_count dfg)
      (match saturation with
       | Some sat -> "sat:" ^ E.saturation_reason sat
       | None -> "complete")
      ex_gain ex_small_s ex_deep_gain ex_deep_s ise_gain ise_s gain_ratio
      time_ratio;
    (name, dfg, saturation, ex_gain, ex_deep_gain, ise_gain, gain_ratio,
     ex_small_s, ex_deep_s, ise_s, time_ratio)
  in
  let rows = List.map row blocks in
  (* the cap-breaking floor: at least one saturated block where isegen
     banks 1.2x the exhaustive gain *)
  let breaking =
    List.filter
      (fun (_, _, sat, _, _, _, gain_ratio, _, _, _, _) ->
        sat <> None && gain_ratio >= 1.2)
      rows
  in
  if breaking = [] then begin
    Format.eprintf
      "generator bench: no saturated block with isegen gain >= 1.2x \
       exhaustive@.";
    exit 2
  end;
  (* the time ceiling is only physics when the exhaustive pass is long
     enough to be signal; sub-50ms enumerations are recorded, not
     enforced *)
  List.iter
    (fun (name, _, sat, _, _, _, _, _, ex_deep_s, _, time_ratio) ->
      if sat <> None && ex_deep_s >= 0.05 && time_ratio > 2.0 then begin
        Format.eprintf
          "generator bench: isegen %.2fx the deep exhaustive wall-clock on \
           %s, above the 2x ceiling@."
          time_ratio name;
        exit 2
      end)
    rows;
  if
    List.for_all
      (fun (_, _, _, _, _, _, _, _, ex_deep_s, _, _) -> ex_deep_s < 0.05)
      rows
  then
    Format.fprintf fmt
      "[every exhaustive pass under 50 ms: time ratios recorded, 2x ceiling \
       not enforced]@.";
  let num f = Check.Repro.Num f and numi i = Check.Repro.Num (float_of_int i) in
  merge_key_json "BENCH_engine.json" "generator_scaling"
    (Check.Repro.Obj
       [ ( "budget",
           Check.Repro.Obj
             [ ("max_size", numi E.small_budget.E.max_size);
               ("max_explored", numi E.small_budget.E.max_explored);
               ("max_candidates", numi E.small_budget.E.max_candidates) ] );
         ("opcodes", numi opcodes);
         ( "blocks",
           Check.Repro.Arr
             (List.map
                (fun (name, dfg, sat, ex_gain, ex_deep_gain, ise_gain,
                      gain_ratio, ex_small_s, ex_deep_s, ise_s, time_ratio) ->
                  Check.Repro.Obj
                    [ ("name", Check.Repro.Str name);
                      ("nodes", numi (Ir.Dfg.node_count dfg));
                      ( "exhaustive_saturated",
                        Check.Repro.Bool (sat <> None) );
                      ("exhaustive_gain", num ex_gain);
                      ("exhaustive_deep_gain", num ex_deep_gain);
                      ("isegen_gain", num ise_gain);
                      ("gain_ratio", num gain_ratio);
                      ("exhaustive_s", num ex_small_s);
                      ("exhaustive_deep_s", num ex_deep_s);
                      ("isegen_s", num ise_s);
                      ("time_ratio", num time_ratio) ])
                rows) ) ]);
  validate_bench_json ~keys:generator_keys "BENCH_engine.json";
  Format.fprintf fmt "[generator counters merged into BENCH_engine.json]@.";
  Format.pp_print_flush fmt ()

let run_id id =
  if id = "engine" then engine_bench ()
  else if id = "batch" then batch_bench ()
  else if id = "daemon" then daemon_bench ()
  else if id = "generator" then generator_bench ()
  else
    match Experiments.Registry.find id with
    | Some e -> run_one e
    | None ->
      Format.eprintf "unknown experiment id: %s@." id;
      usage ();
      exit 1

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Format.printf "Reproduction harness: instruction-set customization for \
                   real-time embedded systems (DATE 2007)@.";
    (* one pool for the whole paper sweep; the engine/batch benches
       measure scaling, so they build their own pools per width *)
    let all_ok =
      Engine.Parallel.Pool.with_pool ~jobs:(Engine.Parallel.default_jobs ())
        (fun pool -> run_all ~pool ())
    in
    engine_bench ();
    batch_bench ();
    daemon_bench ();
    generator_bench ();
    if not all_ok then exit 1
  | _ :: [ "--list" ] -> usage ()
  | _ :: ids -> List.iter run_id ids
