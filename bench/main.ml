(* Benchmark harness: regenerates every table and figure of the
   evaluation.  With no arguments it runs everything in paper order
   (plus the engine benchmark); pass experiment ids (e.g. `f3.3 t6.1`)
   or `engine` to run a subset, or `--list` to enumerate them. *)

let fmt = Format.std_formatter

let usage () =
  Format.printf "usage: main.exe [--list | id ...]@.ids:@.";
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      Format.printf "  %-8s %s@." e.id e.title)
    Experiments.Registry.all;
  Format.printf "  %-8s %s@." "engine"
    "curve-generation engine: cold/warm cache, 1 vs N domains (BENCH_engine.json)"

let run_one (e : Experiments.Registry.experiment) =
  let result = e.run () in
  Experiments.Report.render fmt result;
  Format.fprintf fmt "[%s completed in %.1fs]@." e.id result.elapsed;
  Format.pp_print_flush fmt ();
  flush stdout

(* The full sweep goes through [run_sweep]: a crashing driver is
   reported in place and the rest of the paper still regenerates. *)
let run_all () =
  let outcomes = Experiments.Registry.run_sweep Experiments.Registry.all in
  let failures =
    List.filter_map
      (fun ((e : Experiments.Registry.experiment), outcome) ->
        (match outcome with
         | Ok result ->
           Experiments.Report.render fmt result;
           Format.fprintf fmt "[%s completed in %.1fs]@." e.id result.elapsed
         | Error msg ->
           Format.fprintf fmt "@.=== %s: %s ===@.[FAILED: %s]@." e.id e.title
             msg);
        Format.pp_print_flush fmt ();
        flush stdout;
        match outcome with Ok _ -> None | Error _ -> Some e.id)
      outcomes
  in
  (match failures with
   | [] -> ()
   | ids ->
     Format.fprintf fmt "@.[%d experiment(s) failed: %s]@." (List.length ids)
       (String.concat ", " ids));
  failures = []

(* Downstream dashboards key on these fields; fail the bench loudly if
   the file we just wrote lost one, rather than letting a rename surface
   as a silent gap in the performance trajectory. *)
let bench_keys =
  [ "kernels"; "jobs"; "cold_sequential_s"; "cold_parallel_s"; "warm_cache_s";
    "parallel_speedup"; "warm_speedup"; "cache_hits"; "cache_misses";
    "curve_latency"; "p50_s"; "p90_s"; "p99_s"; "max_s"; "status";
    "telemetry"; "histograms" ]

let validate_bench_json path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let has key =
    let needle = "\"" ^ key ^ "\"" in
    let n = String.length content and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub content i m = needle || scan (i + 1)) in
    scan 0
  in
  match List.filter (fun k -> not (has k)) bench_keys with
  | [] -> ()
  | missing ->
    Format.eprintf "engine bench: %s is missing expected key%s: %s@." path
      (if List.length missing = 1 then "" else "s")
      (String.concat ", " missing);
    exit 2

(* The engine benchmark: how long the shared task-set curves take to
   generate cold-sequential, cold-parallel and warm-from-disk.  Uses its
   own cache directory so it never pollutes (or is flattered by) the
   user's `_cache/`. *)
let engine_bench () =
  let module Curves = Experiments.Curves in
  let names =
    List.concat_map Curves.taskset_ch3 [ 1; 2; 3; 4; 5; 6 ]
    |> List.sort_uniq compare
  in
  let jobs = max 2 (Engine.Parallel.default_jobs ()) in
  let saved_dir = Engine.Cache.dir () in
  Engine.Cache.set_dir "_cache.bench";
  Fun.protect ~finally:(fun () -> Engine.Cache.set_dir saved_dir) @@ fun () ->
  ignore (Engine.Cache.clear ());
  Engine.Telemetry.reset ();
  Engine.Histogram.reset ();
  Format.fprintf fmt "@.=== engine: curve generation, %d kernels ===@."
    (List.length names);
  Curves.reset ();
  let (), cold_seq =
    Experiments.Report.timed (fun () -> Curves.warm ~jobs:1 names)
  in
  ignore (Engine.Cache.clear ());
  Curves.reset ();
  let (), cold_par =
    Experiments.Report.timed (fun () -> Curves.warm ~jobs names)
  in
  Curves.reset ();
  let (), warm =
    Experiments.Report.timed (fun () -> Curves.warm ~jobs:1 names)
  in
  let hits = Engine.Telemetry.counter "cache.hits"
  and misses = Engine.Telemetry.counter "cache.misses" in
  Format.fprintf fmt "cold, sequential      %8.2f s@." cold_seq;
  Format.fprintf fmt "cold, %2d domains      %8.2f s  (%.2fx)@." jobs cold_par
    (cold_seq /. Float.max 1e-9 cold_par);
  Format.fprintf fmt "warm disk cache       %8.2f s  (%.0fx)@." warm
    (cold_seq /. Float.max 1e-9 warm);
  Format.fprintf fmt "cache hits/misses     %d/%d@." hits misses;
  (* Per-curve latency distribution over both cold passes (the warm pass
     generates nothing, so it contributes no samples). *)
  let latency =
    match Engine.Histogram.stats "curve.generate_s" with
    | None ->
      Format.eprintf "engine bench: no curve.generate_s samples recorded@.";
      exit 2
    | Some (s : Engine.Histogram.stats) ->
      Format.fprintf fmt
        "curve latency         p50 %.4f s, p90 %.4f s, p99 %.4f s, max %.4f s@."
        s.p50 s.p90 s.p99 s.max;
      Printf.sprintf
        "{\"count\": %d, \"p50_s\": %.6f, \"p90_s\": %.6f, \"p99_s\": %.6f, \
         \"max_s\": %.6f}"
        s.count s.p50 s.p90 s.p99 s.max
  in
  (* telemetry was reset at bench start, so any guard exhaustion counted
     here happened during these measurements *)
  let status =
    if Engine.Telemetry.counter "guard.exhausted" > 0 then "partial"
    else "exact"
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"kernels\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"cold_sequential_s\": %.4f,\n\
      \  \"cold_parallel_s\": %.4f,\n\
      \  \"warm_cache_s\": %.4f,\n\
      \  \"parallel_speedup\": %.3f,\n\
      \  \"warm_speedup\": %.3f,\n\
      \  \"cache_hits\": %d,\n\
      \  \"cache_misses\": %d,\n\
      \  \"curve_latency\": %s,\n\
      \  \"status\": \"%s\",\n\
      \  \"telemetry\": %s,\n\
      \  \"histograms\": %s\n\
       }\n"
      (List.length names) jobs cold_seq cold_par warm
      (cold_seq /. Float.max 1e-9 cold_par)
      (cold_seq /. Float.max 1e-9 warm)
      hits misses latency status
      (Engine.Telemetry.to_json ())
      (Engine.Histogram.to_json ())
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc json;
  close_out oc;
  validate_bench_json "BENCH_engine.json";
  Format.fprintf fmt "[engine timings written to BENCH_engine.json]@.";
  Format.pp_print_flush fmt ()

let run_id id =
  if id = "engine" then engine_bench ()
  else
    match Experiments.Registry.find id with
    | Some e -> run_one e
    | None ->
      Format.eprintf "unknown experiment id: %s@." id;
      usage ();
      exit 1

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Format.printf "Reproduction harness: instruction-set customization for \
                   real-time embedded systems (DATE 2007)@.";
    let all_ok = run_all () in
    engine_bench ();
    if not all_ok then exit 1
  | _ :: [ "--list" ] -> usage ()
  | _ :: ids -> List.iter run_id ids
