#!/bin/sh
# Daemon smoke: start `isecustom serve` on a Unix socket with a domain
# pool and a metrics surface, send the golden corpus through
# `batch --connect` twice (cold then memo-warm), assert both passes are
# byte-identical to the sequential reference, assert the daemon metric
# families are scrapeable and /healthz says ok, then SIGTERM the daemon
# and require a graceful drain (drained message, clean exit, socket
# unlinked).  Shared by `make daemon-smoke` and the CI daemon-smoke job.
set -eu

PORT="${PORT:-9465}"
TMP="$(mktemp -d)"
SOCK="$TMP/solver.sock"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

dune build bin/isecustom.exe
BIN="_build/default/bin/isecustom.exe"

# ----- sequential reference --------------------------------------------
ISECUSTOM_CACHE_DIR="$TMP/cache-seq" \
  "$BIN" batch --no-cache --sequential \
  --out "$TMP/seq.jsonl" test/golden/cases.jsonl

# ----- resident daemon --------------------------------------------------
ISECUSTOM_CACHE_DIR="$TMP/cache" \
  "$BIN" serve --unix "$SOCK" --jobs 2 \
  --metrics-port "$PORT" 2>"$TMP/serve.log" &
SERVE_PID=$!

ok=0
i=0
while [ "$i" -lt 50 ]; do
  if [ -S "$SOCK" ] && curl -fsS "http://127.0.0.1:$PORT/healthz" \
      >"$TMP/healthz" 2>/dev/null; then
    ok=1
    break
  fi
  i=$((i + 1))
  sleep 0.2
done
if [ "$ok" != 1 ]; then
  echo "daemon-smoke: daemon never came up" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -qx ok "$TMP/healthz"

# ----- byte-identity: cold pass, then memo-warm pass -------------------
ISECUSTOM_CACHE_DIR="$TMP/cache-client" \
  "$BIN" batch --connect "$SOCK" \
  --out "$TMP/daemon-cold.jsonl" test/golden/cases.jsonl
ISECUSTOM_CACHE_DIR="$TMP/cache-client" \
  "$BIN" batch --connect "$SOCK" \
  --out "$TMP/daemon-warm.jsonl" test/golden/cases.jsonl

diff "$TMP/seq.jsonl" "$TMP/daemon-cold.jsonl"
diff "$TMP/seq.jsonl" "$TMP/daemon-warm.jsonl"
diff test/golden/expected.jsonl "$TMP/daemon-cold.jsonl"
echo "daemon-smoke: warm daemon == cold daemon == sequential == golden"

# ----- daemon metric families ------------------------------------------
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$TMP/metrics"
for pat in \
  '^# TYPE daemon_requests_total counter$' \
  '^daemon_requests_total{op="[a-z_]*",outcome="ok"} [1-9]' \
  '^daemon_connections_total [1-9]' \
  '^daemon_inflight 0$' \
  '^daemon_conn_active 0$' \
  '^daemon_queue_wait_s_seconds_count [1-9]'
do
  if ! grep -q "$pat" "$TMP/metrics"; then
    echo "daemon-smoke: missing '$pat' in /metrics" >&2
    grep '^daemon' "$TMP/metrics" >&2 || true
    exit 1
  fi
done
echo "daemon-smoke: daemon metric families OK"

# ----- graceful drain on SIGTERM ---------------------------------------
kill -TERM "$SERVE_PID"
status=0
wait "$SERVE_PID" || status=$?
SERVE_PID=""
if [ "$status" != 0 ]; then
  echo "daemon-smoke: serve exited $status after SIGTERM" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
if ! grep -q 'drained' "$TMP/serve.log"; then
  echo "daemon-smoke: no drain message in serve log" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
if [ -e "$SOCK" ]; then
  echo "daemon-smoke: socket not unlinked after drain" >&2
  exit 1
fi
echo "daemon-smoke: graceful drain OK ($(grep 'drained' "$TMP/serve.log"))"
