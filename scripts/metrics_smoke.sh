#!/bin/sh
# Metrics smoke: scrape /metrics and /healthz from `isecustom metrics
# serve` while it loops a pooled curve/batch workload, assert the
# exposition is well-formed with labeled families from every
# instrumented subsystem, then run a faulted curve and assert the
# crash flight recorder dumped JSONL containing the injected-fault
# and guard events.  Shared by `make metrics-smoke` and the CI
# metrics-smoke job.
set -eu

PORT="${PORT:-9464}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

dune build bin/isecustom.exe

# ----- live scrape over a pooled workload ------------------------------
ISECUSTOM_CACHE_DIR="$TMP/cache" \
  dune exec bin/isecustom.exe -- metrics serve --port "$PORT" --jobs 2 \
  crc32 fft >/dev/null 2>"$TMP/serve.log" &
SERVE_PID=$!

ok=0
i=0
while [ "$i" -lt 50 ]; do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >"$TMP/healthz" 2>/dev/null; then
    ok=1
    break
  fi
  i=$((i + 1))
  sleep 0.2
done
if [ "$ok" != 1 ]; then
  echo "metrics-smoke: /healthz never came up" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -qx ok "$TMP/healthz"

# let the pooled workload put samples behind every family
sleep 2
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$TMP/metrics"

# typed, labeled families from batch, cache, memo, pool and the guards
for pat in \
  '^# TYPE batch_requests_total counter$' \
  '^# TYPE guard_exhausted_total counter$' \
  '^# TYPE fault_injected_total counter$' \
  '^batch_requests_total{op="' \
  '^cache_hits_total{namespace="' \
  '^memo_hits_total{namespace="' \
  '^pool_items_total{mode="local"} [1-9]' \
  '^pool_items_total{mode="stolen"} ' \
  '^pool_jobs 2$' \
  '^curve_generate_s_count [1-9]' \
  '^curve_generate_s_bucket{le="+Inf"} '
do
  if ! grep -q "$pat" "$TMP/metrics"; then
    echo "metrics-smoke: missing '$pat' in /metrics" >&2
    head -40 "$TMP/metrics" >&2
    exit 1
  fi
done

# every sample line belongs to a family announced by a TYPE line
if ! grep -cq '^# TYPE ' "$TMP/metrics"; then
  echo "metrics-smoke: no TYPE lines in /metrics" >&2
  exit 1
fi

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "metrics-smoke: /metrics and /healthz OK ($(grep -c '^# TYPE ' "$TMP/metrics") families)"

# ----- crash flight recorder on a faulted run --------------------------
ISECUSTOM_FLIGHT_DIR="$TMP/flight" ISECUSTOM_CACHE_DIR="$TMP/cache2" \
  dune exec bin/isecustom.exe -- curve aes --max-nodes 20 \
  --fault-spec "seed=3,cache.write=0.5" >/dev/null 2>&1 || true

FLIGHT="$(ls "$TMP"/flight/flight-*.jsonl 2>/dev/null | head -1 || true)"
if [ -z "$FLIGHT" ] || [ ! -s "$FLIGHT" ]; then
  echo "metrics-smoke: faulted run left no flight recording" >&2
  exit 1
fi
grep -q '"kind": "fault.injected"' "$FLIGHT"
grep -q '"kind": "guard.exhausted"' "$FLIGHT"
echo "metrics-smoke: flight recorder OK ($(wc -l <"$FLIGHT") events)"
