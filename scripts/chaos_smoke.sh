#!/bin/sh
# Chaos smoke: run `isecustom serve` under a randomized (seeded,
# correctness-preserving) ISECUSTOM_FAULT_SPEC and throw hostile
# conditions at it all at once:
#   - socket abuse via test/chaos_client.exe: garbage lines, oversized
#     lines, slow-loris trickles, mid-request aborts;
#   - a kill/reconnect storm: `batch --connect` clients SIGKILLed
#     mid-run and replaced;
#   - a sibling `batch` writer sharing the daemon's cache directory,
#     SIGKILLed mid-cache-write;
#   - a pre-staged stale cache tmp file from a dead writer pid.
# Then assert the survival contract: the staged orphan is swept, the
# daemon's fd table returns to its baseline (no leaks), /healthz still
# says ok, a clean client pass is byte-identical to the golden corpus,
# and SIGTERM still drains gracefully.  Seeded via CHAOS_SEED (default
# 42); bounded runtime (~30s).  Shared by `make chaos` and the CI
# chaos-smoke job.
set -eu

CHAOS_SEED="${CHAOS_SEED:-42}"
PORT="${PORT:-9467}"
TMP="$(mktemp -d)"
SOCK="$TMP/solver.sock"
CACHE="$TMP/cache"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ]; then kill -9 "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

dune build bin/isecustom.exe test/chaos_client.exe
BIN="_build/default/bin/isecustom.exe"
CHAOS="_build/default/test/chaos_client.exe"

# ----- sequential reference --------------------------------------------
ISECUSTOM_CACHE_DIR="$TMP/cache-seq" \
  "$BIN" batch --no-cache --sequential \
  --out "$TMP/seq.jsonl" test/golden/cases.jsonl

# ----- stale tmp orphan from a dead writer -----------------------------
# Staged before the daemon starts: the watchdog's first sweep must reap
# it (the writer pid is dead, the mtime is ancient).
mkdir -p "$CACHE"
sh -c 'exit 0' &
DEAD_PID=$!
wait "$DEAD_PID" || true
ORPHAN="$CACHE/orphan.tmp.$DEAD_PID"
: > "$ORPHAN"
touch -d '2 hours ago' "$ORPHAN" 2>/dev/null || touch -t 202001010000 "$ORPHAN"

# ----- daemon under fault injection ------------------------------------
# daemon.stall only delays request execution (it never changes a
# result), so the byte-identity bar below still holds while the
# watchdog sees artificially slow requests.
ISECUSTOM_CACHE_DIR="$CACHE" \
  ISECUSTOM_FAULT_SPEC="seed=$CHAOS_SEED,daemon.stall=0.05" \
  "$BIN" serve --unix "$SOCK" --jobs 2 \
  --max-request-bytes 65536 --idle-timeout 5 --line-timeout 1 \
  --metrics-port "$PORT" 2>"$TMP/serve.log" &
SERVE_PID=$!

ok=0
i=0
while [ "$i" -lt 50 ]; do
  if [ -S "$SOCK" ] && curl -fsS "http://127.0.0.1:$PORT/healthz" \
      >"$TMP/healthz" 2>/dev/null; then
    ok=1
    break
  fi
  i=$((i + 1))
  sleep 0.2
done
if [ "$ok" != 1 ]; then
  echo "chaos-smoke: daemon never came up" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -qx ok "$TMP/healthz"

FD_BASELINE=$(ls "/proc/$SERVE_PID/fd" 2>/dev/null | wc -l || echo 0)

# ----- hostile clients + kill storm, all at once -----------------------
"$CHAOS" "$SOCK" garbage "$CHAOS_SEED" 10 &
C_GARBAGE=$!
"$CHAOS" "$SOCK" oversized "$((CHAOS_SEED + 1))" 5 &
C_OVERSIZED=$!
"$CHAOS" "$SOCK" slowloris "$((CHAOS_SEED + 2))" 2 &
C_SLOWLORIS=$!
"$CHAOS" "$SOCK" abort "$((CHAOS_SEED + 3))" 10 &
C_ABORT=$!

# kill/reconnect storm: clients SIGKILLed mid-corpus, deterministically
# jittered from the seed
DELAYS=$(awk -v seed="$CHAOS_SEED" \
  'BEGIN { srand(seed); for (i = 0; i < 6; i++) printf "%.2f ", 0.02 + rand() * 0.25 }')
for delay in $DELAYS; do
  ISECUSTOM_CACHE_DIR="$TMP/cache-client" \
    "$BIN" batch --connect "$SOCK" --out /dev/null \
    test/golden/cases.jsonl 2>/dev/null &
  VICTIM=$!
  sleep "$delay"
  kill -9 "$VICTIM" 2>/dev/null || true
  wait "$VICTIM" 2>/dev/null || true
done

# sibling writer sharing the daemon's cache directory, SIGKILLed
# mid-cache-write
ISECUSTOM_CACHE_DIR="$CACHE" \
  "$BIN" batch --jobs 2 --out /dev/null test/golden/cases.jsonl 2>/dev/null &
WRITER=$!
sleep 0.1
kill -9 "$WRITER" 2>/dev/null || true
wait "$WRITER" 2>/dev/null || true

for pid_name in "$C_GARBAGE:garbage" "$C_OVERSIZED:oversized" \
  "$C_SLOWLORIS:slowloris" "$C_ABORT:abort"; do
  pid=${pid_name%%:*}
  name=${pid_name#*:}
  if ! wait "$pid"; then
    echo "chaos-smoke: $name client detected a wedge" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
done
echo "chaos-smoke: hostile clients all reaped, none wedged"

# ----- orphan swept by the watchdog ------------------------------------
i=0
while [ -e "$ORPHAN" ] && [ "$i" -lt 100 ]; do
  i=$((i + 1))
  sleep 0.1
done
if [ -e "$ORPHAN" ]; then
  echo "chaos-smoke: stale tmp orphan never swept" >&2
  exit 1
fi
echo "chaos-smoke: dead writer's tmp orphan swept"

# ----- no fd leak -------------------------------------------------------
i=0
while [ "$i" -lt 150 ]; do
  FD_NOW=$(ls "/proc/$SERVE_PID/fd" 2>/dev/null | wc -l || echo 0)
  if [ "$FD_NOW" -le $((FD_BASELINE + 4)) ]; then break; fi
  i=$((i + 1))
  sleep 0.1
done
if [ "$FD_NOW" -gt $((FD_BASELINE + 4)) ]; then
  echo "chaos-smoke: fd leak: baseline $FD_BASELINE, now $FD_NOW" >&2
  exit 1
fi
echo "chaos-smoke: fd table back to baseline ($FD_BASELINE -> $FD_NOW)"

# ----- still healthy, still byte-identical -----------------------------
curl -fsS "http://127.0.0.1:$PORT/healthz" | grep -qx ok
ISECUSTOM_CACHE_DIR="$TMP/cache-client-final" \
  "$BIN" batch --connect "$SOCK" \
  --out "$TMP/after-chaos.jsonl" test/golden/cases.jsonl
diff "$TMP/seq.jsonl" "$TMP/after-chaos.jsonl"
diff test/golden/expected.jsonl "$TMP/after-chaos.jsonl"
echo "chaos-smoke: surviving responses byte-identical to the golden corpus"

# ----- reap accounting surfaced ----------------------------------------
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$TMP/metrics"
for pat in \
  '^daemon_requests_total{op="unknown",outcome="oversized"} [1-9]' \
  '^daemon_conn_reaped_total{reason="oversized"} [1-9]' \
  '^daemon_conn_reaped_total{reason="line_timeout"} [1-9]'
do
  if ! grep -q "$pat" "$TMP/metrics"; then
    echo "chaos-smoke: missing '$pat' in /metrics" >&2
    grep '^daemon' "$TMP/metrics" >&2 || true
    exit 1
  fi
done
echo "chaos-smoke: reap metrics accounted"

# ----- graceful drain still works --------------------------------------
kill -TERM "$SERVE_PID"
status=0
wait "$SERVE_PID" || status=$?
SERVE_PID=""
if [ "$status" != 0 ]; then
  echo "chaos-smoke: serve exited $status after SIGTERM" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi
grep -q 'drained' "$TMP/serve.log"
if [ -e "$SOCK" ]; then
  echo "chaos-smoke: socket not unlinked after drain" >&2
  exit 1
fi
echo "chaos-smoke: graceful drain after chaos OK"
