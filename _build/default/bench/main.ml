(* Benchmark harness: regenerates every table and figure of the
   evaluation.  With no arguments it runs everything in paper order;
   pass experiment ids (e.g. `f3.3 t6.1`) to run a subset, or `--list`
   to enumerate them. *)

let usage () =
  Format.printf "usage: main.exe [--list | id ...]@.ids:@.";
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      Format.printf "  %-8s %s@." e.id e.title)
    Experiments.Registry.all

let run_one (e : Experiments.Registry.experiment) =
  let fmt = Format.std_formatter in
  let started = Unix.gettimeofday () in
  e.run fmt;
  Format.fprintf fmt "[%s completed in %.1fs]@." e.id
    (Unix.gettimeofday () -. started);
  Format.pp_print_flush fmt ();
  flush stdout

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Format.printf "Reproduction harness: instruction-set customization for \
                   real-time embedded systems (DATE 2007)@.";
    List.iter run_one Experiments.Registry.all
  | _ :: [ "--list" ] -> usage ()
  | _ :: ids ->
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> run_one e
        | None ->
          Format.eprintf "unknown experiment id: %s@." id;
          usage ();
          exit 1)
      ids
