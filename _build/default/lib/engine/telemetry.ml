(* Counters and timers are shared by every domain of the parallel
   engine, so all access goes through one mutex; the hot paths touch
   them once per algorithm invocation, not per inner-loop step, which
   keeps contention negligible. *)

let lock = Mutex.create ()
let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let timers_tbl : (string, float) Hashtbl.t = Hashtbl.create 32

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let add name n =
  if n <> 0 then
    protect (fun () ->
        let v = Option.value ~default:0 (Hashtbl.find_opt counters_tbl name) in
        Hashtbl.replace counters_tbl name (v + n))

let incr name = add name 1

let counter name =
  protect (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt counters_tbl name))

let add_time name dt =
  protect (fun () ->
      let v = Option.value ~default:0. (Hashtbl.find_opt timers_tbl name) in
      Hashtbl.replace timers_tbl name (v +. dt))

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f

let timer name =
  protect (fun () ->
      Option.value ~default:0. (Hashtbl.find_opt timers_tbl name))

let sorted tbl =
  protect (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted counters_tbl
let timers () = sorted timers_tbl

let reset () =
  protect (fun () ->
      Hashtbl.reset counters_tbl;
      Hashtbl.reset timers_tbl)

let pp_table fmt () =
  let cs = counters () and ts = timers () in
  if cs = [] && ts = [] then Format.fprintf fmt "no telemetry recorded@."
  else begin
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %14d@." k v) cs;
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %12.3f s@." k v) ts
  end

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let field (k, v) = Printf.sprintf "\"%s\": %s" (json_escape k) v in
  let cs = List.map (fun (k, v) -> field (k, string_of_int v)) (counters ()) in
  let ts = List.map (fun (k, v) -> field (k, Printf.sprintf "%.6f" v)) (timers ()) in
  Printf.sprintf "{\"counters\": {%s}, \"timers\": {%s}}"
    (String.concat ", " cs) (String.concat ", " ts)
