lib/engine/cache.ml: Array Digest Filename Fun List Marshal Option Printf String Sys Telemetry Unix
