lib/engine/cache.mli:
