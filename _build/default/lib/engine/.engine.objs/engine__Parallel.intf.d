lib/engine/parallel.mli:
