lib/engine/parallel.ml: Array Atomic Domain List
