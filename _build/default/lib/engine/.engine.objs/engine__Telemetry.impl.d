lib/engine/telemetry.ml: Buffer Char Format Fun Hashtbl List Mutex Option Printf String Unix
