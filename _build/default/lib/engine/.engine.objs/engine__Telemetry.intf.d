lib/engine/telemetry.mli: Format
