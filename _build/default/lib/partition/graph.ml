type t = {
  weights : int array;
  adjacency : (int * int) list array; (* (neighbor, edge weight) *)
}

let make ~vertex_weights ~edges =
  let n = Array.length vertex_weights in
  let table = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Graph.make: bad edge";
      if u <> v then begin
        let key = (min u v, max u v) in
        Hashtbl.replace table key
          (w + Option.value ~default:0 (Hashtbl.find_opt table key))
      end)
    edges;
  let adjacency = Array.make n [] in
  Hashtbl.iter
    (fun (u, v) w ->
      adjacency.(u) <- (v, w) :: adjacency.(u);
      adjacency.(v) <- (u, w) :: adjacency.(v))
    table;
  { weights = Array.copy vertex_weights; adjacency }

let vertex_count g = Array.length g.weights
let vertex_weight g v = g.weights.(v)
let total_weight g = Array.fold_left ( + ) 0 g.weights
let neighbors g v = g.adjacency.(v)

let edge_weight g u v =
  match List.assoc_opt v g.adjacency.(u) with Some w -> w | None -> 0

let edge_cut g assignment =
  let cut = ref 0 in
  Array.iteri
    (fun u adj ->
      List.iter
        (fun (v, w) -> if u < v && assignment.(u) <> assignment.(v) then cut := !cut + w)
        adj)
    g.adjacency;
  !cut

let coarsen g ~matching =
  let n = vertex_count g in
  let coarse_of = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if coarse_of.(v) = -1 then begin
      let partner = matching.(v) in
      coarse_of.(v) <- !next;
      if partner <> v then coarse_of.(partner) <- !next;
      incr next
    end
  done;
  let weights = Array.make !next 0 in
  for v = 0 to n - 1 do
    weights.(coarse_of.(v)) <- weights.(coarse_of.(v)) + g.weights.(v)
  done;
  let edges = ref [] in
  Array.iteri
    (fun u adj ->
      List.iter
        (fun (v, w) ->
          if u < v && coarse_of.(u) <> coarse_of.(v) then
            edges := (coarse_of.(u), coarse_of.(v), w) :: !edges)
        adj)
    g.adjacency;
  (make ~vertex_weights:weights ~edges:!edges, coarse_of)
