lib/partition/graph.ml: Array Hashtbl List Option
