lib/partition/kway.mli: Graph
