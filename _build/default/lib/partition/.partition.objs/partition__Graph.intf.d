lib/partition/graph.mli:
