lib/partition/kway.ml: Array Float Graph List Util
