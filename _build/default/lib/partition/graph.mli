(** Undirected weighted graphs for the k-way partitioning algorithms.

    Vertices are dense integers; parallel edges are merged by summing
    weights; self-loops are ignored. *)

type t

val make : vertex_weights:int array -> edges:(int * int * int) list -> t
(** [(u, v, w)] edge list. *)

val vertex_count : t -> int
val vertex_weight : t -> int -> int
val total_weight : t -> int
val neighbors : t -> int -> (int * int) list
(** [(neighbor, edge weight)] pairs. *)

val edge_weight : t -> int -> int -> int
(** 0 when not adjacent. *)

val edge_cut : t -> int array -> int
(** Sum of weights of edges whose endpoints lie in different parts of
    the assignment. *)

val coarsen : t -> matching:int array -> t * int array
(** [coarsen g ~matching] — [matching.(v)] is the partner of [v] (or [v]
    itself).  Returns the coarser graph and the map from fine to coarse
    vertex indices. *)
