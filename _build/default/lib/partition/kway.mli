(** Multilevel k-way graph partitioning (Karypis–Kumar style, thesis
    §6.3.3).

    Three phases: heavy-edge-matching coarsening, greedy initial
    partitioning of the coarsest graph, and uncoarsening with
    Kernighan–Lin-style boundary refinement at every level.  The goal is
    k parts of roughly equal vertex weight with minimum edge cut. *)

type result = {
  assignment : int array;  (** vertex → part in [0, k) *)
  cut : int;  (** total weight of cut edges *)
}

val partition : ?seed:int -> ?imbalance:float -> k:int -> Graph.t -> result
(** [partition ~k g] — [imbalance] (default 0.25) bounds each part's
    weight by (1+imbalance)·total/k where achievable.  [k] must be ≥ 1
    and ≤ vertex count; every part is non-empty. *)

val is_balanced : ?imbalance:float -> k:int -> Graph.t -> int array -> bool
(** The balance predicate used internally (exposed for tests). *)

val refine : ?imbalance:float -> k:int -> Graph.t -> int array -> int
(** One greedy boundary-refinement pass in place; returns the cut
    improvement (≥ 0). *)
