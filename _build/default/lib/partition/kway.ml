type result = { assignment : int array; cut : int }

let part_weights g assignment k =
  let w = Array.make k 0 in
  Array.iteri (fun v p -> w.(p) <- w.(p) + Graph.vertex_weight g v) assignment;
  w

let weight_limit ?(imbalance = 0.25) ~k g =
  let l = (1. +. imbalance) *. float_of_int (Graph.total_weight g) /. float_of_int k in
  let max_single =
    Array.fold_left max 0 (Array.init (Graph.vertex_count g) (Graph.vertex_weight g))
  in
  (* A part can never be required to be lighter than its heaviest vertex. *)
  Float.max l (float_of_int max_single)

let is_balanced ?imbalance ~k g assignment =
  let limit = weight_limit ?imbalance ~k g in
  Array.for_all
    (fun w -> float_of_int w <= limit +. 1e-9)
    (part_weights g assignment k)

(* Gain of moving v to part p: cut reduction. *)
let move_gain g assignment v p =
  let gain = ref 0 in
  List.iter
    (fun (u, w) ->
      if assignment.(u) = assignment.(v) then gain := !gain - w
      else if assignment.(u) = p then gain := !gain + w)
    (Graph.neighbors g v);
  !gain

let refine ?imbalance ~k g assignment =
  let limit = weight_limit ?imbalance ~k g in
  let weights = part_weights g assignment k in
  let counts = Array.make k 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) assignment;
  let improvement = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for v = 0 to Graph.vertex_count g - 1 do
      let from = assignment.(v) in
      if counts.(from) > 1 then begin
        let best = ref None in
        List.iter
          (fun (u, _) ->
            let p = assignment.(u) in
            if p <> from then begin
              let gain = move_gain g assignment v p in
              let new_weight = weights.(p) + Graph.vertex_weight g v in
              let balanced = float_of_int new_weight <= limit +. 1e-9 in
              let improves_balance = new_weight < weights.(from) in
              if gain > 0 && balanced then begin
                match !best with
                | Some (bg, _) when bg >= gain -> ()
                | Some _ | None -> best := Some (gain, p)
              end
              else if gain = 0 && balanced && improves_balance then
                match !best with Some _ -> () | None -> best := Some (0, p)
            end)
          (Graph.neighbors g v);
        match !best with
        | Some (gain, p) ->
          weights.(from) <- weights.(from) - Graph.vertex_weight g v;
          weights.(p) <- weights.(p) + Graph.vertex_weight g v;
          counts.(from) <- counts.(from) - 1;
          counts.(p) <- counts.(p) + 1;
          assignment.(v) <- p;
          improvement := !improvement + gain;
          if gain > 0 then progress := true
        | None -> ()
      end
    done
  done;
  !improvement

(* Heavy-edge matching in a deterministic shuffled order. *)
let heavy_edge_matching prng g =
  let n = Graph.vertex_count g in
  let order = Array.init n (fun i -> i) in
  Util.Prng.shuffle prng order;
  let matching = Array.init n (fun i -> i) in
  let matched = Array.make n false in
  Array.iter
    (fun v ->
      if not matched.(v) then begin
        let best = ref None in
        List.iter
          (fun (u, w) ->
            if not matched.(u) then
              match !best with
              | Some (bw, _) when bw >= w -> ()
              | Some _ | None -> best := Some (w, u))
          (Graph.neighbors g v);
        match !best with
        | Some (_, u) ->
          matched.(v) <- true;
          matched.(u) <- true;
          matching.(v) <- u;
          matching.(u) <- v
        | None -> matched.(v) <- true
      end)
    order;
  matching

(* Initial partitioning of the coarsest graph: longest-processing-time
   placement by decreasing vertex weight, then seed any empty parts. *)
let initial_partition prng g k =
  let n = Graph.vertex_count g in
  let order = Array.init n (fun i -> i) in
  Util.Prng.shuffle prng order;
  Array.sort
    (fun a b -> compare (Graph.vertex_weight g b) (Graph.vertex_weight g a))
    order;
  let assignment = Array.make n 0 in
  let weights = Array.make k 0 in
  Array.iter
    (fun v ->
      let lightest = ref 0 in
      for p = 1 to k - 1 do
        if weights.(p) < weights.(!lightest) then lightest := p
      done;
      assignment.(v) <- !lightest;
      weights.(!lightest) <- weights.(!lightest) + Graph.vertex_weight g v)
    order;
  let counts = Array.make k 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) assignment;
  for p = 0 to k - 1 do
    if counts.(p) = 0 then begin
      let donor = ref 0 in
      for q = 1 to k - 1 do
        if counts.(q) > counts.(!donor) then donor := q
      done;
      let v = ref (-1) in
      Array.iteri (fun i q -> if !v = -1 && q = !donor && counts.(!donor) > 1 then v := i) assignment;
      if !v >= 0 then begin
        assignment.(!v) <- p;
        counts.(!donor) <- counts.(!donor) - 1;
        counts.(p) <- counts.(p) + 1
      end
    end
  done;
  assignment

let partition ?(seed = 1) ?imbalance ~k g =
  let n = Graph.vertex_count g in
  if k < 1 then invalid_arg "Kway.partition: k must be >= 1";
  if k > n then invalid_arg "Kway.partition: k exceeds vertex count";
  if k = 1 then { assignment = Array.make n 0; cut = 0 }
  else begin
    let prng = Util.Prng.create seed in
    (* Coarsening, keeping every intermediate graph for projection. *)
    let rec coarsen_all g levels =
      if Graph.vertex_count g <= max (4 * k) 20 then (g, levels)
      else begin
        let matching = heavy_edge_matching prng g in
        let coarser, coarse_of = Graph.coarsen g ~matching in
        if Graph.vertex_count coarser = Graph.vertex_count g then (g, levels)
        else coarsen_all coarser ((g, coarse_of) :: levels)
      end
    in
    let coarsest, levels = coarsen_all g [] in
    let assignment = initial_partition prng coarsest k in
    ignore (refine ?imbalance ~k coarsest assignment);
    (* Uncoarsening: project each coarse assignment onto the finer graph
       and refine there, where more moves are available. *)
    let final =
      List.fold_left
        (fun coarse_assignment (fine_graph, coarse_of) ->
          let fine_assignment =
            Array.init (Graph.vertex_count fine_graph) (fun v ->
                coarse_assignment.(coarse_of.(v)))
          in
          ignore (refine ?imbalance ~k fine_graph fine_assignment);
          fine_assignment)
        assignment levels
    in
    { assignment = final; cut = Graph.edge_cut g final }
  end
