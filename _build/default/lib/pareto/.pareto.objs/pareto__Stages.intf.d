lib/pareto/stages.mli: Ir Ise Mo_select Util
