lib/pareto/mo_select.ml: Array Float List Util
