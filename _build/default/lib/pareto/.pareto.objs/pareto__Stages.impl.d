lib/pareto/stages.ml: Array Isa Ise List Mo_select Util
