lib/pareto/mo_select.mli: Util
