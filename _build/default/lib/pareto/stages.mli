(** The two stages of Chapter 4's approximation scheme (Figure 4.3).

    Stage 1 (intra-task) turns a task's custom-instruction candidate
    library into its workload–area Pareto curve; stage 2 (inter-task)
    combines per-task curves into the task set's utilization–area Pareto
    curve.  Each stage runs either exactly (pseudo-polynomial DP) or
    ε-approximately (the FPTAS), and the two ε parameters are
    independent, as in the thesis. *)

module Intra : sig
  val entities : Ise.Select.candidate list -> Mo_select.entity list
  (** One entity per candidate: choose it (gain × frequency cycles saved,
      its area) or not.  The candidate set is first reduced to a maximal
      pairwise conflict-free subset (best gain/area first) so that every
      subset is a realizable implementation, as the Chapter 4 independence
      assumption requires. *)

  val exact :
    workload:int -> Ise.Select.candidate list -> Util.Pareto_front.point list
  (** Exact workload–area curve; [workload] is the task's software
      execution time in cycles. *)

  val approx :
    eps:float ->
    workload:int ->
    Ise.Select.candidate list ->
    Util.Pareto_front.point list

  val of_task :
    ?eps:float -> Ir.Cfg.t -> int * Util.Pareto_front.point list
  (** Convenience: profile a kernel, enumerate candidates, and return
      (workload, curve) — exact when [eps] is omitted. *)
end

module Inter : sig
  type task_curve = {
    period : int;
    workload : int;  (** software execution time *)
    front : Util.Pareto_front.point list;  (** workload–area curve *)
  }

  val entities : task_curve list -> Mo_select.entity list
  (** One entity per task; options are its curve points, with delta
      the utilization reduction [(workload − w)/period]. *)

  val base_utilization : task_curve list -> float

  val exact : task_curve list -> Util.Pareto_front.point list
  (** Exact utilization–area curve for the task set. *)

  val approx : eps:float -> task_curve list -> Util.Pareto_front.point list
end
