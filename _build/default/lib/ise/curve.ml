let profile_cycles profile =
  Util.Numeric.sum_byf
    (fun (b, freq) -> freq *. float_of_int (Ir.Cfg.block_cycles b))
    profile

let base_cycles cfg =
  int_of_float (Float.round (profile_cycles (Ir.Cfg.profile cfg)))

let candidates ?constraints ?budget ?(hot_threshold = 0.01) cfg =
  let profile = Ir.Cfg.profile cfg in
  let total = profile_cycles profile in
  let hot =
    List.filteri (fun _ (b, freq) ->
        freq *. float_of_int (Ir.Cfg.block_cycles b) >= hot_threshold *. total)
      profile
  in
  List.concat
    (List.mapi
       (fun block (b, freq) ->
         Select.candidates_of_block ?constraints ?budget ~block ~freq
           b.Ir.Cfg.body)
       hot)

let generate ?constraints ?budget ?hot_threshold ?(sweep_points = 24) cfg =
  let cands = candidates ?constraints ?budget ?hot_threshold cfg in
  let base = base_cycles cfg in
  let select area_budget =
    if List.length cands <= 22 then Select.branch_and_bound ~budget:area_budget cands
    else Select.greedy ~budget:area_budget cands
  in
  let unconstrained = select max_int in
  let max_area = Select.area_of unconstrained in
  let points = ref [] in
  for i = 1 to sweep_points do
    let area_budget = max_area * i / sweep_points in
    let sel = select area_budget in
    let cycles = base - int_of_float (Float.round (Select.gain_of sel)) in
    points := { Isa.Config.area = Select.area_of sel; cycles = max 1 cycles } :: !points
  done;
  Isa.Config.of_points ~base_cycles:base !points
