(** Configuration-curve generation — the XPRES-compiler substitute.

    Runs the full identify-then-select pipeline over a task's hot basic
    blocks at a sweep of area budgets and Pareto-filters the resulting
    (area, cycles) design points into the task's configuration curve
    (the staircase of Figure 3.1).  Chapter 3's selection algorithms
    consume these curves exactly as the thesis consumed XPRES output. *)

val candidates :
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:Enumerate.budget ->
  ?hot_threshold:float ->
  Ir.Cfg.t ->
  Select.candidate list
(** Candidate custom instructions of all hot basic blocks (blocks
    contributing at least [hot_threshold], default 1 %, of the task's
    profiled cycles), with profiled frequencies attached. *)

val base_cycles : Ir.Cfg.t -> int
(** Profiled software execution time of the task, in cycles. *)

val generate :
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:Enumerate.budget ->
  ?hot_threshold:float ->
  ?sweep_points:int ->
  Ir.Cfg.t ->
  Isa.Config.t
(** The task's configuration curve ([sweep_points] area budgets, default
    24, each solved with branch-and-bound when small enough and the
    greedy selector otherwise). *)
