lib/ise/codegen.mli: Format Ir Isa
