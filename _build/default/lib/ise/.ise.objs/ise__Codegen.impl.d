lib/ise/codegen.ml: Array Format Ir Isa List Queue Util
