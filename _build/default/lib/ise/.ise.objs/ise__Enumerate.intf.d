lib/ise/enumerate.mli: Ir Isa Util
