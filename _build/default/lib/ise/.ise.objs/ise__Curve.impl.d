lib/ise/curve.ml: Engine Enumerate Float Ir Isa List Printf Select Util
