lib/ise/curve.ml: Float Ir Isa List Select Util
