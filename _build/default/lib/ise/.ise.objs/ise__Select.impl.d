lib/ise/select.ml: Array Enumerate Isa List Util
