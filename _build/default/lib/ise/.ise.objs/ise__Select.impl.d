lib/ise/select.ml: Array Engine Enumerate Isa List Util
