lib/ise/curve.mli: Enumerate Ir Isa Select
