lib/ise/enumerate.ml: Hashtbl Ir Isa List Queue String Util
