lib/ise/enumerate.ml: Engine Hashtbl Ir Isa List Queue String Util
