lib/ise/select.mli: Enumerate Ir Isa
