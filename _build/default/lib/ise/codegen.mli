(** Code generation: rewrite a block to use selected custom instructions
    (the final step of the thesis's compilation flow, §2.2).

    The selected custom instructions (pairwise disjoint, legal) are
    contracted into single {e fused} operations; the block becomes a
    schedule of primitives and fused operations in dependence order.
    Because every custom instruction is convex, the contracted graph is
    acyclic and such a schedule always exists.

    {!execute} runs a schedule on concrete values, which the test suite
    uses for differential verification: a rewritten block computes
    exactly the same values as the original, in exactly
    [software cycles − Σ gains] cycles. *)

type macro =
  | Primitive of Ir.Dfg.node
  | Fused of Isa.Custom_inst.t

type schedule = macro list

val schedule : Ir.Dfg.t -> Isa.Custom_inst.t list -> schedule
(** Raises [Invalid_argument] if the instructions overlap, contain nodes
    outside the block, or depend on each other mutually (each
    instruction is convex on its own, but two of them can still form a
    cycle once contracted — the "unschedulable code" hazard of thesis
    §2.3.2; see {!sanitize}). *)

val schedulable_together : Ir.Dfg.t -> Isa.Custom_inst.t list -> bool
(** The contracted dependence graph is acyclic (instructions must be
    disjoint). *)

val sanitize : Ir.Dfg.t -> Isa.Custom_inst.t list -> Isa.Custom_inst.t list
(** Drop lowest-gain instructions until the selection is jointly
    schedulable.  Identity on already-schedulable selections. *)

val cycles : Ir.Dfg.t -> schedule -> int
(** Execution time of the rewritten block: software latency for
    primitives, hardware latency for fused instructions. *)

val covered : schedule -> int
(** Number of primitive operations folded into fused instructions. *)

val execute : Ir.Dfg.t -> Ir.Eval.env -> schedule -> int array
(** Values per node (same indexing as {!Ir.Eval.eval}). *)

val pp : Ir.Dfg.t -> Format.formatter -> schedule -> unit
