module Bitset = Util.Bitset

type macro =
  | Primitive of Ir.Dfg.node
  | Fused of Isa.Custom_inst.t

type schedule = macro list

(* Contract the selected instructions and run Kahn's algorithm.  Returns
   the macro order, or [None] if the contraction is cyclic: convexity is
   a per-instruction property, so two instructions can still depend on
   each other mutually (thesis §2.3.2's "unschedulable code" hazard). *)
let try_schedule dfg instructions =
  let n = Ir.Dfg.node_count dfg in
  let owner = Array.make n (-1) in
  List.iteri
    (fun i (ci : Isa.Custom_inst.t) ->
      Bitset.iter
        (fun v ->
          if v >= n then invalid_arg "Codegen.schedule: node outside block";
          if owner.(v) <> -1 then
            invalid_arg "Codegen.schedule: overlapping instructions";
          owner.(v) <- i)
        ci.nodes)
    instructions;
  let instructions = Array.of_list instructions in
  let m = Array.length instructions in
  let macro_of v = if owner.(v) = -1 then m + v else owner.(v) in
  let indegree = Array.make (m + n) 0 in
  let successors = Array.make (m + n) [] in
  let exists = Array.make (m + n) false in
  for v = 0 to n - 1 do
    exists.(macro_of v) <- true;
    List.iter
      (fun s ->
        let a = macro_of v and b = macro_of s in
        if a <> b then begin
          successors.(a) <- b :: successors.(a);
          indegree.(b) <- indegree.(b) + 1
        end)
      (Ir.Dfg.succs dfg v)
  done;
  let ready = Queue.create () in
  for id = 0 to m + n - 1 do
    if exists.(id) && indegree.(id) = 0 then Queue.push id ready
  done;
  let out = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    incr emitted;
    out :=
      (if id < m then Fused instructions.(id) else Primitive (id - m)) :: !out;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then Queue.push s ready)
      successors.(id);
    successors.(id) <- []
  done;
  let total = ref 0 in
  Array.iter (fun e -> if e then incr total) exists;
  if !emitted = !total then Some (List.rev !out) else None

let schedulable_together dfg instructions =
  match try_schedule dfg instructions with Some _ -> true | None -> false

let schedule dfg instructions =
  match try_schedule dfg instructions with
  | Some s -> s
  | None -> invalid_arg "Codegen.schedule: mutually dependent instructions"

let sanitize dfg instructions =
  (* Drop the lowest-gain instruction until the contraction is acyclic.
     Terminates: with no instructions the graph is the original DAG. *)
  let rec fix kept =
    match try_schedule dfg kept with
    | Some _ -> kept
    | None ->
      (match
         List.sort
           (fun a b -> compare (Isa.Custom_inst.gain a) (Isa.Custom_inst.gain b))
           kept
       with
       | weakest :: _ -> fix (List.filter (fun ci -> ci != weakest) kept)
       | [] -> assert false)
  in
  fix instructions

let cycles dfg s =
  Util.Numeric.sum_by
    (function
      | Primitive v -> Ir.Op.sw_cycles (Ir.Dfg.kind dfg v)
      | Fused ci -> ci.Isa.Custom_inst.hw_cycles)
    s

let covered s =
  Util.Numeric.sum_by
    (function Primitive _ -> 0 | Fused ci -> ci.Isa.Custom_inst.size)
    s

let execute dfg env s =
  let n = Ir.Dfg.node_count dfg in
  let values = Array.make n 0 in
  let compute v =
    let kind = Ir.Dfg.kind dfg v in
    let explicit = List.map (fun p -> values.(p)) (Ir.Dfg.preds dfg v) in
    let arity = Ir.Op.arity kind in
    let operands =
      explicit
      @ List.init (max 0 (arity - List.length explicit)) (fun i ->
            env.Ir.Eval.live_in v (List.length explicit + i))
    in
    values.(v) <-
      (match kind with
       | Ir.Op.Const -> Ir.Eval.mask32 (env.Ir.Eval.const v)
       | Ir.Op.Load ->
         let address = match operands with a :: _ -> a | [] -> 0 in
         Ir.Eval.mask32 (env.Ir.Eval.memory address)
       | _ -> Ir.Eval.eval_node kind operands)
  in
  List.iter
    (function
      | Primitive v -> compute v
      | Fused ci ->
        (* internal nodes of a fused instruction evaluate in dataflow
           order; node ids are already topological *)
        List.iter compute (Bitset.elements ci.Isa.Custom_inst.nodes))
    s;
  values

let pp dfg fmt s =
  Format.fprintf fmt "@[<v>";
  List.iter
    (function
      | Primitive v ->
        Format.fprintf fmt "%-4d %a@," v Ir.Op.pp (Ir.Dfg.kind dfg v)
      | Fused ci -> Format.fprintf fmt "     %a@," Isa.Custom_inst.pp ci)
    s;
  Format.fprintf fmt "@]"
