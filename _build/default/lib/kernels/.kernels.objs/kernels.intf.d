lib/kernels/kernels.mli: Blockgen Ir
