lib/kernels/blockgen.ml: Array Ir List Util
