lib/kernels/kernels.ml: Blockgen Ir List Util
