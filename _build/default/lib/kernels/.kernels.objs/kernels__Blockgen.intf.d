lib/kernels/blockgen.mli: Ir Util
