(** Deterministic generation of benchmark-like basic blocks.

    The reproduction cannot ship MiBench/MediaBench binaries, so each
    benchmark kernel is modelled as a structured program over synthetic
    basic blocks whose size, operator mix and dependence shape match the
    kernel class (crypto, DSP, control).  All draws come from a seeded
    {!Util.Prng}, so kernels are identical across runs. *)

type mix = (Ir.Op.kind * int) list
(** Weighted operator distribution (weights need not sum to anything). *)

val crypto_mix : mix
(** xor/and/or/shift-heavy with some adds — DES, AES, SHA, blowfish. *)

val dsp_mix : mix
(** add/sub/mul with shifts — filters, DCT, ADPCM arithmetic. *)

val control_mix : mix
(** compare/select/add — quantisers, clamping, Huffman-style decisions. *)

val block :
  ?loads:int ->
  ?stores:int ->
  ?window:int ->
  ?live_in_bias:float ->
  Util.Prng.t ->
  size:int ->
  mix ->
  Ir.Dfg.t
(** [block prng ~size mix] builds a DAG of [size] valid operations
    preceded by [loads] memory reads and followed by [stores] memory
    writes.  Operand edges connect to earlier nodes within a sliding
    [window] (default 12), falling back to implicit live-ins with
    probability [live_in_bias] (default 0.15), which yields the mix of
    chains and local parallelism seen in real compiled blocks. *)

val dct8 : unit -> Ir.Dfg.t
(** A deterministic 8-point integer DCT block (loads, three butterfly
    stages with constant multiplies, stores) — the jfdctint inner
    block. *)

val crc_byte : unit -> Ir.Dfg.t
(** One table-driven CRC-32 byte step: load, xor/shift/mask chain. *)

val fft_butterfly : unit -> Ir.Dfg.t
(** One radix-2 FFT butterfly on fixed-point complex values: a complex
    multiply (4 mul, 2 add/sub) plus the add/sub recombination. *)

val viterbi_acs : unit -> Ir.Dfg.t
(** One add-compare-select step over two predecessor states: two path
    metric additions, a compare, and selects for metric and survivor. *)

val sobel_window : unit -> Ir.Dfg.t
(** One 3×3 Sobel gradient: 8 pixel loads, weighted horizontal/vertical
    sums, magnitude approximation |gx| + |gy| and threshold. *)
