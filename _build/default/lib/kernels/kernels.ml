module Blockgen = Blockgen
module Prng = Util.Prng
open Ir.Cfg

(* Wrap a statement in a loop whose bound brings the WCET close to the
   published Table 5.1 figure for the kernel. *)
let calibrated ~target body =
  let body_wcet = Ir.Cfg.wcet { name = "body"; code = body } in
  loop (max 1 (target / max 1 body_wcet)) body

let blk prng label ?(loads = 0) ?(stores = 0) size mix =
  block label (Blockgen.block ?loads:(Some loads) ?stores:(Some stores) prng ~size mix)

let adpcm ~name ~seed =
  let p = Prng.create seed in
  let body =
    seq
      [ blk p "predict" ~loads:4 ~stores:1 331 Blockgen.dsp_mix;
        If
          ( { label = "sign"; body = Blockgen.block p ~size:10 Blockgen.control_mix },
            blk p "step_up" ~loads:1 ~stores:1 18 Blockgen.control_mix,
            blk p "step_down" ~loads:1 ~stores:1 8 Blockgen.control_mix );
        blk p "clamp" ~stores:1 14 Blockgen.control_mix ]
  in
  { name; code = calibrated ~target:127_407 body }

let adpcm_enc () = adpcm ~name:"adpcm_enc" ~seed:101
let adpcm_dec () = adpcm ~name:"adpcm_dec" ~seed:102

let sha () =
  let p = Prng.create 103 in
  let body =
    seq
      [ blk p "schedule" ~loads:16 ~stores:16 487 Blockgen.crypto_mix;
        loop 80 (blk p "round" ~loads:2 ~stores:1 34 Blockgen.crypto_mix);
        blk p "digest" ~loads:5 ~stores:5 22 Blockgen.crypto_mix ]
  in
  { name = "sha"; code = calibrated ~target:9_163_779 body }

let jfdctint () =
  let p = Prng.create 104 in
  { name = "jfdctint";
    code =
      seq
        [ loop 8 (block "dct_row" (Blockgen.dct8 ()));
          loop 8 (block "dct_col" (Blockgen.dct8 ()));
          blk p "descale" ~loads:8 ~stores:8 40 Blockgen.control_mix ] }

let g721 ~name ~seed ~target =
  let p = Prng.create seed in
  let body =
    seq
      [ blk p "reconstruct" ~loads:3 ~stores:1 80 Blockgen.dsp_mix;
        If
          ( { label = "quan"; body = Blockgen.block p ~size:9 Blockgen.control_mix },
            blk p "update_fast" ~loads:2 ~stores:1 12 Blockgen.dsp_mix,
            blk p "update_slow" ~loads:2 ~stores:1 9 Blockgen.dsp_mix );
        loop 6 (blk p "predictor_tap" ~loads:2 ~stores:1 11 Blockgen.dsp_mix);
        blk p "scale" ~loads:1 ~stores:1 8 Blockgen.control_mix ]
  in
  { name; code = calibrated ~target body }

let g721_dec () = g721 ~name:"g721decode" ~seed:105 ~target:113_295_478
let g721_enc () = g721 ~name:"g721encode" ~seed:106 ~target:121_000_000

let lms () =
  let p = Prng.create 107 in
  let body =
    seq
      [ loop 16 (blk p "fir_tap" ~loads:2 29 Blockgen.dsp_mix);
        blk p "error" ~loads:1 ~stores:1 8 Blockgen.dsp_mix;
        loop 16 (blk p "update_tap" ~loads:2 ~stores:1 7 Blockgen.dsp_mix) ]
  in
  { name = "lms"; code = calibrated ~target:65_051 body }

let ndes () =
  let p = Prng.create 108 in
  let body =
    seq
      [ blk p "key_mix" ~loads:4 ~stores:2 56 Blockgen.crypto_mix;
        loop 16
          (seq
             [ blk p "feistel" ~loads:4 ~stores:1 12 Blockgen.crypto_mix;
               blk p "swap" ~loads:2 ~stores:2 7 Blockgen.crypto_mix ]) ]
  in
  { name = "ndes"; code = calibrated ~target:21_232 body }

let rijndael () =
  let p = Prng.create 109 in
  let body =
    loop 10
      (seq
         [ blk p "round" ~loads:16 ~stores:4 239 Blockgen.crypto_mix;
           blk p "mix_columns" ~loads:4 ~stores:4 24 Blockgen.crypto_mix;
           blk p "add_key" ~loads:4 ~stores:4 15 Blockgen.crypto_mix ])
  in
  { name = "rijndael"; code = calibrated ~target:13_878_360 body }

let des3 () =
  let p = Prng.create 110 in
  let body =
    seq
      [ blk p "unrolled_rounds" ~loads:32 ~stores:8 2745 Blockgen.crypto_mix;
        loop 3 (blk p "permute" ~loads:4 ~stores:2 59 Blockgen.crypto_mix) ]
  in
  { name = "3des"; code = calibrated ~target:106_062_791 body }

let aes () =
  let p = Prng.create 111 in
  let body =
    loop 10
      (seq
         [ blk p "round" ~loads:8 ~stores:4 227 Blockgen.crypto_mix;
           blk p "sbox" ~loads:4 ~stores:4 16 Blockgen.crypto_mix;
           blk p "shift_rows" ~loads:2 ~stores:2 13 Blockgen.crypto_mix ])
  in
  { name = "aes"; code = calibrated ~target:30_638 body }

let blowfish () =
  let p = Prng.create 112 in
  let body =
    loop 16
      (seq
         [ blk p "f_unrolled" ~loads:8 ~stores:2 457 Blockgen.crypto_mix;
           blk p "xor_round" ~loads:2 ~stores:2 22 Blockgen.crypto_mix;
           blk p "swap" ~loads:2 ~stores:2 18 Blockgen.crypto_mix ])
  in
  { name = "blowfish"; code = calibrated ~target:435_418_994 body }

let crc32 () =
  { name = "crc32";
    code = calibrated ~target:3_932_160 (block "crc_byte" (Blockgen.crc_byte ())) }

let jpeg ~name ~seed ~target =
  let p = Prng.create seed in
  let body =
    seq
      [ loop 8 (block "dct_row" (Blockgen.dct8 ()));
        loop 8 (block "dct_col" (Blockgen.dct8 ()));
        loop 64 (blk p "quantize" ~loads:2 ~stores:1 12 Blockgen.control_mix);
        loop 20 (blk p "huffman" ~loads:2 ~stores:1 25 Blockgen.control_mix);
        blk p "emit" ~loads:1 ~stores:2 16 Blockgen.control_mix ]
  in
  { name; code = calibrated ~target body }

let jpeg_enc () = jpeg ~name:"jpeg_enc" ~seed:113 ~target:38_000_000
let jpeg_dec () = jpeg ~name:"jpeg_dec" ~seed:114 ~target:31_000_000

let compress () =
  let p = Prng.create 115 in
  let body =
    seq
      [ blk p "hash" ~loads:2 ~stores:1 23 Blockgen.crypto_mix;
        If
          ( { label = "match"; body = Blockgen.block p ~size:8 Blockgen.control_mix },
            blk p "emit_code" ~loads:1 ~stores:1 17 Blockgen.control_mix,
            blk p "add_entry" ~loads:1 ~stores:2 11 Blockgen.control_mix ) ]
  in
  { name = "compress"; code = calibrated ~target:9_500_000 body }

let susan () =
  let p = Prng.create 116 in
  let body =
    seq
      [ loop 9 (blk p "usan_accum" ~loads:3 31 Blockgen.dsp_mix);
        blk p "threshold" ~loads:1 ~stores:1 13 Blockgen.control_mix;
        blk p "direction" ~loads:2 ~stores:1 27 Blockgen.dsp_mix ]
  in
  { name = "susan"; code = calibrated ~target:47_000_000 body }

let md5 () =
  let p = Prng.create 117 in
  let body =
    seq
      [ blk p "decode" ~loads:16 ~stores:16 74 Blockgen.crypto_mix;
        loop 64 (blk p "step" ~loads:2 ~stores:1 13 Blockgen.crypto_mix);
        blk p "final_add" ~loads:4 ~stores:4 12 Blockgen.crypto_mix ]
  in
  { name = "md5"; code = calibrated ~target:5_200_000 body }

let edn () =
  let p = Prng.create 118 in
  let body =
    seq
      [ loop 32 (blk p "mac_tap" ~loads:2 9 Blockgen.dsp_mix);
        loop 16 (blk p "latsynth" ~loads:2 ~stores:1 14 Blockgen.dsp_mix);
        blk p "iir" ~loads:4 ~stores:2 41 Blockgen.dsp_mix ]
  in
  { name = "edn"; code = calibrated ~target:262_000 body }

let fft () =
  let p = Prng.create 119 in
  (* log2(256) = 8 stages of 128 butterflies plus bit-reversal *)
  let body =
    seq
      [ loop 256 (blk p "bit_reverse" ~loads:1 ~stores:1 6 Blockgen.control_mix);
        loop 8 (loop 128 (block "butterfly" (Blockgen.fft_butterfly ()))) ]
  in
  { name = "fft"; code = calibrated ~target:1_800_000 body }

let viterbi () =
  let p = Prng.create 120 in
  (* 64 trellis states per received symbol, then traceback *)
  let body =
    seq
      [ loop 64 (block "acs" (Blockgen.viterbi_acs ()));
        blk p "normalise" ~loads:2 ~stores:1 12 Blockgen.dsp_mix;
        loop 8 (blk p "traceback" ~loads:2 ~stores:1 7 Blockgen.control_mix) ]
  in
  { name = "viterbi"; code = calibrated ~target:2_900_000 body }

let sobel () =
  let p = Prng.create 121 in
  let body =
    seq
      [ block "window" (Blockgen.sobel_window ());
        blk p "write_back" ~loads:1 ~stores:1 5 Blockgen.control_mix ]
  in
  { name = "sobel"; code = calibrated ~target:21_000_000 body }

let all () =
  List.map
    (fun cfg -> (cfg.name, cfg))
    [ adpcm_enc (); adpcm_dec (); sha (); jfdctint (); g721_enc (); g721_dec ();
      lms (); ndes (); rijndael (); des3 (); aes (); blowfish (); crc32 ();
      jpeg_enc (); jpeg_dec (); compress (); susan (); md5 (); edn ();
      fft (); viterbi (); sobel () ]

let find_opt name = List.assoc_opt name (all ())

let find name =
  match find_opt name with
  | Some cfg -> cfg
  | None -> raise Not_found
