module B = Ir.Dfg.Builder
module Prng = Util.Prng

type mix = (Ir.Op.kind * int) list

let crypto_mix =
  [ (Ir.Op.Xor, 30); (Ir.Op.And, 14); (Ir.Op.Or, 12); (Ir.Op.Shl, 10);
    (Ir.Op.Shr, 12); (Ir.Op.Add, 12); (Ir.Op.Not, 4); (Ir.Op.Sub, 3);
    (Ir.Op.Cmp, 2); (Ir.Op.Select, 1) ]

let dsp_mix =
  [ (Ir.Op.Add, 30); (Ir.Op.Sub, 18); (Ir.Op.Mul, 20); (Ir.Op.Shl, 8);
    (Ir.Op.Shr, 10); (Ir.Op.And, 4); (Ir.Op.Cmp, 4); (Ir.Op.Select, 4);
    (Ir.Op.Const, 2) ]

let control_mix =
  [ (Ir.Op.Cmp, 20); (Ir.Op.Select, 16); (Ir.Op.Add, 22); (Ir.Op.Sub, 14);
    (Ir.Op.And, 10); (Ir.Op.Shr, 8); (Ir.Op.Or, 6); (Ir.Op.Xor, 4) ]

let draw_kind prng mix =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 mix in
  let roll = Prng.int prng total in
  let rec pick acc = function
    | [] -> assert false
    | (k, w) :: rest -> if roll < acc + w then k else pick (acc + w) rest
  in
  pick 0 mix

let block ?(loads = 0) ?(stores = 0) ?(window = 12) ?(live_in_bias = 0.15) prng
    ~size mix =
  let b = B.create () in
  let values = ref [] in
  (* Memory reads first: addresses are implicit live-ins. *)
  for _ = 1 to loads do
    values := B.add b Ir.Op.Load :: !values
  done;
  for _ = 1 to size do
    let kind = draw_kind prng mix in
    (* oldest-first, so the window below really is the most recent values *)
    let avail = Array.of_list (List.rev !values) in
    let pool = Array.length avail in
    let operands = ref [] in
    for _ = 1 to Ir.Op.arity kind do
      if pool > 0 && Prng.float prng 1.0 >= live_in_bias then begin
        let lo = max 0 (pool - window) in
        let pick = avail.(Prng.in_range prng lo (pool - 1)) in
        if not (List.mem pick !operands) then operands := pick :: !operands
      end
    done;
    values := B.add_with b kind !operands :: !values
  done;
  (* Memory writes consume the freshest values. *)
  let rec take n = function
    | v :: rest when n > 0 -> v :: take (n - 1) rest
    | _ -> []
  in
  List.iter
    (fun v -> ignore (B.add_with b Ir.Op.Store [ v ]))
    (take stores !values);
  B.finish b

(* 8-point Loeffler-style integer DCT: loads, butterfly stages with
   constant multiplies, rounding shifts, stores.  Deterministic. *)
let dct8 () =
  let b = B.create () in
  let x = Array.init 8 (fun _ -> B.add b Ir.Op.Load) in
  let butterfly a c =
    (B.add_with b Ir.Op.Add [ a; c ], B.add_with b Ir.Op.Sub [ a; c ])
  in
  (* Stage 1: mirror pairs. *)
  let s0, d0 = butterfly x.(0) x.(7) in
  let s1, d1 = butterfly x.(1) x.(6) in
  let s2, d2 = butterfly x.(2) x.(5) in
  let s3, d3 = butterfly x.(3) x.(4) in
  (* Stage 2 even part. *)
  let e0, e1 = butterfly s0 s3 in
  let e2, e3 = butterfly s1 s2 in
  let y0 = B.add_with b Ir.Op.Add [ e0; e2 ] in
  let y4 = B.add_with b Ir.Op.Sub [ e0; e2 ] in
  let rot a c =
    let ka = B.add b Ir.Op.Const and kc = B.add b Ir.Op.Const in
    let ma = B.add_with b Ir.Op.Mul [ a; ka ]
    and mc = B.add_with b Ir.Op.Mul [ c; kc ] in
    let sum = B.add_with b Ir.Op.Add [ ma; mc ] in
    B.add_with b Ir.Op.Shr [ sum ]
  in
  let y2 = rot e1 e3 in
  let y6 = rot e3 e1 in
  (* Stage 2 odd part: four rotations over the differences. *)
  let y1 = rot d0 d3 in
  let y3 = rot d1 d2 in
  let y5 = rot d2 d1 in
  let y7 = rot d3 d0 in
  let round v =
    let k = B.add b Ir.Op.Const in
    let sum = B.add_with b Ir.Op.Add [ v; k ] in
    B.add_with b Ir.Op.Shr [ sum ]
  in
  List.iter
    (fun v -> ignore (B.add_with b Ir.Op.Store [ round v ]))
    [ y0; y1; y2; y3; y4; y5; y6; y7 ];
  B.finish b

let fft_butterfly () =
  let b = B.create () in
  let ar = B.add b Ir.Op.Load and ai = B.add b Ir.Op.Load in
  let br = B.add b Ir.Op.Load and bi = B.add b Ir.Op.Load in
  let wr = B.add b Ir.Op.Const and wi = B.add b Ir.Op.Const in
  (* complex multiply t = w * b *)
  let m1 = B.add_with b Ir.Op.Mul [ br; wr ] in
  let m2 = B.add_with b Ir.Op.Mul [ bi; wi ] in
  let m3 = B.add_with b Ir.Op.Mul [ br; wi ] in
  let m4 = B.add_with b Ir.Op.Mul [ bi; wr ] in
  let tr = B.add_with b Ir.Op.Sub [ m1; m2 ] in
  let ti = B.add_with b Ir.Op.Add [ m3; m4 ] in
  (* fixed-point renormalisation *)
  let tr' = B.add_with b Ir.Op.Shr [ tr ] in
  let ti' = B.add_with b Ir.Op.Shr [ ti ] in
  (* recombination *)
  let xr = B.add_with b Ir.Op.Add [ ar; tr' ] in
  let xi = B.add_with b Ir.Op.Add [ ai; ti' ] in
  let yr = B.add_with b Ir.Op.Sub [ ar; tr' ] in
  let yi = B.add_with b Ir.Op.Sub [ ai; ti' ] in
  List.iter
    (fun v -> ignore (B.add_with b Ir.Op.Store [ v ]))
    [ xr; xi; yr; yi ];
  B.finish b

let viterbi_acs () =
  let b = B.create () in
  let metric0 = B.add b Ir.Op.Load in
  let metric1 = B.add b Ir.Op.Load in
  let branch0 = B.add b Ir.Op.Const in
  let branch1 = B.add b Ir.Op.Const in
  let path0 = B.add_with b Ir.Op.Add [ metric0; branch0 ] in
  let path1 = B.add_with b Ir.Op.Add [ metric1; branch1 ] in
  let better = B.add_with b Ir.Op.Cmp [ path0; path1 ] in
  let metric = B.add_with b Ir.Op.Select [ better; path0; path1 ] in
  let surv0 = B.add b Ir.Op.Const in
  let surv1 = B.add b Ir.Op.Const in
  let survivor = B.add_with b Ir.Op.Select [ better; surv0; surv1 ] in
  ignore (B.add_with b Ir.Op.Store [ metric ]);
  ignore (B.add_with b Ir.Op.Store [ survivor ]);
  B.finish b

let sobel_window () =
  let b = B.create () in
  let px = Array.init 8 (fun _ -> B.add b Ir.Op.Load) in
  let double v = B.add_with b Ir.Op.Shl [ v ] in
  (* gx = (p2 + 2*p4 + p7) - (p0 + 2*p3 + p5) *)
  let gx_pos =
    let d = double px.(4) in
    let s = B.add_with b Ir.Op.Add [ px.(2); d ] in
    B.add_with b Ir.Op.Add [ s; px.(7) ]
  in
  let gx_neg =
    let d = double px.(3) in
    let s = B.add_with b Ir.Op.Add [ px.(0); d ] in
    B.add_with b Ir.Op.Add [ s; px.(5) ]
  in
  let gx = B.add_with b Ir.Op.Sub [ gx_pos; gx_neg ] in
  (* gy = (p5 + 2*p6 + p7) - (p0 + 2*p1 + p2) *)
  let gy_pos =
    let d = double px.(6) in
    let s = B.add_with b Ir.Op.Add [ px.(5); d ] in
    B.add_with b Ir.Op.Add [ s; px.(7) ]
  in
  let gy_neg =
    let d = double px.(1) in
    let s = B.add_with b Ir.Op.Add [ px.(0); d ] in
    B.add_with b Ir.Op.Add [ s; px.(2) ]
  in
  let gy = B.add_with b Ir.Op.Sub [ gy_pos; gy_neg ] in
  (* |gx| + |gy| via compare/select absolute values *)
  let abs v =
    let zero = B.add b Ir.Op.Const in
    let neg = B.add_with b Ir.Op.Sub [ zero; v ] in
    let is_neg = B.add_with b Ir.Op.Cmp [ v; zero ] in
    B.add_with b Ir.Op.Select [ is_neg; neg; v ]
  in
  let magnitude = B.add_with b Ir.Op.Add [ abs gx; abs gy ] in
  let threshold = B.add b Ir.Op.Const in
  let edge = B.add_with b Ir.Op.Cmp [ threshold; magnitude ] in
  ignore (B.add_with b Ir.Op.Store [ edge ]);
  B.finish b

let crc_byte () =
  let b = B.create () in
  let crc = B.add b Ir.Op.Load in
  let data = B.add b Ir.Op.Load in
  let x = B.add_with b Ir.Op.Xor [ crc; data ] in
  let mask = B.add b Ir.Op.Const in
  let idx = B.add_with b Ir.Op.And [ x; mask ] in
  let table = B.add_with b Ir.Op.Load [ idx ] in
  let shifted = B.add_with b Ir.Op.Shr [ crc ] in
  let next = B.add_with b Ir.Op.Xor [ shifted; table ] in
  ignore (B.add_with b Ir.Op.Store [ next ]);
  B.finish b
