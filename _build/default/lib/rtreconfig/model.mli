(** Runtime reconfiguration for multi-tasking real-time systems —
    problem model of thesis Chapter 7.

    Periodic tasks share one reconfigurable CFU fabric.  Each task has
    CIS versions (gain per job, area); hardware-mapped tasks are grouped
    into {e configurations} of capacity [max_area].  When tasks from
    different configurations interleave, the fabric must be reloaded at
    a cost of [reconfig_cost] cycles per reload.

    The full text of the chapter was not available to this reproduction,
    so the reload accounting is reconstructed from the chapter's stated
    constraint structure (uniqueness, resource, scheduling) and its EDF
    setting, using standard worst-case preemption analysis: a job of a
    hardware task Tᵢ pays one reload at dispatch if any hardware task
    lives in another configuration, plus two reloads for every
    preemption by a shorter-period hardware task of another
    configuration (⌈Pᵢ/Pⱼ⌉ preemptions in the worst case).  Software
    tasks never touch the fabric.  This preserves the chapter's
    structure: grouping frequently-interleaving tasks into one
    configuration is what the partitioning algorithms optimise.  The
    reconstruction is recorded in DESIGN.md. *)

type version = { gain : int; area : int }

type task = {
  name : string;
  period : int;
  wcet : int;  (** software execution requirement per job *)
  versions : version array;  (** index 0 is software (0, 0) *)
}

val task : name:string -> period:int -> wcet:int -> (int * int) list -> task
(** [(gain, area)] version points; validated like {!Reconfig.Problem.loop};
    gains must not exceed the WCET. *)

type t = {
  tasks : task list;
  max_area : int;
  reconfig_cost : int;
}

type placement = {
  version_of : (string * int) list;
  config_of : (string * int) list;  (** hardware tasks only *)
}

val software_placement : t -> placement
val find_task : t -> string -> task
val feasible : t -> placement -> bool

val reload_cycles : t -> placement -> task -> int
(** Worst-case fabric-reload cycles charged to one job of the task under
    the placement (0 for software tasks and single-configuration
    placements). *)

val effective_wcet : t -> placement -> task -> int
(** WCET per job including worst-case reload overhead. *)

val utilization : t -> placement -> float
(** Σ effective WCET / period. *)

val schedulable : t -> placement -> bool
(** EDF test on effective WCETs: utilization ≤ 1. *)

val pp_placement : t -> Format.formatter -> placement -> unit
