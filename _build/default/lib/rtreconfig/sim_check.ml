type outcome = { deadline_misses : int; reloads : int; busy : int }

type job = {
  task : int;
  deadline : int;
  mutable remaining : int;  (** computation left, excluding reloads *)
  mutable reload_left : int;  (** reload cycles to serve before computing *)
}

let run ?horizon (t : Model.t) (p : Model.placement) =
  let tasks = Array.of_list t.tasks in
  let n = Array.length tasks in
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
      let h =
        Util.Numeric.lcm_list (Array.to_list tasks |> List.map (fun tk -> tk.Model.period))
      in
      min h 100_000_000
  in
  let config_of = Array.map (fun tk -> List.assoc_opt tk.Model.name p.Model.config_of) tasks in
  let cost =
    Array.map
      (fun tk ->
        let v = tk.Model.versions.(List.assoc tk.Model.name p.Model.version_of) in
        tk.Model.wcet - v.Model.gain)
      tasks
  in
  let next_release = Array.make n 0 in
  let active : job option array = Array.make n None in
  let fabric = ref None in
  let misses = ref 0 and reloads = ref 0 and busy = ref 0 in
  let last_run = ref (-1) in
  let time = ref 0 in
  while !time < horizon do
    for i = 0 to n - 1 do
      if next_release.(i) <= !time then begin
        (match active.(i) with
         | Some j when j.remaining > 0 || j.reload_left > 0 -> incr misses
         | Some _ | None -> ());
        active.(i) <-
          Some { task = i; deadline = !time + tasks.(i).Model.period;
                 remaining = cost.(i); reload_left = 0 };
        next_release.(i) <- !time + tasks.(i).Model.period
      end
    done;
    let upcoming = Array.fold_left min max_int next_release in
    let ready =
      Array.to_list active
      |> List.filter_map (fun j ->
             match j with
             | Some j when j.remaining > 0 || j.reload_left > 0 -> Some j
             | _ -> None)
    in
    (match ready with
     | [] ->
       last_run := -1;
       time := min upcoming horizon
     | j0 :: rest ->
       let chosen =
         List.fold_left
           (fun a b ->
             if
               b.deadline < a.deadline
               || (b.deadline = a.deadline && b.task < a.task)
             then b
             else a)
           j0 rest
       in
       (* dispatch/resume: reload the fabric if this hardware task's
          configuration is not resident *)
       if !last_run <> chosen.task then begin
         match config_of.(chosen.task) with
         | Some c when !fabric <> Some c ->
           chosen.reload_left <- chosen.reload_left + t.reconfig_cost;
           fabric := Some c;
           incr reloads
         | Some _ | None -> ()
       end;
       let work = chosen.reload_left + chosen.remaining in
       let until = min (min upcoming (!time + work)) horizon in
       let slice = until - !time in
       let reload_served = min slice chosen.reload_left in
       chosen.reload_left <- chosen.reload_left - reload_served;
       let computed = slice - reload_served in
       chosen.remaining <- chosen.remaining - computed;
       busy := !busy + computed;
       last_run := chosen.task;
       time := until)
  done;
  Array.iter
    (function
      | Some j when (j.remaining > 0 || j.reload_left > 0) && j.deadline <= horizon ->
        incr misses
      | Some _ | None -> ())
    active;
  { deadline_misses = !misses; reloads = !reloads; busy = !busy }

let schedulable ?horizon t p = (run ?horizon t p).deadline_misses = 0
