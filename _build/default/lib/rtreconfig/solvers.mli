(** The three algorithms compared in thesis Chapter 7 (Figure 7.4,
    Table 7.2).

    - {!static} — no runtime reconfiguration: one configuration holds
      everything, versions chosen by a utilization-minimising knapsack
      over [max_area].
    - {!optimal} — exact branch-and-bound over every (version,
      configuration) assignment with canonical configuration numbering.
      This substitutes the chapter's CPLEX ILP (same feasible set:
      uniqueness, resource, scheduling constraints); exponential, small
      task counts only.
    - {!dp} — the chapter's near-optimal pseudo-polynomial algorithm,
      reconstructed as alternating optimisation: a contiguous-by-period
      grouping DP (pairwise split penalties, per-configuration capacity)
      alternated with per-configuration version re-selection, seeded
      from the static solution; the best evaluated placement wins. *)

val static : Model.t -> Model.placement

val optimal : ?max_nodes:int -> Model.t -> Model.placement
(** Minimum-utilization placement; falls back to the best found if the
    node cap (default 2_000_000) is hit. *)

val dp : Model.t -> Model.placement

val min_utilization_versions :
  tasks:Model.task list -> area:int -> reload:(Model.task -> int) ->
  (string * int) list
(** Knapsack helper: one version per task minimising Σ(wcet − gain +
    reload)/period under a shared area budget, where [reload] cycles
    are charged only to hardware-mapped tasks (exposed for tests). *)
