(** Reconfiguration-aware EDF schedule simulation.

    Validates the Chapter 7 worst-case model: jobs execute their
    version-reduced requirement, and whenever a hardware task is
    dispatched or resumed while the fabric holds a different
    configuration, the reload delay is served inline before useful work
    continues.  The analytic model charges worst-case reload counts, so
    a placement it declares schedulable must simulate without deadline
    misses — the conservativeness property the test suite checks. *)

type outcome = {
  deadline_misses : int;
  reloads : int;  (** fabric reconfigurations actually performed *)
  busy : int;  (** cycles spent computing (excluding reloads) *)
}

val run : ?horizon:int -> Model.t -> Model.placement -> outcome
(** Simulates from the synchronous release at time 0.  Default horizon:
    the hyperperiod, capped at 10⁸ cycles. *)

val schedulable : ?horizon:int -> Model.t -> Model.placement -> bool
