lib/rtreconfig/model.mli: Format
