lib/rtreconfig/solvers.ml: Array List Model Util
