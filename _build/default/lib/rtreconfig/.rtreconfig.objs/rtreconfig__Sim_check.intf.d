lib/rtreconfig/sim_check.mli: Model
