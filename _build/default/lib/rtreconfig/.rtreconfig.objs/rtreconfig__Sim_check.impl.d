lib/rtreconfig/sim_check.ml: Array List Model Util
