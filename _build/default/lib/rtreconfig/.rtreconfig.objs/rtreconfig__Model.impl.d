lib/rtreconfig/model.ml: Array Format Hashtbl List Option Printf Util
