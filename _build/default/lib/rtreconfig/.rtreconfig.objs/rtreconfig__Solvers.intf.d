lib/rtreconfig/solvers.mli: Model
