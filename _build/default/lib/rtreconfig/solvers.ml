(* Group knapsack over a shared area budget: pick one version per task
   minimising total utilization; [reload] cycles are added to any
   hardware-mapped task's job. *)
let min_utilization_versions ~tasks ~area ~reload =
  let areas =
    List.concat_map
      (fun (tk : Model.task) ->
        Array.to_list tk.versions
        |> List.filter_map (fun (v : Model.version) ->
               if v.area > 0 then Some v.area else None))
      tasks
  in
  let delta = max 1 (Util.Numeric.gcd_list (area :: areas)) in
  let cells = (area / delta) + 1 in
  let best = Array.make cells 0. in
  let choice : (string * int) list array = Array.make cells [] in
  List.iter
    (fun (tk : Model.task) ->
      let base = Array.copy best in
      let base_choice = Array.copy choice in
      for cell = 0 to cells - 1 do
        best.(cell) <- base.(cell);
        choice.(cell) <- (tk.name, 0) :: base_choice.(cell)
      done;
      for cell = 0 to cells - 1 do
        Array.iteri
          (fun j (v : Model.version) ->
            if j > 0 && v.area <= cell * delta then begin
              let from = cell - Util.Numeric.ceil_div v.area delta in
              let benefit =
                float_of_int (v.gain - reload tk) /. float_of_int tk.period
              in
              let total = base.(from) +. benefit in
              if total > best.(cell) then begin
                best.(cell) <- total;
                choice.(cell) <- (tk.name, j) :: base_choice.(from)
              end
            end)
          tk.versions
      done)
    tasks;
  choice.(cells - 1)

let placement_of_versions versions ~group_of =
  { Model.version_of = versions;
    config_of =
      List.filter_map
        (fun (name, j) -> if j > 0 then Some (name, group_of name) else None)
        versions }

let static (t : Model.t) =
  let versions =
    min_utilization_versions ~tasks:t.tasks ~area:t.max_area ~reload:(fun _ -> 0)
  in
  placement_of_versions versions ~group_of:(fun _ -> 0)

let optimal ?(max_nodes = 2_000_000) (t : Model.t) =
  let tasks =
    Array.of_list
      (List.sort (fun (a : Model.task) b -> compare a.period b.period) t.tasks)
  in
  let n = Array.length tasks in
  let best_u = ref infinity and best = ref (static t) in
  (let u0 = Model.utilization t !best in
   best_u := u0);
  let version_idx = Array.make n 0 in
  let group_idx = Array.make n (-1) in
  let group_area = Array.make (max 1 n) 0 in
  let nodes = ref 0 in
  (* optimistic bound: assigned tasks at chosen gains without reloads,
     remaining tasks at their best gains without reloads *)
  let suffix_best = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    let tk = tasks.(i) in
    let best_gain =
      Array.fold_left (fun acc (v : Model.version) -> max acc v.gain) 0 tk.versions
    in
    suffix_best.(i) <-
      suffix_best.(i + 1)
      +. (float_of_int (tk.wcet - best_gain) /. float_of_int tk.period)
  done;
  let rec search i partial_u max_group =
    incr nodes;
    if !nodes < max_nodes then begin
      if i = n then begin
        let placement =
          placement_of_versions
            (Array.to_list (Array.mapi (fun k j -> (tasks.(k).Model.name, j)) version_idx))
            ~group_of:(fun name ->
              let rec find k = if tasks.(k).Model.name = name then group_idx.(k) else find (k + 1) in
              find 0)
        in
        let u = Model.utilization t placement in
        if u < !best_u then begin
          best_u := u;
          best := placement
        end
      end
      else if partial_u +. suffix_best.(i) < !best_u then begin
        let tk = tasks.(i) in
        (* software option *)
        version_idx.(i) <- 0;
        group_idx.(i) <- -1;
        search (i + 1) (partial_u +. (float_of_int tk.wcet /. float_of_int tk.period)) max_group;
        (* hardware options: version j in group g (canonical numbering) *)
        Array.iteri
          (fun j (v : Model.version) ->
            if j > 0 then
              for g = 0 to min (max_group + 1) (n - 1) do
                if group_area.(g) + v.area <= t.max_area then begin
                  version_idx.(i) <- j;
                  group_idx.(i) <- g;
                  group_area.(g) <- group_area.(g) + v.area;
                  let contribution =
                    float_of_int (tk.wcet - v.gain) /. float_of_int tk.period
                  in
                  search (i + 1) (partial_u +. contribution) (max max_group g);
                  group_area.(g) <- group_area.(g) - v.area
                end
              done)
          tk.versions;
        version_idx.(i) <- 0;
        group_idx.(i) <- -1
      end
    end
  in
  search 0 0. (-1);
  !best

(* The near-optimal pseudo-polynomial algorithm, reconstructed as an
   enumeration over contiguous-by-period groupings (tasks with similar
   rates interleave most, so they belong together): for every split of
   the period-sorted task list into at most [max_groups] runs, versions
   are selected per run by the utilization knapsack under the
   per-configuration capacity, with reload estimates refined in a second
   pass; the best exactly-evaluated placement (including the static
   seed) wins. *)
let max_groups = 4

let contiguous_partitions n k_max =
  (* lists of run lengths summing to n, at most k_max runs *)
  let rec build remaining k =
    if remaining = 0 then [ [] ]
    else if k = 0 then []
    else
      List.concat_map
        (fun len ->
          List.map (fun rest -> len :: rest) (build (remaining - len) (k - 1)))
        (List.init remaining (fun i -> i + 1))
  in
  build n k_max

let dp (t : Model.t) =
  let best = ref (static t) in
  let best_u = ref (Model.utilization t !best) in
  let consider p =
    if Model.feasible t p then begin
      let u = Model.utilization t p in
      if u < !best_u then begin
        best := p;
        best_u := u
      end
    end
  in
  let tasks =
    Array.of_list
      (List.sort (fun (a : Model.task) b -> compare a.period b.period) t.tasks)
  in
  let n = Array.length tasks in
  if n > 0 then
    List.iter
      (fun lengths ->
        (* runs as index ranges *)
        let runs =
          List.rev
            (snd
               (List.fold_left
                  (fun (start, acc) len -> (start + len, (start, len) :: acc))
                  (0, []) lengths))
        in
        let group_of_index i =
          let rec find g = function
            | (start, len) :: rest ->
              if i >= start && i < start + len then g else find (g + 1) rest
            | [] -> assert false
          in
          find 0 runs
        in
        (* Two selection passes: reload estimates first assume every task
           outside the run is hardware-mapped, then use the actual
           hardware set of the first pass. *)
        let select hw_outside =
          List.concat_map
            (fun (start, len) ->
              let members =
                List.init len (fun j -> tasks.(start + j))
              in
              let reload (tk : Model.task) =
                if List.length runs = 1 then 0
                else begin
                  let i =
                    let rec find k = if tasks.(k).Model.name = tk.name then k else find (k + 1) in
                    find 0
                  in
                  let own = group_of_index i in
                  let preempts = ref 0 in
                  Array.iteri
                    (fun j (other : Model.task) ->
                      if
                        group_of_index j <> own
                        && hw_outside other.name
                        && other.period < tk.period
                      then
                        preempts :=
                          !preempts + (2 * Util.Numeric.ceil_div tk.period other.period))
                    tasks;
                  t.reconfig_cost * (1 + !preempts)
                end
              in
              min_utilization_versions ~tasks:members ~area:t.max_area ~reload)
            runs
        in
        let pass1 = select (fun _ -> true) in
        let hw1 name = match List.assoc_opt name pass1 with Some j -> j > 0 | None -> false in
        let pass2 = select hw1 in
        let group_of_name name =
          let rec find k = if tasks.(k).Model.name = name then k else find (k + 1) in
          group_of_index (find 0)
        in
        consider (placement_of_versions pass1 ~group_of:group_of_name);
        consider (placement_of_versions pass2 ~group_of:group_of_name))
      (contiguous_partitions n (min n max_groups));
  !best
