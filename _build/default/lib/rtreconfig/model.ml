type version = { gain : int; area : int }

type task = {
  name : string;
  period : int;
  wcet : int;
  versions : version array;
}

let task ~name ~period ~wcet points =
  if period <= 0 || wcet <= 0 then invalid_arg "Model.task: bad parameters";
  let sorted = List.sort (fun (_, a1) (_, a2) -> compare a1 a2) points in
  let rec validate prev = function
    | [] -> ()
    | (g, a) :: rest ->
      if g <= 0 || a <= 0 || g > wcet then
        invalid_arg ("Model.task " ^ name ^ ": bad version");
      (match prev with
       | Some (pg, pa) ->
         if g <= pg || a <= pa then
           invalid_arg ("Model.task " ^ name ^ ": versions must strictly improve")
       | None -> ());
      validate (Some (g, a)) rest
  in
  validate None sorted;
  { name; period; wcet;
    versions =
      Array.of_list
        ({ gain = 0; area = 0 } :: List.map (fun (gain, area) -> { gain; area }) sorted) }

type t = { tasks : task list; max_area : int; reconfig_cost : int }

type placement = {
  version_of : (string * int) list;
  config_of : (string * int) list;
}

let software_placement t =
  { version_of = List.map (fun tk -> (tk.name, 0)) t.tasks; config_of = [] }

let find_task t name =
  match List.find_opt (fun tk -> tk.name = name) t.tasks with
  | Some tk -> tk
  | None -> raise Not_found

let version_of t p name = (find_task t name).versions.(List.assoc name p.version_of)

let feasible t p =
  List.for_all
    (fun tk ->
      match List.assoc_opt tk.name p.version_of with
      | Some v -> v >= 0 && v < Array.length tk.versions
      | None -> false)
    t.tasks
  && List.length p.version_of = List.length t.tasks
  && List.for_all
       (fun (name, v) ->
         let in_config = List.mem_assoc name p.config_of in
         if v > 0 then in_config else not in_config)
       p.version_of
  &&
  let config_area = Hashtbl.create 8 in
  List.iter
    (fun (name, c) ->
      let area = (version_of t p name).area in
      Hashtbl.replace config_area c
        (area + Option.value ~default:0 (Hashtbl.find_opt config_area c)))
    p.config_of;
  Hashtbl.fold (fun _ area acc -> acc && area <= t.max_area) config_area true

(* Worst-case reloads of one job of hardware task tk: one load at
   dispatch when another configuration exists, plus two per preemption by
   a shorter-period hardware task of another configuration. *)
let reload_cycles t p tk =
  match List.assoc_opt tk.name p.config_of with
  | None -> 0
  | Some own ->
    let foreign =
      List.filter (fun (name, c) -> name <> tk.name && c <> own) p.config_of
    in
    if foreign = [] then 0
    else
      let preemptions =
        Util.Numeric.sum_by
          (fun (name, _) ->
            let other = find_task t name in
            if other.period < tk.period then
              2 * Util.Numeric.ceil_div tk.period other.period
            else 0)
          foreign
      in
      t.reconfig_cost * (1 + preemptions)

let effective_wcet t p tk =
  let v = version_of t p tk.name in
  tk.wcet - v.gain + reload_cycles t p tk

let utilization t p =
  Util.Numeric.sum_byf
    (fun tk -> float_of_int (effective_wcet t p tk) /. float_of_int tk.period)
    t.tasks

let schedulable t p = utilization t p <= 1.

let pp_placement t fmt p =
  Format.fprintf fmt "@[<v>U=%.4f%s@," (utilization t p)
    (if schedulable t p then "" else " (unschedulable)");
  List.iter
    (fun tk ->
      let j = List.assoc tk.name p.version_of in
      let config =
        match List.assoc_opt tk.name p.config_of with
        | Some c -> Printf.sprintf "config %d" c
        | None -> "software"
      in
      Format.fprintf fmt "  %-10s v%d %-10s C'=%d@," tk.name j config
        (effective_wcet t p tk))
    t.tasks;
  Format.fprintf fmt "@]"
