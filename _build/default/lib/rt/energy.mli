(** Energy model with static voltage scaling (thesis §3.2.2).

    Lower processor utilization lets the operating point drop to a lower
    frequency/voltage pair.  We use the Transmeta TM5400 operating points
    the thesis used (300 MHz at 1.2 V up to 633 MHz at 1.6 V) and the
    static voltage-scaling rule of Pillai–Shin: run at the lowest
    frequency that keeps the task set schedulable — exactly (U ≤ 1) for
    EDF, conservatively (Liu–Layland bound) for RMS, matching the
    thesis's observation that RMS saves less energy because its scaling
    test is sufficient-only.

    Energy is reported in relative units: executed cycles × V², since
    dynamic power ∝ f·V² and execution time ∝ cycles/f. *)

type level = { mhz : int; volt : float }

val tm5400 : level list
(** Operating points, sorted by increasing frequency. *)

val fmax : level
(** The highest operating point (task periods are calibrated at this
    frequency). *)

type policy = Edf | Rms

val static_scale : policy -> n_tasks:int -> float -> level option
(** [static_scale policy ~n_tasks u] — lowest level sustaining a task
    set of utilization [u] (measured at {!fmax}); [None] when even
    {!fmax} cannot (set unschedulable). *)

val energy_per_hyperperiod : cycles:float -> level -> float
(** Relative energy to execute [cycles] at a level: cycles × V². *)

val saving_percent :
  policy -> n_tasks:int ->
  base:float * float -> custom:float * float -> float
(** [saving_percent policy ~n_tasks ~base:(u_b, cycles_b)
    ~custom:(u_c, cycles_c)] — percentage energy reduction of the
    customized configuration over the baseline, each run at its own
    statically-scaled operating point.  A configuration the conservative
    scaling test cannot place (typical for RMS, whose Liu–Layland test
    is sufficient-only) runs at {!fmax} — the caller guarantees actual
    schedulability, exactly as in the thesis's setup where such sets
    simply miss the scaling opportunity. *)
