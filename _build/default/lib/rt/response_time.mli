(** Response-time analysis for fixed-priority scheduling.

    The classic Joseph–Pandya recurrence: the worst-case response time of
    task i is the least fixed point of
    R = Cᵢ + Σ_{j higher priority} ⌈R/Pⱼ⌉·Cⱼ.
    For synchronous periodic tasks with deadline = period this is exact,
    so it must agree with Theorem 1's scheduling-point test — a property
    the test suite checks.  Exposed as an independent second opinion on
    the RMS machinery. *)

val response_time : (int * int) array -> int -> int option
(** [response_time tasks i] — tasks sorted by increasing period (=
    decreasing priority); worst-case response time of task [i], or
    [None] when the recurrence diverges past the deadline. *)

val schedulable : (int * int) list -> bool
(** Every task's response time is within its period. *)
