type level = { mhz : int; volt : float }

let tm5400 =
  [ { mhz = 300; volt = 1.2 }; { mhz = 366; volt = 1.3 };
    { mhz = 433; volt = 1.35 }; { mhz = 500; volt = 1.4 };
    { mhz = 533; volt = 1.45 }; { mhz = 600; volt = 1.5 };
    { mhz = 633; volt = 1.6 } ]

let fmax = { mhz = 633; volt = 1.6 }

type policy = Edf | Rms

let bound policy n_tasks =
  match policy with
  | Edf -> 1.0
  | Rms -> Sched.liu_layland_bound n_tasks

let static_scale policy ~n_tasks u =
  let limit = bound policy n_tasks in
  let feasible level =
    u *. (float_of_int fmax.mhz /. float_of_int level.mhz) <= limit
  in
  List.find_opt feasible tm5400

let energy_per_hyperperiod ~cycles level = cycles *. level.volt *. level.volt

let saving_percent policy ~n_tasks ~base:(u_b, cycles_b) ~custom:(u_c, cycles_c) =
  let level_of u = Option.value ~default:fmax (static_scale policy ~n_tasks u) in
  let e_b = energy_per_hyperperiod ~cycles:cycles_b (level_of u_b) in
  let e_c = energy_per_hyperperiod ~cycles:cycles_c (level_of u_c) in
  Util.Numeric.percent_change e_b e_c
