module IntSet = Set.Make (Int)

let total_utilization tasks =
  Util.Numeric.sum_byf
    (fun (c, p) -> float_of_int c /. float_of_int p)
    tasks

let edf_schedulable tasks = total_utilization tasks <= 1.

(* S_j(t) of Theorem 1: scheduling points for interference from the j
   highest-priority tasks.  Points that collapse to 0 are dropped (they
   correspond to no positive deadline and make the test vacuous). *)
let scheduling_points tasks j t =
  let rec s j t acc =
    if t <= 0 then acc
    else if j = 0 then IntSet.add t acc
    else
      let _, p = tasks.(j - 1) in
      let acc = s (j - 1) (t / p * p) acc in
      s (j - 1) t acc
  in
  s j t IntSet.empty

let rms_schedulable_prefix tasks i =
  let _, pi = tasks.(i) in
  let workload t =
    let w = ref 0 in
    for j = 0 to i do
      let c, p = tasks.(j) in
      w := !w + (Util.Numeric.ceil_div t p * c)
    done;
    !w
  in
  IntSet.exists (fun t -> workload t <= t) (scheduling_points tasks i pi)

let sort_by_period tasks =
  Array.of_list (List.sort (fun (_, p1) (_, p2) -> compare p1 p2) tasks)

let rms_schedulable tasks =
  let sorted = sort_by_period tasks in
  let n = Array.length sorted in
  let rec all i = i >= n || (rms_schedulable_prefix sorted i && all (i + 1)) in
  all 0

let liu_layland_bound n =
  if n <= 0 then 0.
  else float_of_int n *. ((2. ** (1. /. float_of_int n)) -. 1.)

let rms_schedulable_ll tasks =
  total_utilization tasks <= liu_layland_bound (List.length tasks)
