(** Schedulability analysis for EDF and RMS.

    EDF uses the exact utilization bound (U ≤ 1).  RMS uses the exact
    test of thesis Theorem 1 (the Bini–Buttazzo recurrence over the
    Sᵢ(t) point sets), which is necessary and sufficient — plus the
    classical Liu–Layland sufficient bound for the conservative checks
    the DVFS study needs. *)

val edf_schedulable : (int * int) list -> bool
(** [(cycles, period)] pairs; true iff Σ cycles/period ≤ 1. *)

val total_utilization : (int * int) list -> float

val rms_schedulable_prefix : (int * int) array -> int -> bool
(** [rms_schedulable_prefix tasks i] — tasks must be sorted by
    increasing period; checks that task [i] meets its deadline given
    interference from tasks [0..i] only (the Lᵢ ≤ 1 condition).  Lower
    priority tasks are irrelevant, which is what makes the
    branch-and-bound traversal order sound. *)

val rms_schedulable : (int * int) list -> bool
(** Exact RMS test for the whole set (max Lᵢ ≤ 1 after sorting by
    period). *)

val liu_layland_bound : int -> float
(** n (2^{1/n} − 1). *)

val rms_schedulable_ll : (int * int) list -> bool
(** Sufficient-only Liu–Layland test (used by the conservative static
    voltage-scaling path, as in the thesis's energy study). *)
