let response_time tasks i =
  let c_i, p_i = tasks.(i) in
  let rec iterate r =
    let interference = ref 0 in
    for j = 0 to i - 1 do
      let c_j, p_j = tasks.(j) in
      interference := !interference + (Util.Numeric.ceil_div r p_j * c_j)
    done;
    let r' = c_i + !interference in
    if r' > p_i then None else if r' = r then Some r else iterate r'
  in
  if c_i > p_i then None else iterate c_i

let schedulable tasks =
  let sorted =
    Array.of_list (List.sort (fun (_, p1) (_, p2) -> compare p1 p2) tasks)
  in
  let n = Array.length sorted in
  let rec all i = i >= n || (response_time sorted i <> None && all (i + 1)) in
  all 0
