type t = { name : string; period : int; wcet : int; curve : Isa.Config.t }

let make ~name ~period curve =
  if period <= 0 then invalid_arg "Task.make: period must be positive";
  { name; period; wcet = Isa.Config.base_cycles curve; curve }

let utilization t = float_of_int t.wcet /. float_of_int t.period

let utilization_at t (p : Isa.Config.point) =
  float_of_int p.cycles /. float_of_int t.period

let set_utilization tasks = Util.Numeric.sum_byf utilization tasks

let with_target_utilization target tasks =
  if target <= 0. then invalid_arg "Task.with_target_utilization";
  let n = List.length tasks in
  let share = target /. float_of_int n in
  List.map
    (fun t ->
      let period =
        max 1 (int_of_float (Float.round (float_of_int t.wcet /. share)))
      in
      { t with period })
    tasks

let hyperperiod tasks = Util.Numeric.lcm_list (List.map (fun t -> t.period) tasks)

let pp fmt t =
  Format.fprintf fmt "%s(C=%d, P=%d, U=%.3f, %d configs)" t.name t.wcet t.period
    (utilization t) (Isa.Config.size t.curve)
