lib/rt/task.mli: Format Isa
