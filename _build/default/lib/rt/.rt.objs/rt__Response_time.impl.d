lib/rt/response_time.ml: Array List Util
