lib/rt/sim.mli:
