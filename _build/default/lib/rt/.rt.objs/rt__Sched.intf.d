lib/rt/sched.mli:
