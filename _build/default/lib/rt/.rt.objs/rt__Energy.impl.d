lib/rt/energy.ml: List Option Sched Util
