lib/rt/sim.ml: Array List Util
