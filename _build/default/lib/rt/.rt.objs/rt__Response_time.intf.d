lib/rt/response_time.mli:
