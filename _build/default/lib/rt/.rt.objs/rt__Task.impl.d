lib/rt/task.ml: Float Format Isa List Util
