lib/rt/energy.mli:
