lib/rt/sched.ml: Array Int List Set Util
