(** Discrete-event preemptive uniprocessor scheduler simulation.

    Cross-validates the analytic schedulability tests: a task set passes
    the exact RMS test iff no job misses a deadline when simulated under
    fixed priorities over the hyperperiod, and likewise for EDF and the
    utilization bound.  Used by the property-based test suite, not by the
    selection algorithms themselves. *)

type policy = Edf | Fixed_priority
(** [Fixed_priority] assigns priorities by increasing period (RMS). *)

type outcome = {
  deadline_misses : int;
  preemptions : int;
  idle : int;  (** idle cycles over the simulated horizon *)
}

val run : ?horizon:int -> policy:policy -> (int * int) list -> outcome
(** [run ~policy tasks] simulates [(cycles, period)] tasks released
    synchronously at time 0 with deadlines equal to periods.  The default
    horizon is the hyperperiod (capped at 10^8 cycles; the cap is only a
    guard against pathological task sets in generated tests). *)

val schedulable : ?horizon:int -> policy:policy -> (int * int) list -> bool
(** No deadline miss over the horizon. *)
