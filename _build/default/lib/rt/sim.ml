type policy = Edf | Fixed_priority

type outcome = { deadline_misses : int; preemptions : int; idle : int }

type job = { task : int; deadline : int; mutable remaining : int }

let run ?horizon ~policy tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  Array.iter (fun (c, p) -> if c < 0 || p <= 0 then invalid_arg "Sim.run") tasks;
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
      let h = Util.Numeric.lcm_list (Array.to_list tasks |> List.map snd) in
      min h 100_000_000
  in
  (* Priority ranks for fixed priority: shorter period = higher priority. *)
  let rank = Array.make n 0 in
  let by_period = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (snd tasks.(a)) (snd tasks.(b))) by_period;
  Array.iteri (fun r t -> rank.(t) <- r) by_period;
  let next_release = Array.make n 0 in
  let active : job option array = Array.make n None in
  let misses = ref 0 and preemptions = ref 0 and idle = ref 0 in
  let last_run = ref (-1) in
  let time = ref 0 in
  while !time < horizon do
    (* Release pending jobs; an unfinished previous job has, by deadline =
       period, just missed its deadline. *)
    for i = 0 to n - 1 do
      if next_release.(i) <= !time then begin
        (match active.(i) with
         | Some j when j.remaining > 0 -> incr misses
         | Some _ | None -> ());
        let c, p = tasks.(i) in
        active.(i) <- Some { task = i; deadline = !time + p; remaining = c };
        next_release.(i) <- !time + p
      end
    done;
    let upcoming = Array.fold_left min max_int next_release in
    let ready =
      Array.to_list active
      |> List.filter_map (fun j ->
             match j with Some j when j.remaining > 0 -> Some j | _ -> None)
    in
    let better a b =
      match policy with
      | Edf -> if a.deadline <> b.deadline then a.deadline < b.deadline
               else rank.(a.task) < rank.(b.task)
      | Fixed_priority -> rank.(a.task) < rank.(b.task)
    in
    (match ready with
     | [] ->
       let until = min upcoming horizon in
       idle := !idle + (until - !time);
       last_run := -1;
       time := until
     | j0 :: rest ->
       let chosen = List.fold_left (fun a b -> if better b a then b else a) j0 rest in
       if !last_run >= 0 && !last_run <> chosen.task then begin
         (* Resuming a different task while the previous one is unfinished. *)
         match active.(!last_run) with
         | Some prev when prev.remaining > 0 -> incr preemptions
         | Some _ | None -> ()
       end;
       let until = min (min upcoming ( !time + chosen.remaining)) horizon in
       chosen.remaining <- chosen.remaining - (until - !time);
       last_run := chosen.task;
       time := until)
  done;
  (* Jobs whose deadline falls exactly at the horizon are judged too. *)
  Array.iter
    (function
      | Some j when j.remaining > 0 && j.deadline <= horizon -> incr misses
      | Some _ | None -> ())
    active;
  { deadline_misses = !misses; preemptions = !preemptions; idle = !idle }

let schedulable ?horizon ~policy tasks =
  (run ?horizon ~policy tasks).deadline_misses = 0
