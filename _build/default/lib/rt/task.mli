(** Periodic real-time tasks (thesis §3.1.1).

    A task releases a job every [period] cycles; each job needs [wcet]
    cycles of the base processor and must finish by the end of its
    period (deadline = period).  A task carries its configuration curve:
    choosing configuration [j] changes the execution requirement to
    [cycles_(i,j)] at silicon cost [area_(i,j)]. *)

type t = {
  name : string;
  period : int;  (** in base-processor cycles *)
  wcet : int;  (** software-only execution requirement *)
  curve : Isa.Config.t;  (** area/cycles trade-off, point 0 = software *)
}

val make : name:string -> period:int -> Isa.Config.t -> t
(** WCET is the curve's base cycle count.  Requires [period > 0]. *)

val utilization : t -> float
(** Software-only utilization [wcet / period]. *)

val utilization_at : t -> Isa.Config.point -> float
(** Utilization when running under the given configuration. *)

val set_utilization : t list -> float
(** Total software-only utilization of a task set. *)

val with_target_utilization : float -> t list -> t list
(** Rescale periods so the set's software-only utilization equals the
    target, giving every task an equal utilization share — the
    period-setting rule of §3.2 ([P_i = α_i·C_i]). *)

val hyperperiod : t list -> int

val pp : Format.formatter -> t -> unit
