type t = int

let frac_bits = 16
let scale = 1 lsl frac_bits
let scale_f = float_of_int scale

let of_float f = int_of_float (Float.round (f *. scale_f))
let to_float x = float_of_int x /. scale_f
let of_int n = n * scale
let zero = 0
let one = scale

let add = ( + )
let sub = ( - )
let mul a b = (a * b) asr frac_bits
let div a b = if b = 0 then raise Division_by_zero else (a lsl frac_bits) / b
let neg x = -x
let abs = Stdlib.abs
let compare = Stdlib.compare

(* Newton iteration on the underlying integer: sqrt(x * 2^16) of the raw
   value gives the Q16.16 square root. *)
let sqrt x =
  assert (x >= 0);
  if x = 0 then 0
  else
    let target = x lsl frac_bits in
    let rec refine guess =
      let next = (guess + (target / guess)) / 2 in
      if next >= guess then guess else refine next
    in
    refine (max 1 (target / 2))

let pp fmt x = Format.fprintf fmt "%.5f" (to_float x)
