(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic components of the reproduction draw from this generator
    so that every experiment is bit-for-bit repeatable from a seed.  The
    global [Random] module is never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] draws uniformly from the inclusive range
    [lo, hi].  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent child generator; advances the parent. *)
