(** Fixed-capacity mutable bitsets over [0, capacity).

    Used for dense node-set operations on data-flow graphs (convexity
    checks, reachability closures) where lists and hash sets are too
    slow. *)

type t

val create : int -> t
(** [create capacity] — all bits clear.  Capacity must be non-negative. *)

val capacity : t -> int
val copy : t -> t
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] — [dst := dst ∪ src].  Capacities must match. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] — [dst := dst ∩ src]. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] — [dst := dst \ src]. *)

val intersects : t -> t -> bool
(** True when the two sets share at least one element. *)

val subset : t -> t -> bool
(** [subset a b] — every element of [a] is in [b]. *)

val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
(** [of_list capacity elts]. *)
