type t = { words : Bytes.t; capacity : int }

let words_for cap = (cap + 7) / 8

let create capacity =
  assert (capacity >= 0);
  { words = Bytes.make (words_for capacity) '\000'; capacity }

let capacity t = t.capacity

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let check t i = assert (i >= 0 && i < t.capacity)

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let is_empty t =
  let result = ref true in
  Bytes.iter (fun c -> if c <> '\000' then result := false) t.words;
  !result

let binop f dst src =
  assert (dst.capacity = src.capacity);
  for i = 0 to Bytes.length dst.words - 1 do
    let a = Char.code (Bytes.get dst.words i)
    and b = Char.code (Bytes.get src.words i) in
    Bytes.set dst.words i (Char.chr (f a b land 0xff))
  done

let union_into dst src = binop ( lor ) dst src
let inter_into dst src = binop ( land ) dst src
let diff_into dst src = binop (fun a b -> a land lnot b) dst src

let intersects a b =
  assert (a.capacity = b.capacity);
  let hit = ref false in
  for i = 0 to Bytes.length a.words - 1 do
    if Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i) <> 0 then
      hit := true
  done;
  !hit

let subset a b =
  assert (a.capacity = b.capacity);
  let ok = ref true in
  for i = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.get a.words i) and y = Char.code (Bytes.get b.words i) in
    if x land lnot y <> 0 then ok := false
  done;
  !ok

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity elts =
  let t = create capacity in
  List.iter (set t) elts;
  t
