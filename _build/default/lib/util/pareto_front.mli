(** Two-objective Pareto-front utilities (both objectives minimised).

    Points are pairs [(cost, value)] — e.g. (hardware area, processor
    cycles) — and a point [p] dominates [q] when both coordinates of [p]
    are no larger than those of [q] and at least one is strictly
    smaller. *)

type point = { cost : int; value : float }

val dominates : point -> point -> bool
(** [dominates p q] — [p] is at least as good in both objectives and
    strictly better in one. *)

val front : point list -> point list
(** Keep only non-dominated points, sorted by increasing cost (and, among
    equal costs, keep the smallest value).  The result is strictly
    decreasing in value as cost increases. *)

val merge : point list -> point list -> point list
(** Pareto front of the union of two fronts. *)

val is_front : point list -> bool
(** True when the list is sorted by increasing cost, has no duplicate
    costs, and no point dominates another. *)

val eps_covers : eps:float -> exact:point list -> point list -> bool
(** [eps_covers ~eps ~exact approx] — every exact point [(c, v)] has some
    approximate point [(c', v')] with [c' <= (1+eps) c] and
    [v' <= (1+eps) v] (the Papadimitriou–Yannakakis ε-cover). *)

val best_value_at : cost:int -> point list -> float option
(** Smallest value achievable on the front at cost budget [cost]. *)
