type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let in_range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = int64 t }
