(** Q16.16 fixed-point arithmetic.

    Used by the bio-monitoring case study (thesis Chapter 8), where
    floating-point signal-processing kernels are converted to fixed point
    before customization — embedded cores without an FPU execute fixed
    point natively and the conversion is what makes the kernels amenable
    to custom instructions. *)

type t
(** A fixed-point number with 16 fractional bits. *)

val of_float : float -> t
val to_float : t -> float
val of_int : int -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div _ b] raises [Division_by_zero] when [b] is {!zero}. *)

val neg : t -> t
val abs : t -> t
val compare : t -> t -> int
val sqrt : t -> t
(** Integer Newton iteration; requires a non-negative argument. *)

val pp : Format.formatter -> t -> unit
