lib/util/pareto_front.ml: List
