lib/util/pareto_front.mli:
