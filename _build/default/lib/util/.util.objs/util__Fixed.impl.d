lib/util/fixed.ml: Float Format Stdlib
