lib/util/prng.mli:
