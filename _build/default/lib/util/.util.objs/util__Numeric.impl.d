lib/util/numeric.ml: List
