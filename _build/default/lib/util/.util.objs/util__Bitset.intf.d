lib/util/bitset.mli:
