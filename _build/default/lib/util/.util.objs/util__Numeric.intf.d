lib/util/numeric.mli:
