(** Small integer-arithmetic helpers shared across the library. *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 n = n].  Arguments must be
    non-negative. *)

val gcd_list : int list -> int
(** GCD of a list; 0 for the empty list. *)

val lcm : int -> int -> int
(** Least common multiple; [lcm 0 n = 0]. *)

val lcm_list : int list -> int
(** LCM of a list; 1 for the empty list. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ⌈a / b⌉ for positive [b] and non-negative [a]. *)

val sum_by : ('a -> int) -> 'a list -> int
(** Integer sum of a projection over a list. *)

val sum_byf : ('a -> float) -> 'a list -> float
(** Float sum of a projection over a list. *)

val clamp : lo:int -> hi:int -> int -> int
(** Restrict a value to the inclusive range [lo, hi]. *)

val percent_change : float -> float -> float
(** [percent_change base v] is [(base - v) / base * 100.]; 0 when [base]
    is 0. *)
