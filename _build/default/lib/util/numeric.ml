let rec gcd a b =
  assert (a >= 0 && b >= 0);
  if b = 0 then a else gcd b (a mod b)

let gcd_list l = List.fold_left gcd 0 l

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

let lcm_list l = List.fold_left lcm 1 l

let ceil_div a b =
  assert (b > 0 && a >= 0);
  (a + b - 1) / b

let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

let sum_byf f l = List.fold_left (fun acc x -> acc +. f x) 0. l

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let percent_change base v = if base = 0. then 0. else (base -. v) /. base *. 100.
