type point = { cost : int; value : float }

let dominates p q =
  p.cost <= q.cost && p.value <= q.value && (p.cost < q.cost || p.value < q.value)

let compare_points p q =
  match compare p.cost q.cost with 0 -> compare p.value q.value | c -> c

(* Sweep in increasing cost order; a point survives iff its value is
   strictly below everything already kept (ties in cost keep the best
   value only, thanks to the secondary sort). *)
let front points =
  let sorted = List.sort compare_points points in
  let rec sweep best acc = function
    | [] -> List.rev acc
    | p :: rest ->
      if p.value < best then sweep p.value (p :: acc) rest else sweep best acc rest
  in
  sweep infinity [] sorted

let merge a b = front (a @ b)

let is_front points =
  let rec check prev = function
    | [] -> true
    | p :: rest ->
      (match prev with
       | None -> check (Some p) rest
       | Some q -> q.cost < p.cost && q.value > p.value && check (Some p) rest)
  in
  check None points

let eps_covers ~eps ~exact approx =
  let covered p =
    List.exists
      (fun q ->
        float_of_int q.cost <= (1. +. eps) *. float_of_int p.cost +. 1e-9
        && q.value <= ((1. +. eps) *. p.value) +. 1e-9)
      approx
  in
  List.for_all covered exact

let best_value_at ~cost points =
  List.fold_left
    (fun best p ->
      if p.cost > cost then best
      else
        match best with
        | None -> Some p.value
        | Some v -> Some (min v p.value))
    None points
