(** The partitioning problem for runtime reconfiguration of custom
    instructions (thesis §6.2).

    An application's hot loops each come with several custom-instruction
    set (CIS) {e versions} trading performance gain against area; version
    0 is always the software version (0 gain, 0 area).  The fabric holds
    one {e configuration} of at most [max_area] at a time; switching
    configurations costs [reconfig_cost] cycles.  A solution selects one
    version per loop and clubs the hardware-mapped loops into
    configurations; its net gain is total version gain minus the
    reconfiguration cycles incurred when the profiled loop trace is
    replayed against the placement. *)

type version = { gain : int; area : int }

type hot_loop = {
  name : string;
  versions : version array;
      (** version 0 is software (0, 0); gains and areas strictly increase *)
}

val loop : string -> (int * int) list -> hot_loop
(** [loop name [(gain, area); ...]] — software version added and points
    sorted/validated ([Invalid_argument] on a non-monotone curve). *)

type t = {
  loops : hot_loop list;
  trace : Ir.Trace.t;
  max_area : int;  (** capacity of one configuration *)
  reconfig_cost : int;  (** cycles per fabric reload *)
}

type placement = {
  version_of : (string * int) list;  (** chosen version index per loop *)
  config_of : (string * int) list;
      (** configuration id per hardware-mapped loop (version > 0) *)
}

val software_placement : t -> placement

val num_configs : placement -> int

val feasible : t -> placement -> bool
(** Every loop has exactly one valid version; every hardware loop is in a
    configuration; each configuration's summed version area fits
    [max_area]. *)

val raw_gain : t -> placement -> int
(** Σ selected version gains, before reconfiguration cost. *)

val reconfigurations : t -> placement -> int
(** Fabric reloads counted by replaying the trace. *)

val net_gain : t -> placement -> int
(** [raw_gain − reconfigurations × reconfig_cost]. *)

val version_of : t -> placement -> string -> version
val find_loop : t -> string -> hot_loop
