lib/reconfig/synthetic.ml: Array Float Hashtbl Ir List Option Printf Problem String Util
