lib/reconfig/problem.ml: Array Hashtbl Ir List Option Printf Util
