lib/reconfig/algorithms.mli: Partition Problem
