lib/reconfig/problem.mli: Ir
