lib/reconfig/synthetic.mli: Problem
