lib/reconfig/algorithms.ml: Array Hashtbl Ir List Partition Problem String Util
