(** Partitioning algorithms for runtime reconfiguration (thesis §6.3).

    - {!spatial_select} — Algorithm 7: pseudo-polynomial DP choosing one
      CIS version per loop to maximise gain under an area budget.
    - {!iterative} — Algorithm 6: for every configuration count k, a
      global spatial pass over a virtual area k·MaxA, temporal k-way
      partitioning of the reconfiguration-cost graph (with and without
      the CIS selection), and a local spatial patch-up per
      configuration; the best net gain over all k wins.
    - {!greedy} — Algorithm 8: build one configuration at a time, always
      adding the version with the best expected net gain.
    - {!exhaustive} — optimal search over all set partitions of the hot
      loops (infeasible beyond ~12 loops, as Table 6.1/Figure 6.8
      report). *)

val spatial_select :
  loops:Problem.hot_loop list -> area:int -> (string * int) list
(** Gain-maximal version index per loop under a total area budget. *)

val iterative :
  ?seed:int -> ?imbalances:float list -> Problem.t -> Problem.placement
(** The chapter's main algorithm.  [imbalances] is the portfolio of
    balance tolerances tried in the temporal phase (default
    [[0.25; 1.0; 3.0]]; the first value is the thesis's equal-weight
    heuristic) — exposed for the ablation study. *)

val greedy : Problem.t -> Problem.placement

val exhaustive : ?max_partitions:int -> Problem.t -> Problem.placement option
(** [None] when the number of set partitions exceeds [max_partitions]
    (default 500_000) — the search is refused rather than silently
    truncated.

    Semantics, exactly as the thesis defines its exhaustive search
    (§6.4): optimal over placements of the form "set partition of the
    loops + gain-maximal version selection per configuration".  This
    dominates {!iterative} for any grouping it shares, but it is not the
    global optimum of the problem: per-configuration gain-max selection
    never leaves a profitable loop in software, whereas doing so can
    occasionally pay by erasing that loop's trace adjacencies — both
    {!greedy} and (rarely) {!iterative} can exploit that and edge past
    it. *)

val rcg :
  Problem.t -> keep:(string -> bool) -> weight_of:(string -> int) ->
  string array * Partition.Graph.t
(** The reconfiguration-cost graph of the kept loops: vertex order and
    graph (exposed for tests: the edge weights are the trace's
    adjacent-pair counts after erasing non-kept loops). *)
