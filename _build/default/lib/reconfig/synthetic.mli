(** Synthetic problem instances for the scalability study (thesis
    §6.4.1): 5–100 hot loops, 1–10 CIS versions per loop with gains in
    [1000, 10000] time units and areas in [1, 100] (monotone in gain),
    random reconfiguration adjacencies realised as an actual loop trace
    (Eulerian walk), so that trace replay and RCG edge-cut agree by
    construction. *)

val generate : seed:int -> loops:int -> Problem.t

val max_area : int
(** Per-configuration capacity used by the generator. *)

val reconfig_cost : int
(** Per-reload cost used by the generator. *)
