(* Algorithm 7: group-knapsack DP over the area budget — each loop picks
   exactly one version; maximise total gain. *)
let spatial_select ~loops ~area =
  if area < 0 then invalid_arg "spatial_select: negative area";
  let areas =
    List.concat_map
      (fun (l : Problem.hot_loop) ->
        Array.to_list l.versions
        |> List.filter_map (fun (v : Problem.version) ->
               if v.area > 0 then Some v.area else None))
      loops
  in
  let delta = max 1 (Util.Numeric.gcd_list (area :: areas)) in
  let cells = (area / delta) + 1 in
  let best = Array.make cells 0 in
  let choice = Array.make cells [] in
  List.iter
    (fun (l : Problem.hot_loop) ->
      let next = Array.copy best in
      let next_choice = Array.map (fun c -> (l.name, 0) :: c) choice in
      for cell = 0 to cells - 1 do
        Array.iteri
          (fun j (v : Problem.version) ->
            if j > 0 && v.area <= cell * delta then begin
              let from = cell - (v.area + delta - 1) / delta in
              let g = best.(from) + v.gain in
              if g > next.(cell) then begin
                next.(cell) <- g;
                next_choice.(cell) <- (l.name, j) :: choice.(from)
              end
            end)
          l.versions
      done;
      Array.blit next 0 best 0 cells;
      Array.blit next_choice 0 choice 0 cells)
    loops;
  List.rev choice.(cells - 1)

let rcg (t : Problem.t) ~keep ~weight_of =
  let kept =
    List.filter (fun (l : Problem.hot_loop) -> keep l.name) t.loops
    |> List.map (fun (l : Problem.hot_loop) -> l.name)
    |> Array.of_list
  in
  let index name =
    let rec find i = if kept.(i) = name then i else find (i + 1) in
    find 0
  in
  let edges =
    Ir.Trace.pair_counts ~keep:(fun n -> Array.exists (( = ) n) kept) t.trace
    |> List.map (fun ((a, b), w) -> (index a, index b, w))
  in
  let vertex_weights = Array.map weight_of kept in
  (kept, Partition.Graph.make ~vertex_weights ~edges)

(* Local spatial patch-up: re-select versions for the loops of each
   configuration under the real per-configuration capacity; loops that
   fall back to version 0 leave the configuration. *)
let local_spatial (t : Problem.t) groups =
  let version_of = ref [] and config_of = ref [] in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun cid names ->
      let loops = List.map (Problem.find_loop t) names in
      List.iter
        (fun (name, j) ->
          Hashtbl.replace seen name ();
          version_of := (name, j) :: !version_of;
          if j > 0 then config_of := (name, cid) :: !config_of)
        (spatial_select ~loops ~area:t.max_area))
    groups;
  (* loops not in any group run in software *)
  List.iter
    (fun (l : Problem.hot_loop) ->
      if not (Hashtbl.mem seen l.name) then
        version_of := (l.name, 0) :: !version_of)
    t.loops;
  { Problem.version_of = !version_of; config_of = !config_of }

let groups_of_assignment names assignment k =
  List.init k (fun c ->
      Array.to_list names
      |> List.filteri (fun i _ -> assignment.(i) = c))
  |> List.filter (fun g -> g <> [])

let iterative ?(seed = 1) ?(imbalances = [ 0.25; 1.0; 3.0 ]) (t : Problem.t) =
  let n = List.length t.loops in
  let best = ref (Problem.software_placement t) in
  let best_gain = ref (Problem.net_gain t !best) in
  let consider placement =
    if Problem.feasible t placement then begin
      let g = Problem.net_gain t placement in
      if g > !best_gain then begin
        best := placement;
        best_gain := g
      end
    end
  in
  (* The k-way partitioner is sensitive to its seed and, much more, to
     the balance constraint: equal-weight parts are the thesis's
     heuristic default, but when a few loops dominate the area the best
     clusterings are lopsided.  A small portfolio costs little (the
     spatial DPs dominate the runtime). *)
  let portfolio =
    List.concat_map (fun imb -> [ (seed, imb); (seed + 13, imb) ]) imbalances
  in
  for k = 1 to max 1 n do
    (* Phase 1: global spatial partitioning over a virtual area k·MaxA. *)
    let global = spatial_select ~loops:t.loops ~area:(k * t.max_area) in
    let hw = List.filter (fun (_, j) -> j > 0) global in
    (* Phase 2/3 with the CIS selection. *)
    (if hw <> [] then begin
       let keep name = List.mem_assoc name hw in
       let weight_of name =
         let l = Problem.find_loop t name in
         l.versions.(List.assoc name hw).area
       in
       let names, graph = rcg t ~keep ~weight_of in
       let k' = min k (Array.length names) in
       List.iter
         (fun (seed, imbalance) ->
           let r = Partition.Kway.partition ~imbalance ~seed ~k:k' graph in
           consider
             (local_spatial t
                (groups_of_assignment names r.Partition.Kway.assignment k')))
         portfolio
     end);
    (* Phase 2/3 ignoring the CIS selection: unit weights, all loops. *)
    let names, graph = rcg t ~keep:(fun _ -> true) ~weight_of:(fun _ -> 1) in
    if Array.length names > 0 then begin
      let k' = min k (Array.length names) in
      List.iter
        (fun (seed, imbalance) ->
          let r = Partition.Kway.partition ~imbalance ~seed ~k:k' graph in
          consider
            (local_spatial t
               (groups_of_assignment names r.Partition.Kway.assignment k')))
        portfolio
    end
  done;
  !best

(* Algorithm 8. *)
let greedy (t : Problem.t) =
  let committed = ref [] (* (name, version, config) *) in
  let current = ref [] (* (name, version) of the configuration being built *)
  and current_id = ref 0 in
  let selected name =
    List.exists (fun (n, _, _) -> n = name) !committed
    || List.mem_assoc name !current
  in
  let current_area () =
    Util.Numeric.sum_by
      (fun (name, j) -> (Problem.find_loop t name).versions.(j).area)
      !current
  in
  let reconfigs_with extra =
    let config_of name =
      match List.find_opt (fun (n, _, _) -> n = name) !committed with
      | Some (_, _, c) -> Some c
      | None ->
        if List.mem_assoc name !current then Some !current_id
        else if extra = Some name then Some !current_id
        else None
    in
    Ir.Trace.reconfigurations ~config_of t.trace
  in
  let finished = ref false in
  while not !finished do
    let base_reconfigs = reconfigs_with None in
    let best = ref None in
    List.iter
      (fun (l : Problem.hot_loop) ->
        if not (selected l.name) then begin
          let extra_cost =
            (reconfigs_with (Some l.name) - base_reconfigs) * t.reconfig_cost
          in
          Array.iteri
            (fun j (v : Problem.version) ->
              if j > 0 && v.area <= t.max_area - current_area () then begin
                let expected = v.gain - extra_cost in
                if expected > 0 then
                  match !best with
                  | Some (bg, _, _) when bg >= expected -> ()
                  | Some _ | None -> best := Some (expected, l.name, j)
              end)
            l.versions
        end)
      t.loops;
    match !best with
    | Some (_, name, j) -> current := (name, j) :: !current
    | None ->
      if !current <> [] then begin
        committed :=
          !committed @ List.map (fun (n, j) -> (n, j, !current_id)) !current;
        current := [];
        incr current_id
      end
      else finished := true
  done;
  let version_of =
    List.map
      (fun (l : Problem.hot_loop) ->
        match List.find_opt (fun (n, _, _) -> n = l.name) !committed with
        | Some (_, j, _) -> (l.name, j)
        | None -> (l.name, 0))
      t.loops
  in
  let config_of = List.map (fun (n, _, c) -> (n, c)) !committed in
  { Problem.version_of; config_of }

(* Set-partition enumeration (restricted-growth strings). *)
let exhaustive ?(max_partitions = 500_000) (t : Problem.t) =
  let names = Array.of_list (List.map (fun (l : Problem.hot_loop) -> l.name) t.loops) in
  let n = Array.length names in
  (* Bell number check against the cap. *)
  let bell n =
    let b = Array.make (n + 1) 0. in
    b.(0) <- 1.;
    for i = 1 to n do
      (* B(i) = Σ C(i-1,k) B(k) *)
      let sum = ref 0. in
      let c = ref 1. in
      for k = 0 to i - 1 do
        sum := !sum +. (!c *. b.(k));
        c := !c *. float_of_int (i - 1 - k) /. float_of_int (k + 1)
      done;
      b.(i) <- !sum
    done;
    b.(n)
  in
  if bell n > float_of_int max_partitions then None
  else begin
    let best = ref (Problem.software_placement t) in
    let best_gain = ref (Problem.net_gain t !best) in
    let assignment = Array.make n 0 in
    (* The same loop group recurs in many set partitions; memoise its
       per-configuration version selection. *)
    let memo = Hashtbl.create 4096 in
    let select_versions group =
      let key = String.concat "|" group in
      match Hashtbl.find_opt memo key with
      | Some sel -> sel
      | None ->
        let loops = List.map (Problem.find_loop t) group in
        let sel = spatial_select ~loops ~area:t.max_area in
        Hashtbl.add memo key sel;
        sel
    in
    let local_spatial_memo groups =
      let version_of = ref [] and config_of = ref [] in
      List.iteri
        (fun cid group ->
          List.iter
            (fun (name, j) ->
              version_of := (name, j) :: !version_of;
              if j > 0 then config_of := (name, cid) :: !config_of)
            (select_versions group))
        groups;
      { Problem.version_of = !version_of; config_of = !config_of }
    in
    let rec enumerate i max_used =
      if i = n then begin
        let k = max_used + 1 in
        let groups = groups_of_assignment names assignment k in
        let placement = local_spatial_memo groups in
        if Problem.feasible t placement then begin
          let g = Problem.net_gain t placement in
          if g > !best_gain then begin
            best := placement;
            best_gain := g
          end
        end
      end
      else
        for c = 0 to min (max_used + 1) (n - 1) do
          assignment.(i) <- c;
          enumerate (i + 1) (max max_used c)
        done
    in
    if n > 0 then enumerate 0 (-1);
    Some !best
  end
