let max_area = 128
let reconfig_cost = 500

let generate ~seed ~loops:n =
  if n < 2 then invalid_arg "Synthetic.generate: need at least 2 loops";
  let prng = Util.Prng.create seed in
  let name i = Printf.sprintf "loop%02d" i in
  let loops =
    List.init n (fun i ->
        let n_versions = Util.Prng.in_range prng 1 9 in
        let areas =
          List.init n_versions (fun _ -> Util.Prng.in_range prng 1 100)
          |> List.sort_uniq compare
        in
        let gains =
          List.init (List.length areas) (fun _ -> Util.Prng.in_range prng 1000 10_000)
          |> List.sort_uniq compare
        in
        (* pair sorted areas with sorted gains: versions strictly improve *)
        let k = min (List.length areas) (List.length gains) in
        let take k l = List.filteri (fun i _ -> i < k) l in
        Problem.loop (name i) (List.combine (take k gains) (take k areas)))
  in
  (* Random adjacency counts, then parity repair (each odd-degree pair
     bumped by one) and connectivity repair (bridge components with an
     even count) so an Eulerian circuit exists. *)
  let counts = Hashtbl.create 64 in
  let bump a b by =
    let key = if a <= b then (a, b) else (b, a) in
    Hashtbl.replace counts key (by + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Util.Prng.float prng 1.0 < Float.min 1.0 (6.0 /. float_of_int n) then
        bump (name i) (name j) (Util.Prng.in_range prng 1 12)
    done
  done;
  (* connectivity: chain all loops with an even count where isolated *)
  let degree = Hashtbl.create 16 in
  let add_degree v d =
    Hashtbl.replace degree v (d + Option.value ~default:0 (Hashtbl.find_opt degree v))
  in
  Hashtbl.iter (fun (a, b) c -> add_degree a c; add_degree b c) counts;
  (* union-find over loop indices *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  Hashtbl.iter
    (fun (a, b) _ ->
      let ia = int_of_string (String.sub a 4 2)
      and ib = int_of_string (String.sub b 4 2) in
      parent.(find ia) <- find ib)
    counts;
  for i = 1 to n - 1 do
    if find i <> find 0 then begin
      bump (name 0) (name i) 2;
      parent.(find i) <- find 0
    end
  done;
  (* parity repair *)
  let recompute_degrees () =
    Hashtbl.reset degree;
    Hashtbl.iter (fun (a, b) c -> add_degree a c; add_degree b c) counts
  in
  recompute_degrees ();
  let odd =
    List.init n (fun i -> name i)
    |> List.filter (fun v -> Option.value ~default:0 (Hashtbl.find_opt degree v) mod 2 = 1)
  in
  let rec pair_up = function
    | a :: b :: rest ->
      bump a b 1;
      pair_up rest
    | [ _ ] -> assert false (* odd count of odd-degree vertices is impossible *)
    | [] -> ()
  in
  pair_up odd;
  let trace =
    Ir.Trace.of_pair_counts (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  { Problem.loops; trace; max_area; reconfig_cost }
