type version = { gain : int; area : int }

type hot_loop = { name : string; versions : version array }

let loop name points =
  let sorted = List.sort (fun (_, a1) (_, a2) -> compare a1 a2) points in
  let rec validate prev = function
    | [] -> ()
    | (g, a) :: rest ->
      (match prev with
       | Some (pg, pa) ->
         if g <= pg || a <= pa then
           invalid_arg
             (Printf.sprintf "Problem.loop %s: versions must strictly improve" name)
       | None -> if g <= 0 || a <= 0 then invalid_arg "Problem.loop: non-positive version");
      validate (Some (g, a)) rest
  in
  validate None sorted;
  { name;
    versions =
      Array.of_list
        ({ gain = 0; area = 0 } :: List.map (fun (gain, area) -> { gain; area }) sorted) }

type t = {
  loops : hot_loop list;
  trace : Ir.Trace.t;
  max_area : int;
  reconfig_cost : int;
}

type placement = {
  version_of : (string * int) list;
  config_of : (string * int) list;
}

let find_loop t name =
  match List.find_opt (fun l -> l.name = name) t.loops with
  | Some l -> l
  | None -> raise Not_found

let software_placement t =
  { version_of = List.map (fun l -> (l.name, 0)) t.loops; config_of = [] }

let num_configs p =
  List.map snd p.config_of |> List.sort_uniq compare |> List.length

let version_of t p name =
  let l = find_loop t name in
  l.versions.(List.assoc name p.version_of)

let feasible t p =
  (* one version per loop, in range *)
  List.for_all
    (fun l ->
      match List.assoc_opt l.name p.version_of with
      | Some v -> v >= 0 && v < Array.length l.versions
      | None -> false)
    t.loops
  && List.length p.version_of = List.length t.loops
  (* hardware loops have configurations, software loops do not *)
  && List.for_all
       (fun (name, v) ->
         let in_config = List.mem_assoc name p.config_of in
         if v > 0 then in_config else not in_config)
       p.version_of
  (* per-configuration capacity *)
  &&
  let config_area = Hashtbl.create 8 in
  List.iter
    (fun (name, c) ->
      let area = (version_of t p name).area in
      Hashtbl.replace config_area c
        (area + Option.value ~default:0 (Hashtbl.find_opt config_area c)))
    p.config_of;
  Hashtbl.fold (fun _ area acc -> acc && area <= t.max_area) config_area true

let raw_gain t p =
  Util.Numeric.sum_by (fun (name, _) -> (version_of t p name).gain) p.version_of

let reconfigurations t p =
  let config_of name = List.assoc_opt name p.config_of in
  Ir.Trace.reconfigurations ~config_of t.trace

let net_gain t p = raw_gain t p - (reconfigurations t p * t.reconfig_cost)
