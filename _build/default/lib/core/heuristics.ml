type strategy =
  | Equal_division
  | Smallest_deadline_first
  | Highest_reduction_first
  | Best_ratio_first

let all =
  [ Equal_division; Smallest_deadline_first; Highest_reduction_first;
    Best_ratio_first ]

let name = function
  | Equal_division -> "equal-area-division"
  | Smallest_deadline_first -> "smallest-deadline-first"
  | Highest_reduction_first -> "highest-utilization-reduction-first"
  | Best_ratio_first -> "best-reduction/area-ratio-first"

let best_reduction (task : Rt.Task.t) =
  Rt.Task.utilization task
  -. float_of_int (Isa.Config.min_cycles task.curve) /. float_of_int task.period

let best_ratio (task : Rt.Task.t) =
  Array.fold_left
    (fun acc (p : Isa.Config.point) ->
      if p.area = 0 then acc
      else
        let reduction = Rt.Task.utilization task -. Rt.Task.utilization_at task p in
        Float.max acc (reduction /. float_of_int p.area))
    0.
    (Isa.Config.points task.curve)

let serve_in_order order ~budget tasks =
  let ordered = List.stable_sort order tasks in
  let remaining = ref budget in
  let picks =
    List.map
      (fun (task : Rt.Task.t) ->
        let p = Isa.Config.best_at task.curve !remaining in
        remaining := !remaining - p.Isa.Config.area;
        (task, p))
      ordered
  in
  (* Restore the caller's task order for readability. *)
  let find t = List.assq t picks in
  Selection.of_assignment (List.map (fun t -> (t, find t)) tasks)

let run strategy ~budget tasks =
  match strategy with
  | Equal_division ->
    let share = budget / max 1 (List.length tasks) in
    Selection.of_assignment
      (List.map
         (fun (task : Rt.Task.t) -> (task, Isa.Config.best_at task.curve share))
         tasks)
  | Smallest_deadline_first ->
    serve_in_order
      (fun (a : Rt.Task.t) (b : Rt.Task.t) -> compare a.period b.period)
      ~budget tasks
  | Highest_reduction_first ->
    serve_in_order
      (fun a b -> compare (best_reduction b) (best_reduction a))
      ~budget tasks
  | Best_ratio_first ->
    serve_in_order (fun a b -> compare (best_ratio b) (best_ratio a)) ~budget tasks
