(** Common types for inter-task custom-instruction selection
    (thesis §3.1.1).

    A solution assigns one configuration from each task's curve so that
    the set is schedulable under the given policy, total area fits the
    budget, and total utilization is minimal. *)

type t = {
  assignment : (Rt.Task.t * Isa.Config.point) list;
  utilization : float;
  area : int;  (** total silicon spent, deci-adders *)
}

val software : Rt.Task.t list -> t
(** Every task in its area-0 configuration. *)

val of_assignment : (Rt.Task.t * Isa.Config.point) list -> t
(** Compute utilization and area for a full assignment. *)

val feasible : budget:int -> t -> bool
(** Within budget and each point belongs to its task's curve. *)

val cycles_per_hyperperiod : t -> float
(** Σ (H/Pᵢ)·cᵢ over the hyperperiod H — the energy accounting basis.
    Computed in floating point to avoid hyperperiod overflow. *)

val pp : Format.formatter -> t -> unit
