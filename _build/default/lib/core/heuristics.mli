(** The per-task heuristic baselines of the motivating example
    (Figure 3.2): customizing tasks in isolation misses solutions the
    optimal inter-task selection finds.

    Each strategy allocates the shared area budget without a global
    view: either by splitting it equally, or by fully serving tasks one
    at a time in some priority order.  The experiments show these fail
    on task sets the DP/branch-and-bound schedules. *)

type strategy =
  | Equal_division
      (** ⌊budget/N⌋ to every task, each customized independently *)
  | Smallest_deadline_first
      (** serve tasks in increasing period order *)
  | Highest_reduction_first
      (** serve tasks by largest achievable utilization reduction *)
  | Best_ratio_first
      (** serve tasks by best reduction-per-area ratio *)

val all : strategy list
val name : strategy -> string

val run : strategy -> budget:int -> Rt.Task.t list -> Selection.t
(** Greedy assignment under the strategy; each served task takes its
    maximum-reduction configuration that fits its remaining share. *)
