lib/core/heuristics.ml: Array Float Isa List Rt Selection
