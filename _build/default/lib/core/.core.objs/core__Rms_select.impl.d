lib/core/rms_select.ml: Array Engine Isa List Option Rt Selection
