lib/core/rms_select.ml: Array Isa List Option Rt Selection
