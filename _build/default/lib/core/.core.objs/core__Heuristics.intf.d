lib/core/heuristics.mli: Rt Selection
