lib/core/edf_select.ml: Array Engine Isa List Rt Selection Util
