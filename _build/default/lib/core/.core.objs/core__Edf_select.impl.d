lib/core/edf_select.ml: Array Isa List Rt Selection Util
