lib/core/edf_select.mli: Rt Selection
