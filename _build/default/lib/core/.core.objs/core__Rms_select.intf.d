lib/core/rms_select.mli: Rt Selection
