lib/core/selection.mli: Format Isa Rt
