lib/core/selection.ml: Array Format Isa List Rt Util
