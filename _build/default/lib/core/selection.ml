type t = {
  assignment : (Rt.Task.t * Isa.Config.point) list;
  utilization : float;
  area : int;
}

let of_assignment assignment =
  { assignment;
    utilization =
      Util.Numeric.sum_byf
        (fun (task, point) -> Rt.Task.utilization_at task point)
        assignment;
    area =
      Util.Numeric.sum_by (fun (_, point) -> point.Isa.Config.area) assignment }

let software tasks =
  of_assignment
    (List.map
       (fun (task : Rt.Task.t) ->
         (task, { Isa.Config.area = 0; cycles = task.wcet }))
       tasks)

let feasible ~budget t =
  t.area <= budget
  && List.for_all
       (fun ((task : Rt.Task.t), point) ->
         Array.exists (fun p -> p = point) (Isa.Config.points task.curve))
       t.assignment

(* Executed cycles per unit time is exactly the utilization (the common
   hyperperiod factor cancels in every energy comparison). *)
let cycles_per_hyperperiod t = t.utilization

let pp fmt t =
  Format.fprintf fmt "@[<v>selection: U=%.4f area=%.1f adders@,%a@]" t.utilization
    (Isa.Hw_model.adders_of_units t.area)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       (fun fmt ((task : Rt.Task.t), (p : Isa.Config.point)) ->
         Format.fprintf fmt "  %-12s -> area=%d cycles=%d (U=%.4f)" task.name
           p.area p.cycles (Rt.Task.utilization_at task p)))
    t.assignment
