(** Graphviz export for inspection and documentation. *)

val dfg :
  ?highlight:(Util.Bitset.t * string) list -> Dfg.t -> string
(** DOT source for a block's data-flow graph.  [highlight] clusters node
    sets (e.g. selected custom instructions) into coloured boxes; the
    string is the cluster label. *)

val cfg : Cfg.t -> string
(** DOT source for the structured control flow: blocks as boxes, loops
    and conditionals as labelled clusters. *)
