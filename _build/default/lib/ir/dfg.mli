(** Data-flow graphs of basic blocks.

    A DFG is a directed acyclic graph whose nodes are primitive
    operations and whose edges are data dependences (thesis §2.2).  Nodes
    are dense integer identifiers in [0, node_count).  An operand of a
    node that has no in-edge is an implicit {e live-in} (a register value
    produced outside the block); a node marked live-out (or with no
    successors) produces a value observed outside the block.

    These conventions drive the input/output operand counting used by the
    custom-instruction architectural constraints. *)

type t

type node = int

(** {1 Construction} *)

module Builder : sig
  type dfg := t
  type t

  val create : unit -> t

  val add : t -> Op.kind -> node
  (** Append a node with no operand edges yet. *)

  val add_with : t -> Op.kind -> node list -> node
  (** [add_with b kind operands] appends a node and one edge from each
      operand.  The number of operands must not exceed the kind's arity;
      missing operands become implicit live-ins. *)

  val edge : t -> node -> node -> unit
  (** [edge b src dst] adds a data dependence; [src] must have been
      created before [dst] (this enforces acyclicity by construction). *)

  val mark_live_out : t -> node -> unit
  (** Declare that the node's value escapes the block even if it has
      successors inside it. *)

  val finish : t -> dfg
  (** Freeze the builder.  Raises [Invalid_argument] if any node has more
      in-edges than its arity. *)
end

(** {1 Observation} *)

val node_count : t -> int
val kind : t -> node -> Op.kind
val preds : t -> node -> node list
val succs : t -> node -> node list
val live_out : t -> node -> bool
(** True when the node's value is observed outside the block (explicitly
    marked, or it has no successors). *)

val topo_order : t -> node array
(** Every edge goes from an earlier to a later position. *)

val nodes : t -> node list
val valid_node : t -> node -> bool
(** The node's operation may be part of a custom instruction. *)

val sw_cycles_total : t -> int
(** Software cost of one execution of the whole block. *)

(** {1 Node-set queries}

    Sets are {!Util.Bitset.t} values of capacity [node_count]. *)

val sw_cycles_of_set : t -> Util.Bitset.t -> int

val input_count : t -> Util.Bitset.t -> int
(** Number of input operands of the induced subgraph: distinct external
    producer nodes feeding the set, plus implicit live-in operands of
    member nodes. *)

val output_count : t -> Util.Bitset.t -> int
(** Number of member nodes whose value is consumed outside the set or is
    live-out. *)

val is_convex : t -> Util.Bitset.t -> bool
(** No path leaves the set and re-enters it (thesis §5.2.1). *)

val is_connected : t -> Util.Bitset.t -> bool
(** The induced subgraph is weakly connected (empty and singleton sets
    are connected). *)

val all_valid : t -> Util.Bitset.t -> bool
(** Every member operation is ISE-eligible. *)

val critical_path : t -> delay:(Op.kind -> float) -> Util.Bitset.t -> float
(** Longest weighted path through the induced subgraph, weights on
    nodes. *)

val reachable_from : t -> node -> Util.Bitset.t
(** All nodes reachable by one or more edges (cached; do not mutate). *)

val pp_stats : Format.formatter -> t -> unit
