(** Primitive operations of the intermediate representation.

    The base processor is the single-issue in-order core assumed
    throughout the thesis: every primitive costs a whole number of cycles
    in software.  Hardware latency and silicon area of each operator live
    in {!Isa.Hw_model}; this module only fixes the structural properties
    (arity, software cost, eligibility for inclusion in a custom
    instruction). *)

type kind =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Not
  | Shl  (** shift left *)
  | Shr  (** shift right *)
  | Cmp  (** comparison producing a flag/boolean *)
  | Select  (** 2-to-1 multiplexer: cond, a, b *)
  | Const  (** literal; zero operands *)
  | Load  (** memory read — invalid inside custom instructions *)
  | Store  (** memory write — invalid *)
  | Branch  (** control transfer — invalid *)
  | Call  (** function call — invalid *)

val all : kind list
(** Every constructor, for table-driven code and generators. *)

val arity : kind -> int
(** Number of value operands the operation consumes. *)

val sw_cycles : kind -> int
(** Latency on the base processor, in cycles (MAC-normalised: a
    multiply-accumulate costs one cycle at 120 MHz, as in the thesis's
    experimental setup). *)

val is_valid : kind -> bool
(** Whether the operation may be part of a custom instruction.  Memory
    accesses and control transfers are invalid (thesis §5.2.1); all
    dataflow operations are valid. *)

val name : kind -> string
val pp : Format.formatter -> kind -> unit
