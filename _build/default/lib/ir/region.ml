module Bitset = Util.Bitset

type t = { members : Bitset.t; weight : int; sw_cycles : int }

let of_dfg dfg =
  let n = Dfg.node_count dfg in
  let assigned = Bitset.create n in
  let regions = ref [] in
  let grow seed =
    let members = Bitset.create n in
    let rec walk v =
      if Dfg.valid_node dfg v && not (Bitset.mem members v) then begin
        Bitset.set members v;
        List.iter walk (Dfg.preds dfg v);
        List.iter walk (Dfg.succs dfg v)
      end
    in
    walk seed;
    members
  in
  for v = 0 to n - 1 do
    if Dfg.valid_node dfg v && not (Bitset.mem assigned v) then begin
      let members = grow v in
      Bitset.union_into assigned members;
      regions :=
        { members;
          weight = Bitset.cardinal members;
          sw_cycles = Dfg.sw_cycles_of_set dfg members }
        :: !regions
    end
  done;
  List.sort (fun a b -> compare b.weight a.weight) !regions

let pp fmt r = Format.fprintf fmt "region(%d ops, %d cycles)" r.weight r.sw_cycles
