let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let dfg ?(highlight = []) g =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "digraph dfg {\n  node [shape=box, fontname=monospace];\n";
  let palette = [| "lightblue"; "lightyellow"; "lightpink"; "lightgreen";
                   "lightsalmon"; "lightcyan" |] in
  List.iteri
    (fun i (set, label) ->
      out "  subgraph cluster_%d {\n    label=\"%s\";\n    style=filled;\n    color=%s;\n"
        i (escape label)
        palette.(i mod Array.length palette);
      Util.Bitset.iter (fun v -> out "    n%d;\n" v) set;
      out "  }\n")
    highlight;
  List.iter
    (fun v ->
      let kind = Dfg.kind g v in
      let shape = if Op.is_valid kind then "box" else "ellipse" in
      out "  n%d [label=\"%d: %s\", shape=%s];\n" v v (Op.name kind) shape;
      List.iter (fun s -> out "  n%d -> n%d;\n" v s) (Dfg.succs g v))
    (Dfg.nodes g);
  out "}\n";
  Buffer.contents buffer

let cfg t =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  let counter = ref 0 in
  let fresh () = incr counter; !counter in
  (* returns (entry, exits) of the emitted fragment *)
  let rec emit = function
    | Cfg.Block b ->
      let id = fresh () in
      out "  b%d [label=\"%s\\n%d ops\"];\n" id (escape b.Cfg.label)
        (Dfg.node_count b.Cfg.body);
      (id, [ id ])
    | Cfg.Seq ss ->
      let parts = List.map emit ss in
      (match parts with
       | [] ->
         let id = fresh () in
         out "  b%d [label=\"(empty)\"];\n" id;
         (id, [ id ])
       | (entry, _) :: _ ->
         let rec link = function
           | (_, exits) :: ((next_entry, _) :: _ as rest) ->
             List.iter (fun e -> out "  b%d -> b%d;\n" e next_entry) exits;
             link rest
           | [ (_, exits) ] -> exits
           | [] -> []
         in
         (entry, link parts))
    | Cfg.If (c, t_branch, e_branch) ->
      let id = fresh () in
      out "  b%d [label=\"%s?\", shape=diamond];\n" id (escape c.Cfg.label);
      let t_entry, t_exits = emit t_branch in
      let e_entry, e_exits = emit e_branch in
      out "  b%d -> b%d [label=\"T\"];\n" id t_entry;
      out "  b%d -> b%d [label=\"F\"];\n" id e_entry;
      (id, t_exits @ e_exits)
    | Cfg.Loop (bound, body) ->
      let entry, exits = emit body in
      List.iter (fun e -> out "  b%d -> b%d [label=\"x%d\", style=dashed];\n" e entry bound) exits;
      (entry, exits)
  in
  ignore (emit t.Cfg.code);
  out "}\n";
  Buffer.contents buffer
