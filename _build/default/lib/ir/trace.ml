type t = string array

let of_list l = Array.of_list l
let to_list = Array.to_list
let length = Array.length

let repeat pattern n =
  let rec build acc k = if k = 0 then acc else build (pattern :: acc) (k - 1) in
  Array.of_list (List.concat (build [] n))

(* Hierholzer's algorithm on the multigraph defined by the pair counts. *)
let of_pair_counts counts =
  let adjacency : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let adj v =
    match Hashtbl.find_opt adjacency v with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add adjacency v l;
      l
  in
  List.iter
    (fun ((a, b), n) ->
      if n < 0 then invalid_arg "Trace.of_pair_counts: negative count";
      for _ = 1 to n do
        (adj a) := b :: !(adj a);
        (adj b) := a :: !(adj b)
      done)
    counts;
  let vertices = Hashtbl.fold (fun v _ acc -> v :: acc) adjacency [] in
  match List.sort compare vertices with
  | [] -> [||]
  | start :: _ ->
    Hashtbl.iter
      (fun v l ->
        if List.length !l mod 2 <> 0 then
          invalid_arg ("Trace.of_pair_counts: odd degree at " ^ v))
      adjacency;
    (* Walk edges, removing each traversed edge once (both directions);
       splice sub-tours until all edges are used. *)
    let remove_edge a b =
      let l = adj a in
      let rec drop = function
        | [] -> invalid_arg "Trace.of_pair_counts: internal"
        | x :: rest -> if x = b then rest else x :: drop rest
      in
      l := drop !l
    in
    let tour = ref [ start ] in
    let finished = ref false in
    while not !finished do
      (* find a vertex on the tour with unused edges *)
      let rec find_pivot = function
        | [] -> None
        | v :: rest -> if !(adj v) <> [] then Some v else find_pivot rest
      in
      match find_pivot !tour with
      | None ->
        finished := true;
        let total = List.fold_left (fun acc ((_, _), n) -> acc + n) 0 counts in
        if List.length !tour <> total + 1 then
          invalid_arg "Trace.of_pair_counts: multigraph not connected"
      | Some pivot ->
        (* walk a sub-tour from the pivot back to itself *)
        let sub = ref [ pivot ] in
        let current = ref pivot in
        let walking = ref true in
        while !walking do
          match !(adj !current) with
          | [] -> walking := false
          | next :: _ ->
            remove_edge !current next;
            remove_edge next !current;
            sub := next :: !sub;
            current := next
        done;
        (* splice: replace the first occurrence of pivot with the sub-tour *)
        let sub_path = List.rev !sub in
        let rec splice = function
          | [] -> []
          | v :: rest -> if v = pivot then sub_path @ rest else v :: splice rest
        in
        tour := splice !tour
    done;
    Array.of_list !tour

let pair_counts ~keep trace =
  let kept = Array.to_list trace |> List.filter keep in
  let table = Hashtbl.create 16 in
  let bump a b =
    let key = if a <= b then (a, b) else (b, a) in
    Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if a <> b then bump a b;
      walk rest
    | [ _ ] | [] -> ()
  in
  walk kept;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare

let reconfigurations ~config_of trace =
  let count = ref 0 in
  let current = ref None in
  Array.iter
    (fun loop ->
      match config_of loop with
      | None -> ()
      | Some c ->
        (match !current with
         | Some c' when c' = c -> ()
         | Some _ -> incr count; current := Some c
         | None -> current := Some c))
    trace;
  !count

let pp fmt t =
  Format.fprintf fmt "@[<hov>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
    (to_list t)
