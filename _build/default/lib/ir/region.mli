(** Regions of a data-flow graph (thesis §5.2.1).

    Invalid nodes (memory accesses, control transfers) partition the DFG
    into {e regions}: maximal sets of valid nodes that are weakly
    connected through valid nodes only.  Custom instructions never cross
    region boundaries, so region detection is the first step of both the
    enumeration algorithms and the MLGP generator. *)

type t = {
  members : Util.Bitset.t;  (** the region's nodes, all valid *)
  weight : int;  (** number of operations — the region-selection key *)
  sw_cycles : int;  (** software cost of one execution of the region *)
}

val of_dfg : Dfg.t -> t list
(** All regions, sorted by decreasing weight (heaviest first, as consumed
    by the iterative scheme's region selection). *)

val pp : Format.formatter -> t -> unit
