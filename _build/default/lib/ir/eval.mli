(** Concrete evaluation of data-flow graphs.

    Executes a block's DFG on 32-bit integer values, used for
    differential testing of code generation: a block rewritten to use
    custom instructions must compute exactly the values of the original
    block.  Implicit live-in operands and memory reads draw from a
    deterministic environment supplied by the caller. *)

type env = {
  live_in : int -> int -> int;
      (** [live_in node operand_index] — value of an implicit operand *)
  memory : int -> int;  (** [memory address] — value returned by a load *)
  const : int -> int;  (** [const node] — value of a constant node *)
}

val default_env : seed:int -> env
(** Pseudo-random but deterministic environment. *)

val mask32 : int -> int
(** Truncate to 32 bits (all arithmetic is modulo 2³²). *)

val eval : Dfg.t -> env -> int array
(** Value computed by every node, indexed by node id.  [Store] nodes
    yield their stored value; [Branch]/[Call] yield 0. *)

val eval_node : Op.kind -> int list -> int
(** Apply one operator to its operand values (missing operands already
    resolved by the caller).  Division by zero yields 0, as saturating
    embedded semantics. *)
