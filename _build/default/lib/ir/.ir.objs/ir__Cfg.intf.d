lib/ir/cfg.mli: Dfg Format
