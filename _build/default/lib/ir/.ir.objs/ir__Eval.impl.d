lib/ir/eval.ml: Array Dfg List Op
