lib/ir/region.mli: Dfg Format Util
