lib/ir/region.ml: Dfg Format List Util
