lib/ir/trace.ml: Array Format Hashtbl List Option
