lib/ir/dfg.ml: Array Float Format Lazy List Op Printf Util
