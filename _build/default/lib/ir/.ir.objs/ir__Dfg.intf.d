lib/ir/dfg.mli: Format Op Util
