lib/ir/dot.ml: Array Buffer Cfg Dfg List Op Printf String Util
