lib/ir/trace.mli: Format
