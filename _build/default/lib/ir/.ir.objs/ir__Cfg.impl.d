lib/ir/cfg.ml: Dfg Format List
