lib/ir/dot.mli: Cfg Dfg Util
