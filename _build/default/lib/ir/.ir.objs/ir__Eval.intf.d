lib/ir/eval.mli: Dfg Op
