type env = {
  live_in : int -> int -> int;
  memory : int -> int;
  const : int -> int;
}

let mask32 v = v land 0xFFFFFFFF

let default_env ~seed =
  let mix a b c =
    let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) lxor seed in
    mask32 (h lxor (h lsr 13))
  in
  { live_in = (fun node idx -> mix node idx 1);
    memory = (fun addr -> mix addr 2 3);
    const = (fun node -> mix node 5 7 land 0xFFFF) }

let eval_node kind operands =
  let nth i = match List.nth_opt operands i with Some v -> v | None -> 0 in
  let a = nth 0 and b = nth 1 and c = nth 2 in
  let shift_amount = b land 31 in
  mask32
    (match kind with
     | Op.Add -> a + b
     | Op.Sub -> a - b
     | Op.Mul -> a * b
     | Op.Div -> if b = 0 then 0 else a / b
     | Op.Rem -> if b = 0 then 0 else a mod b
     | Op.And -> a land b
     | Op.Or -> a lor b
     | Op.Xor -> a lxor b
     | Op.Not -> lnot a
     | Op.Shl -> a lsl shift_amount
     | Op.Shr -> a lsr shift_amount
     | Op.Cmp -> if a < b then 1 else 0
     | Op.Select -> if a <> 0 then b else c
     | Op.Const -> 0 (* replaced by the environment below *)
     | Op.Load -> 0 (* replaced by the environment below *)
     | Op.Store -> a
     | Op.Branch | Op.Call -> 0)

let eval dfg env =
  let n = Dfg.node_count dfg in
  let values = Array.make n 0 in
  Array.iter
    (fun v ->
      let kind = Dfg.kind dfg v in
      let explicit = List.map (fun p -> values.(p)) (Dfg.preds dfg v) in
      let arity = Op.arity kind in
      let operands =
        explicit
        @ List.init (max 0 (arity - List.length explicit)) (fun i ->
              env.live_in v (List.length explicit + i))
      in
      values.(v) <-
        (match kind with
         | Op.Const -> mask32 (env.const v)
         | Op.Load ->
           let address = match operands with a :: _ -> a | [] -> 0 in
           mask32 (env.memory address)
         | _ -> eval_node kind operands))
    (Dfg.topo_order dfg);
  values
