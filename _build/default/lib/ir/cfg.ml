type block = { label : string; body : Dfg.t }

type stmt =
  | Block of block
  | Seq of stmt list
  | If of block * stmt * stmt
  | Loop of int * stmt

type t = { name : string; code : stmt }

let block label dfg = Block { label; body = dfg }
let seq ss = Seq ss
let loop bound body =
  if bound < 0 then invalid_arg "Cfg.loop: negative bound";
  Loop (bound, body)

let rec blocks_of_stmt = function
  | Block b -> [ b ]
  | Seq ss -> List.concat_map blocks_of_stmt ss
  | If (c, t, e) -> (c :: blocks_of_stmt t) @ blocks_of_stmt e
  | Loop (_, body) -> blocks_of_stmt body

let blocks t = blocks_of_stmt t.code

let block_cycles b = Dfg.sw_cycles_total b.body

let rec wcet_stmt cost = function
  | Block b -> cost b
  | Seq ss -> List.fold_left (fun acc s -> acc + wcet_stmt cost s) 0 ss
  | If (c, t, e) -> cost c + max (wcet_stmt cost t) (wcet_stmt cost e)
  | Loop (bound, body) -> bound * wcet_stmt cost body

let wcet_with t ~cost = wcet_stmt cost t.code

let wcet t = wcet_with t ~cost:block_cycles

(* Frequencies along the WCET path: descend into the more expensive
   branch of each conditional, multiplying by loop bounds. *)
let wcet_frequencies_with t ~cost =
  let acc = ref [] in
  let rec walk mult = function
    | Block b -> acc := (b, mult) :: !acc
    | Seq ss -> List.iter (walk mult) ss
    | If (c, th, el) ->
      acc := (c, mult) :: !acc;
      if wcet_stmt cost th >= wcet_stmt cost el then walk mult th else walk mult el
    | Loop (bound, body) -> walk (mult * bound) body
  in
  walk 1 t.code;
  List.rev !acc

let wcet_frequencies t = wcet_frequencies_with t ~cost:block_cycles

let profile ?(taken_probability = 0.5) t =
  let acc = ref [] in
  let rec walk mult = function
    | Block b -> acc := (b, mult) :: !acc
    | Seq ss -> List.iter (walk mult) ss
    | If (c, th, el) ->
      acc := (c, mult) :: !acc;
      walk (mult *. taken_probability) th;
      walk (mult *. (1. -. taken_probability)) el
    | Loop (bound, body) -> walk (mult *. float_of_int bound) body
  in
  walk 1. t.code;
  List.rev !acc

let max_block_size t =
  List.fold_left (fun acc b -> max acc (Dfg.node_count b.body)) 0 (blocks t)

let avg_block_size t =
  match blocks t with
  | [] -> 0.
  | bs ->
    float_of_int (List.fold_left (fun acc b -> acc + Dfg.node_count b.body) 0 bs)
    /. float_of_int (List.length bs)

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d blocks, wcet=%d cycles, max bb=%d, avg bb=%.1f"
    t.name (List.length (blocks t)) (wcet t) (max_block_size t) (avg_block_size t)
