(** Structured control-flow representation and timing-schema WCET.

    Kernels are built as structured programs (sequences, bounded loops,
    conditionals over basic blocks), which is exactly the class the
    Timing Schema WCET approach of the thesis (§5.1, citing Park–Shaw)
    handles compositionally:

    - [wcet (Seq ss)]      = Σ wcet ss
    - [wcet (Loop b body)] = b × wcet body
    - [wcet (If c t e)]    = wcet c + max (wcet t) (wcet e)

    The same tree also yields execution-frequency profiles: worst-case
    frequencies (the WCET path, used by the iterative scheme of Chapter
    5) and expected frequencies under a branch-probability model (the
    profile XPRES-style selection uses in Chapter 3). *)

type block = { label : string; body : Dfg.t }

type stmt =
  | Block of block
  | Seq of stmt list
  | If of block * stmt * stmt  (** condition block, then, else *)
  | Loop of int * stmt  (** iteration bound, body *)

type t = { name : string; code : stmt }

val block : string -> Dfg.t -> stmt
val seq : stmt list -> stmt
val loop : int -> stmt -> stmt

val blocks : t -> block list
(** All basic blocks in syntactic order. *)

val block_cycles : block -> int
(** Software cost of one execution of the block. *)

val wcet : t -> int
(** Worst-case execution time in cycles under the timing schema, with
    every block at its software cost. *)

val wcet_with : t -> cost:(block -> int) -> int
(** WCET with per-block costs overridden — used to re-evaluate a task
    after some blocks were accelerated by custom instructions. *)

val wcet_frequencies : t -> (block * int) list
(** Execution count of each block along the worst-case path (blocks on
    the non-chosen side of a conditional get 0 and are omitted). *)

val wcet_frequencies_with : t -> cost:(block -> int) -> (block * int) list
(** Like {!wcet_frequencies} but with per-block costs overridden — the
    worst-case path may shift after some blocks are accelerated. *)

val profile : ?taken_probability:float -> t -> (block * float) list
(** Expected execution count of each block when each conditional takes
    its then-branch with [taken_probability] (default 0.5). *)

val max_block_size : t -> int
(** Largest basic block, in primitive instructions (Table 5.1). *)

val avg_block_size : t -> float
(** Mean basic-block size, in primitive instructions (Table 5.1). *)

val pp_summary : Format.formatter -> t -> unit
