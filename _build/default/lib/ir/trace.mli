(** Hot-loop traces (thesis §6.1).

    A trace is the sequence of hot-loop activations observed while
    profiling an application.  It drives the reconfiguration-cost graph
    (adjacent-pair counts) and the exact net-gain evaluation (replaying
    the trace against a loop→configuration mapping and counting fabric
    reloads). *)

type t

val of_list : string list -> t
val to_list : t -> string list
val length : t -> int

val repeat : string list -> int -> t
(** [repeat pattern n] — the pattern concatenated [n] times, as produced
    by a loop nest that re-enters the same kernels every frame. *)

val of_pair_counts : ((string * string) * int) list -> t
(** Build a trace whose adjacent-pair counts are exactly the given
    multiset, by walking an Eulerian circuit of the corresponding
    multigraph.  Raises [Invalid_argument] unless every vertex has even
    degree and the multigraph is connected (synthetic-input generators
    arrange this). *)

val pair_counts : keep:(string -> bool) -> t -> ((string * string) * int) list
(** Counts of adjacent unordered pairs of {e distinct} kept loops, after
    erasing non-kept (software-mapped) activations from the trace.  Pairs
    are canonically ordered; these are the RCG edge weights. *)

val reconfigurations : config_of:(string -> int option) -> t -> int
(** Replay the trace: a loop mapped to [Some c] requires configuration
    [c] to be resident; switching configurations counts one
    reconfiguration.  Loops mapped to [None] run in software and do not
    touch the fabric.  The initial load is not counted (edge-cut
    semantics, matching the thesis's motivating example). *)

val pp : Format.formatter -> t -> unit
