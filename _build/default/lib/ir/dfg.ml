module Bitset = Util.Bitset

type node = int

type t = {
  kinds : Op.kind array;
  preds : node list array; (* in reverse insertion order *)
  succs : node list array;
  live_out_marks : bool array;
  topo : node array;
  reach : Bitset.t array lazy_t; (* reach.(v) = nodes reachable from v, v excluded *)
}

module Builder = struct
  type dfg = t

  type t = {
    mutable b_kinds : Op.kind list; (* reversed *)
    mutable b_count : int;
    mutable b_edges : (node * node) list;
    mutable b_live_out : node list;
  }

  let create () = { b_kinds = []; b_count = 0; b_edges = []; b_live_out = [] }

  let add b kind =
    let id = b.b_count in
    b.b_kinds <- kind :: b.b_kinds;
    b.b_count <- b.b_count + 1;
    id

  let edge b src dst =
    if src < 0 || dst < 0 || src >= b.b_count || dst >= b.b_count then
      invalid_arg "Dfg.Builder.edge: unknown node";
    if src >= dst then invalid_arg "Dfg.Builder.edge: src must precede dst";
    b.b_edges <- (src, dst) :: b.b_edges

  let add_with b kind operands =
    let id = add b kind in
    List.iter (fun src -> edge b src id) operands;
    id

  let mark_live_out b v =
    if v < 0 || v >= b.b_count then invalid_arg "Dfg.Builder.mark_live_out";
    b.b_live_out <- v :: b.b_live_out

  let finish b : dfg =
    let n = b.b_count in
    let kinds = Array.of_list (List.rev b.b_kinds) in
    let preds = Array.make n [] and succs = Array.make n [] in
    (* b_edges is in reverse insertion order; prepending restores the
       insertion order in the adjacency lists. *)
    List.iter
      (fun (src, dst) ->
        preds.(dst) <- src :: preds.(dst);
        succs.(src) <- dst :: succs.(src))
      b.b_edges;
    Array.iteri
      (fun v ps ->
        if List.length ps > Op.arity kinds.(v) then
          invalid_arg
            (Printf.sprintf "Dfg.Builder.finish: node %d (%s) has %d operands, arity %d"
               v (Op.name kinds.(v)) (List.length ps) (Op.arity kinds.(v))))
      preds;
    let live_out_marks = Array.make n false in
    List.iter (fun v -> live_out_marks.(v) <- true) b.b_live_out;
    (* Node ids are already topological because edges only go forward. *)
    let topo = Array.init n (fun i -> i) in
    let reach =
      lazy
        (let r = Array.init n (fun _ -> Bitset.create n) in
         for i = n - 1 downto 0 do
           List.iter
             (fun w ->
               Bitset.set r.(i) w;
               Bitset.union_into r.(i) r.(w))
             succs.(i)
         done;
         r)
    in
    { kinds; preds; succs; live_out_marks; topo; reach }
end

let node_count t = Array.length t.kinds
let kind t v = t.kinds.(v)
let preds t v = t.preds.(v)
let succs t v = t.succs.(v)
let live_out t v = t.live_out_marks.(v) || t.succs.(v) = []
let topo_order t = t.topo
let nodes t = List.init (node_count t) (fun i -> i)
let valid_node t v = Op.is_valid t.kinds.(v)

let sw_cycles_total t =
  Array.fold_left (fun acc k -> acc + Op.sw_cycles k) 0 t.kinds

let sw_cycles_of_set t set =
  Bitset.fold (fun v acc -> acc + Op.sw_cycles t.kinds.(v)) set 0

let input_count t set =
  let external_producers = Bitset.create (node_count t) in
  let implicit = ref 0 in
  Bitset.iter
    (fun v ->
      let explicit = List.length t.preds.(v) in
      implicit := !implicit + (Op.arity t.kinds.(v) - explicit);
      List.iter
        (fun p -> if not (Bitset.mem set p) then Bitset.set external_producers p)
        t.preds.(v))
    set;
  Bitset.cardinal external_producers + !implicit

let output_count t set =
  Bitset.fold
    (fun v acc ->
      let escapes =
        t.live_out_marks.(v)
        || t.succs.(v) = []
        || List.exists (fun s -> not (Bitset.mem set s)) t.succs.(v)
      in
      if escapes then acc + 1 else acc)
    set 0

let reachable_from t v = (Lazy.force t.reach).(v)

(* Convex iff no successor outside the set can reach back into it. *)
let is_convex t set =
  let reach = Lazy.force t.reach in
  let ok = ref true in
  Bitset.iter
    (fun v ->
      List.iter
        (fun w ->
          if (not (Bitset.mem set w)) && Bitset.intersects reach.(w) set then
            ok := false)
        t.succs.(v))
    set;
  !ok

let is_connected t set =
  match Bitset.elements set with
  | [] | [ _ ] -> true
  | seed :: _ ->
    let visited = Bitset.create (node_count t) in
    let rec walk v =
      if Bitset.mem set v && not (Bitset.mem visited v) then begin
        Bitset.set visited v;
        List.iter walk t.preds.(v);
        List.iter walk t.succs.(v)
      end
    in
    walk seed;
    Bitset.cardinal visited = Bitset.cardinal set

let all_valid t set =
  Bitset.fold (fun v acc -> acc && valid_node t v) set true

let critical_path t ~delay set =
  let n = node_count t in
  let finish = Array.make n 0. in
  let best = ref 0. in
  Array.iter
    (fun v ->
      if Bitset.mem set v then begin
        let start =
          List.fold_left
            (fun acc p -> if Bitset.mem set p then Float.max acc finish.(p) else acc)
            0. t.preds.(v)
        in
        finish.(v) <- start +. delay t.kinds.(v);
        best := Float.max !best finish.(v)
      end)
    t.topo;
  !best

let pp_stats fmt t =
  Format.fprintf fmt "dfg: %d nodes, %d sw cycles, %d valid"
    (node_count t) (sw_cycles_total t)
    (List.length (List.filter (valid_node t) (nodes t)))
