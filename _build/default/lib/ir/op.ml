type kind =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Not
  | Shl
  | Shr
  | Cmp
  | Select
  | Const
  | Load
  | Store
  | Branch
  | Call

let all =
  [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Not; Shl; Shr; Cmp; Select; Const;
    Load; Store; Branch; Call ]

let arity = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Cmp -> 2
  | Not | Load | Branch | Call -> 1
  | Select -> 3
  | Const -> 0
  | Store -> 2

(* Single-issue in-order core, MAC-normalised: ALU ops and multiplies are
   one cycle, division is iterative, memory hits in a perfect cache. *)
let sw_cycles = function
  | Add | Sub | And | Or | Xor | Not | Shl | Shr | Cmp | Select | Const -> 1
  | Mul -> 1
  | Div | Rem -> 16
  | Load | Store -> 2
  | Branch -> 1
  | Call -> 4

let is_valid = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Not | Shl | Shr | Cmp
  | Select | Const -> true
  | Load | Store | Branch | Call -> false

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Select -> "select"
  | Const -> "const"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Call -> "call"

let pp fmt k = Format.pp_print_string fmt (name k)
