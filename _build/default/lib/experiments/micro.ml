(* Bechamel micro-benchmarks for the timing-sensitive algorithm kernels:
   per-call costs of the selection/partitioning primitives that the
   wall-clock tables (4.2, 6.1, 7.2) aggregate. *)

open Bechamel
open Toolkit

let tests () =
  let fig32_tasks =
    let curve base pts = Isa.Config.of_points ~base_cycles:base pts in
    [ Rt.Task.make ~name:"T1" ~period:6 (curve 2 [ { Isa.Config.area = 7; cycles = 1 } ]);
      Rt.Task.make ~name:"T2" ~period:8 (curve 3 [ { Isa.Config.area = 6; cycles = 2 } ]);
      Rt.Task.make ~name:"T3" ~period:12 (curve 6 [ { Isa.Config.area = 4; cycles = 5 } ]) ]
  in
  let reconfig_problem = Reconfig.Synthetic.generate ~seed:77 ~loops:12 in
  let rt_instance =
    Ch7.instance ~seed:7 ~n_tasks:4 ~max_area:400 ~reconfig_cost:2000 ~u:1.05
  in
  let dfg =
    let prng = Util.Prng.create 5 in
    Kernels.Blockgen.block prng ~loads:4 ~stores:2 ~size:120 Kernels.Blockgen.crypto_mix
  in
  [ Test.make ~name:"edf-select-dp (fig3.2)"
      (Staged.stage (fun () -> ignore (Core.Edf_select.run ~budget:10 fig32_tasks)));
    Test.make ~name:"rms-select-bnb (fig3.2)"
      (Staged.stage (fun () -> ignore (Core.Rms_select.run ~budget:10 fig32_tasks)));
    Test.make ~name:"rms-exact-test (3 tasks)"
      (Staged.stage (fun () ->
           ignore (Rt.Sched.rms_schedulable [ (1, 3); (1, 4); (1, 5) ])));
    Test.make ~name:"mlgp-cover (120-op block)"
      (Staged.stage (fun () -> ignore (Iterative.Mlgp.cover_dfg dfg)));
    Test.make ~name:"reconfig-iterative (12 loops)"
      (Staged.stage (fun () -> ignore (Reconfig.Algorithms.iterative reconfig_problem)));
    Test.make ~name:"reconfig-greedy (12 loops)"
      (Staged.stage (fun () -> ignore (Reconfig.Algorithms.greedy reconfig_problem)));
    Test.make ~name:"rtreconfig-dp (4 tasks)"
      (Staged.stage (fun () -> ignore (Rtreconfig.Solvers.dp rt_instance))) ]

let run fmt =
  Report.banner fmt ~id:"micro" "bechamel micro-benchmarks (ns per run, OLS)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          ignore name;
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
            Report.row fmt
              [ Report.cell ~width:34 (Test.Elt.name (List.hd (Test.elements test)));
                Report.cellr ~width:16 (Printf.sprintf "%.0f ns" ns) ]
          | Some _ | None ->
            Report.row fmt
              [ Report.cell ~width:34 (Test.Elt.name (List.hd (Test.elements test)));
                Report.cellr ~width:16 "n/a" ])
        results)
    (tests ())
