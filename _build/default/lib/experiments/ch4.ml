(* Chapter 4 — approximate Pareto fronts (§4.3). *)

(* Chapter 4 measures areas at fine granularity (the thesis reports gate
   counts); we scale deci-adder areas by 400 so that the exact DP's
   pseudo-polynomial cost range dominates, which is the regime the
   published exact-vs-approximate timing comparison (Table 4.2) was run
   in. *)
let area_scale = 400
let max_candidates_per_task = 32
let epsilons = [ 0.21; 0.44; 0.69; 3.0 ]

let intra_entities name =
  (* conflict-free filtering happens inside Stages.Intra.entities; cap the
     number of surviving (disjoint) candidates afterwards *)
  Pareto.Stages.Intra.entities (Curves.candidates name)
  |> List.filteri (fun i _ -> i < max_candidates_per_task)
  |> List.map
       (Array.map (fun (o : Pareto.Mo_select.option_) ->
            { o with cost = o.cost * area_scale }))

let workload name = Isa.Config.base_cycles (Curves.curve name)

let sample_front max_points front =
  let n = List.length front in
  if n <= max_points then front
  else
    let stride = (n + max_points - 1) / max_points in
    List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) front

(* Build the inter-task stage input for a task set, using the supplied
   intra-stage solver. *)
let inter_input ~intra_front ~u names =
  let tasks = Curves.tasks_of ~u names in
  List.map
    (fun (t : Rt.Task.t) ->
      { Pareto.Stages.Inter.period = t.period;
        workload = t.wcet;
        front = sample_front 40 (intra_front t.name) })
    tasks

let exact_intra name =
  Pareto.Mo_select.exact_front
    ~base:(float_of_int (workload name))
    (intra_entities name)

let approx_intra ~eps name =
  Pareto.Mo_select.approx_front ~eps
    ~base:(float_of_int (workload name))
    (intra_entities name)

let table_4_1 fmt =
  Report.banner fmt ~id:"Table 4.1" "composition of the task sets";
  for i = 1 to 5 do
    Report.row fmt
      [ Report.cell ~width:8 (string_of_int i);
        String.concat ", " (Curves.taskset_ch4 i) ]
  done;
  Report.row fmt [ "(ispell is substituted by md5 — see DESIGN.md)" ]

let table_4_2 fmt =
  Report.banner fmt ~id:"Table 4.2"
    "speedup of the approximation scheme over the exact Pareto computation";
  Report.row fmt
    (Report.cell ~width:10 "task set"
     :: Report.cellr ~width:12 "exact (s)"
     :: List.map (fun e -> Report.cellr ~width:12 (Printf.sprintf "eps=%.2f" e)) epsilons);
  for set = 1 to 5 do
    let names = Curves.taskset_ch4 set in
    (* warm the caches so timing measures the Pareto stages only *)
    List.iter (fun n -> ignore (Curves.candidates n); ignore (Curves.curve n)) names;
    let exact_result, exact_time =
      Report.timed_into fmt
        (Printf.sprintf "exact set %d" set)
        (fun () ->
          let input = inter_input ~intra_front:exact_intra ~u:1.0 names in
          Pareto.Stages.Inter.exact input)
    in
    let cells =
      List.map
        (fun eps ->
          let _, approx_time =
            Report.timed (fun () ->
                let input =
                  inter_input ~intra_front:(approx_intra ~eps) ~u:1.0 names
                in
                Pareto.Stages.Inter.approx ~eps input)
          in
          Report.cellr ~width:12
            (Printf.sprintf "%.0fx" (exact_time /. Float.max 1e-6 approx_time)))
        epsilons
    in
    ignore exact_result;
    Report.row fmt
      (Report.cell ~width:10 (string_of_int set)
       :: Report.cellr ~width:12 (Printf.sprintf "%.2f" exact_time)
       :: cells)
  done;
  Report.row fmt [ "paper: 643x-89285x (larger eps => larger speedup)" ]

let pp_front fmt label front =
  Report.row fmt
    [ Report.cell ~width:24 label;
      Printf.sprintf "%d points" (List.length front) ];
  List.iteri
    (fun i (p : Util.Pareto_front.point) ->
      if i < 12 then
        Report.row fmt
          [ Report.cell ~width:24 "";
            (if Float.abs p.value < 100. then Printf.sprintf "(%d, %.4f)" p.cost p.value
             else Printf.sprintf "(%d, %.0f)" p.cost p.value) ])
    front;
  if List.length front > 12 then Report.row fmt [ Report.cell ~width:24 ""; "..." ]

let figure_4_4 fmt =
  Report.banner fmt ~id:"Figure 4.4" "exact vs approximate Pareto curves";
  let exact = exact_intra "g721decode" in
  pp_front fmt "g721decode exact" exact;
  List.iter
    (fun eps ->
      let approx = approx_intra ~eps "g721decode" in
      pp_front fmt (Printf.sprintf "g721decode eps=%.2f" eps) approx;
      Report.row fmt
        [ Report.cell ~width:24 "";
          Printf.sprintf "eps-covers exact: %b  (%.0f%% fewer points)"
            (Util.Pareto_front.eps_covers ~eps ~exact approx)
            (100.
             *. (1.
                 -. (float_of_int (List.length approx)
                     /. float_of_int (max 1 (List.length exact))))) ])
    [ 0.69; 3.0 ];
  let names = Curves.taskset_ch4 1 in
  let input = inter_input ~intra_front:exact_intra ~u:1.0 names in
  let exact_inter = Pareto.Stages.Inter.exact input in
  pp_front fmt "task set 1 exact" exact_inter;
  List.iter
    (fun eps ->
      let input_a = inter_input ~intra_front:(approx_intra ~eps) ~u:1.0 names in
      let approx = Pareto.Stages.Inter.approx ~eps input_a in
      pp_front fmt (Printf.sprintf "task set 1 eps=%.2f" eps) approx)
    [ 0.69; 3.0 ]
