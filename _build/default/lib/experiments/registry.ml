type experiment = {
  id : string;
  title : string;
  run : Format.formatter -> unit;
}

let all =
  [ { id = "t3.1"; title = "Table 3.1: composition of task sets"; run = Ch3.table_3_1 };
    { id = "f3.1"; title = "Figure 3.1: performance vs area (g721)"; run = Ch3.figure_3_1 };
    { id = "f3.2"; title = "Figure 3.2: heuristics vs optimal"; run = Ch3.figure_3_2 };
    { id = "f3.3"; title = "Figure 3.3: utilization vs area (EDF/RMS)"; run = Ch3.figure_3_3 };
    { id = "f3.4"; title = "Figure 3.4: energy vs area (task set 3)"; run = Ch3.figure_3_4 };
    { id = "t4.1"; title = "Table 4.1: composition of task sets"; run = Ch4.table_4_1 };
    { id = "t4.2"; title = "Table 4.2: approximation-scheme speedup"; run = Ch4.table_4_2 };
    { id = "f4.4"; title = "Figure 4.4: exact vs approximate Pareto"; run = Ch4.figure_4_4 };
    { id = "t5.1"; title = "Table 5.1: benchmark characteristics"; run = Ch5.table_5_1 };
    { id = "t5.2"; title = "Table 5.2: task sets"; run = Ch5.table_5_2 };
    { id = "f5.3"; title = "Figure 5.3: utilization vs iterations"; run = Ch5.figure_5_3 };
    { id = "f5.4"; title = "Figure 5.4: analysis time and area vs U"; run = Ch5.figure_5_4 };
    { id = "f5.5"; title = "Figure 5.5: speedup vs analysis time"; run = Ch5.figure_5_5 };
    { id = "f5.6"; title = "Figure 5.6: area vs speedup"; run = Ch5.figure_5_6 };
    { id = "t6.1"; title = "Table 6.1: algorithm running times"; run = Ch6.table_6_1 };
    { id = "f6.4"; title = "Figure 6.4: motivating example"; run = Ch6.figure_6_4 };
    { id = "f6.8"; title = "Figure 6.8: solution quality"; run = Ch6.figure_6_8 };
    { id = "t6.2"; title = "Table 6.2: JPEG CIS versions"; run = Ch6.table_6_2 };
    { id = "f6.10"; title = "Figure 6.10: JPEG solution quality"; run = Ch6.figure_6_10 };
    { id = "t7.1"; title = "Table 7.1: CIS versions of the tasks"; run = Ch7.table_7_1 };
    { id = "f7.4"; title = "Figure 7.4: DP vs Optimal vs Static"; run = Ch7.figure_7_4 };
    { id = "t7.2"; title = "Table 7.2: Optimal vs DP running time"; run = Ch7.table_7_2 };
    { id = "a1"; title = "Ablation: MLGP refinement"; run = Ablations.mlgp_refinement };
    { id = "a2"; title = "Ablation: RMS B&B pruning"; run = Ablations.rms_pruning };
    { id = "a3"; title = "Ablation: temporal balance portfolio"; run = Ablations.reconfig_portfolio };
    { id = "a4"; title = "Ablation: identification budget"; run = Ablations.enumeration_budget };
    { id = "micro"; title = "Bechamel micro-benchmarks"; run = Micro.run } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
