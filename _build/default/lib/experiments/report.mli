(** Output helpers shared by the experiment drivers: section banners,
    aligned tables, and wall-clock timing. *)

val banner : Format.formatter -> id:string -> string -> unit
(** Experiment header, e.g. [banner fmt ~id:"f3.3" "utilization vs area"]. *)

val row : Format.formatter -> string list -> unit
(** One table row, columns separated by two spaces (caller pre-pads). *)

val cell : ?width:int -> string -> string
(** Right-pad to a column width (default 12). *)

val cellr : ?width:int -> string -> string
(** Left-pad (right-align) to a column width (default 12). *)

val timed : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val pct : float -> string
(** Format a percentage with one decimal. *)
