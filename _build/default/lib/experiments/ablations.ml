(* Ablation studies for the design choices DESIGN.md calls out.  These
   have no direct counterpart in the thesis's tables; they quantify why
   each mechanism is there. *)

(* A1: the MLGP uncoarsening refinement (Algorithm 5). *)
let mlgp_refinement fmt =
  Report.banner fmt ~id:"A1"
    "ablation: MLGP with and without uncoarsening refinement";
  Report.row fmt
    [ Report.cell ~width:12 "kernel"; Report.cellr ~width:14 "gain (refine)";
      Report.cellr ~width:16 "gain (no refine)"; Report.cellr ~width:10 "delta";
      Report.cellr ~width:12 "time (s)" ];
  List.iter
    (fun name ->
      let cfg = Kernels.find name in
      let blocks = Ir.Cfg.blocks cfg in
      let big =
        List.fold_left
          (fun acc (b : Ir.Cfg.block) ->
            if Ir.Dfg.node_count b.body > Ir.Dfg.node_count acc.Ir.Cfg.body then b
            else acc)
          (List.hd blocks) blocks
      in
      let gain_of cis = Util.Numeric.sum_by Isa.Custom_inst.gain cis in
      let with_r, t_with =
        Report.timed (fun () -> Iterative.Mlgp.cover_dfg ~refine:true big.body)
      in
      let without_r, _ =
        Report.timed (fun () -> Iterative.Mlgp.cover_dfg ~refine:false big.body)
      in
      let g1 = gain_of with_r and g0 = gain_of without_r in
      Report.row fmt
        [ Report.cell ~width:12 name;
          Report.cellr ~width:14 (string_of_int g1);
          Report.cellr ~width:16 (string_of_int g0);
          Report.cellr ~width:10
            (Printf.sprintf "%+.1f%%"
               (100. *. float_of_int (g1 - g0) /. Float.max 1. (float_of_int g0)));
          Report.cellr ~width:12 (Printf.sprintf "%.2f" t_with) ])
    [ "sha"; "rijndael"; "blowfish"; "aes"; "adpcm_enc" ]

(* A2: pruning in the RMS branch-and-bound (Algorithm 2). *)
let rms_pruning fmt =
  Report.banner fmt ~id:"A2"
    "ablation: RMS branch-and-bound pruning (explored nodes)";
  Report.row fmt
    [ Report.cell ~width:10 "task set"; Report.cellr ~width:14 "bound+order";
      Report.cellr ~width:14 "bound only"; Report.cellr ~width:14 "order only";
      Report.cellr ~width:14 "neither" ];
  List.iter
    (fun set ->
      let tasks = Curves.tasks_of ~u:1.0 (Curves.taskset_ch3 set) in
      let budget = Curves.max_area_of tasks / 2 in
      let explored ~use_bound ~fastest_first =
        let result, stats =
          Core.Rms_select.run_instrumented ~use_bound ~fastest_first ~budget tasks
        in
        (result, stats.Core.Rms_select.explored)
      in
      let full, e_full = explored ~use_bound:true ~fastest_first:true in
      let bound_only, e_bound = explored ~use_bound:true ~fastest_first:false in
      let order_only, e_order = explored ~use_bound:false ~fastest_first:true in
      let neither, e_none = explored ~use_bound:false ~fastest_first:false in
      (* all variants must agree on the optimum *)
      let u = function
        | Some (s : Core.Selection.t) -> s.utilization
        | None -> infinity
      in
      assert (Float.abs (u full -. u neither) < 1e-9);
      assert (Float.abs (u bound_only -. u order_only) < 1e-9);
      Report.row fmt
        [ Report.cell ~width:10 (string_of_int set);
          Report.cellr ~width:14 (string_of_int e_full);
          Report.cellr ~width:14 (string_of_int e_bound);
          Report.cellr ~width:14 (string_of_int e_order);
          Report.cellr ~width:14 (string_of_int e_none) ])
    [ 1; 2; 3; 4; 5; 6 ]

(* A3: the balance-tolerance portfolio in the temporal phase. *)
let reconfig_portfolio fmt =
  Report.banner fmt ~id:"A3"
    "ablation: temporal-partitioning balance portfolio (net gain)";
  Report.row fmt
    [ Report.cellr ~width:6 "loops"; Report.cellr ~width:16 "balanced only";
      Report.cellr ~width:14 "portfolio"; Report.cellr ~width:10 "delta" ];
  List.iter
    (fun n ->
      let p = Reconfig.Synthetic.generate ~seed:(2000 + n) ~loops:n in
      let balanced =
        Reconfig.Problem.net_gain p
          (Reconfig.Algorithms.iterative ~imbalances:[ 0.25 ] p)
      in
      let portfolio =
        Reconfig.Problem.net_gain p (Reconfig.Algorithms.iterative p)
      in
      Report.row fmt
        [ Report.cellr ~width:6 (string_of_int n);
          Report.cellr ~width:16 (string_of_int balanced);
          Report.cellr ~width:14 (string_of_int portfolio);
          Report.cellr ~width:10
            (Printf.sprintf "%+.1f%%"
               (100. *. float_of_int (portfolio - balanced)
                /. Float.max 1. (float_of_int balanced))) ])
    [ 5; 8; 9; 11; 14; 20 ]

(* A4: identification budget vs curve quality. *)
let enumeration_budget fmt =
  Report.banner fmt ~id:"A4"
    "ablation: identification budget vs configuration-curve quality";
  Report.row fmt
    [ Report.cell ~width:12 "budget"; Report.cellr ~width:12 "explored";
      Report.cellr ~width:14 "best speedup"; Report.cellr ~width:12 "time (s)" ];
  let cfg = Kernels.find "lms" in
  List.iter
    (fun (label, budget) ->
      let curve, elapsed =
        Report.timed_into fmt label (fun () ->
            Ise.Curve.generate ~params:{ Ise.Curve.default with budget } cfg)
      in
      Report.row fmt
        [ Report.cell ~width:12 label;
          Report.cellr ~width:12 (string_of_int budget.Ise.Enumerate.max_explored);
          Report.cellr ~width:14
            (Printf.sprintf "%.3fx"
               (float_of_int (Isa.Config.base_cycles curve)
                /. float_of_int (Isa.Config.min_cycles curve)));
          Report.cellr ~width:12 (Printf.sprintf "%.2f" elapsed) ])
    [ ("tiny", { Ise.Enumerate.max_size = 4; max_explored = 500; max_candidates = 50 });
      ("small", Ise.Enumerate.small_budget);
      ("default", Ise.Enumerate.default_budget);
      ("large", { Ise.Enumerate.max_size = 16; max_explored = 200_000; max_candidates = 10_000 }) ]
