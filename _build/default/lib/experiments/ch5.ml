(* Chapter 5 — iterative custom-instruction generation (§5.3). *)

let published_table_5_1 =
  [ ("adpcm_enc", 127_407, 331, 15.);
    ("sha", 9_163_779, 487, 38.);
    ("jfdctint", 2_217, 107, 19.);
    ("g721decode", 113_295_478, 80, 9.);
    ("lms", 65_051, 29, 8.);
    ("ndes", 21_232, 56, 9.);
    ("rijndael", 13_878_360, 239, 24.);
    ("3des", 106_062_791, 2745, 59.);
    ("aes", 30_638, 227, 16.);
    ("blowfish", 435_418_994, 457, 22.) ]

let table_5_1 fmt =
  Report.banner fmt ~id:"Table 5.1" "benchmark characteristics (ours vs published)";
  Report.row fmt
    [ Report.cell "benchmark"; Report.cellr ~width:14 "wcet";
      Report.cellr ~width:14 "published"; Report.cellr ~width:8 "max bb";
      Report.cellr ~width:10 "published"; Report.cellr ~width:8 "avg bb";
      Report.cellr ~width:10 "published" ];
  List.iter
    (fun (name, p_wcet, p_max, p_avg) ->
      let cfg = Kernels.find name in
      Report.row fmt
        [ Report.cell name;
          Report.cellr ~width:14 (string_of_int (Ir.Cfg.wcet cfg));
          Report.cellr ~width:14 (string_of_int p_wcet);
          Report.cellr ~width:8 (string_of_int (Ir.Cfg.max_block_size cfg));
          Report.cellr ~width:10 (string_of_int p_max);
          Report.cellr ~width:8 (Printf.sprintf "%.1f" (Ir.Cfg.avg_block_size cfg));
          Report.cellr ~width:10 (Printf.sprintf "%.1f" p_avg) ])
    published_table_5_1

let table_5_2 fmt =
  Report.banner fmt ~id:"Table 5.2" "task sets";
  for i = 1 to 5 do
    Report.row fmt
      [ Report.cell ~width:8 (string_of_int i);
        String.concat ", " (Curves.taskset_ch5 i) ]
  done

let input_utilizations = [ 1.1; 1.2; 1.3; 1.4; 1.5 ]

let driver_inputs set u =
  Iterative.Driver.tasks_of_kernels ~u
    (List.map (fun n -> (n, Kernels.find n)) (Curves.taskset_ch5 set))

let figure_5_3 fmt =
  Report.banner fmt ~id:"Figure 5.3" "utilization vs iterations";
  for set = 1 to 5 do
    List.iter
      (fun u ->
        let result = Iterative.Driver.run (driver_inputs set u) in
        let history =
          List.map
            (fun (it : Iterative.Driver.iteration) ->
              Printf.sprintf "%.3f" it.utilization)
            result.Iterative.Driver.iterations
        in
        Report.row fmt
          [ Report.cell ~width:8 (Printf.sprintf "set %d" set);
            Report.cell ~width:8 (Printf.sprintf "U=%.1f" u);
            Report.cell ~width:14
              (if result.Iterative.Driver.schedulable then "schedulable"
               else "infeasible");
            String.concat " -> " history ])
      input_utilizations
  done

let figure_5_4 fmt =
  Report.banner fmt ~id:"Figure 5.4" "analysis time and hardware area vs input utilization";
  Report.row fmt
    [ Report.cell ~width:8 "set"; Report.cell ~width:8 "U";
      Report.cellr ~width:12 "time (s)"; Report.cellr ~width:14 "area (adders)";
      Report.cellr ~width:8 "CIs"; Report.cell ~width:14 "  result" ];
  for set = 1 to 5 do
    List.iter
      (fun u ->
        let result, elapsed =
          Report.timed_into fmt
            (Printf.sprintf "set %d U=%.1f" set u)
            (fun () -> Iterative.Driver.run (driver_inputs set u))
        in
        Report.row fmt
          [ Report.cell ~width:8 (string_of_int set);
            Report.cell ~width:8 (Printf.sprintf "%.1f" u);
            Report.cellr ~width:12 (Printf.sprintf "%.2f" elapsed);
            Report.cellr ~width:14
              (Printf.sprintf "%.0f"
                 (Isa.Hw_model.adders_of_units result.Iterative.Driver.total_area));
            Report.cellr ~width:8 (string_of_int result.Iterative.Driver.instruction_count);
            Report.cell ~width:14
              (if result.Iterative.Driver.schedulable then "  schedulable"
               else "  infeasible") ])
      input_utilizations
  done;
  Report.row fmt [ "paper: 10-65 seconds to schedulability (2007-era hardware)" ]

(* Figures 5.5/5.6: MLGP vs IS per kernel — progress of speedup against
   analysis time, and the area/speedup trade-off. *)
let mlgp_vs_is_kernels = [ "g721decode"; "jfdctint"; "blowfish"; "md5"; "sha"; "3des" ]

type progress = { time : float; speedup : float; area : int }

let profile_of cfg =
  Ir.Cfg.profile cfg
  |> List.map (fun (b, f) -> (b, f))

let software_cycles profile =
  Util.Numeric.sum_byf
    (fun ((b : Ir.Cfg.block), freq) -> freq *. float_of_int (Ir.Cfg.block_cycles b))
    profile

(* Run a generator block by block (hottest first), recording cumulative
   (time, speedup, area) after every step it reports. *)
let progress_of_generator ~time_budget ~step_generator cfg =
  let profile =
    profile_of cfg
    |> List.sort (fun ((b1 : Ir.Cfg.block), f1) (b2, f2) ->
           compare
             (f2 *. float_of_int (Ir.Cfg.block_cycles b2))
             (f1 *. float_of_int (Ir.Cfg.block_cycles b1)))
  in
  let sw = software_cycles profile in
  let started = Unix.gettimeofday () in
  let saved = ref 0. and area = ref 0 in
  let out = ref [] in
  (try
     List.iter
       (fun ((b : Ir.Cfg.block), freq) ->
         if Unix.gettimeofday () -. started > time_budget then raise Exit;
         step_generator b.body (fun (ci : Isa.Custom_inst.t) ->
             saved := !saved +. (freq *. float_of_int (Isa.Custom_inst.gain ci));
             area := !area + ci.Isa.Custom_inst.area;
             let t = Unix.gettimeofday () -. started in
             out :=
               { time = t; speedup = sw /. (sw -. !saved); area = !area } :: !out;
             if t > time_budget then raise Exit))
       profile
   with Exit -> ());
  List.rev !out

let mlgp_step dfg on_ci = List.iter on_ci (Iterative.Mlgp.cover_dfg dfg)

let is_step dfg on_ci =
  ignore (Iterative.Is_baseline.run ~max_instructions:24 ~on_step:on_ci dfg)

(* Figures 5.5 and 5.6 share the same runs; cache them. *)
let progress_cache : (string * string, progress list) Hashtbl.t = Hashtbl.create 16

let cached_progress name label step cfg =
  match Hashtbl.find_opt progress_cache (name, label) with
  | Some p -> p
  | None ->
    let p = progress_of_generator ~time_budget:20. ~step_generator:step cfg in
    Hashtbl.add progress_cache (name, label) p;
    p

let pp_progress fmt label progress =
  let show =
    (* subsample to at most 8 checkpoints *)
    let n = List.length progress in
    let stride = max 1 (n / 8) in
    List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) progress
  in
  Report.row fmt
    [ Report.cell ~width:18 label;
      String.concat "  "
        (List.map
           (fun p -> Printf.sprintf "%.2fs:%.3fx" p.time p.speedup)
           show) ]

let figure_5_5 fmt =
  Report.banner fmt ~id:"Figure 5.5" "speedup vs analysis time, MLGP vs IS";
  List.iter
    (fun name ->
      let cfg = Kernels.find name in
      Report.row fmt [ Report.cell ~width:18 name ];
      pp_progress fmt "  MLGP" (cached_progress name "mlgp" mlgp_step cfg);
      pp_progress fmt "  IS" (cached_progress name "is" is_step cfg))
    mlgp_vs_is_kernels;
  Report.row fmt
    [ "paper: MLGP completes in seconds; IS takes 1000s+ on large blocks (3des)" ]

let figure_5_6 fmt =
  Report.banner fmt ~id:"Figure 5.6" "hardware area vs speedup, MLGP vs IS";
  List.iter
    (fun name ->
      let cfg = Kernels.find name in
      let final label progress =
        match List.rev progress with
        | last :: _ ->
          Report.row fmt
            [ Report.cell ~width:18 ("  " ^ label);
              Printf.sprintf "%.0f adders -> %.3fx speedup"
                (Isa.Hw_model.adders_of_units last.area)
                last.speedup ]
        | [] -> Report.row fmt [ Report.cell ~width:18 ("  " ^ label); "no instructions" ]
      in
      Report.row fmt [ Report.cell ~width:18 name ];
      final "MLGP" (cached_progress name "mlgp" mlgp_step cfg);
      final "IS" (cached_progress name "is" is_step cfg))
    mlgp_vs_is_kernels
