(** The experiment registry: every table and figure of the evaluation,
    addressable by its paper identifier (e.g. ["f3.3"], ["t6.1"]). *)

type experiment = {
  id : string;  (** short id, e.g. "f3.3" *)
  title : string;
  run : Format.formatter -> unit;
}

val all : experiment list
(** In paper order. *)

val find : string -> experiment option

val ids : unit -> string list
