lib/experiments/ch7.ml: Array Curves Float Isa List Printf Report Rtreconfig String Util
