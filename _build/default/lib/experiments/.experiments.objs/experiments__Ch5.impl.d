lib/experiments/ch5.ml: Curves Hashtbl Ir Isa Iterative Kernels List Printf Report String Unix Util
