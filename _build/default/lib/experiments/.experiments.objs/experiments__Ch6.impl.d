lib/experiments/ch6.ml: Array Float Ir Isa Ise Kernels List Option Printf Reconfig Report String Util
