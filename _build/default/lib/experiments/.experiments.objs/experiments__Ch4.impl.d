lib/experiments/ch4.ml: Array Curves Float Isa List Pareto Printf Report Rt String Util
