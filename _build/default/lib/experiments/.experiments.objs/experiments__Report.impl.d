lib/experiments/report.ml: Format Printf String Unix
