lib/experiments/report.ml: Buffer Char Format List Printf String Unix
