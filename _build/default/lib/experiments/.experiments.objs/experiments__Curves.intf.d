lib/experiments/curves.mli: Isa Ise Rt
