lib/experiments/ch3.ml: Array Core Curves Hashtbl Isa List Option Printf Report Rt String Util
