lib/experiments/registry.ml: Ablations Ch3 Ch4 Ch5 Ch6 Ch7 Curves List Micro Report
