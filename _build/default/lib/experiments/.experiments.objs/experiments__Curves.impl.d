lib/experiments/curves.ml: Hashtbl Isa Ise Kernels List Printf Rt Util
