lib/experiments/curves.ml: Engine Hashtbl Isa Ise Kernels List Printf Rt Util
