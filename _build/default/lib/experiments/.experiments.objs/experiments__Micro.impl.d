lib/experiments/micro.ml: Analyze Bechamel Benchmark Ch7 Core Hashtbl Instance Isa Iterative Kernels List Measure Printf Reconfig Report Rt Rtreconfig Staged Test Time Toolkit Util
