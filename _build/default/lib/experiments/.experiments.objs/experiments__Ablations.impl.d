lib/experiments/ablations.ml: Core Curves Float Ir Isa Ise Iterative Kernels List Printf Reconfig Report Util
