let curve_table : (string, Isa.Config.t) Hashtbl.t = Hashtbl.create 32
let candidate_table : (string, Ise.Select.candidate list) Hashtbl.t = Hashtbl.create 32

let curve name =
  match Hashtbl.find_opt curve_table name with
  | Some c -> c
  | None ->
    let c =
      Ise.Curve.generate ~budget:Ise.Enumerate.small_budget (Kernels.find name)
    in
    Hashtbl.add curve_table name c;
    c

let candidates name =
  match Hashtbl.find_opt candidate_table name with
  | Some c -> c
  | None ->
    let c =
      Ise.Curve.candidates ~budget:Ise.Enumerate.small_budget (Kernels.find name)
    in
    Hashtbl.add candidate_table name c;
    c

let taskset_ch3 = function
  | 1 -> [ "crc32"; "sha"; "jpeg_dec"; "blowfish" ]
  | 2 -> [ "blowfish"; "adpcm_dec"; "crc32"; "jpeg_enc" ]
  | 3 -> [ "adpcm_enc"; "blowfish"; "jpeg_dec"; "crc32" ]
  | 4 -> [ "sha"; "susan"; "crc32"; "g721encode" ]
  | 5 -> [ "adpcm_dec"; "jpeg_dec"; "crc32"; "blowfish" ]
  | 6 -> [ "crc32"; "sha"; "blowfish"; "susan" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch3: no task set %d" n)

let taskset_ch4 = function
  | 1 -> [ "jpeg_enc"; "adpcm_enc"; "aes"; "compress"; "rijndael"; "md5" ]
  | 2 -> [ "jpeg_dec"; "g721decode"; "jpeg_enc"; "md5"; "adpcm_enc"; "jfdctint"; "aes" ]
  | 3 -> [ "jpeg_enc"; "md5"; "edn"; "sha"; "g721decode"; "jpeg_dec"; "compress"; "ndes" ]
  | 4 -> [ "adpcm_enc"; "rijndael"; "jpeg_enc"; "md5"; "sha"; "ndes"; "jpeg_dec"; "compress"; "edn" ]
  | 5 -> [ "aes"; "jpeg_dec"; "g721decode"; "rijndael"; "jfdctint"; "jpeg_enc"; "edn"; "md5"; "sha"; "ndes" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch4: no task set %d" n)

let taskset_ch5 = function
  | 1 -> [ "3des"; "rijndael"; "sha"; "g721decode" ]
  | 2 -> [ "sha"; "jfdctint"; "rijndael"; "ndes" ]
  | 3 -> [ "ndes"; "g721decode"; "rijndael"; "sha" ]
  | 4 -> [ "aes"; "3des"; "adpcm_enc"; "jfdctint" ]
  | 5 -> [ "adpcm_enc"; "jfdctint"; "rijndael"; "sha" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch5: no task set %d" n)

let tasks_of ~u names =
  List.map (fun name -> Rt.Task.make ~name ~period:1 (curve name)) names
  |> Rt.Task.with_target_utilization u

let max_area_of tasks =
  Util.Numeric.sum_by (fun (t : Rt.Task.t) -> Isa.Config.max_area t.curve) tasks
