(** Memoized per-kernel configuration curves and the published task-set
    compositions.

    Curve generation (the XPRES substitute) is the expensive part of the
    Chapter 3/4 experiments, so curves are computed once per kernel and
    shared by every experiment in the process. *)

val curve : string -> Isa.Config.t
(** Configuration curve of a kernel by benchmark name (memoized). *)

val candidates : string -> Ise.Select.candidate list
(** Custom-instruction candidates of a kernel (memoized). *)

val taskset_ch3 : int -> string list
(** Composition of Table 3.1's task sets (1-based index 1..6). *)

val taskset_ch4 : int -> string list
(** Composition of Table 4.1's task sets (1..5).  The thesis's [ispell]
    (Trimaran) benchmark is substituted by [md5] — see DESIGN.md. *)

val taskset_ch5 : int -> string list
(** Composition of Table 5.2's task sets (1..5). *)

val tasks_of : u:float -> string list -> Rt.Task.t list
(** Real-time tasks over the kernels' curves with periods set for a
    total software utilization of [u] in equal shares (§3.2). *)

val max_area_of : Rt.Task.t list -> int
(** Σ of the tasks' maximum configuration areas — the Max_Area budget
    reference of §3.2. *)
