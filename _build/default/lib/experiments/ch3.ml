(* Chapter 3 — the DATE 2007 paper's evaluation (§3.2). *)

let utilizations = [ 0.80; 1.00; 1.05; 1.08; 1.10 ]

(* Table 3.1: composition of the task sets. *)
let table_3_1 fmt =
  Report.banner fmt ~id:"Table 3.1" "composition of task sets";
  Report.row fmt [ Report.cell ~width:8 "Task set"; "Benchmarks" ];
  for i = 1 to 6 do
    Report.row fmt
      [ Report.cell ~width:8 (string_of_int i);
        String.concat ", " (Curves.taskset_ch3 i) ]
  done

(* Figure 3.1: cycles-vs-area staircase for the g721 decoding task. *)
let figure_3_1 fmt =
  Report.banner fmt ~id:"Figure 3.1" "performance vs hardware area (g721 decode)";
  let curve = Curves.curve "g721decode" in
  Report.row fmt
    [ Report.cellr ~width:16 "area (adders)"; Report.cellr ~width:16 "cycles" ];
  Array.iter
    (fun (p : Isa.Config.point) ->
      Report.row fmt
        [ Report.cellr ~width:16 (Printf.sprintf "%.1f" (Isa.Hw_model.adders_of_units p.area));
          Report.cellr ~width:16 (string_of_int p.cycles) ])
    (Isa.Config.points curve)

(* Figure 3.2: the motivating example — four heuristics fail where the
   optimal selection schedules the set. *)
let figure_3_2 fmt =
  Report.banner fmt ~id:"Figure 3.2" "heuristics vs optimal on the motivating example";
  let curve base pts = Isa.Config.of_points ~base_cycles:base pts in
  let tasks =
    [ Rt.Task.make ~name:"T1" ~period:6 (curve 2 [ { Isa.Config.area = 7; cycles = 1 } ]);
      Rt.Task.make ~name:"T2" ~period:8 (curve 3 [ { Isa.Config.area = 6; cycles = 2 } ]);
      Rt.Task.make ~name:"T3" ~period:12 (curve 6 [ { Isa.Config.area = 4; cycles = 5 } ]) ]
  in
  let budget = 10 in
  let show name (sel : Core.Selection.t) =
    Report.row fmt
      [ Report.cell ~width:40 name;
        Report.cellr ~width:10 (Printf.sprintf "%.4f" sel.utilization);
        Report.cell ~width:14
          (if sel.utilization <= 1. then "schedulable" else "NOT schedulable") ]
  in
  show "software only" (Core.Selection.software tasks);
  List.iter
    (fun strategy ->
      show (Core.Heuristics.name strategy)
        (Core.Heuristics.run strategy ~budget tasks))
    Core.Heuristics.all;
  show "optimal (Algorithm 1)" (Core.Edf_select.run ~budget tasks)

(* Figure 3.3: utilization vs area for each task set, both policies. *)
let figure_3_3 fmt =
  Report.banner fmt ~id:"Figure 3.3" "utilization vs area, EDF and RMS";
  let reductions_at = Hashtbl.create 8 (* fraction of MaxArea -> reductions *) in
  let record frac reduction =
    Hashtbl.replace reductions_at frac
      (reduction :: Option.value ~default:[] (Hashtbl.find_opt reductions_at frac))
  in
  List.iter
    (fun set_index ->
      let names = Curves.taskset_ch3 set_index in
      List.iter
        (fun u ->
          let tasks = Curves.tasks_of ~u names in
          let max_area = Curves.max_area_of tasks in
          Report.row fmt
            [ Report.cell ~width:10 (Printf.sprintf "set %d" set_index);
              Report.cell ~width:8 (Printf.sprintf "U=%.2f" u);
              Report.cell ~width:60 "area%:  0  10  20  30  40  50  60  70  80  90 100" ];
          let edf_cells = ref [] and rms_cells = ref [] in
          for step = 0 to 10 do
            let budget = max_area * step / 10 in
            let edf = Core.Edf_select.run ~budget tasks in
            let edf_u = edf.Core.Selection.utilization in
            if u > edf_u && step >= 5 then
              record (step * 10) ((u -. edf_u) /. u *. 100.);
            edf_cells := Printf.sprintf "%.3f" edf_u :: !edf_cells;
            let rms_text =
              match Core.Rms_select.run ~budget tasks with
              | Some sel -> Printf.sprintf "%.3f" sel.Core.Selection.utilization
              | None -> "--"
            in
            rms_cells := rms_text :: !rms_cells
          done;
          Report.row fmt
            [ Report.cell ~width:10 ""; Report.cell ~width:8 "EDF";
              String.concat " " (List.rev_map (Report.cellr ~width:6) !edf_cells) ];
          Report.row fmt
            [ Report.cell ~width:10 ""; Report.cell ~width:8 "RMS";
              String.concat " " (List.rev_map (Report.cellr ~width:6) !rms_cells) ])
        utilizations)
    [ 1; 2; 3; 4; 5; 6 ];
  let mean l = Util.Numeric.sum_byf (fun x -> x) l /. float_of_int (List.length l) in
  List.iter
    (fun frac ->
      match Hashtbl.find_opt reductions_at frac with
      | Some l ->
        Report.row fmt
          [ Report.cell ~width:46
              (Printf.sprintf "mean utilization reduction at %d%% MaxArea" frac);
            Report.pct (mean l) ]
      | None -> ())
    [ 50; 70; 100 ];
  Report.row fmt
    [ Report.cell ~width:46 "paper: ~13% at 50%, ~14% at 75%, up to 19%"; "" ]

(* Figure 3.4: energy saving vs area for task set 3 (TM5400 DVFS). *)
let figure_3_4 fmt =
  Report.banner fmt ~id:"Figure 3.4" "energy saving vs area, task set 3";
  let names = Curves.taskset_ch3 3 in
  Report.row fmt
    [ Report.cell ~width:8 "policy"; Report.cell ~width:8 "U";
      Report.cell ~width:60 "energy saving at 0..100% MaxArea (step 10%)" ];
  List.iter
    (fun u ->
      let tasks = Curves.tasks_of ~u names in
      let n_tasks = List.length tasks in
      let max_area = Curves.max_area_of tasks in
      let software = Core.Selection.software tasks in
      let base_u = software.Core.Selection.utilization in
      List.iter
        (fun (policy, policy_name, select) ->
          let selections =
            List.init 11 (fun step -> select (max_area * step / 10))
          in
          (* the thesis compares against the original configuration or,
             when that is unschedulable, the first schedulable solution *)
          let reference =
            if base_u <= 1. then Some base_u
            else
              List.find_map
                (Option.map (fun (s : Core.Selection.t) -> s.utilization))
                selections
          in
          let cells =
            List.map
              (fun sel ->
                match (sel, reference) with
                | Some (sel : Core.Selection.t), Some ref_u ->
                  Report.cellr ~width:6
                    (Printf.sprintf "%.1f"
                       (Rt.Energy.saving_percent policy ~n_tasks
                          ~base:(ref_u, ref_u)
                          ~custom:(sel.utilization, sel.utilization)))
                | None, _ | _, None -> Report.cellr ~width:6 "--")
              selections
          in
          Report.row fmt
            [ Report.cell ~width:8 policy_name;
              Report.cell ~width:8 (Printf.sprintf "%.2f" u);
              String.concat " " cells ])
        [ (Rt.Energy.Edf, "EDF",
           fun budget -> Core.Edf_select.run_schedulable ~budget tasks);
          (Rt.Energy.Rms, "RMS", fun budget -> Core.Rms_select.run ~budget tasks) ])
    utilizations;
  Report.row fmt
    [ Report.cell ~width:46 "paper: up to 30%; ~14% EDF / ~10% RMS at 75% area"; "" ]
