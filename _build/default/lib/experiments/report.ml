let banner fmt ~id title =
  Format.fprintf fmt "@.=== %s: %s ===@." id title

let row fmt cells =
  Format.fprintf fmt "%s@." (String.concat "  " cells)

let pad width s align =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with `Left -> s ^ fill | `Right -> fill ^ s

let cell ?(width = 12) s = pad width s `Left
let cellr ?(width = 12) s = pad width s `Right

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct v = Printf.sprintf "%.1f%%" v
