module Bitset = Util.Bitset

(* Clusters are disjoint node sets.  Adjacency between clusters is
   direct-edge adjacency between their member nodes. *)

let ratio dfg set =
  if Bitset.is_empty set then 0.
  else
    let ci = Isa.Custom_inst.make_unchecked dfg set in
    let area = max 1 ci.Isa.Custom_inst.area in
    float_of_int (Isa.Custom_inst.gain ci) /. float_of_int area

let legal ?constraints dfg set =
  Bitset.is_empty set || Isa.Custom_inst.feasible ?constraints dfg set

(* Gain a partition will actually contribute once emitted: partitions
   with non-positive gain are left in software. *)
let emittable_gain dfg set =
  if Bitset.is_empty set then 0
  else max 0 (Isa.Custom_inst.gain (Isa.Custom_inst.make_unchecked dfg set))

(* Contracting the clusters must leave the dependence graph acyclic,
   otherwise the partitions cannot all be fused simultaneously (the
   joint-schedulability hazard Codegen.sanitize guards against).  The
   check contracts every node through [macro_of] (nodes outside any
   cluster are their own macros) and runs Kahn's algorithm. *)
let contraction_acyclic dfg ~macro_of ~n_macros =
  let n = Ir.Dfg.node_count dfg in
  let size = n_macros + n in
  let id v = match macro_of v with -1 -> n_macros + v | c -> c in
  let indegree = Array.make size 0 in
  let successors = Array.make size [] in
  let exists = Array.make size false in
  for v = 0 to n - 1 do
    exists.(id v) <- true;
    List.iter
      (fun s ->
        let a = id v and b = id s in
        if a <> b then begin
          successors.(a) <- b :: successors.(a);
          indegree.(b) <- indegree.(b) + 1
        end)
      (Ir.Dfg.succs dfg v)
  done;
  let ready = Queue.create () in
  let total = ref 0 in
  for m = 0 to size - 1 do
    if exists.(m) then begin
      incr total;
      if indegree.(m) = 0 then Queue.push m ready
    end
  done;
  let emitted = ref 0 in
  while not (Queue.is_empty ready) do
    let m = Queue.pop ready in
    incr emitted;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then Queue.push s ready)
      successors.(m);
    successors.(m) <- []
  done;
  !emitted = !total

(* Cluster-level adjacency for the current cluster list. *)
let cluster_neighbors dfg clusters cluster_of set =
  let out = ref [] in
  Bitset.iter
    (fun v ->
      let consider u =
        match cluster_of.(u) with
        | -1 -> ()
        | c ->
          if (not (Bitset.mem set u)) && not (List.mem c !out) then out := c :: !out
      in
      List.iter consider (Ir.Dfg.preds dfg v);
      List.iter consider (Ir.Dfg.succs dfg v))
    set;
  ignore clusters;
  !out

let rebuild_cluster_of n clusters =
  let cluster_of = Array.make n (-1) in
  Array.iteri
    (fun i set -> match set with
       | Some s -> Bitset.iter (fun v -> cluster_of.(v) <- i) s
       | None -> ())
    clusters;
  cluster_of

(* One coarsening pass: visit clusters in random order and merge each
   unconsumed cluster with its best legal neighbour.  A cluster that
   found no partner stays available as a merge target for clusters
   visited later (consumed is set only by an actual merge). *)
let coarsen_pass ?constraints dfg prng clusters =
  let n = Ir.Dfg.node_count dfg in
  let live = Array.map (fun c -> Some c) clusters in
  let cluster_of = rebuild_cluster_of n live in
  let order = Array.init (Array.length clusters) (fun i -> i) in
  Util.Prng.shuffle prng order;
  let consumed = Array.make (Array.length clusters) false in
  let merged = ref false in
  Array.iter
    (fun i ->
      if not consumed.(i) then
        match live.(i) with
        | None -> ()
        | Some set ->
          let candidates =
            cluster_neighbors dfg live cluster_of set
            |> List.filter (fun j -> j <> i && not consumed.(j))
          in
          let best = ref None in
          List.iter
            (fun j ->
              match live.(j) with
              | None -> ()
              | Some other ->
                let union = Bitset.copy set in
                Bitset.union_into union other;
                if
                  legal ?constraints dfg union
                  && contraction_acyclic dfg
                       ~macro_of:(fun v ->
                         let c = cluster_of.(v) in
                         if c = j then i else c)
                       ~n_macros:(Array.length clusters)
                then begin
                  let r = ratio dfg union in
                  match !best with
                  | Some (br, _, _) when br >= r -> ()
                  | Some _ | None -> best := Some (r, j, union)
                end)
            candidates;
          (match !best with
           | Some (_, j, union) ->
             consumed.(i) <- true;
             consumed.(j) <- true;
             live.(i) <- Some union;
             live.(j) <- None;
             Bitset.iter (fun v -> cluster_of.(v) <- i) union;
             merged := true
           | None -> ()))
    order;
  let next =
    Array.to_list live |> List.filter_map (fun c -> c) |> Array.of_list
  in
  (next, !merged)

(* Refinement at one level: move boundary units between partitions when
   the summed gain/area ratio improves and both partitions stay legal
   (Algorithm 5, without the directional input/output repair). *)
let refine_level ?constraints dfg prng units assignment partitions =
  let n_units = Array.length units in
  let order = Array.init n_units (fun i -> i) in
  Util.Prng.shuffle prng order;
  let unit_of_node = Array.make (Ir.Dfg.node_count dfg) (-1) in
  Array.iteri (fun i u -> Bitset.iter (fun v -> unit_of_node.(v) <- i) u) units;
  let part_of_node = Array.make (Ir.Dfg.node_count dfg) (-1) in
  Array.iteri (fun p set -> Bitset.iter (fun v -> part_of_node.(v) <- p) set) partitions;
  let changed = ref false in
  Array.iter
    (fun i ->
      let unit = units.(i) in
      let src = assignment.(i) in
      (* neighbour partitions of this unit *)
      let neighbour_parts = ref [] in
      Bitset.iter
        (fun v ->
          let consider u =
            match unit_of_node.(u) with
            | -1 -> ()
            | j ->
              let p = assignment.(j) in
              if p <> src && not (List.mem p !neighbour_parts) then
                neighbour_parts := p :: !neighbour_parts
          in
          List.iter consider (Ir.Dfg.preds dfg v);
          List.iter consider (Ir.Dfg.succs dfg v))
        unit;
      if !neighbour_parts <> [] then begin
        let src_without = Bitset.copy partitions.(src) in
        Bitset.diff_into src_without unit;
        if legal ?constraints dfg src_without then begin
          let base_src = ratio dfg partitions.(src) in
          let base_src_gain = emittable_gain dfg partitions.(src) in
          let best = ref None in
          List.iter
            (fun p ->
              let dst_with = Bitset.copy partitions.(p) in
              Bitset.union_into dst_with unit;
              if legal ?constraints dfg dst_with then begin
                let improvement =
                  ratio dfg dst_with -. ratio dfg partitions.(p)
                  +. ratio dfg src_without -. base_src
                in
                (* the ratio objective (Algorithm 5) chooses the move,
                   but a move must never lose emittable cycles — chasing
                   small dense partitions can wreck absolute gain *)
                let gain_delta =
                  emittable_gain dfg dst_with + emittable_gain dfg src_without
                  - emittable_gain dfg partitions.(p) - base_src_gain
                in
                if
                  improvement > 1e-12 && gain_delta >= 0
                  && contraction_acyclic dfg
                       ~macro_of:(fun v ->
                         if Bitset.mem unit v then p else part_of_node.(v))
                       ~n_macros:(Array.length partitions)
                then
                  match !best with
                  | Some (bi, _, _) when bi >= improvement -> ()
                  | Some _ | None -> best := Some (improvement, p, dst_with)
              end)
            !neighbour_parts;
          match !best with
          | Some (_, p, dst_with) ->
            partitions.(src) <- src_without;
            partitions.(p) <- dst_with;
            Bitset.iter (fun v -> part_of_node.(v) <- p) unit;
            assignment.(i) <- p;
            changed := true
          | None -> ()
        end
      end)
    order;
  !changed

let partition_region ?constraints ?(seed = 17) ?(refine = true) dfg ~allowed =
  let prng = Util.Prng.create seed in
  let n = Ir.Dfg.node_count dfg in
  (* Level 0: singletons. *)
  let singletons =
    Bitset.fold (fun v acc -> Bitset.of_list n [ v ] :: acc) allowed []
    |> List.rev |> Array.of_list
  in
  if Array.length singletons = 0 then []
  else begin
    (* Coarsening, recording each level's clusters. *)
    let levels = ref [ singletons ] in
    let rec coarsen clusters =
      let next, progress = coarsen_pass ?constraints dfg prng clusters in
      if progress then begin
        levels := next :: !levels;
        coarsen next
      end
    in
    coarsen singletons;
    (* Initial partitioning: each coarsest cluster is a partition. *)
    let coarsest = List.hd !levels in
    let partitions = Array.map Bitset.copy coarsest in
    (* Uncoarsening: at each finer level the units are that level's
       clusters; their initial assignment is the partition that contains
       them. *)
    if refine then
    List.iter
      (fun units ->
        let part_of_node = Array.make n (-1) in
        Array.iteri
          (fun p set -> Bitset.iter (fun v -> part_of_node.(v) <- p) set)
          partitions;
        let assignment =
          Array.map
            (fun u ->
              match Bitset.elements u with
              | v :: _ -> part_of_node.(v)
              | [] -> 0)
            units
        in
        let rec fixpoint k =
          if k > 0 && refine_level ?constraints dfg prng units assignment partitions
          then fixpoint (k - 1)
        in
        fixpoint 3)
      (List.tl !levels);
    (* Emit non-empty partitions with positive gain; drop instructions
       that would make the block unschedulable (mutual dependences). *)
    Array.to_list partitions
    |> List.filter_map (fun set ->
           if Bitset.is_empty set then None
           else
             match Isa.Custom_inst.check ?constraints dfg set with
             | Ok ci when Isa.Custom_inst.gain ci > 0 -> Some ci
             | Ok _ | Error _ -> None)
    |> Ise.Codegen.sanitize dfg
    |> List.sort (fun a b ->
           compare (Isa.Custom_inst.gain b) (Isa.Custom_inst.gain a))
  end

let cover_dfg ?constraints ?seed ?refine dfg =
  Ir.Region.of_dfg dfg
  |> List.concat_map (fun r ->
         partition_region ?constraints ?seed ?refine dfg ~allowed:r.Ir.Region.members)
