(** MLGP — multi-level graph partitioning for on-the-fly custom
    instruction generation (thesis §5.2.3).

    Unlike enumerate-then-select, MLGP partitions a region's data-flow
    graph directly into a few {e large} legal custom instructions:

    - {e coarsening}: repeatedly merge adjacent clusters when the union
      stays a legal custom instruction (valid, convex, within I/O
      ports), choosing the merge with the best gain/area ratio;
    - {e initial partitioning}: every coarsest cluster is one custom
      instruction (no artificial k);
    - {e uncoarsening}: project back level by level, greedily moving
      boundary clusters between neighbouring partitions when the move
      keeps both partitions legal and improves the summed gain/area
      ratio (Algorithm 5).

    Runtime is near-linear in the region size, which is the property
    Chapter 5 exploits to customize multi-megacycle task sets in
    seconds. *)

val partition_region :
  ?constraints:Isa.Hw_model.constraints ->
  ?seed:int ->
  ?refine:bool ->
  Ir.Dfg.t ->
  allowed:Util.Bitset.t ->
  Isa.Custom_inst.t list
(** Partition the [allowed] nodes (all must be ISE-valid) of one region
    into disjoint legal custom instructions; only partitions with
    strictly positive gain are returned, best gain first.  The returned
    set is jointly schedulable (no mutual dependences between
    instructions — see {!Ise.Codegen.sanitize}). *)

val cover_dfg :
  ?constraints:Isa.Hw_model.constraints ->
  ?seed:int ->
  ?refine:bool ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** Run {!partition_region} over every region of a block's DFG.
    [refine] (default true) enables the uncoarsening refinement passes —
    exposed so the ablation benchmark can quantify their contribution. *)
