module Bitset = Util.Bitset

let run ?constraints ?budget ?(max_instructions = 64) ?(on_step = fun _ -> ())
    dfg =
  let n = Ir.Dfg.node_count dfg in
  let available =
    Bitset.of_list n (List.filter (Ir.Dfg.valid_node dfg) (Ir.Dfg.nodes dfg))
  in
  let rec iterate acc remaining =
    if remaining = 0 then List.rev acc
    else
      match Ise.Enumerate.best_single_cut ?constraints ?budget ~allowed:available dfg with
      | None -> List.rev acc
      | Some ci ->
        if Isa.Custom_inst.gain ci <= 0 then List.rev acc
        else begin
          Bitset.diff_into available ci.Isa.Custom_inst.nodes;
          on_step ci;
          iterate (ci :: acc) (remaining - 1)
        end
  in
  iterate [] max_instructions
