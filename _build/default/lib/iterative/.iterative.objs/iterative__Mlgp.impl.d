lib/iterative/mlgp.ml: Array Ir Isa Ise List Queue Util
