lib/iterative/is_baseline.ml: Ir Isa Ise List Util
