lib/iterative/driver.ml: Array Float Ir Isa List Mlgp Util
