lib/iterative/mlgp.mli: Ir Isa Util
