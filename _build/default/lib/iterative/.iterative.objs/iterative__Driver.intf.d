lib/iterative/driver.mli: Ir
