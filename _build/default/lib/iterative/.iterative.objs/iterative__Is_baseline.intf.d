lib/iterative/is_baseline.mli: Ir Isa Ise
