(** Per-task custom-instruction configurations (thesis §3.1.1).

    A configuration is one synthesisable choice of custom instructions
    for a task, summarised by its silicon area and the task's resulting
    execution time.  A task's {e configuration curve} is the Pareto set
    of such points, always including the software-only configuration
    (area 0, base cycles) — this is the shape Figure 3.1 plots and the
    object Chapter 3's selection algorithms consume. *)

type point = { area : int;  (** deci-adders *) cycles : int }

type t
(** A configuration curve: non-empty, strictly increasing in area,
    strictly decreasing in cycles, first point has area 0. *)

val of_points : base_cycles:int -> point list -> t
(** Build a curve from raw (area, cycles) design points.  The software
    point [(0, base_cycles)] is added, dominated points are removed.
    Points with [cycles > base_cycles] are rejected with
    [Invalid_argument]. *)

val points : t -> point array
val base_cycles : t -> int
val size : t -> int
(** Number of configurations (the thesis's [n_i]). *)

val max_area : t -> int
val min_cycles : t -> int

val best_at : t -> int -> point
(** Cheapest-cycles configuration within an area budget; total, because
    area 0 always fits. *)

val scale_cycles : t -> float -> t
(** Multiply every cycle count (including the base) by a factor —
    used to derive task variants with different computational weights. *)

val restrict : t -> max_area:int -> t
(** Drop configurations above an area bound. *)

val pp : Format.formatter -> t -> unit
