(** Hardware cost model for custom functional units.

    Substitutes the Synopsys 0.18 µm synthesis flow of the thesis with a
    fixed operator table.  Conventions follow the thesis's experimental
    setup (§5.3.1):

    - area is reported in {e adder equivalents}; internally we use
      integer deci-adders (10 units = one 32-bit ripple adder) so that
      the dynamic programs can use exact integer arithmetic;
    - latency is in picoseconds; custom-instruction latency is the
      critical path of the datapath, normalised to cycles of a 120 MHz
      core (one MAC = one cycle);
    - custom instructions read at most [max_inputs] and write at most
      [max_outputs] register operands (register-file port limits). *)

type constraints = { max_inputs : int; max_outputs : int }

val default_constraints : constraints
(** 4 inputs, 2 outputs — the setting used in every thesis experiment. *)

val cycle_ps : int
(** Clock period of the 120 MHz base core, in picoseconds. *)

val area_units_per_adder : int
(** Deci-adders per adder (= 10). *)

val hw_delay_ps : Ir.Op.kind -> int
(** Synthesised propagation delay of one operator.  Raises
    [Invalid_argument] for ISE-ineligible operations. *)

val area : Ir.Op.kind -> int
(** Silicon area of one operator, in deci-adders.  Raises
    [Invalid_argument] for ISE-ineligible operations. *)

val set_area : Ir.Dfg.t -> Util.Bitset.t -> int
(** Total area of a node set (sum of operator areas, as in the thesis's
    area estimation). *)

val set_hw_cycles : Ir.Dfg.t -> Util.Bitset.t -> int
(** Hardware latency of a node set in core cycles:
    ⌈critical-path delay / cycle⌉, at least 1 for non-empty sets. *)

val adders_of_units : int -> float
(** Convert deci-adders to adders for reporting. *)

val gates_of_units : int -> int
(** Convert deci-adders to logic gates (Chapter 3 reports areas in
    gates; one adder ≈ 160 gates in a 0.18 µm library). *)
