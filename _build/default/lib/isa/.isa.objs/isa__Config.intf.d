lib/isa/config.mli: Format
