lib/isa/config.ml: Array Float Format List Util
