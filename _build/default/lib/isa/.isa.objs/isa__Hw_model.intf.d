lib/isa/hw_model.mli: Ir Util
