lib/isa/hw_model.ml: Ir Util
