lib/isa/custom_inst.mli: Format Hw_model Ir Util
