lib/isa/custom_inst.ml: Format Hw_model Ir Result Util
