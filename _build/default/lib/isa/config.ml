type point = { area : int; cycles : int }

type t = point array

let of_points ~base_cycles raw =
  List.iter
    (fun p ->
      if p.cycles > base_cycles then
        invalid_arg "Config.of_points: configuration slower than software";
      if p.area < 0 then invalid_arg "Config.of_points: negative area")
    raw;
  let as_front =
    List.map
      (fun p -> { Util.Pareto_front.cost = p.area; value = float_of_int p.cycles })
      ({ area = 0; cycles = base_cycles } :: raw)
  in
  Util.Pareto_front.front as_front
  |> List.map (fun { Util.Pareto_front.cost; value } ->
         { area = cost; cycles = int_of_float value })
  |> Array.of_list

let points t = t
let base_cycles t = t.(0).cycles
let size t = Array.length t
let max_area t = t.(Array.length t - 1).area
let min_cycles t = t.(Array.length t - 1).cycles

let best_at t budget =
  let best = ref t.(0) in
  Array.iter (fun p -> if p.area <= budget then best := p) t;
  !best

let scale_cycles t factor =
  if factor <= 0. then invalid_arg "Config.scale_cycles";
  let scale c = max 1 (int_of_float (Float.round (float_of_int c *. factor))) in
  let scaled = Array.map (fun p -> { p with cycles = scale p.cycles }) t in
  (* Rescaling can merge neighbouring cycle counts; re-normalise. *)
  of_points ~base_cycles:scaled.(0).cycles
    (Array.to_list (Array.sub scaled 1 (Array.length scaled - 1)))

let restrict t ~max_area =
  let kept = Array.to_list t |> List.filter (fun p -> p.area <= max_area) in
  of_points ~base_cycles:(base_cycles t)
    (List.filter (fun p -> p.area > 0) kept)

let pp fmt t =
  Format.fprintf fmt "@[<hov>curve[%d]:" (size t);
  Array.iter (fun p -> Format.fprintf fmt "@ (%d,%d)" p.area p.cycles) t;
  Format.fprintf fmt "@]"
