type constraints = { max_inputs : int; max_outputs : int }

let default_constraints = { max_inputs = 4; max_outputs = 2 }

let cycle_ps = 8333 (* 120 MHz *)

let area_units_per_adder = 10

let invalid k =
  invalid_arg ("Hw_model: " ^ Ir.Op.name k ^ " cannot be implemented in a CFU")

let hw_delay_ps = function
  | Ir.Op.Add | Ir.Op.Sub -> 2000
  | Ir.Op.Mul -> 5500
  | Ir.Op.Div | Ir.Op.Rem -> 30000
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 450
  | Ir.Op.Not -> 200
  | Ir.Op.Shl | Ir.Op.Shr -> 900
  | Ir.Op.Cmp -> 1800
  | Ir.Op.Select -> 600
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

let area = function
  | Ir.Op.Add | Ir.Op.Sub -> 10
  | Ir.Op.Mul -> 120
  | Ir.Op.Div | Ir.Op.Rem -> 300
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 3
  | Ir.Op.Not -> 1
  | Ir.Op.Shl | Ir.Op.Shr -> 9
  | Ir.Op.Cmp -> 8
  | Ir.Op.Select -> 5
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

let set_area dfg set =
  Util.Bitset.fold (fun v acc -> acc + area (Ir.Dfg.kind dfg v)) set 0

let set_hw_cycles dfg set =
  if Util.Bitset.is_empty set then 0
  else
    let delay k = float_of_int (hw_delay_ps k) in
    let path = Ir.Dfg.critical_path dfg ~delay set in
    max 1 (int_of_float (ceil (path /. float_of_int cycle_ps)))

let adders_of_units u = float_of_int u /. float_of_int area_units_per_adder

let gates_of_units u = u * 16 (* 160 gates per adder / 10 units per adder *)
