test/test_pareto.mli:
