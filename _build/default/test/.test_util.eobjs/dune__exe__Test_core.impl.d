test/test_core.ml: Alcotest Core Float Isa List QCheck QCheck_alcotest Rt Test_helpers
