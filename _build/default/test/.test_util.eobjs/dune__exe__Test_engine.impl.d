test/test_engine.ml: Alcotest Array Engine Filename Fun Isa Ise Kernels List Printf Unix
