test/test_rtreconfig.mli:
