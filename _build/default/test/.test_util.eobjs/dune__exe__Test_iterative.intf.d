test/test_iterative.mli:
