test/test_pareto.ml: Alcotest Array Float Kernels List Pareto Printf QCheck QCheck_alcotest Util
