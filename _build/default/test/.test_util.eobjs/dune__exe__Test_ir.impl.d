test/test_ir.ml: Alcotest Array Gen Ir List QCheck QCheck_alcotest String Test_helpers Util
