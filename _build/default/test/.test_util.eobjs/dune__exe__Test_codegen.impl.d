test/test_codegen.ml: Alcotest Array Ir Isa Ise Iterative Kernels List QCheck QCheck_alcotest Util
