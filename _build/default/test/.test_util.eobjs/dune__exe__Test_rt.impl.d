test/test_rt.ml: Alcotest Isa List QCheck QCheck_alcotest Rt Test_helpers
