test/test_isa.ml: Alcotest Array Ir Isa List QCheck QCheck_alcotest Test_helpers Util
