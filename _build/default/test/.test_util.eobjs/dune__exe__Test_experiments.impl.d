test/test_experiments.ml: Alcotest Buffer Experiments Format Isa List Printf Rt String
