test/test_partition.ml: Alcotest Array List Partition QCheck QCheck_alcotest Util
