test/test_rtreconfig.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rtreconfig Util
