test/test_ise.ml: Alcotest Array Float Ir Isa Ise Kernels List QCheck QCheck_alcotest Test_helpers Util
