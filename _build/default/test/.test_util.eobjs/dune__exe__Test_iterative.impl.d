test/test_iterative.ml: Alcotest Ir Isa Ise Iterative Kernels List QCheck QCheck_alcotest Util
