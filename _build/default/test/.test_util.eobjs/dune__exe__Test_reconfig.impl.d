test/test_reconfig.ml: Alcotest Array Ir List QCheck QCheck_alcotest Reconfig Util
