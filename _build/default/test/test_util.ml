let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Util.Prng.int a 1000) (Util.Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let sa = List.init 20 (fun _ -> Util.Prng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Util.Prng.int b 1_000_000) in
  check bool "streams differ" true (sa <> sb)

let test_prng_bounds () =
  let p = Util.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Prng.int p 13 in
    check bool "in range" true (v >= 0 && v < 13);
    let r = Util.Prng.in_range p 5 9 in
    check bool "in closed range" true (r >= 5 && r <= 9);
    let f = Util.Prng.float p 2.5 in
    check bool "float in range" true (f >= 0. && f < 2.5)
  done

let test_prng_copy_independent () =
  let a = Util.Prng.create 5 in
  ignore (Util.Prng.int a 10);
  let b = Util.Prng.copy a in
  check int "copies agree" (Util.Prng.int a 1000) (Util.Prng.int b 1000)

let test_prng_shuffle_permutes () =
  let p = Util.Prng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool "is a permutation" true (sorted = Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Numeric                                                            *)
(* ------------------------------------------------------------------ *)

let test_gcd () =
  check int "gcd 12 18" 6 (Util.Numeric.gcd 12 18);
  check int "gcd 0 n" 7 (Util.Numeric.gcd 0 7);
  check int "gcd n 0" 7 (Util.Numeric.gcd 7 0);
  check int "gcd coprime" 1 (Util.Numeric.gcd 9 8);
  check int "gcd list" 4 (Util.Numeric.gcd_list [ 8; 12; 20 ]);
  check int "gcd empty" 0 (Util.Numeric.gcd_list [])

let test_lcm () =
  check int "lcm 4 6" 12 (Util.Numeric.lcm 4 6);
  check int "lcm with zero" 0 (Util.Numeric.lcm 0 5);
  check int "lcm list" 60 (Util.Numeric.lcm_list [ 4; 6; 10 ]);
  check int "lcm empty" 1 (Util.Numeric.lcm_list [])

let test_ceil_div () =
  check int "exact" 3 (Util.Numeric.ceil_div 9 3);
  check int "round up" 4 (Util.Numeric.ceil_div 10 3);
  check int "zero" 0 (Util.Numeric.ceil_div 0 5)

let test_clamp () =
  check int "below" 2 (Util.Numeric.clamp ~lo:2 ~hi:8 1);
  check int "above" 8 (Util.Numeric.clamp ~lo:2 ~hi:8 9);
  check int "inside" 5 (Util.Numeric.clamp ~lo:2 ~hi:8 5)

(* ------------------------------------------------------------------ *)
(* Bitset                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Util.Bitset.create 20 in
  check bool "fresh empty" true (Util.Bitset.is_empty s);
  Util.Bitset.set s 3;
  Util.Bitset.set s 17;
  check bool "mem 3" true (Util.Bitset.mem s 3);
  check bool "not mem 4" false (Util.Bitset.mem s 4);
  check int "cardinal" 2 (Util.Bitset.cardinal s);
  Util.Bitset.clear s 3;
  check bool "cleared" false (Util.Bitset.mem s 3);
  check Alcotest.(list int) "elements" [ 17 ] (Util.Bitset.elements s)

let test_bitset_setops () =
  let a = Util.Bitset.of_list 16 [ 1; 3; 5 ] in
  let b = Util.Bitset.of_list 16 [ 3; 4 ] in
  let u = Util.Bitset.copy a in
  Util.Bitset.union_into u b;
  check Alcotest.(list int) "union" [ 1; 3; 4; 5 ] (Util.Bitset.elements u);
  let i = Util.Bitset.copy a in
  Util.Bitset.inter_into i b;
  check Alcotest.(list int) "inter" [ 3 ] (Util.Bitset.elements i);
  let d = Util.Bitset.copy a in
  Util.Bitset.diff_into d b;
  check Alcotest.(list int) "diff" [ 1; 5 ] (Util.Bitset.elements d);
  check bool "intersects" true (Util.Bitset.intersects a b);
  check bool "subset of union" true (Util.Bitset.subset a u);
  check bool "not subset" false (Util.Bitset.subset u a)

let test_bitset_boundary () =
  (* Last bit of a byte and first of the next. *)
  let s = Util.Bitset.create 9 in
  Util.Bitset.set s 7;
  Util.Bitset.set s 8;
  check int "cardinal across bytes" 2 (Util.Bitset.cardinal s);
  check bool "bit 7" true (Util.Bitset.mem s 7);
  check bool "bit 8" true (Util.Bitset.mem s 8)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(list (int_bound 63))
    (fun l ->
      let dedup = List.sort_uniq compare l in
      Util.Bitset.elements (Util.Bitset.of_list 64 l) = dedup)

(* ------------------------------------------------------------------ *)
(* Pareto front                                                       *)
(* ------------------------------------------------------------------ *)

let point cost value = { Util.Pareto_front.cost; value }

let test_front_simple () =
  let pts = [ point 0 10.; point 5 8.; point 5 9.; point 7 8.; point 9 6. ] in
  let f = Util.Pareto_front.front pts in
  check bool "is front" true (Util.Pareto_front.is_front f);
  check int "size" 3 (List.length f);
  check bool "keeps best at 5" true
    (List.exists (fun p -> p = point 5 8.) f);
  check bool "drops dominated (7,8)" false
    (List.exists (fun p -> p = point 7 8.) f)

let test_front_best_value_at () =
  let f = Util.Pareto_front.front [ point 0 10.; point 4 6.; point 8 3. ] in
  check (Alcotest.option (Alcotest.float 1e-9)) "budget 5" (Some 6.)
    (Util.Pareto_front.best_value_at ~cost:5 f);
  check (Alcotest.option (Alcotest.float 1e-9)) "budget 100" (Some 3.)
    (Util.Pareto_front.best_value_at ~cost:100 f)

let arb_points =
  QCheck.(
    list_of_size Gen.(int_range 0 40)
      (map (fun (c, v) -> point (abs c mod 100) (float_of_int (abs v mod 100)))
         (pair int int)))

let prop_front_nondominated =
  QCheck.Test.make ~name:"front members are mutually non-dominating" ~count:300
    arb_points
    (fun pts ->
      let f = Util.Pareto_front.front pts in
      Util.Pareto_front.is_front f)

let prop_front_covers =
  QCheck.Test.make ~name:"every input point is dominated-or-equal by the front"
    ~count:300 arb_points
    (fun pts ->
      let f = Util.Pareto_front.front pts in
      List.for_all
        (fun p ->
          List.exists
            (fun q -> Util.Pareto_front.dominates q p || q = p)
            f)
        pts)

let prop_front_eps_covers_self =
  QCheck.Test.make ~name:"a front 0-covers itself" ~count:100 arb_points
    (fun pts ->
      let f = Util.Pareto_front.front pts in
      Util.Pareto_front.eps_covers ~eps:0. ~exact:f f)

(* ------------------------------------------------------------------ *)
(* Fixed point                                                        *)
(* ------------------------------------------------------------------ *)

let test_fixed_roundtrip () =
  List.iter
    (fun f ->
      let x = Util.Fixed.of_float f in
      check (Alcotest.float 1e-4) "roundtrip" f (Util.Fixed.to_float x))
    [ 0.; 1.; -1.; 3.14159; -2.71828; 100.5 ]

let test_fixed_arith () =
  let open Util.Fixed in
  let a = of_float 2.5 and b = of_float 1.5 in
  check (Alcotest.float 1e-4) "add" 4.0 (to_float (add a b));
  check (Alcotest.float 1e-4) "sub" 1.0 (to_float (sub a b));
  check (Alcotest.float 1e-3) "mul" 3.75 (to_float (mul a b));
  check (Alcotest.float 1e-3) "div" (2.5 /. 1.5) (to_float (div a b))

let test_fixed_sqrt () =
  let open Util.Fixed in
  List.iter
    (fun f ->
      check (Alcotest.float 1e-2) "sqrt" (Float.sqrt f)
        (to_float (sqrt (of_float f))))
    [ 0.25; 1.0; 2.0; 9.0; 100.0 ]

let test_fixed_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Util.Fixed.div Util.Fixed.one Util.Fixed.zero))

let prop_fixed_add_commutes =
  QCheck.Test.make ~name:"fixed add commutes" ~count:200
    QCheck.(pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.))
    (fun (a, b) ->
      let open Util.Fixed in
      add (of_float a) (of_float b) = add (of_float b) (of_float a))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes ] );
      ( "numeric",
        [ Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "clamp" `Quick test_clamp ] );
      ( "bitset",
        [ Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set operations" `Quick test_bitset_setops;
          Alcotest.test_case "byte boundary" `Quick test_bitset_boundary;
          qt prop_bitset_roundtrip ] );
      ( "pareto",
        [ Alcotest.test_case "simple front" `Quick test_front_simple;
          Alcotest.test_case "best value at" `Quick test_front_best_value_at;
          qt prop_front_nondominated;
          qt prop_front_covers;
          qt prop_front_eps_covers_self ] );
      ( "fixed",
        [ Alcotest.test_case "roundtrip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_fixed_arith;
          Alcotest.test_case "sqrt" `Quick test_fixed_sqrt;
          Alcotest.test_case "div by zero" `Quick test_fixed_div_by_zero;
          qt prop_fixed_add_commutes ] ) ]
