let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Trace from pair counts                                             *)
(* ------------------------------------------------------------------ *)

let test_of_pair_counts_roundtrip () =
  let counts = [ (("a", "b"), 2); (("b", "c"), 4); (("a", "c"), 2) ] in
  let trace = Ir.Trace.of_pair_counts counts in
  let back =
    Ir.Trace.pair_counts ~keep:(fun _ -> true) trace |> List.sort compare
  in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.pair Alcotest.string Alcotest.string) int))
    "roundtrip" (List.sort compare counts) back

let test_of_pair_counts_rejects_odd_degree () =
  (try
     ignore (Ir.Trace.of_pair_counts [ (("a", "b"), 1) ]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

let test_of_pair_counts_rejects_disconnected () =
  (try
     ignore (Ir.Trace.of_pair_counts [ (("a", "b"), 2); (("c", "d"), 2) ]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

let prop_synthetic_roundtrip =
  QCheck.Test.make ~name:"synthetic traces realise their pair counts exactly"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 20))
    (fun (seed, n) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      (* replay says the same as the RCG edge weights: total reconfigs in
         the everyone-separate placement equals total pair counts *)
      let counts = Ir.Trace.pair_counts ~keep:(fun _ -> true) p.Reconfig.Problem.trace in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
      let each_own =
        { Reconfig.Problem.version_of =
            List.mapi (fun i (l : Reconfig.Problem.hot_loop) ->
                ignore i;
                (l.name, if Array.length l.versions > 1 then 1 else 0))
              p.Reconfig.Problem.loops;
          config_of =
            List.mapi (fun i (l : Reconfig.Problem.hot_loop) -> (l.name, i))
              p.Reconfig.Problem.loops
            |> List.filter (fun (name, _) ->
                   Array.length (Reconfig.Problem.find_loop p name).versions > 1) }
      in
      (* if every hot loop is mapped to hardware in its own configuration,
         each adjacency in the trace is a reload *)
      let all_hw =
        List.for_all
          (fun (l : Reconfig.Problem.hot_loop) -> Array.length l.versions > 1)
          p.Reconfig.Problem.loops
      in
      QCheck.assume all_hw;
      Reconfig.Problem.reconfigurations p each_own = total)

let prop_pair_counts_roundtrip_random =
  QCheck.Test.make
    ~name:"of_pair_counts/pair_counts roundtrip on random Eulerian multigraphs"
    ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 2 8))
    (fun (seed, n) ->
      (* build a random connected even-degree multigraph the same way the
         synthetic generator does, then check the exact roundtrip *)
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      let counts =
        Ir.Trace.pair_counts ~keep:(fun _ -> true) p.Reconfig.Problem.trace
        |> List.sort compare
      in
      let rebuilt = Ir.Trace.of_pair_counts counts in
      let back =
        Ir.Trace.pair_counts ~keep:(fun _ -> true) rebuilt |> List.sort compare
      in
      back = counts)

(* ------------------------------------------------------------------ *)
(* The motivating example of Figure 6.4 (exact published numbers)      *)
(* ------------------------------------------------------------------ *)

(* gains in K cycles, areas in AUs; MaxA = 2048 AUs; rho = 15K cycles *)
let fig64 () =
  let loops =
    [ Reconfig.Problem.loop "loop1" [ (111, 257); (160, 301); (563, 1612) ];
      Reconfig.Problem.loop "loop2"
        [ (230, 76); (387, 1041); (426, 1321); (556, 2004) ];
      Reconfig.Problem.loop "loop3" [ (493, 967); (549, 1249) ] ]
  in
  (* edge weights: l1-l2 = 9, l1-l3 = 9, l2-l3 = 31 (all degrees even) *)
  let trace =
    Ir.Trace.of_pair_counts
      [ (("loop1", "loop2"), 9); (("loop1", "loop3"), 9); (("loop2", "loop3"), 31) ]
  in
  { Reconfig.Problem.loops; trace; max_area = 2048; reconfig_cost = 15 }

let test_fig64_solution_a_static () =
  (* one configuration: versions l1,3 + l2,2 + l3,2 -> gain 883, no reconfig *)
  let p = fig64 () in
  let placement =
    { Reconfig.Problem.version_of = [ ("loop1", 2); ("loop2", 1); ("loop3", 1) ];
      config_of = [ ("loop1", 0); ("loop2", 0); ("loop3", 0) ] }
  in
  check bool "feasible" true (Reconfig.Problem.feasible p placement);
  check int "gain 883" 883 (Reconfig.Problem.raw_gain p placement);
  check int "no reconfigurations" 0 (Reconfig.Problem.reconfigurations p placement);
  check int "net 883" 883 (Reconfig.Problem.net_gain p placement)

let test_fig64_solution_b_each_own () =
  let p = fig64 () in
  let placement =
    { Reconfig.Problem.version_of = [ ("loop1", 3); ("loop2", 4); ("loop3", 2) ];
      config_of = [ ("loop1", 0); ("loop2", 1); ("loop3", 2) ] }
  in
  check bool "feasible" true (Reconfig.Problem.feasible p placement);
  check int "gain 1668" 1668 (Reconfig.Problem.raw_gain p placement);
  check int "49 reconfigurations" 49 (Reconfig.Problem.reconfigurations p placement);
  check int "net 933" 933 (Reconfig.Problem.net_gain p placement)

let test_fig64_solution_c_optimal () =
  let p = fig64 () in
  let placement =
    { Reconfig.Problem.version_of = [ ("loop1", 3); ("loop2", 2); ("loop3", 1) ];
      config_of = [ ("loop1", 0); ("loop2", 1); ("loop3", 1) ] }
  in
  check bool "feasible" true (Reconfig.Problem.feasible p placement);
  check int "gain 1443" 1443 (Reconfig.Problem.raw_gain p placement);
  check int "18 reconfigurations" 18 (Reconfig.Problem.reconfigurations p placement);
  check int "net 1173" 1173 (Reconfig.Problem.net_gain p placement)

let test_fig64_iterative_finds_optimum () =
  let p = fig64 () in
  let placement = Reconfig.Algorithms.iterative p in
  check bool "feasible" true (Reconfig.Problem.feasible p placement);
  check int "net gain 1173" 1173 (Reconfig.Problem.net_gain p placement)

let test_fig64_exhaustive_confirms () =
  let p = fig64 () in
  match Reconfig.Algorithms.exhaustive p with
  | Some placement -> check int "optimal 1173" 1173 (Reconfig.Problem.net_gain p placement)
  | None -> Alcotest.fail "exhaustive refused a 3-loop instance"

let test_fig64_capacity_violation_rejected () =
  let p = fig64 () in
  (* l2,4 (2004) + l3,2 (1249) = 3253 > 2048 in one configuration *)
  let placement =
    { Reconfig.Problem.version_of = [ ("loop1", 0); ("loop2", 4); ("loop3", 2) ];
      config_of = [ ("loop2", 0); ("loop3", 0) ] }
  in
  check bool "infeasible" false (Reconfig.Problem.feasible p placement)

(* ------------------------------------------------------------------ *)
(* Spatial DP (Algorithm 7)                                           *)
(* ------------------------------------------------------------------ *)

let test_spatial_select_published () =
  let p = fig64 () in
  (* the global phase at 2·MaxA = 4096 picks l1,4 + l2,3 + l3,3 in the
     thesis's 1-based numbering (Figure 6.5) — 0-based indices 3, 2, 2 *)
  let sel = Reconfig.Algorithms.spatial_select ~loops:p.Reconfig.Problem.loops ~area:4096 in
  check int "loop1 version" 3 (List.assoc "loop1" sel);
  check int "loop2 version" 2 (List.assoc "loop2" sel);
  check int "loop3 version" 2 (List.assoc "loop3" sel)

let prop_spatial_matches_bruteforce =
  QCheck.Test.make ~name:"spatial DP equals brute force" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 50 400))
    (fun (seed, area) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:4 in
      let loops = p.Reconfig.Problem.loops in
      let dp = Reconfig.Algorithms.spatial_select ~loops ~area in
      let dp_gain =
        Util.Numeric.sum_by
          (fun (name, j) -> (Reconfig.Problem.find_loop p name).versions.(j).Reconfig.Problem.gain)
          dp
      in
      let dp_area =
        Util.Numeric.sum_by
          (fun (name, j) -> (Reconfig.Problem.find_loop p name).versions.(j).Reconfig.Problem.area)
          dp
      in
      (* brute force over all version combinations *)
      let rec best acc_gain acc_area = function
        | [] -> if acc_area <= area then acc_gain else min_int
        | (l : Reconfig.Problem.hot_loop) :: rest ->
          Array.to_list l.versions
          |> List.map (fun (v : Reconfig.Problem.version) ->
                 if acc_area + v.area > area then min_int
                 else best (acc_gain + v.gain) (acc_area + v.area) rest)
          |> List.fold_left max min_int
      in
      dp_area <= area && dp_gain = best 0 0 loops)

(* ------------------------------------------------------------------ *)
(* Algorithm comparisons                                              *)
(* ------------------------------------------------------------------ *)

let prop_all_algorithms_feasible =
  QCheck.Test.make ~name:"all algorithms return feasible placements" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 3 14))
    (fun (seed, n) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      let it = Reconfig.Algorithms.iterative p in
      let gr = Reconfig.Algorithms.greedy p in
      Reconfig.Problem.feasible p it && Reconfig.Problem.feasible p gr)

let prop_greedy_nonnegative =
  QCheck.Test.make ~name:"greedy net gain is never negative" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 3 20))
    (fun (seed, n) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      Reconfig.Problem.net_gain p (Reconfig.Algorithms.greedy p) >= 0)

(* Exhaustive is optimal over "grouping + per-group gain-max knapsack"
   placements — the thesis's own definition (see the mli note).
   Placements that leave a profitable loop in software fall outside that
   space and can rarely edge past it, so the sound dominance property is
   against the static single configuration, which has the same shape. *)
let prop_exhaustive_dominates_static =
  QCheck.Test.make ~name:"exhaustive >= the static single configuration"
    ~count:12
    QCheck.(pair (int_range 0 10_000) (int_range 3 7))
    (fun (seed, n) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      match Reconfig.Algorithms.exhaustive p with
      | None -> false
      | Some ex ->
        let sel =
          Reconfig.Algorithms.spatial_select ~loops:p.Reconfig.Problem.loops
            ~area:p.Reconfig.Problem.max_area
        in
        let static =
          { Reconfig.Problem.version_of = sel;
            config_of =
              List.filter_map
                (fun (name, j) -> if j > 0 then Some (name, 0) else None)
                sel }
        in
        Reconfig.Problem.feasible p ex
        && Reconfig.Problem.net_gain p ex >= Reconfig.Problem.net_gain p static)

let test_exhaustive_refuses_large () =
  let p = Reconfig.Synthetic.generate ~seed:1 ~loops:20 in
  check bool "refuses 20 loops" true
    (Reconfig.Algorithms.exhaustive ~max_partitions:100_000 p = None)

let prop_iterative_beats_static =
  QCheck.Test.make
    ~name:"iterative >= the best single-configuration (static) solution"
    ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 3 12))
    (fun (seed, n) ->
      let p = Reconfig.Synthetic.generate ~seed ~loops:n in
      (* static = k=1: one configuration, no reconfiguration *)
      let sel =
        Reconfig.Algorithms.spatial_select ~loops:p.Reconfig.Problem.loops
          ~area:p.Reconfig.Problem.max_area
      in
      let hw = List.filter (fun (_, j) -> j > 0) sel in
      let static =
        { Reconfig.Problem.version_of = sel;
          config_of = List.map (fun (name, _) -> (name, 0)) hw }
      in
      Reconfig.Problem.net_gain p (Reconfig.Algorithms.iterative p)
      >= Reconfig.Problem.net_gain p static)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "reconfig"
    [ ( "trace-construction",
        [ Alcotest.test_case "roundtrip" `Quick test_of_pair_counts_roundtrip;
          Alcotest.test_case "rejects odd degree" `Quick test_of_pair_counts_rejects_odd_degree;
          Alcotest.test_case "rejects disconnected" `Quick test_of_pair_counts_rejects_disconnected;
          qt prop_synthetic_roundtrip;
          qt prop_pair_counts_roundtrip_random ] );
      ( "fig6.4",
        [ Alcotest.test_case "solution A (static)" `Quick test_fig64_solution_a_static;
          Alcotest.test_case "solution B (each own)" `Quick test_fig64_solution_b_each_own;
          Alcotest.test_case "solution C (optimal)" `Quick test_fig64_solution_c_optimal;
          Alcotest.test_case "iterative finds optimum" `Quick test_fig64_iterative_finds_optimum;
          Alcotest.test_case "exhaustive confirms" `Quick test_fig64_exhaustive_confirms;
          Alcotest.test_case "capacity violation rejected" `Quick test_fig64_capacity_violation_rejected ] );
      ( "spatial",
        [ Alcotest.test_case "published selection" `Quick test_spatial_select_published;
          qt prop_spatial_matches_bruteforce ] );
      ( "algorithms",
        [ qt prop_all_algorithms_feasible;
          qt prop_greedy_nonnegative;
          qt prop_exhaustive_dominates_static;
          Alcotest.test_case "exhaustive refuses large" `Quick test_exhaustive_refuses_large;
          qt prop_iterative_beats_static ] ) ]
