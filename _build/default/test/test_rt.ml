let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Task model                                                         *)
(* ------------------------------------------------------------------ *)

let curve_of base pts = Isa.Config.of_points ~base_cycles:base pts

let test_task_basics () =
  let t = Rt.Task.make ~name:"t" ~period:20 (curve_of 10 []) in
  check (Alcotest.float 1e-9) "utilization" 0.5 (Rt.Task.utilization t);
  check int "wcet from curve" 10 t.Rt.Task.wcet

let test_target_utilization () =
  let mk name base period = Rt.Task.make ~name ~period (curve_of base []) in
  let tasks = [ mk "a" 100 1000; mk "b" 300 1000 ] in
  let scaled = Rt.Task.with_target_utilization 0.8 tasks in
  check (Alcotest.float 0.01) "total utilization" 0.8 (Rt.Task.set_utilization scaled);
  (* equal shares *)
  List.iter
    (fun t -> check (Alcotest.float 0.01) "share" 0.4 (Rt.Task.utilization t))
    scaled

let test_hyperperiod () =
  let mk p = Rt.Task.make ~name:"x" ~period:p (curve_of 1 []) in
  check int "lcm" 12 (Rt.Task.hyperperiod [ mk 4; mk 6 ])

(* ------------------------------------------------------------------ *)
(* EDF / RMS analytic tests                                           *)
(* ------------------------------------------------------------------ *)

let test_edf_bound () =
  check bool "U=1 schedulable" true (Rt.Sched.edf_schedulable [ (1, 2); (1, 2) ]);
  check bool "U>1 not" false (Rt.Sched.edf_schedulable [ (2, 3); (2, 3) ])

let test_rms_classic_example () =
  (* Liu & Layland's classic: C=(1,1,1), P=(3,4,5): U=0.783 < LL bound?
     bound(3)=0.7798; U=0.7833 slightly above, but exact test passes. *)
  let ts = [ (1, 3); (1, 4); (1, 5) ] in
  check bool "LL inconclusive" false (Rt.Sched.rms_schedulable_ll ts);
  check bool "exact test passes" true (Rt.Sched.rms_schedulable ts)

let test_rms_full_utilization_harmonic () =
  (* Harmonic periods schedule up to U = 1 under RMS. *)
  check bool "harmonic U=1" true (Rt.Sched.rms_schedulable [ (1, 2); (2, 4) ]);
  check bool "overload fails" false (Rt.Sched.rms_schedulable [ (1, 2); (3, 4) ])

let test_rms_unschedulable_above_1 () =
  check bool "U>1 never schedulable" false
    (Rt.Sched.rms_schedulable [ (2, 3); (2, 4) ])

let test_ll_bound_values () =
  check (Alcotest.float 1e-6) "n=1" 1.0 (Rt.Sched.liu_layland_bound 1);
  check (Alcotest.float 1e-4) "n=2" 0.8284 (Rt.Sched.liu_layland_bound 2);
  check (Alcotest.float 1e-4) "n=3" 0.7798 (Rt.Sched.liu_layland_bound 3)

(* ------------------------------------------------------------------ *)
(* Response-time analysis                                             *)
(* ------------------------------------------------------------------ *)

let test_rta_known_values () =
  (* C=(1,2), P=(4,6): R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3 *)
  let tasks = [| (1, 4); (2, 6) |] in
  check (Alcotest.option int) "R of highest" (Some 1)
    (Rt.Response_time.response_time tasks 0);
  check (Alcotest.option int) "R of lowest" (Some 3)
    (Rt.Response_time.response_time tasks 1)

let test_rta_divergence () =
  let tasks = [| (2, 3); (2, 4) |] in
  check (Alcotest.option int) "diverges past deadline" None
    (Rt.Response_time.response_time tasks 1)

let prop_rta_agrees_with_exact_test =
  QCheck.Test.make ~name:"response-time analysis agrees with Theorem 1" ~count:300
    Test_helpers.arb_taskset
    (fun ts ->
      Rt.Response_time.schedulable ts = Rt.Sched.rms_schedulable ts)

(* ------------------------------------------------------------------ *)
(* Simulator                                                          *)
(* ------------------------------------------------------------------ *)

let test_sim_idle_accounting () =
  let out = Rt.Sim.run ~policy:Rt.Sim.Edf [ (1, 4) ] in
  (* one job per 4 cycles, hyperperiod 4: 3 idle cycles *)
  check int "idle" 3 out.Rt.Sim.idle;
  check int "no misses" 0 out.Rt.Sim.deadline_misses

let test_sim_detects_overload () =
  let out = Rt.Sim.run ~policy:Rt.Sim.Edf [ (3, 4); (3, 4) ] in
  check bool "misses detected" true (out.Rt.Sim.deadline_misses > 0)

let test_sim_rms_priority_inversion_case () =
  (* (2,4)&(5,10) is EDF-schedulable at U=1 but RMS-infeasible. *)
  let ts = [ (2, 4); (5, 10) ] in
  check bool "EDF ok" true (Rt.Sim.schedulable ~policy:Rt.Sim.Edf ts);
  check bool "RMS misses" false (Rt.Sim.schedulable ~policy:Rt.Sim.Fixed_priority ts)

let test_sim_counts_preemptions () =
  (* Long low-priority job preempted by short high-priority one. *)
  let out = Rt.Sim.run ~policy:Rt.Sim.Fixed_priority [ (1, 3); (4, 9) ] in
  check bool "preemptions happen" true (out.Rt.Sim.preemptions > 0)

let prop_edf_bound_matches_simulation =
  QCheck.Test.make ~name:"EDF: U<=1 iff no deadline miss in simulation"
    ~count:200 Test_helpers.arb_taskset
    (fun ts ->
      Rt.Sched.edf_schedulable ts = Rt.Sim.schedulable ~policy:Rt.Sim.Edf ts)

let prop_rms_exact_matches_simulation =
  QCheck.Test.make ~name:"RMS: exact test iff no deadline miss in simulation"
    ~count:200 Test_helpers.arb_taskset
    (fun ts ->
      (* ties in periods are broken arbitrarily in both; skip ambiguous sets *)
      let periods = List.map snd ts in
      QCheck.assume (List.length periods = List.length (List.sort_uniq compare periods));
      Rt.Sched.rms_schedulable ts
      = Rt.Sim.schedulable ~policy:Rt.Sim.Fixed_priority ts)

let prop_rms_implies_edf =
  QCheck.Test.make ~name:"RMS-schedulable implies EDF-schedulable" ~count:200
    Test_helpers.arb_taskset
    (fun ts ->
      (not (Rt.Sched.rms_schedulable ts)) || Rt.Sched.edf_schedulable ts)

let prop_ll_implies_exact =
  QCheck.Test.make ~name:"Liu-Layland bound implies the exact test" ~count:200
    Test_helpers.arb_taskset
    (fun ts ->
      (not (Rt.Sched.rms_schedulable_ll ts)) || Rt.Sched.rms_schedulable ts)

(* ------------------------------------------------------------------ *)
(* Energy                                                             *)
(* ------------------------------------------------------------------ *)

let test_levels_sorted () =
  let rec increasing = function
    | a :: (b :: _ as rest) ->
      a.Rt.Energy.mhz < b.Rt.Energy.mhz
      && a.Rt.Energy.volt <= b.Rt.Energy.volt
      && increasing rest
    | _ -> true
  in
  check bool "levels ordered" true (increasing Rt.Energy.tm5400)

let test_static_scale_edf () =
  (* U=0.4 at 633MHz can run at 300MHz: 0.4*633/300 = 0.844 <= 1. *)
  (match Rt.Energy.static_scale Rt.Energy.Edf ~n_tasks:4 0.4 with
   | Some l -> check int "lowest level" 300 l.Rt.Energy.mhz
   | None -> Alcotest.fail "expected a level");
  (* U=0.9 needs 0.9*633 = 570 -> 600MHz. *)
  (match Rt.Energy.static_scale Rt.Energy.Edf ~n_tasks:4 0.9 with
   | Some l -> check int "600MHz" 600 l.Rt.Energy.mhz
   | None -> Alcotest.fail "expected a level");
  check bool "unschedulable" true
    (Rt.Energy.static_scale Rt.Energy.Edf ~n_tasks:4 1.1 = None)

let test_static_scale_rms_conservative () =
  (* same utilization needs a higher level under RMS's LL bound *)
  let u = 0.7 in
  match
    ( Rt.Energy.static_scale Rt.Energy.Edf ~n_tasks:4 u,
      Rt.Energy.static_scale Rt.Energy.Rms ~n_tasks:4 u )
  with
  | Some edf, Some rms ->
    check bool "RMS >= EDF frequency" true (rms.Rt.Energy.mhz >= edf.Rt.Energy.mhz)
  | _ -> Alcotest.fail "both should scale"

let test_saving_percent () =
  (* customization halves utilization -> lower level and fewer cycles *)
  let pct =
    Rt.Energy.saving_percent Rt.Energy.Edf ~n_tasks:4 ~base:(0.9, 0.9)
      ~custom:(0.45, 0.45)
  in
  check bool "positive saving" true (pct > 0.)

let prop_saving_nonnegative_when_custom_better =
  QCheck.Test.make ~name:"energy saving >= 0 when customization reduces U"
    ~count:200
    QCheck.(pair (float_range 0.1 1.0) (float_range 0.0 0.9))
    (fun (u_base, shrink) ->
      let u_custom = u_base *. (1. -. shrink) in
      Rt.Energy.saving_percent Rt.Energy.Edf ~n_tasks:4 ~base:(u_base, u_base)
        ~custom:(u_custom, u_custom)
      >= -1e-9)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "rt"
    [ ( "task",
        [ Alcotest.test_case "basics" `Quick test_task_basics;
          Alcotest.test_case "target utilization" `Quick test_target_utilization;
          Alcotest.test_case "hyperperiod" `Quick test_hyperperiod ] );
      ( "sched",
        [ Alcotest.test_case "edf bound" `Quick test_edf_bound;
          Alcotest.test_case "rms classic" `Quick test_rms_classic_example;
          Alcotest.test_case "rms harmonic" `Quick test_rms_full_utilization_harmonic;
          Alcotest.test_case "rms overload" `Quick test_rms_unschedulable_above_1;
          Alcotest.test_case "LL bound values" `Quick test_ll_bound_values;
          qt prop_rms_implies_edf;
          qt prop_ll_implies_exact ] );
      ( "response-time",
        [ Alcotest.test_case "known values" `Quick test_rta_known_values;
          Alcotest.test_case "divergence" `Quick test_rta_divergence;
          qt prop_rta_agrees_with_exact_test ] );
      ( "sim",
        [ Alcotest.test_case "idle accounting" `Quick test_sim_idle_accounting;
          Alcotest.test_case "detects overload" `Quick test_sim_detects_overload;
          Alcotest.test_case "EDF vs RMS case" `Quick test_sim_rms_priority_inversion_case;
          Alcotest.test_case "counts preemptions" `Quick test_sim_counts_preemptions;
          qt prop_edf_bound_matches_simulation;
          qt prop_rms_exact_matches_simulation ] );
      ( "energy",
        [ Alcotest.test_case "levels sorted" `Quick test_levels_sorted;
          Alcotest.test_case "static scale EDF" `Quick test_static_scale_edf;
          Alcotest.test_case "RMS conservative" `Quick test_static_scale_rms_conservative;
          Alcotest.test_case "saving percent" `Quick test_saving_percent;
          qt prop_saving_nonnegative_when_custom_better ] ) ]
