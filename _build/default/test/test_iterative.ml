let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let crypto_block seed size =
  let prng = Util.Prng.create seed in
  Kernels.Blockgen.block prng ~loads:4 ~stores:2 ~size Kernels.Blockgen.crypto_mix

(* ------------------------------------------------------------------ *)
(* MLGP                                                               *)
(* ------------------------------------------------------------------ *)

let prop_mlgp_instructions_legal =
  QCheck.Test.make ~name:"MLGP partitions are legal custom instructions"
    ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 10 120))
    (fun (seed, size) ->
      let dfg = crypto_block seed size in
      Iterative.Mlgp.cover_dfg dfg
      |> List.for_all (fun ci ->
             Isa.Custom_inst.feasible dfg ci.Isa.Custom_inst.nodes
             && Isa.Custom_inst.gain ci > 0))

let prop_mlgp_disjoint =
  QCheck.Test.make ~name:"MLGP partitions are pairwise disjoint" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 10 120))
    (fun (seed, size) ->
      let dfg = crypto_block seed size in
      let cis = Iterative.Mlgp.cover_dfg dfg in
      let rec pairwise = function
        | [] -> true
        | c :: rest ->
          (not (List.exists (Isa.Custom_inst.overlaps c) rest)) && pairwise rest
      in
      pairwise cis)

let prop_mlgp_respects_allowed =
  QCheck.Test.make ~name:"MLGP stays inside the allowed node set" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let dfg = crypto_block seed 60 in
      match Ir.Region.of_dfg dfg with
      | [] -> true
      | r :: _ ->
        (* halve the region *)
        let allowed = Util.Bitset.create (Ir.Dfg.node_count dfg) in
        let i = ref 0 in
        Util.Bitset.iter
          (fun v ->
            if !i mod 2 = 0 then Util.Bitset.set allowed v;
            incr i)
          r.Ir.Region.members;
        Iterative.Mlgp.partition_region dfg ~allowed
        |> List.for_all (fun ci ->
               Util.Bitset.subset ci.Isa.Custom_inst.nodes allowed))

let test_mlgp_beats_singletons () =
  (* grouping must beat the zero gain of leaving everything in software *)
  let dfg = crypto_block 42 200 in
  let cis = Iterative.Mlgp.cover_dfg dfg in
  let gain = List.fold_left (fun a c -> a + Isa.Custom_inst.gain c) 0 cis in
  check bool "recovers at least 25% of block cycles" true
    (float_of_int gain >= 0.25 *. float_of_int (Ir.Dfg.sw_cycles_total dfg))

let test_mlgp_deterministic () =
  let dfg = crypto_block 7 80 in
  let a = Iterative.Mlgp.cover_dfg ~seed:3 dfg in
  let b = Iterative.Mlgp.cover_dfg ~seed:3 dfg in
  check int "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      check bool "same node sets" true
        (Util.Bitset.equal x.Isa.Custom_inst.nodes y.Isa.Custom_inst.nodes))
    a b

let test_mlgp_empty_region () =
  let b = Ir.Dfg.Builder.create () in
  ignore (Ir.Dfg.Builder.add b Ir.Op.Load);
  let dfg = Ir.Dfg.Builder.finish b in
  check int "no instructions from invalid-only block" 0
    (List.length (Iterative.Mlgp.cover_dfg dfg))

let prop_mlgp_respects_tight_ports =
  QCheck.Test.make ~name:"MLGP honours non-default port constraints" ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let dfg = crypto_block seed 80 in
      let constraints = { Isa.Hw_model.max_inputs = 2; max_outputs = 1 } in
      Iterative.Mlgp.cover_dfg ~constraints dfg
      |> List.for_all (fun ci ->
             ci.Isa.Custom_inst.inputs <= 2 && ci.Isa.Custom_inst.outputs <= 1))

(* ------------------------------------------------------------------ *)
(* IS baseline                                                        *)
(* ------------------------------------------------------------------ *)

let test_is_disjoint_and_legal () =
  let dfg = crypto_block 11 60 in
  let cis = Iterative.Is_baseline.run ~budget:Ise.Enumerate.small_budget dfg in
  check bool "non-empty" true (cis <> []);
  let rec pairwise = function
    | [] -> true
    | c :: rest -> (not (List.exists (Isa.Custom_inst.overlaps c) rest)) && pairwise rest
  in
  check bool "disjoint" true (pairwise cis);
  check bool "legal" true
    (List.for_all (fun ci -> Isa.Custom_inst.feasible dfg ci.Isa.Custom_inst.nodes) cis)

let test_is_respects_max_instructions () =
  let dfg = crypto_block 12 80 in
  let cis =
    Iterative.Is_baseline.run ~budget:Ise.Enumerate.small_budget
      ~max_instructions:3 dfg
  in
  check bool "at most 3" true (List.length cis <= 3)

let test_is_steps_reported () =
  let dfg = crypto_block 13 50 in
  let steps = ref 0 in
  let cis =
    Iterative.Is_baseline.run ~budget:Ise.Enumerate.small_budget
      ~on_step:(fun _ -> incr steps) dfg
  in
  check int "one callback per instruction" (List.length cis) !steps

(* ------------------------------------------------------------------ *)
(* Iterative driver (Algorithm 4)                                     *)
(* ------------------------------------------------------------------ *)

let small_taskset u =
  Iterative.Driver.tasks_of_kernels ~u
    [ ("lms", Kernels.lms ()); ("ndes", Kernels.ndes ());
      ("jfdctint", Kernels.jfdctint ()) ]

let test_driver_reaches_target () =
  let res = Iterative.Driver.run (small_taskset 1.2) in
  check bool "schedulable" true res.Iterative.Driver.schedulable;
  check bool "utilization at most 1" true (res.Iterative.Driver.utilization <= 1.0)

let test_driver_monotone_utilization () =
  let res = Iterative.Driver.run ~target:0.0 ~max_iterations:30 (small_taskset 1.3) in
  let rec non_increasing = function
    | (a : Iterative.Driver.iteration) :: (b :: _ as rest) ->
      a.utilization +. 1e-9 >= b.utilization && non_increasing rest
    | _ -> true
  in
  check bool "U non-increasing over iterations" true
    (non_increasing res.Iterative.Driver.iterations)

let test_driver_already_schedulable () =
  let res = Iterative.Driver.run (small_taskset 0.7) in
  check int "no iterations needed" 0 (List.length res.Iterative.Driver.iterations);
  check int "no area spent" 0 res.Iterative.Driver.total_area

let test_driver_infeasible_stops () =
  (* target 0 is unreachable: driver must stop when tasks are exhausted *)
  let res = Iterative.Driver.run ~target:0.0 ~max_iterations:1000 (small_taskset 1.0) in
  check bool "terminates unschedulable" true (not res.Iterative.Driver.schedulable);
  check bool "made some progress" true (res.Iterative.Driver.utilization < 1.0)

let test_tasks_of_kernels_shares () =
  let tasks = small_taskset 1.2 in
  let u =
    Util.Numeric.sum_byf
      (fun (t : Iterative.Driver.task_input) ->
        float_of_int (Ir.Cfg.wcet t.cfg) /. float_of_int t.period)
      tasks
  in
  check (Alcotest.float 0.01) "total utilization" 1.2 u

let prop_driver_area_counts_instructions =
  QCheck.Test.make ~name:"driver reports zero area iff zero instructions"
    ~count:8
    QCheck.(float_range 0.9 1.4)
    (fun u ->
      let res = Iterative.Driver.run (small_taskset u) in
      (res.Iterative.Driver.total_area = 0)
      = (res.Iterative.Driver.instruction_count = 0))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "iterative"
    [ ( "mlgp",
        [ qt prop_mlgp_instructions_legal;
          qt prop_mlgp_disjoint;
          qt prop_mlgp_respects_allowed;
          Alcotest.test_case "beats singletons" `Quick test_mlgp_beats_singletons;
          Alcotest.test_case "deterministic" `Quick test_mlgp_deterministic;
          Alcotest.test_case "empty region" `Quick test_mlgp_empty_region;
          qt prop_mlgp_respects_tight_ports ] );
      ( "is-baseline",
        [ Alcotest.test_case "disjoint and legal" `Quick test_is_disjoint_and_legal;
          Alcotest.test_case "max instructions" `Quick test_is_respects_max_instructions;
          Alcotest.test_case "step callback" `Quick test_is_steps_reported ] );
      ( "driver",
        [ Alcotest.test_case "reaches target" `Quick test_driver_reaches_target;
          Alcotest.test_case "monotone utilization" `Quick test_driver_monotone_utilization;
          Alcotest.test_case "already schedulable" `Quick test_driver_already_schedulable;
          Alcotest.test_case "infeasible stops" `Quick test_driver_infeasible_stops;
          Alcotest.test_case "equal shares" `Quick test_tasks_of_kernels_shares;
          qt prop_driver_area_counts_instructions ] ) ]
