module B = Ir.Dfg.Builder

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Dfg evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let test_eval_arithmetic () =
  check int "add" 7 (Ir.Eval.eval_node Ir.Op.Add [ 3; 4 ]);
  check int "sub wraps" (Ir.Eval.mask32 (-1)) (Ir.Eval.eval_node Ir.Op.Sub [ 3; 4 ]);
  check int "mul" 12 (Ir.Eval.eval_node Ir.Op.Mul [ 3; 4 ]);
  check int "div by zero is 0" 0 (Ir.Eval.eval_node Ir.Op.Div [ 5; 0 ]);
  check int "xor" 6 (Ir.Eval.eval_node Ir.Op.Xor [ 3; 5 ]);
  check int "shl masks shift" 6 (Ir.Eval.eval_node Ir.Op.Shl [ 3; 33 ]);
  check int "cmp true" 1 (Ir.Eval.eval_node Ir.Op.Cmp [ 2; 9 ]);
  check int "cmp false" 0 (Ir.Eval.eval_node Ir.Op.Cmp [ 9; 2 ]);
  check int "select then" 11 (Ir.Eval.eval_node Ir.Op.Select [ 1; 11; 22 ]);
  check int "select else" 22 (Ir.Eval.eval_node Ir.Op.Select [ 0; 11; 22 ])

let test_eval_block () =
  (* (a + b) * a with a, b live-in *)
  let b = B.create () in
  let sum = B.add b Ir.Op.Add in
  let prod = B.add_with b Ir.Op.Mul [ sum ] in
  let dfg = B.finish b in
  let env =
    { Ir.Eval.live_in =
        (fun node idx -> match (node, idx) with
           | 0, 0 -> 5 | 0, 1 -> 7 | 1, _ -> 3 | _ -> 0);
      memory = (fun _ -> 0);
      const = (fun _ -> 0) }
  in
  let values = Ir.Eval.eval dfg env in
  check int "sum" 12 values.(sum);
  check int "prod (sum * live-in 3)" 36 values.(prod)

let test_eval_deterministic () =
  let prng = Util.Prng.create 3 in
  let dfg = Kernels.Blockgen.block prng ~loads:3 ~stores:2 ~size:50 Kernels.Blockgen.dsp_mix in
  let env = Ir.Eval.default_env ~seed:9 in
  let a = Ir.Eval.eval dfg env and b = Ir.Eval.eval dfg env in
  check bool "same values" true (a = b)

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

let block_of seed size =
  let prng = Util.Prng.create seed in
  Kernels.Blockgen.block prng ~loads:4 ~stores:2 ~size Kernels.Blockgen.crypto_mix

let test_schedule_empty_selection () =
  let dfg = block_of 1 30 in
  let s = Ise.Codegen.schedule dfg [] in
  check int "all primitives" (Ir.Dfg.node_count dfg) (List.length s);
  check int "software cycles" (Ir.Dfg.sw_cycles_total dfg) (Ise.Codegen.cycles dfg s);
  check int "nothing covered" 0 (Ise.Codegen.covered s)

let test_schedule_rejects_overlap () =
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add_with b Ir.Op.Add [ x ] in
  let dfg = B.finish b in
  let c1 = Isa.Custom_inst.make dfg (Util.Bitset.of_list 2 [ x; y ]) in
  let c2 = Isa.Custom_inst.make dfg (Util.Bitset.of_list 2 [ x ]) in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Codegen.schedule: overlapping instructions")
    (fun () -> ignore (Ise.Codegen.schedule dfg [ c1; c2 ]))

let prop_codegen_preserves_semantics =
  QCheck.Test.make
    ~name:"rewritten blocks compute exactly the original values" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 10 150))
    (fun (seed, size) ->
      let dfg = block_of seed size in
      let cis = Iterative.Mlgp.cover_dfg dfg in
      let s = Ise.Codegen.schedule dfg cis in
      let env = Ir.Eval.default_env ~seed in
      Ise.Codegen.execute dfg env s = Ir.Eval.eval dfg env)

let prop_codegen_cycles_match_gains =
  QCheck.Test.make
    ~name:"rewritten cycle count equals software minus the gains" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 10 150))
    (fun (seed, size) ->
      let dfg = block_of seed size in
      let cis = Iterative.Mlgp.cover_dfg dfg in
      let s = Ise.Codegen.schedule dfg cis in
      let total_gain =
        Util.Numeric.sum_by Isa.Custom_inst.gain cis
      in
      Ise.Codegen.cycles dfg s = Ir.Dfg.sw_cycles_total dfg - total_gain)

let prop_codegen_covers_selected =
  QCheck.Test.make ~name:"covered operations equal the selected sizes" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let dfg = block_of seed 80 in
      let cis = Iterative.Mlgp.cover_dfg dfg in
      let s = Ise.Codegen.schedule dfg cis in
      Ise.Codegen.covered s
      = Util.Numeric.sum_by (fun ci -> ci.Isa.Custom_inst.size) cis)

let prop_schedule_is_dependence_ordered =
  QCheck.Test.make ~name:"schedules respect data dependences" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let dfg = block_of seed 60 in
      let cis = Iterative.Mlgp.cover_dfg dfg in
      let s = Ise.Codegen.schedule dfg cis in
      (* position of each node in the schedule *)
      let n = Ir.Dfg.node_count dfg in
      let position = Array.make n (-1) in
      List.iteri
        (fun i macro ->
          match macro with
          | Ise.Codegen.Primitive v -> position.(v) <- i
          | Ise.Codegen.Fused ci ->
            Util.Bitset.iter (fun v -> position.(v) <- i) ci.Isa.Custom_inst.nodes)
        s;
      List.for_all
        (fun v ->
          List.for_all (fun sct -> position.(v) <= position.(sct)) (Ir.Dfg.succs dfg v))
        (Ir.Dfg.nodes dfg))

(* Differential test against the selection pipeline as well: the greedy
   selector's instructions are conflict-free within a block. *)
let prop_codegen_with_selection_pipeline =
  QCheck.Test.make ~name:"selection pipeline output rewrites correctly" ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 100 800))
    (fun (seed, budget) ->
      let dfg = block_of seed 60 in
      let cands =
        Ise.Select.candidates_of_block ~budget:Ise.Enumerate.small_budget
          ~block:0 ~freq:1. dfg
      in
      let sel = Ise.Select.greedy ~budget cands in
      (* selection does not enforce joint schedulability; codegen does *)
      let cis = Ise.Codegen.sanitize dfg (List.map (fun c -> c.Ise.Select.ci) sel) in
      let s = Ise.Codegen.schedule dfg cis in
      let env = Ir.Eval.default_env ~seed in
      Ise.Codegen.execute dfg env s = Ir.Eval.eval dfg env)

(* Whole-kernel differential check: rewrite every block of a kernel with
   MLGP instructions and verify both semantics and the WCET accounting. *)
let test_whole_kernel_rewrite name =
  let cfg = Kernels.find name in
  let rewritten =
    List.map
      (fun (b : Ir.Cfg.block) ->
        let cis = Iterative.Mlgp.cover_dfg b.body in
        (b, Ise.Codegen.schedule b.body cis))
      (Ir.Cfg.blocks cfg)
  in
  (* semantics per block *)
  List.iter
    (fun ((b : Ir.Cfg.block), s) ->
      let env = Ir.Eval.default_env ~seed:5 in
      check bool (b.label ^ " semantics preserved") true
        (Ise.Codegen.execute b.body env s = Ir.Eval.eval b.body env))
    rewritten;
  (* accelerated WCET from the schedules equals Cfg.wcet_with *)
  let cost (b : Ir.Cfg.block) =
    match List.find_opt (fun (b', _) -> b' == b) rewritten with
    | Some (_, s) -> Ise.Codegen.cycles b.body s
    | None -> Ir.Cfg.block_cycles b
  in
  let accelerated = Ir.Cfg.wcet_with cfg ~cost in
  check bool "acceleration reduces the WCET" true (accelerated < Ir.Cfg.wcet cfg)

let test_whole_lms () = test_whole_kernel_rewrite "lms"
let test_whole_viterbi () = test_whole_kernel_rewrite "viterbi"
let test_whole_fft () = test_whole_kernel_rewrite "fft"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "codegen"
    [ ( "eval",
        [ Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
          Alcotest.test_case "block evaluation" `Quick test_eval_block;
          Alcotest.test_case "deterministic" `Quick test_eval_deterministic ] );
      ( "codegen",
        [ Alcotest.test_case "empty selection" `Quick test_schedule_empty_selection;
          Alcotest.test_case "rejects overlap" `Quick test_schedule_rejects_overlap;
          qt prop_codegen_preserves_semantics;
          qt prop_codegen_cycles_match_gains;
          qt prop_codegen_covers_selected;
          qt prop_schedule_is_dependence_ordered;
          qt prop_codegen_with_selection_pipeline ] );
      ( "whole-kernel",
        [ Alcotest.test_case "lms rewrites correctly" `Quick test_whole_lms;
          Alcotest.test_case "viterbi rewrites correctly" `Quick test_whole_viterbi;
          Alcotest.test_case "fft rewrites correctly" `Quick test_whole_fft ] ) ]
