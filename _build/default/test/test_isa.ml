module B = Ir.Dfg.Builder

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Hw_model                                                           *)
(* ------------------------------------------------------------------ *)

let test_model_tables_total () =
  List.iter
    (fun k ->
      if Ir.Op.is_valid k then begin
        check bool "delay non-negative" true (Isa.Hw_model.hw_delay_ps k >= 0);
        check bool "area non-negative" true (Isa.Hw_model.area k >= 0)
      end
      else begin
        Alcotest.check_raises "invalid op delay"
          (Invalid_argument ("Hw_model: " ^ Ir.Op.name k ^ " cannot be implemented in a CFU"))
          (fun () -> ignore (Isa.Hw_model.hw_delay_ps k));
        Alcotest.check_raises "invalid op area"
          (Invalid_argument ("Hw_model: " ^ Ir.Op.name k ^ " cannot be implemented in a CFU"))
          (fun () -> ignore (Isa.Hw_model.area k))
      end)
    Ir.Op.all

let test_mul_slower_than_add () =
  check bool "mul delay > add delay" true
    (Isa.Hw_model.hw_delay_ps Ir.Op.Mul > Isa.Hw_model.hw_delay_ps Ir.Op.Add);
  check bool "mul area > add area" true
    (Isa.Hw_model.area Ir.Op.Mul > Isa.Hw_model.area Ir.Op.Add)

let add_chain n =
  let b = B.create () in
  let first = B.add b Ir.Op.Add in
  let rec extend prev k =
    if k = 0 then ()
    else extend (B.add_with b Ir.Op.Add [ prev ]) (k - 1)
  in
  extend first (n - 1);
  B.finish b

let full_set dfg =
  Util.Bitset.of_list (Ir.Dfg.node_count dfg) (Ir.Dfg.nodes dfg)

let test_set_area_sums () =
  let dfg = add_chain 5 in
  check int "5 adders" (5 * 10) (Isa.Hw_model.set_area dfg (full_set dfg))

let test_hw_cycles_chain () =
  (* 4 adds in a chain: 8000ps < 8333ps -> 1 cycle; 5 adds: 10000ps -> 2. *)
  let d4 = add_chain 4 and d5 = add_chain 5 in
  check int "4-chain 1 cycle" 1 (Isa.Hw_model.set_hw_cycles d4 (full_set d4));
  check int "5-chain 2 cycles" 2 (Isa.Hw_model.set_hw_cycles d5 (full_set d5));
  check int "empty set 0 cycles" 0
    (Isa.Hw_model.set_hw_cycles d4 (Util.Bitset.create 4))

let test_unit_conversions () =
  check (Alcotest.float 1e-9) "adders" 2.5 (Isa.Hw_model.adders_of_units 25);
  check int "gates" 400 (Isa.Hw_model.gates_of_units 25)

(* ------------------------------------------------------------------ *)
(* Custom_inst                                                        *)
(* ------------------------------------------------------------------ *)

(* mul feeding add, one external input each: classic MAC pattern *)
let mac_dfg () =
  let b = B.create () in
  let m = B.add b Ir.Op.Mul in
  let a = B.add_with b Ir.Op.Add [ m ] in
  ignore (B.add_with b Ir.Op.Store [ a ]);
  (B.finish b, m, a)

let test_mac_instruction () =
  let dfg, m, a = mac_dfg () in
  let ci = Isa.Custom_inst.make dfg (Util.Bitset.of_list 3 [ m; a ]) in
  check int "size" 2 ci.Isa.Custom_inst.size;
  check int "sw cycles" 2 ci.Isa.Custom_inst.sw_cycles;
  (* 5500 + 2000 = 7500ps < 8333 -> 1 cycle *)
  check int "hw cycles" 1 ci.Isa.Custom_inst.hw_cycles;
  check int "gain" 1 (Isa.Custom_inst.gain ci);
  check int "inputs (2 mul + 1 add live-in)" 3 ci.Isa.Custom_inst.inputs;
  check int "outputs" 1 ci.Isa.Custom_inst.outputs;
  check int "area" 130 ci.Isa.Custom_inst.area

let test_rejects_invalid_op () =
  let b = B.create () in
  let ld = B.add b Ir.Op.Load in
  let a = B.add_with b Ir.Op.Add [ ld ] in
  let dfg = B.finish b in
  match Isa.Custom_inst.check dfg (Util.Bitset.of_list 2 [ ld; a ]) with
  | Error Isa.Custom_inst.Invalid_operation -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Invalid_operation"

let test_rejects_nonconvex () =
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add_with b Ir.Op.Add [ x ] in
  let z = B.add_with b Ir.Op.Add [ y ] in
  let dfg = B.finish b in
  match Isa.Custom_inst.check dfg (Util.Bitset.of_list 3 [ x; z ]) with
  | Error Isa.Custom_inst.Not_convex -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_convex"

let test_rejects_too_many_inputs () =
  (* 3 two-operand ops with all-external operands: 6 live-ins > 4 *)
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add b Ir.Op.Add in
  let z = B.add b Ir.Op.Add in
  let dfg = B.finish b in
  match Isa.Custom_inst.check dfg (Util.Bitset.of_list 3 [ x; y; z ]) with
  | Error (Isa.Custom_inst.Too_many_inputs 6) -> ()
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error r -> Alcotest.failf "unexpected: %a" Isa.Custom_inst.pp_rejection r

let test_rejects_too_many_outputs () =
  (* three parallel single-input ops from one producer: 3 outputs > 2 *)
  let b = B.create () in
  let src = B.add b Ir.Op.Add in
  let o1 = B.add_with b Ir.Op.Not [ src ] in
  let o2 = B.add_with b Ir.Op.Not [ src ] in
  let o3 = B.add_with b Ir.Op.Not [ src ] in
  ignore (B.add_with b Ir.Op.Store [ o1 ]);
  ignore (B.add_with b Ir.Op.Store [ o2 ]);
  ignore (B.add_with b Ir.Op.Store [ o3 ]);
  let dfg = B.finish b in
  match Isa.Custom_inst.check dfg (Util.Bitset.of_list 7 [ src; o1; o2; o3 ]) with
  | Error (Isa.Custom_inst.Too_many_outputs 3) -> ()
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error r -> Alcotest.failf "unexpected: %a" Isa.Custom_inst.pp_rejection r

let test_rejects_empty () =
  let dfg, _, _ = mac_dfg () in
  match Isa.Custom_inst.check dfg (Util.Bitset.create 3) with
  | Error Isa.Custom_inst.Empty -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Empty"

let test_custom_constraints () =
  let dfg, m, a = mac_dfg () in
  let constraints = { Isa.Hw_model.max_inputs = 2; max_outputs = 2 } in
  match Isa.Custom_inst.check ~constraints dfg (Util.Bitset.of_list 3 [ m; a ]) with
  | Error (Isa.Custom_inst.Too_many_inputs 3) -> ()
  | Ok _ -> Alcotest.fail "expected rejection under tight ports"
  | Error r -> Alcotest.failf "unexpected: %a" Isa.Custom_inst.pp_rejection r

let test_overlaps () =
  let dfg, m, a = mac_dfg () in
  let c1 = Isa.Custom_inst.make dfg (Util.Bitset.of_list 3 [ m; a ]) in
  let c2 = Isa.Custom_inst.make dfg (Util.Bitset.of_list 3 [ m ]) in
  check bool "overlap" true (Isa.Custom_inst.overlaps c1 c2);
  let c3 = Isa.Custom_inst.make dfg (Util.Bitset.of_list 3 [ a ]) in
  check bool "no overlap" false (Isa.Custom_inst.overlaps c2 c3)

(* ------------------------------------------------------------------ *)
(* Config curves                                                      *)
(* ------------------------------------------------------------------ *)

let test_curve_normalisation () =
  let curve =
    Isa.Config.of_points ~base_cycles:100
      [ { area = 10; cycles = 80 }; { area = 20; cycles = 80 } (* dominated *);
        { area = 5; cycles = 95 }; { area = 30; cycles = 60 } ]
  in
  let pts = Isa.Config.points curve in
  check int "size includes software point" 4 (Array.length pts);
  check int "first is software" 0 pts.(0).Isa.Config.area;
  check int "base cycles" 100 (Isa.Config.base_cycles curve);
  check int "min cycles" 60 (Isa.Config.min_cycles curve);
  check int "max area" 30 (Isa.Config.max_area curve);
  check bool "dominated point dropped" true
    (not (Array.exists (fun p -> p.Isa.Config.area = 20) pts))

let test_curve_rejects_slower_point () =
  Alcotest.check_raises "slower than software"
    (Invalid_argument "Config.of_points: configuration slower than software")
    (fun () ->
      ignore (Isa.Config.of_points ~base_cycles:100 [ { area = 10; cycles = 120 } ]))

let test_best_at () =
  let curve =
    Isa.Config.of_points ~base_cycles:100
      [ { area = 10; cycles = 80 }; { area = 30; cycles = 60 } ]
  in
  check int "budget 0" 100 (Isa.Config.best_at curve 0).Isa.Config.cycles;
  check int "budget 15" 80 (Isa.Config.best_at curve 15).Isa.Config.cycles;
  check int "budget 1000" 60 (Isa.Config.best_at curve 1000).Isa.Config.cycles

let test_restrict () =
  let curve =
    Isa.Config.of_points ~base_cycles:100
      [ { area = 10; cycles = 80 }; { area = 30; cycles = 60 } ]
  in
  let r = Isa.Config.restrict curve ~max_area:15 in
  check int "restricted size" 2 (Isa.Config.size r);
  check int "restricted min cycles" 80 (Isa.Config.min_cycles r)

let test_scale_cycles () =
  let curve =
    Isa.Config.of_points ~base_cycles:100 [ { area = 10; cycles = 50 } ]
  in
  let s = Isa.Config.scale_cycles curve 2. in
  check int "scaled base" 200 (Isa.Config.base_cycles s);
  check int "scaled point" 100 (Isa.Config.min_cycles s)

let prop_curve_is_pareto =
  QCheck.Test.make ~name:"curves are strictly monotone staircases" ~count:300
    (QCheck.make Test_helpers.gen_curve)
    (fun curve ->
      let pts = Isa.Config.points curve in
      let ok = ref (pts.(0).Isa.Config.area = 0) in
      for i = 1 to Array.length pts - 1 do
        if
          pts.(i).Isa.Config.area <= pts.(i - 1).Isa.Config.area
          || pts.(i).Isa.Config.cycles >= pts.(i - 1).Isa.Config.cycles
        then ok := false
      done;
      !ok)

let prop_best_at_monotone =
  QCheck.Test.make ~name:"best_at cycles decrease with budget" ~count:200
    (QCheck.make Test_helpers.gen_curve)
    (fun curve ->
      let budgets = [ 0; 5; 10; 20; 40; 100 ] in
      let cycles = List.map (fun a -> (Isa.Config.best_at curve a).Isa.Config.cycles) budgets in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing cycles)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [ ( "hw-model",
        [ Alcotest.test_case "tables total" `Quick test_model_tables_total;
          Alcotest.test_case "mul slower than add" `Quick test_mul_slower_than_add;
          Alcotest.test_case "set area sums" `Quick test_set_area_sums;
          Alcotest.test_case "hw cycles from critical path" `Quick test_hw_cycles_chain;
          Alcotest.test_case "unit conversions" `Quick test_unit_conversions ] );
      ( "custom-inst",
        [ Alcotest.test_case "mac" `Quick test_mac_instruction;
          Alcotest.test_case "rejects invalid op" `Quick test_rejects_invalid_op;
          Alcotest.test_case "rejects non-convex" `Quick test_rejects_nonconvex;
          Alcotest.test_case "rejects too many inputs" `Quick test_rejects_too_many_inputs;
          Alcotest.test_case "rejects too many outputs" `Quick test_rejects_too_many_outputs;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
          Alcotest.test_case "custom port constraints" `Quick test_custom_constraints;
          Alcotest.test_case "overlaps" `Quick test_overlaps ] );
      ( "config-curve",
        [ Alcotest.test_case "normalisation" `Quick test_curve_normalisation;
          Alcotest.test_case "rejects slower point" `Quick test_curve_rejects_slower_point;
          Alcotest.test_case "best_at" `Quick test_best_at;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "scale" `Quick test_scale_cycles;
          qt prop_curve_is_pareto;
          qt prop_best_at_monotone ] ) ]
