let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let curve base pts = Isa.Config.of_points ~base_cycles:base pts
let task name period base pts = Rt.Task.make ~name ~period (curve base pts)

(* ------------------------------------------------------------------ *)
(* The motivating example of Figure 3.2 (exact published numbers)      *)
(* ------------------------------------------------------------------ *)

(* T1: P=6, C=2, config (7,1); T2: P=8, C=3, config (6,2);
   T3: P=12, C=6, config (4,5); budget 10. *)
let fig32_tasks () =
  [ task "T1" 6 2 [ { Isa.Config.area = 7; cycles = 1 } ];
    task "T2" 8 3 [ { Isa.Config.area = 6; cycles = 2 } ];
    task "T3" 12 6 [ { Isa.Config.area = 4; cycles = 5 } ] ]

let test_fig32_software_unschedulable () =
  let sel = Core.Selection.software (fig32_tasks ()) in
  (* U = 2/6 + 3/8 + 6/12 = 29/24 *)
  check (Alcotest.float 1e-9) "software U" (29. /. 24.) sel.Core.Selection.utilization;
  check bool "unschedulable" true (sel.Core.Selection.utilization > 1.)

let test_fig32_optimal () =
  let sel = Core.Edf_select.run ~budget:10 (fig32_tasks ()) in
  (* optimal: T2 and T3 customized, T1 software -> U = 24/24 = 1 *)
  check (Alcotest.float 1e-9) "optimal U" 1.0 sel.Core.Selection.utilization;
  check int "optimal area" 10 sel.Core.Selection.area;
  check bool "schedulable" true
    (Core.Edf_select.run_schedulable ~budget:10 (fig32_tasks ()) <> None)

let test_fig32_heuristics_fail () =
  (* Figure 3.2 a-d: each heuristic leaves U = 25/24 or 29/24 > 1. *)
  List.iter
    (fun strategy ->
      let sel = Core.Heuristics.run strategy ~budget:10 (fig32_tasks ()) in
      check bool
        (Core.Heuristics.name strategy ^ " fails to schedule")
        true
        (sel.Core.Selection.utilization > 1.))
    Core.Heuristics.all

let test_fig32_heuristic_values () =
  (* equal division: 10/3=3 fits nothing -> 29/24 *)
  let eq = Core.Heuristics.run Core.Heuristics.Equal_division ~budget:10 (fig32_tasks ()) in
  check (Alcotest.float 1e-9) "equal division U" (29. /. 24.) eq.Core.Selection.utilization;
  (* deadline/reduction/ratio orders all serve T1 first -> 25/24 *)
  List.iter
    (fun strategy ->
      let sel = Core.Heuristics.run strategy ~budget:10 (fig32_tasks ()) in
      check (Alcotest.float 1e-9)
        (Core.Heuristics.name strategy ^ " U")
        (25. /. 24.) sel.Core.Selection.utilization)
    [ Core.Heuristics.Smallest_deadline_first;
      Core.Heuristics.Highest_reduction_first;
      Core.Heuristics.Best_ratio_first ]

(* ------------------------------------------------------------------ *)
(* EDF selection                                                      *)
(* ------------------------------------------------------------------ *)

let test_edf_zero_budget_is_software () =
  let tasks = fig32_tasks () in
  let sel = Core.Edf_select.run ~budget:0 tasks in
  check int "no area used" 0 sel.Core.Selection.area;
  check (Alcotest.float 1e-9) "software utilization" (29. /. 24.)
    sel.Core.Selection.utilization

let prop_edf_matches_exhaustive =
  QCheck.Test.make ~name:"EDF DP equals exhaustive optimum" ~count:60
    QCheck.(pair (QCheck.make Test_helpers.gen_rt_taskset) (int_range 0 80))
    (fun (tasks, budget) ->
      let dp = Core.Edf_select.run ~budget tasks in
      let ex = Core.Edf_select.exhaustive ~budget tasks in
      Float.abs (dp.Core.Selection.utilization -. ex.Core.Selection.utilization) < 1e-9
      && dp.Core.Selection.area <= budget)

let prop_edf_monotone_in_budget =
  QCheck.Test.make ~name:"EDF utilization non-increasing in budget" ~count:60
    (QCheck.make Test_helpers.gen_rt_taskset)
    (fun tasks ->
      let us =
        List.map
          (fun budget -> (Core.Edf_select.run ~budget tasks).Core.Selection.utilization)
          [ 0; 10; 20; 40; 80; 160 ]
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
        | _ -> true
      in
      non_increasing us)

let prop_edf_beats_heuristics =
  QCheck.Test.make ~name:"EDF DP is never worse than any heuristic" ~count:60
    QCheck.(pair (QCheck.make Test_helpers.gen_rt_taskset) (int_range 0 100))
    (fun (tasks, budget) ->
      let opt = (Core.Edf_select.run ~budget tasks).Core.Selection.utilization in
      List.for_all
        (fun strategy ->
          let h = Core.Heuristics.run strategy ~budget tasks in
          opt <= h.Core.Selection.utilization +. 1e-9)
        Core.Heuristics.all)

(* ------------------------------------------------------------------ *)
(* RMS selection                                                      *)
(* ------------------------------------------------------------------ *)

let test_rms_simple () =
  (* harmonic set: schedulable in software, customization reduces U *)
  let tasks =
    [ task "a" 4 2 [ { Isa.Config.area = 5; cycles = 1 } ];
      task "b" 8 4 [ { Isa.Config.area = 5; cycles = 2 } ] ]
  in
  match Core.Rms_select.run ~budget:10 tasks with
  | Some sel ->
    check (Alcotest.float 1e-9) "U minimised" 0.5 sel.Core.Selection.utilization
  | None -> Alcotest.fail "expected a schedulable selection"

let test_rms_none_when_impossible () =
  let tasks =
    [ task "a" 2 2 []; task "b" 3 3 [] ]
  in
  check bool "no selection" true (Core.Rms_select.run ~budget:100 tasks = None)

let test_rms_needs_customization () =
  (* Software U > 1; with custom instructions it becomes harmonic-feasible. *)
  let tasks =
    [ task "a" 4 3 [ { Isa.Config.area = 4; cycles = 2 } ];
      task "b" 8 4 [ { Isa.Config.area = 4; cycles = 2 } ] ]
  in
  check bool "software infeasible" true
    (not (Rt.Sched.rms_schedulable [ (3, 4); (4, 8) ]));
  match Core.Rms_select.run ~budget:8 tasks with
  | Some sel ->
    check (Alcotest.float 1e-9) "customized U" 0.75 sel.Core.Selection.utilization
  | None -> Alcotest.fail "customization should make it schedulable"

let prop_rms_matches_exhaustive =
  QCheck.Test.make ~name:"RMS branch-and-bound equals exhaustive optimum"
    ~count:60
    QCheck.(pair (QCheck.make Test_helpers.gen_rt_taskset) (int_range 0 80))
    (fun (tasks, budget) ->
      (* distinct periods so priority order is unambiguous *)
      let periods = List.map (fun (t : Rt.Task.t) -> t.period) tasks in
      QCheck.assume
        (List.length periods = List.length (List.sort_uniq compare periods));
      match (Core.Rms_select.run ~budget tasks, Core.Rms_select.exhaustive ~budget tasks) with
      | None, None -> true
      | Some a, Some b ->
        Float.abs (a.Core.Selection.utilization -. b.Core.Selection.utilization) < 1e-9
      | Some _, None | None, Some _ -> false)

let prop_rms_solution_schedulable =
  QCheck.Test.make ~name:"RMS selections pass the exact test and simulate clean"
    ~count:60
    QCheck.(pair (QCheck.make Test_helpers.gen_rt_taskset) (int_range 0 80))
    (fun (tasks, budget) ->
      match Core.Rms_select.run ~budget tasks with
      | None -> true
      | Some sel ->
        let pairs =
          List.map
            (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
            sel.Core.Selection.assignment
        in
        Rt.Sched.rms_schedulable pairs
        && sel.Core.Selection.area <= budget)

let prop_rms_never_below_edf =
  QCheck.Test.make ~name:"optimal RMS utilization >= optimal EDF utilization"
    ~count:60
    QCheck.(pair (QCheck.make Test_helpers.gen_rt_taskset) (int_range 0 80))
    (fun (tasks, budget) ->
      match Core.Rms_select.run ~budget tasks with
      | None -> true
      | Some rms ->
        let edf = Core.Edf_select.run ~budget tasks in
        rms.Core.Selection.utilization >= edf.Core.Selection.utilization -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Selection helpers                                                  *)
(* ------------------------------------------------------------------ *)

let test_selection_feasible () =
  let t = task "a" 10 5 [ { Isa.Config.area = 4; cycles = 3 } ] in
  let good = Core.Selection.of_assignment [ (t, { Isa.Config.area = 4; cycles = 3 }) ] in
  check bool "within budget" true (Core.Selection.feasible ~budget:4 good);
  check bool "over budget" false (Core.Selection.feasible ~budget:3 good);
  (* a point not on the task's curve is rejected *)
  let bogus = Core.Selection.of_assignment [ (t, { Isa.Config.area = 2; cycles = 4 }) ] in
  check bool "foreign point" false (Core.Selection.feasible ~budget:100 bogus)

let test_edf_non_gcd_budget () =
  (* areas 6 and 4 (gcd 2) with budget 7: only the 6 or the 4 fits *)
  let tasks =
    [ task "a" 10 4 [ { Isa.Config.area = 6; cycles = 1 } ];
      task "b" 10 4 [ { Isa.Config.area = 4; cycles = 2 } ] ]
  in
  let sel = Core.Edf_select.run ~budget:7 tasks in
  let ex = Core.Edf_select.exhaustive ~budget:7 tasks in
  check (Alcotest.float 1e-9) "DP = exhaustive on non-multiple budget"
    ex.Core.Selection.utilization sel.Core.Selection.utilization;
  check bool "budget respected" true (sel.Core.Selection.area <= 7)

let test_rms_instrumented_consistent () =
  let tasks = fig32_tasks () in
  let with_pruning, s1 =
    Core.Rms_select.run_instrumented ~use_bound:true ~fastest_first:true
      ~budget:10 tasks
  in
  let without, s2 =
    Core.Rms_select.run_instrumented ~use_bound:false ~fastest_first:false
      ~budget:10 tasks
  in
  (match (with_pruning, without) with
   | Some a, Some b ->
     check (Alcotest.float 1e-9) "same optimum"
       a.Core.Selection.utilization b.Core.Selection.utilization
   | None, None -> ()
   | Some _, None | None, Some _ -> Alcotest.fail "pruning changed feasibility");
  check bool "pruning explores no more nodes" true
    (s1.Core.Rms_select.explored <= s2.Core.Rms_select.explored)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [ ( "fig3.2",
        [ Alcotest.test_case "software unschedulable" `Quick test_fig32_software_unschedulable;
          Alcotest.test_case "optimal schedules at budget 10" `Quick test_fig32_optimal;
          Alcotest.test_case "all heuristics fail" `Quick test_fig32_heuristics_fail;
          Alcotest.test_case "heuristic utilizations exact" `Quick test_fig32_heuristic_values ] );
      ( "edf",
        [ Alcotest.test_case "zero budget" `Quick test_edf_zero_budget_is_software;
          qt prop_edf_matches_exhaustive;
          qt prop_edf_monotone_in_budget;
          qt prop_edf_beats_heuristics ] );
      ( "rms",
        [ Alcotest.test_case "simple" `Quick test_rms_simple;
          Alcotest.test_case "none when impossible" `Quick test_rms_none_when_impossible;
          Alcotest.test_case "customization enables schedule" `Quick test_rms_needs_customization;
          qt prop_rms_matches_exhaustive;
          qt prop_rms_solution_schedulable;
          qt prop_rms_never_below_edf ] );
      ( "extras",
        [ Alcotest.test_case "selection feasibility" `Quick test_selection_feasible;
          Alcotest.test_case "EDF with non-gcd budget" `Quick test_edf_non_gcd_budget;
          Alcotest.test_case "instrumented B&B consistent" `Quick
            test_rms_instrumented_consistent ] ) ]
