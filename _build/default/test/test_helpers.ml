(* Shared QCheck generators for the test suites. *)

let gen_small_dfg =
  (* A random DAG over valid and invalid operations, built the same way
     the production builder is driven: edges only point forward. *)
  QCheck.Gen.(
    let* n = int_range 1 24 in
    let* seed = int_range 0 1_000_000 in
    return
      (let prng = Util.Prng.create seed in
       let b = Ir.Dfg.Builder.create () in
       for i = 0 to n - 1 do
         let kinds =
           [| Ir.Op.Add; Ir.Op.Sub; Ir.Op.Mul; Ir.Op.Xor; Ir.Op.And;
              Ir.Op.Shl; Ir.Op.Cmp; Ir.Op.Select; Ir.Op.Load; Ir.Op.Store |]
         in
         let kind = Util.Prng.choose prng kinds in
         let id = Ir.Dfg.Builder.add b kind in
         assert (id = i);
         let wired = ref [] in
         for _ = 1 to Ir.Op.arity kind do
           if i > 0 && Util.Prng.float prng 1.0 < 0.7 then begin
             let src = Util.Prng.int prng i in
             if not (List.mem src !wired) then begin
               wired := src :: !wired;
               Ir.Dfg.Builder.edge b src id
             end
           end
         done
       done;
       Ir.Dfg.Builder.finish b))

let arb_small_dfg = QCheck.make ~print:(fun _ -> "<dfg>") gen_small_dfg

let gen_node_set dfg =
  QCheck.Gen.(
    let n = Ir.Dfg.node_count dfg in
    let* seed = int_range 0 1_000_000 in
    let* k = int_range 1 (max 1 n) in
    return
      (let prng = Util.Prng.create seed in
       let set = Util.Bitset.create n in
       for _ = 1 to k do
         Util.Bitset.set set (Util.Prng.int prng n)
       done;
       set))

let arb_dfg_with_set =
  QCheck.make
    ~print:(fun (dfg, set) ->
      Printf.sprintf "dfg(%d nodes) set={%s}" (Ir.Dfg.node_count dfg)
        (String.concat "," (List.map string_of_int (Util.Bitset.elements set))))
    QCheck.Gen.(gen_small_dfg >>= fun dfg ->
                gen_node_set dfg >|= fun set -> (dfg, set))

(* Random periodic task sets with small integer parameters, so that
   hyperperiods stay simulable. *)
let gen_taskset =
  QCheck.Gen.(
    let* n = int_range 1 5 in
    list_repeat n
      (let* period = int_range 2 30 in
       let* cycles = int_range 1 period in
       return (cycles, period)))

let arb_taskset =
  QCheck.make
    ~print:(fun ts ->
      String.concat ";" (List.map (fun (c, p) -> Printf.sprintf "(%d,%d)" c p) ts))
    gen_taskset

(* Random configuration curves: base cycles plus improving points. *)
let gen_curve =
  QCheck.Gen.(
    let* base = int_range 10 200 in
    let* points =
      list_size (int_range 0 5)
        (let* area = int_range 1 40 in
         let* cycles = int_range 1 base in
         return { Isa.Config.area; cycles })
    in
    return (Isa.Config.of_points ~base_cycles:base points))

let gen_task_with_curve name_index =
  QCheck.Gen.(
    let* curve = gen_curve in
    let* factor = int_range 2 8 in
    let period = Isa.Config.base_cycles curve * factor in
    return (Rt.Task.make ~name:(Printf.sprintf "t%d" name_index) ~period curve))

let gen_rt_taskset =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let rec build i =
      if i = n then return []
      else
        let* t = gen_task_with_curve i in
        let* rest = build (i + 1) in
        return (t :: rest)
    in
    build 0)

let arb_rt_taskset =
  QCheck.make
    ~print:(fun ts -> String.concat ";" (List.map (fun t -> Format.asprintf "%a" Rt.Task.pp t) ts))
    gen_rt_taskset
