let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk_task name period wcet points = Rtreconfig.Model.task ~name ~period ~wcet points

(* Two-task instance where sharing one configuration is clearly best. *)
let small_instance () =
  { Rtreconfig.Model.tasks =
      [ mk_task "a" 100 60 [ (20, 40); (30, 80) ];
        mk_task "b" 200 120 [ (40, 50) ] ];
    max_area = 130;
    reconfig_cost = 10 }

let random_instance seed n =
  let prng = Util.Prng.create seed in
  let tasks =
    List.init n (fun i ->
        let period = Util.Prng.in_range prng 50 400 * 10 in
        let wcet = Util.Prng.in_range prng (period / 10) (period / 2) in
        let n_versions = Util.Prng.in_range prng 1 4 in
        let gains =
          List.init n_versions (fun _ -> Util.Prng.in_range prng 1 (max 2 (wcet / 2)))
          |> List.sort_uniq compare
        in
        let areas =
          List.init (List.length gains) (fun _ -> Util.Prng.in_range prng 10 100)
          |> List.sort_uniq compare
        in
        let k = min (List.length gains) (List.length areas) in
        let take k l = List.filteri (fun i _ -> i < k) l in
        mk_task (Printf.sprintf "t%d" i) period wcet
          (List.combine (take k gains) (take k areas)))
  in
  { Rtreconfig.Model.tasks; max_area = 128; reconfig_cost = Util.Prng.in_range prng 1 40 }

(* ------------------------------------------------------------------ *)
(* Model                                                              *)
(* ------------------------------------------------------------------ *)

let test_software_placement () =
  let t = small_instance () in
  let p = Rtreconfig.Model.software_placement t in
  check bool "feasible" true (Rtreconfig.Model.feasible t p);
  (* U = 60/100 + 120/200 = 1.2 *)
  check (Alcotest.float 1e-9) "software utilization" 1.2 (Rtreconfig.Model.utilization t p);
  check bool "unschedulable" false (Rtreconfig.Model.schedulable t p)

let test_single_config_no_reload () =
  let t = small_instance () in
  let p =
    { Rtreconfig.Model.version_of = [ ("a", 2); ("b", 1) ];
      config_of = [ ("a", 0); ("b", 0) ] }
  in
  check bool "feasible" true (Rtreconfig.Model.feasible t p);
  check int "a reload" 0 (Rtreconfig.Model.reload_cycles t p (Rtreconfig.Model.find_task t "a"));
  (* U = (60-30)/100 + (120-40)/200 = 0.3 + 0.4 = 0.7 *)
  check (Alcotest.float 1e-9) "utilization" 0.7 (Rtreconfig.Model.utilization t p)

let test_split_config_pays_reloads () =
  let t = small_instance () in
  let p =
    { Rtreconfig.Model.version_of = [ ("a", 2); ("b", 1) ];
      config_of = [ ("a", 0); ("b", 1) ] }
  in
  check bool "feasible" true (Rtreconfig.Model.feasible t p);
  let a = Rtreconfig.Model.find_task t "a" and b = Rtreconfig.Model.find_task t "b" in
  (* a (P=100) is not preempted by b (P=200): one dispatch load *)
  check int "a reload" 10 (Rtreconfig.Model.reload_cycles t p a);
  (* b is preempted by a up to ceil(200/100)=2 times: (1 + 2*2)*10 = 50 *)
  check int "b reload" 50 (Rtreconfig.Model.reload_cycles t p b);
  check bool "split worse than shared" true
    (Rtreconfig.Model.utilization t p > 0.7)

let test_capacity_enforced () =
  let t = small_instance () in
  let p =
    { Rtreconfig.Model.version_of = [ ("a", 2); ("b", 1) ];
      config_of = [ ("a", 0); ("b", 0) ] }
  in
  let tight = { t with Rtreconfig.Model.max_area = 100 } in
  check bool "over capacity" false (Rtreconfig.Model.feasible tight p)

let test_task_validation () =
  (try
     ignore (mk_task "bad" 10 5 [ (7, 10) ]);
     Alcotest.fail "gain above wcet accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (mk_task "bad" 10 5 [ (2, 10); (3, 10) ]);
     Alcotest.fail "non-monotone versions accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Solvers                                                            *)
(* ------------------------------------------------------------------ *)

let test_static_small () =
  let t = small_instance () in
  let p = Rtreconfig.Solvers.static t in
  check bool "feasible" true (Rtreconfig.Model.feasible t p);
  (* budget 130 fits a's (80) + b's (50): U = 0.7 *)
  check (Alcotest.float 1e-9) "static utilization" 0.7 (Rtreconfig.Model.utilization t p)

let test_dp_at_least_static () =
  let t = small_instance () in
  let s = Rtreconfig.Model.utilization t (Rtreconfig.Solvers.static t) in
  let d = Rtreconfig.Model.utilization t (Rtreconfig.Solvers.dp t) in
  check bool "dp <= static" true (d <= s +. 1e-9)

let test_reconfig_beats_static_when_area_tight () =
  (* MaxA too small for both tasks' best versions together, periods far
     apart so reloads are cheap relative to the gains *)
  let t =
    { Rtreconfig.Model.tasks =
        [ mk_task "fast" 1000 600 [ (400, 100) ];
          mk_task "slow" 100_000 60_000 [ (40_000, 100) ] ];
      max_area = 100;
      reconfig_cost = 5 }
  in
  let static_u = Rtreconfig.Model.utilization t (Rtreconfig.Solvers.static t) in
  let dp_u = Rtreconfig.Model.utilization t (Rtreconfig.Solvers.dp t) in
  let opt_u = Rtreconfig.Model.utilization t (Rtreconfig.Solvers.optimal t) in
  check bool "dp strictly better than static" true (dp_u < static_u -. 1e-9);
  check bool "optimal <= dp" true (opt_u <= dp_u +. 1e-9)

let prop_solvers_feasible =
  QCheck.Test.make ~name:"all solvers return feasible placements" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 6))
    (fun (seed, n) ->
      let t = random_instance seed n in
      Rtreconfig.Model.feasible t (Rtreconfig.Solvers.static t)
      && Rtreconfig.Model.feasible t (Rtreconfig.Solvers.dp t)
      && Rtreconfig.Model.feasible t (Rtreconfig.Solvers.optimal t))

let prop_optimal_dominates =
  QCheck.Test.make ~name:"optimal <= dp <= static in utilization" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n) ->
      let t = random_instance seed n in
      let u p = Rtreconfig.Model.utilization t p in
      let s = u (Rtreconfig.Solvers.static t) in
      let d = u (Rtreconfig.Solvers.dp t) in
      let o = u (Rtreconfig.Solvers.optimal t) in
      o <= d +. 1e-9 && d <= s +. 1e-9)

let prop_optimal_matches_bruteforce_2tasks =
  QCheck.Test.make ~name:"optimal matches brute force on 2-task instances"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let t = random_instance seed 2 in
      let u p = Rtreconfig.Model.utilization t p in
      let opt = u (Rtreconfig.Solvers.optimal t) in
      (* brute force: all (version, group) combinations for two tasks *)
      let tasks = Array.of_list t.Rtreconfig.Model.tasks in
      let best = ref infinity in
      let t0 = tasks.(0) and t1 = tasks.(1) in
      Array.iteri
        (fun j0 (v0 : Rtreconfig.Model.version) ->
          Array.iteri
            (fun j1 (v1 : Rtreconfig.Model.version) ->
              List.iter
                (fun same_group ->
                  let config_of =
                    (if j0 > 0 then [ (t0.Rtreconfig.Model.name, 0) ] else [])
                    @ (if j1 > 0 then
                         [ (t1.Rtreconfig.Model.name, if same_group then 0 else 1) ]
                       else [])
                  in
                  let p =
                    { Rtreconfig.Model.version_of =
                        [ (t0.Rtreconfig.Model.name, j0); (t1.Rtreconfig.Model.name, j1) ];
                      config_of }
                  in
                  if Rtreconfig.Model.feasible t p then best := Float.min !best (u p))
                [ true; false ];
              ignore v1)
            t1.Rtreconfig.Model.versions;
          ignore v0)
        t0.Rtreconfig.Model.versions;
      Float.abs (opt -. !best) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Reconfiguration-aware simulation                                   *)
(* ------------------------------------------------------------------ *)

let test_sim_single_config_loads_once () =
  let t = small_instance () in
  let p =
    { Rtreconfig.Model.version_of = [ ("a", 2); ("b", 1) ];
      config_of = [ ("a", 0); ("b", 0) ] }
  in
  let out = Rtreconfig.Sim_check.run t p in
  check bool "at most one reload" true (out.Rtreconfig.Sim_check.reloads <= 1);
  check int "no misses" 0 out.Rtreconfig.Sim_check.deadline_misses

let test_sim_split_config_reloads () =
  let t = small_instance () in
  let p =
    { Rtreconfig.Model.version_of = [ ("a", 2); ("b", 1) ];
      config_of = [ ("a", 0); ("b", 1) ] }
  in
  let out = Rtreconfig.Sim_check.run t p in
  check bool "reloads happen" true (out.Rtreconfig.Sim_check.reloads > 1)

let prop_model_conservative_wrt_simulation =
  QCheck.Test.make
    ~name:"model-schedulable placements simulate without misses" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n) ->
      let t = random_instance seed n in
      let horizon =
        min 20_000_000
          (10 * List.fold_left (fun acc (tk : Rtreconfig.Model.task) -> max acc tk.period) 1 t.Rtreconfig.Model.tasks)
      in
      List.for_all
        (fun p ->
          (not (Rtreconfig.Model.schedulable t p))
          || Rtreconfig.Sim_check.schedulable ~horizon t p)
        [ Rtreconfig.Solvers.static t; Rtreconfig.Solvers.dp t;
          Rtreconfig.Solvers.optimal t;
          Rtreconfig.Model.software_placement t ])

let prop_sim_reloads_bounded_by_model =
  QCheck.Test.make
    ~name:"simulated busy time never exceeds the model's demand" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n) ->
      let t = random_instance seed n in
      let p = Rtreconfig.Solvers.dp t in
      let horizon =
        min 20_000_000
          (10 * List.fold_left (fun acc (tk : Rtreconfig.Model.task) -> max acc tk.period) 1 t.Rtreconfig.Model.tasks)
      in
      let out = Rtreconfig.Sim_check.run ~horizon t p in
      float_of_int (out.Rtreconfig.Sim_check.busy
                    + (out.Rtreconfig.Sim_check.reloads * t.Rtreconfig.Model.reconfig_cost))
      <= Rtreconfig.Model.utilization t p *. float_of_int horizon
         +. float_of_int horizon *. 0.05 +. 1.)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "rtreconfig"
    [ ( "model",
        [ Alcotest.test_case "software placement" `Quick test_software_placement;
          Alcotest.test_case "single config no reload" `Quick test_single_config_no_reload;
          Alcotest.test_case "split config pays reloads" `Quick test_split_config_pays_reloads;
          Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
          Alcotest.test_case "task validation" `Quick test_task_validation ] );
      ( "solvers",
        [ Alcotest.test_case "static small" `Quick test_static_small;
          Alcotest.test_case "dp at least static" `Quick test_dp_at_least_static;
          Alcotest.test_case "reconfiguration wins when area is tight" `Quick
            test_reconfig_beats_static_when_area_tight;
          qt prop_solvers_feasible;
          qt prop_optimal_dominates;
          qt prop_optimal_matches_bruteforce_2tasks ] );
      ( "simulation",
        [ Alcotest.test_case "single config loads once" `Quick test_sim_single_config_loads_once;
          Alcotest.test_case "split config reloads" `Quick test_sim_split_config_reloads;
          qt prop_model_conservative_wrt_simulation;
          qt prop_sim_reloads_bounded_by_model ] ) ]
