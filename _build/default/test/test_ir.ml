module B = Ir.Dfg.Builder

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A hand-built diamond:  0:load  1:add(0)  2:mul(0)  3:add(1,2)  4:store(3) *)
let diamond () =
  let b = B.create () in
  let ld = B.add b Ir.Op.Load in
  let a1 = B.add_with b Ir.Op.Add [ ld ] in
  let m = B.add_with b Ir.Op.Mul [ ld ] in
  let a2 = B.add_with b Ir.Op.Add [ a1; m ] in
  let st = B.add_with b Ir.Op.Store [ a2 ] in
  (B.finish b, ld, a1, m, a2, st)

let test_builder_basic () =
  let dfg, ld, a1, m, a2, st = diamond () in
  check int "node count" 5 (Ir.Dfg.node_count dfg);
  check Alcotest.(list int) "preds of join" [ a1; m ] (Ir.Dfg.preds dfg a2);
  check Alcotest.(list int) "succs of load" [ a1; m ] (Ir.Dfg.succs dfg ld);
  check bool "store is last" true (Ir.Dfg.succs dfg st = []);
  check bool "load invalid" false (Ir.Dfg.valid_node dfg ld);
  check bool "add valid" true (Ir.Dfg.valid_node dfg a1)

let test_builder_rejects_backward_edge () =
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add b Ir.Op.Add in
  Alcotest.check_raises "backward edge" (Invalid_argument "Dfg.Builder.edge: src must precede dst")
    (fun () -> B.edge b y x)

let test_builder_rejects_arity_overflow () =
  let b = B.create () in
  let x = B.add b Ir.Op.Const in
  let y = B.add b Ir.Op.Const in
  let z = B.add b Ir.Op.Const in
  let n = B.add_with b Ir.Op.Not [ x ] in
  B.edge b y n;
  B.edge b z n;
  (try
     ignore (B.finish b);
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ())

let test_sw_cycles () =
  let dfg, _, _, _, _, _ = diamond () in
  (* load=2, add=1, mul=1, add=1, store=2 *)
  check int "total sw cycles" 7 (Ir.Dfg.sw_cycles_total dfg)

let test_io_counting () =
  let dfg, _, a1, m, a2, _ = diamond () in
  let set = Util.Bitset.of_list 5 [ a1; m; a2 ] in
  (* One external producer (the load) plus one implicit live-in operand on
     each of a1 and m; a2 feeds the store outside. *)
  check int "inputs" 3 (Ir.Dfg.input_count dfg set);
  check int "outputs" 1 (Ir.Dfg.output_count dfg set);
  let pair = Util.Bitset.of_list 5 [ a1; m ] in
  check int "pair inputs" 3 (Ir.Dfg.input_count dfg pair);
  check int "pair outputs" 2 (Ir.Dfg.output_count dfg pair)

let test_implicit_live_ins_counted () =
  let b = B.create () in
  (* add with one wired operand and one implicit live-in *)
  let c = B.add b Ir.Op.Const in
  let a = B.add_with b Ir.Op.Add [ c ] in
  let dfg = B.finish b in
  let set = Util.Bitset.of_list 2 [ a ] in
  (* one external producer (the const) + one implicit live-in *)
  check int "implicit input counted" 2 (Ir.Dfg.input_count dfg set);
  let both = Util.Bitset.of_list 2 [ c; a ] in
  check int "const supplies no input" 1 (Ir.Dfg.input_count dfg both)

let test_convexity () =
  let dfg, _, a1, m, a2, _ = diamond () in
  check bool "full arith set convex" true
    (Ir.Dfg.is_convex dfg (Util.Bitset.of_list 5 [ a1; m; a2 ]));
  (* a1 and a2 without m: path a1 -> ... no: m is a sibling, both paths go
     load->{a1,m}->a2; {a1,a2} is convex (no path a1->m->a2? m is not
     reachable from a1). Build a real violation: chain x->y->z, take {x,z}. *)
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add_with b Ir.Op.Add [ x ] in
  let z = B.add_with b Ir.Op.Add [ y ] in
  let chain = B.finish b in
  check bool "chain endpoints non-convex" false
    (Ir.Dfg.is_convex chain (Util.Bitset.of_list 3 [ x; z ]));
  check bool "full chain convex" true
    (Ir.Dfg.is_convex chain (Util.Bitset.of_list 3 [ x; y; z ]))

let test_connectivity () =
  let b = B.create () in
  let x = B.add b Ir.Op.Add in
  let y = B.add_with b Ir.Op.Add [ x ] in
  let z = B.add b Ir.Op.Mul in
  let dfg = B.finish b in
  check bool "connected pair" true
    (Ir.Dfg.is_connected dfg (Util.Bitset.of_list 3 [ x; y ]));
  check bool "disconnected pair" false
    (Ir.Dfg.is_connected dfg (Util.Bitset.of_list 3 [ x; z ]));
  check bool "empty connected" true
    (Ir.Dfg.is_connected dfg (Util.Bitset.create 3))

let test_critical_path () =
  let dfg, ld, a1, m, a2, _ = diamond () in
  ignore ld;
  let delay = function Ir.Op.Mul -> 5. | _ -> 2. in
  let set = Util.Bitset.of_list 5 [ a1; m; a2 ] in
  (* longest path: mul(5) -> add(2) = 7 *)
  check (Alcotest.float 1e-9) "critical path" 7.
    (Ir.Dfg.critical_path dfg ~delay set)

let test_reachability () =
  let dfg, ld, a1, m, a2, st = diamond () in
  let r = Ir.Dfg.reachable_from dfg ld in
  check bool "load reaches store" true (Util.Bitset.mem r st);
  check bool "load reaches join" true (Util.Bitset.mem r a2);
  let r2 = Ir.Dfg.reachable_from dfg a1 in
  check bool "a1 does not reach m" false (Util.Bitset.mem r2 m)

(* ------------------------------------------------------------------ *)
(* Property tests on random DAGs                                      *)
(* ------------------------------------------------------------------ *)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects all edges" ~count:200
    Test_helpers.arb_small_dfg
    (fun dfg ->
      let rank = Array.make (Ir.Dfg.node_count dfg) 0 in
      Array.iteri (fun pos v -> rank.(v) <- pos) (Ir.Dfg.topo_order dfg);
      List.for_all
        (fun v ->
          List.for_all (fun s -> rank.(v) < rank.(s)) (Ir.Dfg.succs dfg v))
        (Ir.Dfg.nodes dfg))

let prop_convex_superset_of_closure =
  QCheck.Test.make ~name:"the full node set is always convex" ~count:100
    Test_helpers.arb_small_dfg
    (fun dfg ->
      let n = Ir.Dfg.node_count dfg in
      Ir.Dfg.is_convex dfg (Util.Bitset.of_list n (Ir.Dfg.nodes dfg)))

let prop_singletons_convex =
  QCheck.Test.make ~name:"singletons are convex and connected" ~count:100
    Test_helpers.arb_small_dfg
    (fun dfg ->
      List.for_all
        (fun v ->
          let s = Util.Bitset.of_list (Ir.Dfg.node_count dfg) [ v ] in
          Ir.Dfg.is_convex dfg s && Ir.Dfg.is_connected dfg s)
        (Ir.Dfg.nodes dfg))

let prop_convexity_bruteforce =
  QCheck.Test.make
    ~name:"reachability-based convexity agrees with path search" ~count:300
    Test_helpers.arb_dfg_with_set
    (fun (dfg, set) ->
      (* brute force: DFS from each outside-successor of the set *)
      let outside_reenters () =
        let n = Ir.Dfg.node_count dfg in
        let visited = Array.make n false in
        let found = ref false in
        let rec dfs v =
          if not visited.(v) then begin
            visited.(v) <- true;
            if Util.Bitset.mem set v then found := true
            else List.iter dfs (Ir.Dfg.succs dfg v)
          end
        in
        Util.Bitset.iter
          (fun v ->
            List.iter
              (fun s -> if not (Util.Bitset.mem set s) then dfs s)
              (Ir.Dfg.succs dfg v))
          set;
        !found
      in
      Ir.Dfg.is_convex dfg set = not (outside_reenters ()))

let prop_io_nonnegative =
  QCheck.Test.make ~name:"I/O counts are non-negative and bounded" ~count:300
    Test_helpers.arb_dfg_with_set
    (fun (dfg, set) ->
      let i = Ir.Dfg.input_count dfg set and o = Ir.Dfg.output_count dfg set in
      i >= 0 && o >= 0 && o <= Util.Bitset.cardinal set)

(* ------------------------------------------------------------------ *)
(* Regions                                                            *)
(* ------------------------------------------------------------------ *)

let test_regions_split_by_load () =
  (* add -> load -> add : two regions of one node each *)
  let b = B.create () in
  let a = B.add b Ir.Op.Add in
  let ld = B.add_with b Ir.Op.Load [ a ] in
  let a2 = B.add_with b Ir.Op.Add [ ld ] in
  ignore a2;
  let dfg = B.finish b in
  let regions = Ir.Region.of_dfg dfg in
  check int "two regions" 2 (List.length regions);
  List.iter (fun r -> check int "region size" 1 r.Ir.Region.weight) regions

let test_regions_sorted_by_weight () =
  let b = B.create () in
  let a = B.add b Ir.Op.Add in
  let a1 = B.add_with b Ir.Op.Add [ a ] in
  ignore (B.add_with b Ir.Op.Store [ a1 ]);
  let x = B.add b Ir.Op.Mul in
  ignore x;
  let dfg = B.finish b in
  match Ir.Region.of_dfg dfg with
  | [ r1; r2 ] ->
    check int "big region first" 2 r1.Ir.Region.weight;
    check int "small region second" 1 r2.Ir.Region.weight
  | rs -> Alcotest.failf "expected 2 regions, got %d" (List.length rs)

let prop_regions_partition_valid_nodes =
  QCheck.Test.make ~name:"regions partition exactly the valid nodes" ~count:200
    Test_helpers.arb_small_dfg
    (fun dfg ->
      let n = Ir.Dfg.node_count dfg in
      let covered = Util.Bitset.create n in
      let disjoint = ref true in
      List.iter
        (fun r ->
          if Util.Bitset.intersects covered r.Ir.Region.members then disjoint := false;
          Util.Bitset.union_into covered r.Ir.Region.members)
        (Ir.Region.of_dfg dfg);
      let valid =
        Util.Bitset.of_list n (List.filter (Ir.Dfg.valid_node dfg) (Ir.Dfg.nodes dfg))
      in
      !disjoint && Util.Bitset.equal covered valid)

(* ------------------------------------------------------------------ *)
(* CFG / WCET                                                         *)
(* ------------------------------------------------------------------ *)

let tiny_block label cycles =
  (* [cycles] 1-cycle adds *)
  let b = B.create () in
  for _ = 1 to cycles do
    ignore (B.add b Ir.Op.Add)
  done;
  { Ir.Cfg.label; body = B.finish b }

let test_wcet_seq () =
  let cfg =
    { Ir.Cfg.name = "seq";
      code = Ir.Cfg.seq [ Ir.Cfg.Block (tiny_block "a" 3); Ir.Cfg.Block (tiny_block "b" 4) ] }
  in
  check int "wcet of seq" 7 (Ir.Cfg.wcet cfg)

let test_wcet_loop () =
  let cfg =
    { Ir.Cfg.name = "loop"; code = Ir.Cfg.loop 10 (Ir.Cfg.Block (tiny_block "body" 5)) }
  in
  check int "wcet of loop" 50 (Ir.Cfg.wcet cfg)

let test_wcet_if_takes_max () =
  let cfg =
    { Ir.Cfg.name = "if";
      code =
        Ir.Cfg.If
          (tiny_block "cond" 1, Ir.Cfg.Block (tiny_block "then" 10),
           Ir.Cfg.Block (tiny_block "else" 3)) }
  in
  check int "wcet of if" 11 (Ir.Cfg.wcet cfg)

let test_wcet_with_override () =
  let blk = tiny_block "body" 5 in
  let cfg = { Ir.Cfg.name = "loop"; code = Ir.Cfg.loop 10 (Ir.Cfg.Block blk) } in
  let cost b = if b == blk then 2 else Ir.Cfg.block_cycles b in
  check int "accelerated wcet" 20 (Ir.Cfg.wcet_with cfg ~cost)

let test_wcet_frequencies () =
  let hot = tiny_block "hot" 5 and cold = tiny_block "cold" 2 in
  let cfg =
    { Ir.Cfg.name = "f";
      code =
        Ir.Cfg.seq
          [ Ir.Cfg.loop 4 (Ir.Cfg.If (tiny_block "c" 1, Ir.Cfg.Block hot, Ir.Cfg.Block cold)) ] }
  in
  let freqs = Ir.Cfg.wcet_frequencies cfg in
  check int "hot on wcet path" 4 (List.assq hot freqs);
  check bool "cold not on wcet path" true (not (List.mem_assq cold freqs))

let test_profile_splits_branches () =
  let hot = tiny_block "hot" 5 and cold = tiny_block "cold" 2 in
  let cfg =
    { Ir.Cfg.name = "f";
      code = Ir.Cfg.loop 8 (Ir.Cfg.If (tiny_block "c" 1, Ir.Cfg.Block hot, Ir.Cfg.Block cold)) }
  in
  let prof = Ir.Cfg.profile cfg in
  check (Alcotest.float 1e-9) "then freq" 4. (List.assq hot prof);
  check (Alcotest.float 1e-9) "else freq" 4. (List.assq cold prof)

let test_block_size_stats () =
  let cfg =
    { Ir.Cfg.name = "s";
      code = Ir.Cfg.seq [ Ir.Cfg.Block (tiny_block "a" 2); Ir.Cfg.Block (tiny_block "b" 6) ] }
  in
  check int "max bb" 6 (Ir.Cfg.max_block_size cfg);
  check (Alcotest.float 1e-9) "avg bb" 4. (Ir.Cfg.avg_block_size cfg)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_pair_counts () =
  let t = Ir.Trace.of_list [ "A"; "B"; "C"; "B"; "C"; "B"; "A" ] in
  let counts = Ir.Trace.pair_counts ~keep:(fun _ -> true) t in
  check int "AB pairs" 2 (List.assoc ("A", "B") counts);
  check int "BC pairs" 4 (List.assoc ("B", "C") counts);
  check bool "no direct AC" true (not (List.mem_assoc ("A", "C") counts))

let test_trace_pair_counts_filters_software () =
  (* Dropping B exposes A-C adjacency — the RCG construction rule. *)
  let t = Ir.Trace.of_list [ "A"; "B"; "C"; "B"; "C"; "B"; "A" ] in
  let counts = Ir.Trace.pair_counts ~keep:(fun l -> l <> "B") t in
  check int "AC pairs after filtering" 2 (List.assoc ("A", "C") counts)

let test_trace_reconfigurations () =
  let t = Ir.Trace.of_list [ "A"; "B"; "C"; "B"; "C"; "B"; "A" ] in
  (* A in config 0, B and C in config 1: switches A->B and B->A = 2. *)
  let config_of = function
    | "A" -> Some 0
    | "B" | "C" -> Some 1
    | _ -> None
  in
  check int "two reconfigurations" 2 (Ir.Trace.reconfigurations ~config_of t);
  (* every loop its own configuration *)
  let each = function "A" -> Some 0 | "B" -> Some 1 | "C" -> Some 2 | _ -> None in
  check int "all switches" 6 (Ir.Trace.reconfigurations ~config_of:each t);
  (* B in software: A..C..C..A -> A->C, C->A = 2 switches *)
  let sw_b = function "A" -> Some 0 | "C" -> Some 2 | _ -> None in
  check int "software loop skipped" 2 (Ir.Trace.reconfigurations ~config_of:sw_b t)

let test_trace_repeat () =
  let t = Ir.Trace.repeat [ "x"; "y" ] 3 in
  check Alcotest.(list string) "repeat" [ "x"; "y"; "x"; "y"; "x"; "y" ]
    (Ir.Trace.to_list t)

let prop_reconfig_le_trace_length =
  QCheck.Test.make ~name:"reconfigurations bounded by trace length" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_bound 4))
    (fun loops ->
      let trace = Ir.Trace.of_list (List.map string_of_int loops) in
      let config_of l = Some (int_of_string l mod 2) in
      Ir.Trace.reconfigurations ~config_of trace <= Ir.Trace.length trace)

(* ------------------------------------------------------------------ *)
(* Dot export                                                         *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_dfg () =
  let dfg, _, a1, m, _, _ = diamond () in
  let dot = Ir.Dot.dfg dfg in
  check bool "digraph" true (contains dot "digraph dfg");
  check bool "has load node" true (contains dot "0: load");
  check bool "has edge" true (contains dot "n0 -> n1");
  let highlighted =
    Ir.Dot.dfg ~highlight:[ (Util.Bitset.of_list 5 [ a1; m ], "CI0") ] dfg
  in
  check bool "has cluster" true (contains highlighted "subgraph cluster_0");
  check bool "cluster label" true (contains highlighted "label=\"CI0\"")

let test_dot_cfg () =
  let cfg =
    { Ir.Cfg.name = "t";
      code =
        Ir.Cfg.seq
          [ Ir.Cfg.loop 4 (Ir.Cfg.Block (tiny_block "body" 3));
            Ir.Cfg.Block (tiny_block "tail" 2) ] }
  in
  let dot = Ir.Dot.cfg cfg in
  check bool "digraph" true (contains dot "digraph cfg");
  check bool "loop backedge" true (contains dot "x4");
  check bool "labels blocks" true (contains dot "body")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ir"
    [ ( "dfg-builder",
        [ Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "rejects backward edge" `Quick test_builder_rejects_backward_edge;
          Alcotest.test_case "rejects arity overflow" `Quick test_builder_rejects_arity_overflow;
          Alcotest.test_case "sw cycles" `Quick test_sw_cycles ] );
      ( "dfg-sets",
        [ Alcotest.test_case "io counting" `Quick test_io_counting;
          Alcotest.test_case "implicit live-ins" `Quick test_implicit_live_ins_counted;
          Alcotest.test_case "convexity" `Quick test_convexity;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "reachability" `Quick test_reachability;
          qt prop_topo_respects_edges;
          qt prop_convex_superset_of_closure;
          qt prop_singletons_convex;
          qt prop_convexity_bruteforce;
          qt prop_io_nonnegative ] );
      ( "regions",
        [ Alcotest.test_case "split by load" `Quick test_regions_split_by_load;
          Alcotest.test_case "sorted by weight" `Quick test_regions_sorted_by_weight;
          qt prop_regions_partition_valid_nodes ] );
      ( "cfg-wcet",
        [ Alcotest.test_case "seq" `Quick test_wcet_seq;
          Alcotest.test_case "loop" `Quick test_wcet_loop;
          Alcotest.test_case "if takes max" `Quick test_wcet_if_takes_max;
          Alcotest.test_case "cost override" `Quick test_wcet_with_override;
          Alcotest.test_case "wcet frequencies" `Quick test_wcet_frequencies;
          Alcotest.test_case "profile splits branches" `Quick test_profile_splits_branches;
          Alcotest.test_case "block size stats" `Quick test_block_size_stats ] );
      ( "dot",
        [ Alcotest.test_case "dfg export" `Quick test_dot_dfg;
          Alcotest.test_case "cfg export" `Quick test_dot_cfg ] );
      ( "trace",
        [ Alcotest.test_case "pair counts" `Quick test_trace_pair_counts;
          Alcotest.test_case "software filtering" `Quick test_trace_pair_counts_filters_software;
          Alcotest.test_case "reconfiguration replay" `Quick test_trace_reconfigurations;
          Alcotest.test_case "repeat" `Quick test_trace_repeat;
          qt prop_reconfig_le_trace_length ] ) ]
