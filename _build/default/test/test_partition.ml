let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Graph                                                              *)
(* ------------------------------------------------------------------ *)

let triangle () =
  Partition.Graph.make ~vertex_weights:[| 1; 2; 3 |]
    ~edges:[ (0, 1, 5); (1, 2, 7); (0, 2, 1) ]

let test_graph_basics () =
  let g = triangle () in
  check int "vertices" 3 (Partition.Graph.vertex_count g);
  check int "weight" 2 (Partition.Graph.vertex_weight g 1);
  check int "total weight" 6 (Partition.Graph.total_weight g);
  check int "edge weight" 5 (Partition.Graph.edge_weight g 0 1);
  check int "missing edge" 0 (Partition.Graph.edge_weight g 0 0);
  check int "degree" 2 (List.length (Partition.Graph.neighbors g 1))

let test_graph_merges_parallel_edges () =
  let g =
    Partition.Graph.make ~vertex_weights:[| 1; 1 |]
      ~edges:[ (0, 1, 3); (1, 0, 4); (0, 0, 100) ]
  in
  check int "merged weight" 7 (Partition.Graph.edge_weight g 0 1);
  check int "self loop dropped" 1 (List.length (Partition.Graph.neighbors g 0))

let test_edge_cut () =
  let g = triangle () in
  check int "all together" 0 (Partition.Graph.edge_cut g [| 0; 0; 0 |]);
  check int "cut 0|12" 6 (Partition.Graph.edge_cut g [| 0; 1; 1 |]);
  check int "cut 01|2" 8 (Partition.Graph.edge_cut g [| 0; 0; 1 |])

let test_coarsen () =
  let g = triangle () in
  (* match 0 with 1 *)
  let coarser, coarse_of = Partition.Graph.coarsen g ~matching:[| 1; 0; 2 |] in
  check int "two coarse vertices" 2 (Partition.Graph.vertex_count coarser);
  check int "merged weight" 3
    (Partition.Graph.vertex_weight coarser coarse_of.(0));
  check int "combined edge" 8
    (Partition.Graph.edge_weight coarser coarse_of.(0) coarse_of.(2))

(* ------------------------------------------------------------------ *)
(* K-way partitioning                                                 *)
(* ------------------------------------------------------------------ *)

let random_graph seed n density =
  let prng = Util.Prng.create seed in
  let vertex_weights = Array.init n (fun _ -> Util.Prng.in_range prng 1 5) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Util.Prng.float prng 1.0 < density then
        edges := (u, v, Util.Prng.in_range prng 1 10) :: !edges
    done
  done;
  (* ensure connectivity with a path *)
  for u = 0 to n - 2 do
    edges := (u, u + 1, 1) :: !edges
  done;
  Partition.Graph.make ~vertex_weights ~edges:!edges

let test_partition_two_cliques () =
  (* two 4-cliques joined by one light edge: the obvious bisection *)
  let clique base =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if i < j then Some (base + i, base + j, 10) else None) [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let g =
    Partition.Graph.make ~vertex_weights:(Array.make 8 1)
      ~edges:((4, 3, 1) :: (clique 0 @ clique 4))
  in
  let r = Partition.Kway.partition ~k:2 g in
  check int "optimal cut" 1 r.Partition.Kway.cut;
  (* each clique in one part *)
  let a = r.Partition.Kway.assignment in
  check bool "clique 1 together" true (a.(0) = a.(1) && a.(1) = a.(2) && a.(2) = a.(3));
  check bool "clique 2 together" true (a.(4) = a.(5) && a.(5) = a.(6) && a.(6) = a.(7))

let test_partition_k1 () =
  let g = triangle () in
  let r = Partition.Kway.partition ~k:1 g in
  check int "no cut" 0 r.Partition.Kway.cut;
  check bool "single part" true (Array.for_all (fun p -> p = 0) r.Partition.Kway.assignment)

let test_partition_k_equals_n () =
  let g = triangle () in
  let r = Partition.Kway.partition ~k:3 g in
  let parts = Array.to_list r.Partition.Kway.assignment |> List.sort_uniq compare in
  check int "all parts used" 3 (List.length parts)

let test_partition_rejects_bad_k () =
  let g = triangle () in
  Alcotest.check_raises "k=0" (Invalid_argument "Kway.partition: k must be >= 1")
    (fun () -> ignore (Partition.Kway.partition ~k:0 g));
  Alcotest.check_raises "k>n" (Invalid_argument "Kway.partition: k exceeds vertex count")
    (fun () -> ignore (Partition.Kway.partition ~k:4 g))

let prop_partition_valid =
  QCheck.Test.make ~name:"partitions are total, in-range, non-empty" ~count:80
    QCheck.(triple (int_range 0 1000) (int_range 2 40) (int_range 2 6))
    (fun (seed, n, k) ->
      QCheck.assume (k <= n);
      let g = random_graph seed n 0.15 in
      let r = Partition.Kway.partition ~k g in
      let counts = Array.make k 0 in
      Array.iter
        (fun p ->
          QCheck.assume (p >= 0 && p < k);
          counts.(p) <- counts.(p) + 1)
        r.Partition.Kway.assignment;
      Array.for_all (fun c -> c > 0) counts
      && r.Partition.Kway.cut = Partition.Graph.edge_cut g r.Partition.Kway.assignment)

let prop_refine_never_worsens =
  QCheck.Test.make ~name:"refinement never increases the cut" ~count:80
    QCheck.(triple (int_range 0 1000) (int_range 4 30) (int_range 2 4))
    (fun (seed, n, k) ->
      QCheck.assume (k <= n);
      let g = random_graph seed n 0.2 in
      let prng = Util.Prng.create (seed + 1) in
      let assignment =
        Array.init n (fun _ -> Util.Prng.int prng k)
      in
      (* make every part non-empty *)
      for p = 0 to k - 1 do
        assignment.(p mod n) <- p
      done;
      let before = Partition.Graph.edge_cut g assignment in
      ignore (Partition.Kway.refine ~k g assignment);
      Partition.Graph.edge_cut g assignment <= before)

let prop_partition_deterministic =
  QCheck.Test.make ~name:"same seed gives the same partition" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 4 25))
    (fun (seed, n) ->
      let g = random_graph seed n 0.2 in
      let a = Partition.Kway.partition ~seed:7 ~k:2 g in
      let b = Partition.Kway.partition ~seed:7 ~k:2 g in
      a.Partition.Kway.assignment = b.Partition.Kway.assignment)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "partition"
    [ ( "graph",
        [ Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "parallel edges merged" `Quick test_graph_merges_parallel_edges;
          Alcotest.test_case "edge cut" `Quick test_edge_cut;
          Alcotest.test_case "coarsen" `Quick test_coarsen ] );
      ( "kway",
        [ Alcotest.test_case "two cliques" `Quick test_partition_two_cliques;
          Alcotest.test_case "k=1" `Quick test_partition_k1;
          Alcotest.test_case "k=n" `Quick test_partition_k_equals_n;
          Alcotest.test_case "rejects bad k" `Quick test_partition_rejects_bad_k;
          qt prop_partition_valid;
          qt prop_refine_never_worsens;
          qt prop_partition_deterministic ] ) ]
