let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let pt cost value = { Util.Pareto_front.cost; value }

let entity options =
  Array.of_list (List.map (fun (d, c) -> { Pareto.Mo_select.delta = d; cost = c }) options)

(* ------------------------------------------------------------------ *)
(* The running example of Figure 4.1 (exact published numbers)         *)
(* ------------------------------------------------------------------ *)

(* T1: E=10, P=20, CIs (δ=2,a=30), (δ=3,a=60). *)
let t1_entities = [ entity [ (2., 30) ]; entity [ (3., 60) ] ]

(* T2: E=15, P=20, CIs (δ=1,a=10), (δ=1,a=20), (δ=3,a=50). *)
let t2_entities = [ entity [ (1., 10) ]; entity [ (1., 20) ]; entity [ (3., 50) ] ]

let test_fig41_t1_workload_front () =
  let front = Pareto.Mo_select.exact_front ~base:10. t1_entities in
  check
    (Alcotest.list (Alcotest.pair int (Alcotest.float 1e-9)))
    "T1 front"
    [ (0, 10.); (30, 8.); (60, 7.); (90, 5.) ]
    (List.map (fun p -> (p.Util.Pareto_front.cost, p.Util.Pareto_front.value)) front)

let test_fig41_t2_workload_front () =
  let front = Pareto.Mo_select.exact_front ~base:15. t2_entities in
  check
    (Alcotest.list (Alcotest.pair int (Alcotest.float 1e-9)))
    "T2 front"
    [ (0, 15.); (10, 14.); (30, 13.); (50, 12.); (60, 11.); (80, 10.) ]
    (List.map (fun p -> (p.Util.Pareto_front.cost, p.Util.Pareto_front.value)) front)

let test_fig41_inter_task_front () =
  let t1 =
    { Pareto.Stages.Inter.period = 20; workload = 10;
      front = [ pt 0 10.; pt 30 8.; pt 60 7.; pt 90 5. ] }
  in
  let t2 =
    { Pareto.Stages.Inter.period = 20; workload = 15;
      front = [ pt 0 15.; pt 10 14.; pt 30 13.; pt 50 12.; pt 60 11.; pt 80 10. ] }
  in
  check (Alcotest.float 1e-9) "base utilization 5/4" 1.25
    (Pareto.Stages.Inter.base_utilization [ t1; t2 ]);
  let front = Pareto.Stages.Inter.exact [ t1; t2 ] in
  (* The thesis's published utilization-area trade-off points. *)
  let expect =
    [ (0, 1.25); (10, 1.2); (30, 1.15); (40, 1.1); (60, 1.05); (80, 1.0);
      (90, 0.95); (110, 0.9); (140, 0.85); (150, 0.8); (170, 0.75) ]
  in
  List.iter
    (fun (cost, u) ->
      check bool
        (Printf.sprintf "front contains (%d, %.2f)" cost u)
        true
        (List.exists
           (fun p ->
             p.Util.Pareto_front.cost = cost
             && Float.abs (p.Util.Pareto_front.value -. u) < 1e-9)
           front))
    expect;
  (* the schedulable region starts at area 80, matching Figure 4.1 *)
  let schedulable = List.filter (fun p -> p.Util.Pareto_front.value <= 1.) front in
  check int "six schedulable trade-offs" 6 (List.length schedulable);
  check int "cheapest schedulable solution costs 80"
    80 (List.hd schedulable).Util.Pareto_front.cost

(* ------------------------------------------------------------------ *)
(* GAP subroutine                                                     *)
(* ------------------------------------------------------------------ *)

let test_gap_returns_dominating () =
  (* Bound (60, 8.) is achievable for T1: (30, 8.) dominates it. *)
  match
    Pareto.Mo_select.gap ~eps:0.5 ~cost_bound:60 ~value_bound:8. ~base:10. t1_entities
  with
  | Some p ->
    check bool "dominates the query" true
      (p.Util.Pareto_front.cost <= 60 && p.Util.Pareto_front.value <= 8.)
  | None -> Alcotest.fail "expected a solution"

let test_gap_none_guarantee () =
  (* value 4 is unreachable (min workload is 5): must answer None. *)
  check bool "unreachable value" true
    (Pareto.Mo_select.gap ~eps:0.5 ~cost_bound:1000 ~value_bound:4. ~base:10.
       t1_entities
     = None)

let prop_gap_sound =
  (* When GAP returns a point, the point satisfies the bounds. *)
  QCheck.Test.make ~name:"gap solutions satisfy their bounds" ~count:200
    QCheck.(triple (int_range 1 200) (float_range 0. 15.) (float_range 0.1 3.))
    (fun (cost_bound, value_bound, eps) ->
      match
        Pareto.Mo_select.gap ~eps ~cost_bound ~value_bound ~base:15. t2_entities
      with
      | None -> true
      | Some p ->
        p.Util.Pareto_front.cost <= cost_bound
        && p.Util.Pareto_front.value <= value_bound +. 1e-6)

let prop_gap_complete_with_slack =
  (* If an exact solution exists at (c/(1+eps), w), GAP at (c, w) must
     not answer None — the thesis's property (b). *)
  QCheck.Test.make ~name:"gap never misses solutions below the slack line"
    ~count:200
    QCheck.(pair (int_range 1 250) (float_range 0.1 3.))
    (fun (cost_bound, eps) ->
      let exact = Pareto.Mo_select.exact_front ~base:15. t2_entities in
      let reachable =
        List.filter
          (fun p ->
            float_of_int p.Util.Pareto_front.cost
            <= float_of_int cost_bound /. (1. +. eps))
          exact
      in
      match reachable with
      | [] -> true
      | _ ->
        let w = List.fold_left (fun acc p -> Float.min acc p.Util.Pareto_front.value) infinity reachable in
        Pareto.Mo_select.gap ~eps ~cost_bound ~value_bound:w ~base:15. t2_entities
        <> None)

(* ------------------------------------------------------------------ *)
(* FPTAS                                                              *)
(* ------------------------------------------------------------------ *)

let random_entities seed n =
  let prng = Util.Prng.create seed in
  List.init n (fun _ ->
      entity
        [ (float_of_int (Util.Prng.in_range prng 1 20),
           Util.Prng.in_range prng 1 60) ])

let prop_approx_eps_covers_exact =
  QCheck.Test.make ~name:"approximate front eps-covers the exact front"
    ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, n) ->
      let entities = random_entities seed n in
      let base = 500. in
      let exact = Pareto.Mo_select.exact_front ~base entities in
      List.for_all
        (fun eps ->
          let approx = Pareto.Mo_select.approx_front ~eps ~base entities in
          Util.Pareto_front.eps_covers ~eps ~exact approx)
        [ 0.21; 0.69; 3.0 ])

let prop_approx_is_front =
  QCheck.Test.make ~name:"approximate curves are valid fronts" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 1 12))
    (fun (seed, n) ->
      let entities = random_entities seed n in
      let approx = Pareto.Mo_select.approx_front ~eps:0.44 ~base:500. entities in
      Util.Pareto_front.is_front approx)

let prop_approx_no_larger_than_exact =
  QCheck.Test.make ~name:"approximate front never has more points than exact"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, n) ->
      let entities = random_entities seed n in
      let exact = Pareto.Mo_select.exact_front ~base:500. entities in
      let approx = Pareto.Mo_select.approx_front ~eps:3.0 ~base:500. entities in
      List.length approx <= List.length exact)

let prop_approx_points_feasible =
  QCheck.Test.make ~name:"every approximate point is a real solution"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 8))
    (fun (seed, n) ->
      let entities = random_entities seed n in
      let base = 500. in
      let approx = Pareto.Mo_select.approx_front ~eps:0.69 ~base entities in
      (* a point is feasible iff the exact optimum at its cost is <= value *)
      List.for_all
        (fun p ->
          Pareto.Mo_select.solve_at_cost ~cost:p.Util.Pareto_front.cost ~base entities
          <= p.Util.Pareto_front.value +. 1e-6)
        approx)

let test_solve_at_cost () =
  check (Alcotest.float 1e-9) "T1 at 60" 7.
    (Pareto.Mo_select.solve_at_cost ~cost:60 ~base:10. t1_entities);
  check (Alcotest.float 1e-9) "T1 at 90" 5.
    (Pareto.Mo_select.solve_at_cost ~cost:90 ~base:10. t1_entities);
  check (Alcotest.float 1e-9) "T1 at 0" 10.
    (Pareto.Mo_select.solve_at_cost ~cost:0 ~base:10. t1_entities)

(* ------------------------------------------------------------------ *)
(* End-to-end intra stage on a kernel                                  *)
(* ------------------------------------------------------------------ *)

let test_intra_stage_on_kernel () =
  let workload, exact = Pareto.Stages.Intra.of_task (Kernels.find "lms") in
  check bool "non-trivial front" true (List.length exact > 1);
  check bool "front starts at software point" true
    (match exact with
     | p :: _ -> p.Util.Pareto_front.cost = 0 && p.Util.Pareto_front.value = float_of_int workload
     | [] -> false);
  let _, approx = Pareto.Stages.Intra.of_task ~eps:0.69 (Kernels.find "lms") in
  check bool "approx covers exact" true
    (Util.Pareto_front.eps_covers ~eps:0.69 ~exact approx)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "pareto"
    [ ( "fig4.1",
        [ Alcotest.test_case "T1 workload-area front" `Quick test_fig41_t1_workload_front;
          Alcotest.test_case "T2 workload-area front" `Quick test_fig41_t2_workload_front;
          Alcotest.test_case "inter-task utilization-area front" `Quick
            test_fig41_inter_task_front ] );
      ( "gap",
        [ Alcotest.test_case "returns dominating solution" `Quick test_gap_returns_dominating;
          Alcotest.test_case "None on unreachable value" `Quick test_gap_none_guarantee;
          qt prop_gap_sound;
          qt prop_gap_complete_with_slack ] );
      ( "fptas",
        [ qt prop_approx_eps_covers_exact;
          qt prop_approx_is_front;
          qt prop_approx_no_larger_than_exact;
          qt prop_approx_points_feasible;
          Alcotest.test_case "solve at cost" `Quick test_solve_at_cost ] );
      ( "stages",
        [ Alcotest.test_case "intra stage on lms" `Quick test_intra_stage_on_kernel ] ) ]
