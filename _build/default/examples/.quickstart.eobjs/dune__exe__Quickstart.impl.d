examples/quickstart.ml: Core Format Ir Isa Ise List Rt
