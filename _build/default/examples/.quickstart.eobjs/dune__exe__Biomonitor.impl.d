examples/biomonitor.ml: Array Float Format Ir Isa Ise List Util
