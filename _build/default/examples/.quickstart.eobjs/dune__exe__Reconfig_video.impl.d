examples/reconfig_video.ml: Array Format Ir Isa Ise Kernels List Reconfig Util
