examples/biomonitor.mli:
