examples/reconfig_video.mli:
