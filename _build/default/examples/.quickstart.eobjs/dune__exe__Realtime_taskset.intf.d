examples/realtime_taskset.mli:
