examples/quickstart.mli:
