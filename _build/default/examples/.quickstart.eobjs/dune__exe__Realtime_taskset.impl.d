examples/realtime_taskset.ml: Core Format Isa Ise Kernels List Printf Rt String Util
