(* Quickstart: the full pipeline on a hand-built kernel.

   1. Describe a basic block as a data-flow graph.
   2. Identify legal custom-instruction candidates.
   3. Build the task's configuration curve (area vs cycles).
   4. Select configurations for a two-task real-time set under EDF.

   Run with: dune exec examples/quickstart.exe *)

module B = Ir.Dfg.Builder

(* A tiny filter kernel: acc' = clamp(acc + (x * c1) + (y * c2)) *)
let filter_block () =
  let b = B.create () in
  let x = B.add b Ir.Op.Load in
  let y = B.add b Ir.Op.Load in
  let c1 = B.add b Ir.Op.Const in
  let c2 = B.add b Ir.Op.Const in
  let m1 = B.add_with b Ir.Op.Mul [ x; c1 ] in
  let m2 = B.add_with b Ir.Op.Mul [ y; c2 ] in
  let sum = B.add_with b Ir.Op.Add [ m1; m2 ] in
  let acc = B.add_with b Ir.Op.Add [ sum ] (* + live-in accumulator *) in
  let shifted = B.add_with b Ir.Op.Shr [ acc ] in
  let limit = B.add b Ir.Op.Const in
  let over = B.add_with b Ir.Op.Cmp [ shifted; limit ] in
  let clamped = B.add_with b Ir.Op.Select [ over; limit; shifted ] in
  ignore (B.add_with b Ir.Op.Store [ clamped ]);
  B.finish b

let () =
  let fmt = Format.std_formatter in
  let dfg = filter_block () in
  Format.fprintf fmt "1. kernel block: %a@." Ir.Dfg.pp_stats dfg;

  (* Identification: all legal candidates under the 4-in/2-out ports. *)
  let candidates = Ise.Enumerate.connected dfg in
  Format.fprintf fmt "2. %d legal custom-instruction candidates;@."
    (List.length candidates);
  let best =
    List.fold_left
      (fun acc ci -> if Isa.Custom_inst.gain ci > Isa.Custom_inst.gain acc then ci else acc)
      (List.hd candidates) candidates
  in
  Format.fprintf fmt "   best single candidate: %a@." Isa.Custom_inst.pp best;

  (* A task that runs the filter 10_000 times per job. *)
  let task_cfg =
    { Ir.Cfg.name = "filter";
      code = Ir.Cfg.loop 10_000 (Ir.Cfg.block "body" dfg) }
  in
  let curve = Ise.Curve.generate task_cfg in
  Format.fprintf fmt "3. configuration curve: %a@." Isa.Config.pp curve;

  (* Two periodic tasks sharing the processor; software-only they
     overload it (U > 1), customization makes them schedulable. *)
  let filter_task = Rt.Task.make ~name:"filter" ~period:200_000 curve in
  let other_task =
    Rt.Task.make ~name:"control" ~period:400_000
      (Isa.Config.of_points ~base_cycles:200_000
         [ { Isa.Config.area = 120; cycles = 150_000 } ])
  in
  let tasks = [ filter_task; other_task ] in
  Format.fprintf fmt "4. software-only utilization: %.3f@."
    (Rt.Task.set_utilization tasks);
  let budget = 600 (* deci-adders = 60 adders *) in
  let sel = Core.Edf_select.run ~budget tasks in
  Format.fprintf fmt "   optimal selection under %.0f adders:@.%a@."
    (Isa.Hw_model.adders_of_units budget)
    Core.Selection.pp sel;
  if sel.Core.Selection.utilization <= 1. then
    Format.fprintf fmt "   the task set is now EDF-schedulable.@."
