(* Processor customization for wearable bio-monitoring (the thesis's
   Chapter 8 case study).

   Two applications run on one battery-powered node:
   - continuous vital-sign monitoring: ECG/PPG filtering and a
     pulse-transit-time estimate;
   - fall detection: accelerometer magnitude + posture decision.

   Both are first converted to fixed-point arithmetic (no FPU on the
   node) — demonstrated here with an actually-executing Q16.16 pipeline —
   and then customized.  The example reports the per-application speedup
   (Figure 8.4) and the battery-life implication at fixed duty cycle.

   Run with: dune exec examples/biomonitor.exe *)

module B = Ir.Dfg.Builder
module F = Util.Fixed

(* ------------------------------------------------------------------ *)
(* Part 1: the fixed-point conversion actually runs.                   *)
(* ------------------------------------------------------------------ *)

(* 3-tap low-pass filter over a synthetic ECG-like signal. *)
let lowpass signal =
  let c0 = F.of_float 0.25 and c1 = F.of_float 0.5 and c2 = F.of_float 0.25 in
  Array.mapi
    (fun i _ ->
      let tap k = if i - k >= 0 then signal.(i - k) else F.zero in
      F.add (F.mul c0 (tap 0)) (F.add (F.mul c1 (tap 1)) (F.mul c2 (tap 2))))
    signal

(* acceleration magnitude: sqrt(x^2 + y^2 + z^2) *)
let magnitude x y z =
  F.sqrt (F.add (F.mul x x) (F.add (F.mul y y) (F.mul z z)))

let demo_fixed_point fmt =
  let samples =
    Array.init 16 (fun i ->
        F.of_float (Float.sin (float_of_int i /. 3.) +. 0.1))
  in
  let filtered = lowpass samples in
  Format.fprintf fmt "fixed-point ECG filter (first 6 samples):@.";
  for i = 0 to 5 do
    Format.fprintf fmt "  in % .4f  out % .4f@."
      (F.to_float samples.(i)) (F.to_float filtered.(i))
  done;
  let g = magnitude (F.of_float 0.3) (F.of_float (-0.2)) (F.of_float 0.93) in
  Format.fprintf fmt "resting |a| = %.4f g (threshold for a fall: 2.5 g)@.@."
    (F.to_float g)

(* ------------------------------------------------------------------ *)
(* Part 2: the kernels as DFGs, customized.                            *)
(* ------------------------------------------------------------------ *)

(* Fixed-point FIR tap: two shifts+adds per coefficient multiply. *)
let fir_block taps =
  let b = B.create () in
  let acc0 = B.add b Ir.Op.Load in
  let acc = ref acc0 in
  for _ = 1 to taps do
    let sample = B.add b Ir.Op.Load in
    let coeff = B.add b Ir.Op.Const in
    let product = B.add_with b Ir.Op.Mul [ sample; coeff ] in
    let scaled = B.add_with b Ir.Op.Shr [ product ] in
    acc := B.add_with b Ir.Op.Add [ !acc; scaled ]
  done;
  ignore (B.add_with b Ir.Op.Store [ !acc ]);
  B.finish b

(* Peak detection: derivative, threshold compare, select. *)
let peak_block () =
  let b = B.create () in
  let x0 = B.add b Ir.Op.Load in
  let x1 = B.add b Ir.Op.Load in
  let dx = B.add_with b Ir.Op.Sub [ x1; x0 ] in
  let thresh = B.add b Ir.Op.Const in
  let above = B.add_with b Ir.Op.Cmp [ dx; thresh ] in
  let hold = B.add b Ir.Op.Load in
  let next = B.add_with b Ir.Op.Select [ above; x1; hold ] in
  ignore (B.add_with b Ir.Op.Store [ next ]);
  B.finish b

(* Magnitude-squared + decision tree for fall detection (integer Newton
   sqrt runs as its own loop). *)
let magnitude_block () =
  let b = B.create () in
  let x = B.add b Ir.Op.Load in
  let y = B.add b Ir.Op.Load in
  let z = B.add b Ir.Op.Load in
  let xx = B.add_with b Ir.Op.Mul [ x; x ] in
  let yy = B.add_with b Ir.Op.Mul [ y; y ] in
  let zz = B.add_with b Ir.Op.Mul [ z; z ] in
  let s1 = B.add_with b Ir.Op.Add [ xx; yy ] in
  let s2 = B.add_with b Ir.Op.Add [ s1; zz ] in
  let scaled = B.add_with b Ir.Op.Shr [ s2 ] in
  let thresh = B.add b Ir.Op.Const in
  let falling = B.add_with b Ir.Op.Cmp [ scaled; thresh ] in
  ignore (B.add_with b Ir.Op.Store [ falling ]);
  B.finish b

let newton_block () =
  let b = B.create () in
  let guess = B.add b Ir.Op.Load in
  let target = B.add b Ir.Op.Load in
  let q = B.add_with b Ir.Op.Div [ target; guess ] in
  let sum = B.add_with b Ir.Op.Add [ guess; q ] in
  let next = B.add_with b Ir.Op.Shr [ sum ] in
  ignore (B.add_with b Ir.Op.Store [ next ]);
  B.finish b

let vital_signs_app () =
  { Ir.Cfg.name = "vital-signs";
    code =
      Ir.Cfg.seq
        [ Ir.Cfg.loop 256 (Ir.Cfg.block "ecg_fir" (fir_block 8));
          Ir.Cfg.loop 256 (Ir.Cfg.block "ppg_fir" (fir_block 6));
          Ir.Cfg.loop 256 (Ir.Cfg.block "peak" (peak_block ()));
          Ir.Cfg.loop 4 (Ir.Cfg.block "ptt" (fir_block 4)) ] }

let fall_detection_app () =
  { Ir.Cfg.name = "fall-detection";
    code =
      Ir.Cfg.seq
        [ Ir.Cfg.loop 128 (Ir.Cfg.block "magnitude" (magnitude_block ()));
          Ir.Cfg.loop 128 (Ir.Cfg.loop 8 (Ir.Cfg.block "newton" (newton_block ())));
          Ir.Cfg.loop 128 (Ir.Cfg.block "posture" (peak_block ())) ] }

let () =
  let fmt = Format.std_formatter in
  demo_fixed_point fmt;
  Format.fprintf fmt "customization speedup (Figure 8.4):@.";
  List.iter
    (fun app ->
      let curve = Ise.Curve.generate app in
      let base = Isa.Config.base_cycles curve in
      Format.fprintf fmt "  %-16s" app.Ir.Cfg.name;
      List.iter
        (fun budget_adders ->
          let p = Isa.Config.best_at curve (budget_adders * Isa.Hw_model.area_units_per_adder) in
          Format.fprintf fmt "  %3d adders: %.2fx" budget_adders
            (float_of_int base /. float_of_int p.cycles))
        [ 10; 25; 50; 100 ];
      Format.fprintf fmt "@.")
    [ vital_signs_app (); fall_detection_app () ];
  Format.fprintf fmt
    "@.at a fixed sensing duty cycle, cycle reductions translate into\n\
     proportionally longer battery life for the wearable node.@."
