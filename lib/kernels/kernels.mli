(** Benchmark kernel models.

    Structured-program models of the MiBench / MediaBench / WCET-suite
    kernels used across the thesis's experiments (Tables 3.1, 4.1, 5.1,
    5.2).  Block sizes, operator mixes and loop bounds are calibrated to
    the characteristics the thesis reports in Table 5.1 (WCET cycles,
    maximum and average basic-block size).  Construction is fully
    deterministic. *)

module Blockgen = Blockgen
(** Re-exported so library users can build custom blocks. *)

val adpcm_enc : unit -> Ir.Cfg.t
val adpcm_dec : unit -> Ir.Cfg.t
val sha : unit -> Ir.Cfg.t
val jfdctint : unit -> Ir.Cfg.t
val g721_enc : unit -> Ir.Cfg.t
val g721_dec : unit -> Ir.Cfg.t
val lms : unit -> Ir.Cfg.t
val ndes : unit -> Ir.Cfg.t
val rijndael : unit -> Ir.Cfg.t
val des3 : unit -> Ir.Cfg.t
val aes : unit -> Ir.Cfg.t
val blowfish : unit -> Ir.Cfg.t
val crc32 : unit -> Ir.Cfg.t
val jpeg_enc : unit -> Ir.Cfg.t
val jpeg_dec : unit -> Ir.Cfg.t
val compress : unit -> Ir.Cfg.t
val susan : unit -> Ir.Cfg.t
val md5 : unit -> Ir.Cfg.t
val edn : unit -> Ir.Cfg.t
val fft : unit -> Ir.Cfg.t
val viterbi : unit -> Ir.Cfg.t
val sobel : unit -> Ir.Cfg.t

val all : unit -> (string * Ir.Cfg.t) list
(** Every kernel, keyed by its benchmark name (e.g. ["sha"],
    ["g721decode"], ["3des"]). *)

val find_opt : string -> Ir.Cfg.t option

val find : string -> Ir.Cfg.t
(** Raises [Not_found] for unknown names; prefer {!find_opt}. *)
