(** ISEGEN-style iterative candidate generation.

    Exhaustive enumeration ({!Enumerate.connected}) is exact but hits
    its exploration caps on blocks beyond ~20 operations, silently
    truncating the candidate pool to the small patterns BFS reaches
    first.  This module trades exactness for scale, after Biswas
    et al.'s ISEGEN: seeded hill-climbing walks over convex subgraphs
    with hull repair on every grow step, a soft I/O-overflow penalty so
    walks can cross mildly infeasible ridges, restarts from many seed
    nodes, and a final grow-merge pass over the best cuts found.  Every
    feasible set evaluated anywhere along any walk is recorded, so the
    output is a candidate {e pool}, directly substitutable for the
    enumerator's.

    The generator is deterministic for fixed [params] (including the
    PRNG seed) and guard-aware: an exhausted {!Engine.Guard} stops the
    search early and the partial pool is still legal (anytime). *)

(** Which candidate generator a pipeline should use.  [Auto] runs the
    exhaustive enumerator first and falls back to ISEGEN only when the
    enumeration saturated one of its caps. *)
type choice = Exhaustive | Isegen | Auto

val choice_to_string : choice -> string
val choice_of_string : string -> choice option
val all_choices : choice list

type params = {
  seed : int;  (** PRNG seed for restart sampling *)
  restarts : int;  (** max number of seed nodes walked *)
  max_moves : int;  (** max grow/shrink steps per walk *)
  max_size : int;  (** largest candidate considered *)
  io_penalty : int;  (** merit malus per excess register port *)
  merge_pool : int;  (** top-k cuts paired in the merge pass *)
}

val default_params : params

val params_key : params -> string
(** Stable encoding for persistent-cache keys. *)

val generate :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?params:params ->
  ?allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** All feasible positive-gain candidates found, deduplicated and
    sorted by gain (descending), then key — deterministic.  [allowed]
    restricts the search to a node subset (default: every node). *)

val best_cut :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?params:params ->
  allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t option
(** Highest-gain candidate within [allowed], if any — the iterative
    counterpart of {!Enumerate.best_single_cut}. *)
