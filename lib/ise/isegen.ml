module Bitset = Util.Bitset

type choice = Exhaustive | Isegen | Auto

let choice_to_string = function
  | Exhaustive -> "exhaustive"
  | Isegen -> "isegen"
  | Auto -> "auto"

let all_choices = [ Exhaustive; Isegen; Auto ]

let choice_of_string s =
  List.find_opt
    (fun c -> choice_to_string c = String.lowercase_ascii s)
    all_choices

type params = {
  seed : int;
  restarts : int;
  max_moves : int;
  max_size : int;
  io_penalty : int;
  merge_pool : int;
}

let default_params =
  { seed = 1;
    restarts = 32;
    max_moves = 24;
    max_size = 14;
    io_penalty = 4;
    merge_pool = 24 }

let params_key p =
  Printf.sprintf "%d:%d:%d:%d:%d:%d" p.seed p.restarts p.max_moves p.max_size
    p.io_penalty p.merge_pool

let key_of_set set = String.concat "," (List.map string_of_int (Bitset.elements set))

(* Valid neighbours (preds and succs) of the members, excluding members
   and nodes outside [allowed] — the grow frontier, in ascending node
   order for determinism. *)
let frontier dfg allowed set =
  let out = ref [] in
  let consider v =
    if
      Ir.Dfg.valid_node dfg v
      && (not (Bitset.mem set v))
      && Bitset.mem allowed v
      && not (List.mem v !out)
    then out := v :: !out
  in
  Bitset.iter
    (fun v ->
      List.iter consider (Ir.Dfg.preds dfg v);
      List.iter consider (Ir.Dfg.succs dfg v))
    set;
  List.sort compare !out

let generate ?guard ?(constraints = Isa.Hw_model.default_constraints)
    ?(params = default_params) ?allowed dfg =
  let guard = match guard with Some g -> g | None -> Engine.Guard.default () in
  let n = Ir.Dfg.node_count dfg in
  Engine.Trace.with_span "isegen.generate"
    ~attrs:[ ("nodes", string_of_int n) ]
  @@ fun () ->
  let allowed =
    match allowed with
    | Some a -> a
    | None -> Bitset.of_list n (List.init n (fun i -> i))
  in
  let usable v = Ir.Dfg.valid_node dfg v && Bitset.mem allowed v in
  (* Convex hull of [set + v] in one shot: reachability is transitive,
     so the repair set is exactly the nodes lying on some path between
     two members — descendants of the set that are also ancestors of
     it.  Returns [None] when the hull needs a node the caller may not
     use (invalid operation or outside [allowed]). *)
  let hull set v =
    let c = Bitset.copy set in
    Bitset.set c v;
    let desc = Bitset.create n in
    Bitset.iter (fun a -> Bitset.union_into desc (Ir.Dfg.reachable_from dfg a)) c;
    let ok = ref true in
    for w = 0 to n - 1 do
      if
        !ok && (not (Bitset.mem c w))
        && Bitset.mem desc w
        && Bitset.intersects (Ir.Dfg.reachable_from dfg w) c
      then if usable w then Bitset.set c w else ok := false
    done;
    if !ok then Some c else None
  in
  (* ISEGEN-style merit: cycle gain first, with a soft penalty per
     excess register port so a walk may cross a mildly I/O-infeasible
     ridge (recording nothing there) instead of stalling below it. *)
  let score ci =
    let excess_in =
      max 0 (ci.Isa.Custom_inst.inputs - constraints.Isa.Hw_model.max_inputs)
    and excess_out =
      max 0 (ci.Isa.Custom_inst.outputs - constraints.Isa.Hw_model.max_outputs)
    in
    (8 * Isa.Custom_inst.gain ci) - (params.io_penalty * (excess_in + excess_out))
  in
  let found : (string, Isa.Custom_inst.t) Hashtbl.t = Hashtbl.create 256 in
  let evaluate set =
    let ci = Isa.Custom_inst.make_unchecked dfg set in
    (match Isa.Custom_inst.check ~constraints dfg set with
     | Ok checked when Isa.Custom_inst.gain checked > 0 ->
       let key = key_of_set set in
       if not (Hashtbl.mem found key) then Hashtbl.add found key checked
     | Ok _ | Error _ -> ());
    ci
  in
  (* One hill-climbing walk: evaluate the full grow/shrink
     neighbourhood each step (every evaluation also records a feasible
     candidate), move to the strictly best-scoring neighbour. *)
  let walk start =
    let cur = ref (Bitset.of_list n [ start ]) in
    let cur_score = ref (score (evaluate !cur)) in
    let moves = ref 0 in
    let continue_ = ref true in
    while !continue_ && !moves < params.max_moves && Engine.Guard.tick guard do
      incr moves;
      let best = ref None in
      let consider set =
        if not (Bitset.equal set !cur) then begin
          let s = score (evaluate set) in
          match !best with
          | Some (bs, bk, _) when bs > s || (bs = s && bk <= key_of_set set) -> ()
          | _ -> best := Some (s, key_of_set set, set)
        end
      in
      if Bitset.cardinal !cur < params.max_size then
        List.iter
          (fun v ->
            match hull !cur v with
            | Some h when Bitset.cardinal h <= params.max_size -> consider h
            | Some _ | None -> ())
          (frontier dfg allowed !cur);
      if Bitset.cardinal !cur > 1 then
        Bitset.iter
          (fun v ->
            let sub = Bitset.copy !cur in
            Bitset.clear sub v;
            if Ir.Dfg.is_connected dfg sub && Ir.Dfg.is_convex dfg sub then
              consider sub)
          !cur;
      match !best with
      | Some (s, _, set) when s > !cur_score ->
        cur := set;
        cur_score := s
      | Some _ | None -> continue_ := false
    done
  in
  let seeds = List.filter usable (List.init n (fun i -> i)) in
  let seeds =
    if List.length seeds <= params.restarts then seeds
    else begin
      (* more restarts than we can afford: a seeded shuffle picks which
         starting nodes this run explores — distinct seeds diverge *)
      let arr = Array.of_list seeds in
      Util.Prng.shuffle (Util.Prng.create params.seed) arr;
      Array.to_list (Array.sub arr 0 params.restarts)
    end
  in
  List.iter (fun s -> if Engine.Guard.tick guard then walk s) seeds;
  (* Grow-merge pass: the union of two good cuts (hull-repaired) is
     often the pattern neither walk reached — e.g. a feasible set whose
     every one-node predecessor violates the port limits. *)
  let by_quality a b =
    match compare (Isa.Custom_inst.gain b) (Isa.Custom_inst.gain a) with
    | 0 -> compare (key_of_set a.Isa.Custom_inst.nodes) (key_of_set b.Isa.Custom_inst.nodes)
    | c -> c
  in
  let pool =
    Hashtbl.fold (fun _ ci acc -> ci :: acc) found []
    |> List.sort by_quality
    |> List.filteri (fun i _ -> i < params.merge_pool)
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && Engine.Guard.tick guard then begin
            let u = Bitset.copy a.Isa.Custom_inst.nodes in
            Bitset.union_into u b.Isa.Custom_inst.nodes;
            if
              Bitset.cardinal u <= params.max_size
              && Ir.Dfg.is_connected dfg u
            then begin
              (* hull-close the union; [hull] takes set + one node, so
                 seed it with u minus one element plus that element *)
              match Bitset.elements u with
              | [] -> ()
              | v :: _ ->
                let rest = Bitset.copy u in
                Bitset.clear rest v;
                (match hull (if Bitset.is_empty rest then u else rest) v with
                 | Some h when Bitset.cardinal h <= params.max_size ->
                   ignore (evaluate h)
                 | Some _ | None -> ())
            end
          end)
        pool)
    pool;
  Engine.Telemetry.add "isegen.candidates" (Hashtbl.length found);
  Engine.Histogram.observe "isegen.candidates_per_block"
    (float_of_int (Hashtbl.length found));
  Hashtbl.fold (fun _ ci acc -> ci :: acc) found [] |> List.sort by_quality

let best_cut ?guard ?constraints ?params ~allowed dfg =
  match generate ?guard ?constraints ?params ~allowed dfg with
  | [] -> None
  | best :: _ -> Some best
