module Bitset = Util.Bitset

type budget = { max_size : int; max_explored : int; max_candidates : int }

let default_budget = { max_size = 14; max_explored = 60_000; max_candidates = 4_000 }
let small_budget = { max_size = 8; max_explored = 6_000; max_candidates = 400 }

let key_of_set set = String.concat "," (List.map string_of_int (Bitset.elements set))

(* Valid neighbours (preds and succs) of the members, excluding members
   and nodes outside [allowed]. *)
let frontier dfg allowed set =
  let out = ref [] in
  let consider v =
    if
      Ir.Dfg.valid_node dfg v
      && (not (Bitset.mem set v))
      && Bitset.mem allowed v
      && not (List.mem v !out)
    then out := v :: !out
  in
  Bitset.iter
    (fun v ->
      List.iter consider (Ir.Dfg.preds dfg v);
      List.iter consider (Ir.Dfg.succs dfg v))
    set;
  !out

type saturation = Cap_candidates | Cap_explored

let saturation_reason = function
  | Cap_candidates -> "max_candidates"
  | Cap_explored -> "max_explored"

(* Warn once per reason per process, then drop to Debug: hot curve
   sweeps saturate on most blocks and must not flood stderr. *)
let warned : (string, unit) Hashtbl.t = Hashtbl.create 2
let warned_lock = Mutex.create ()

let report_saturation budget sat ~explored ~emitted =
  let reason = saturation_reason sat in
  Engine.Telemetry.incr "enumerate.cap_saturated";
  Obs.Metrics.inc ~labels:[ ("reason", reason) ] "enumerate.cap_saturated";
  Obs.Flight.record ~severity:Obs.Flight.Warn "enumerate.cap_saturated"
    [ ("reason", reason);
      ("explored", string_of_int explored);
      ("emitted", string_of_int emitted) ];
  let first =
    Mutex.lock warned_lock;
    let f = not (Hashtbl.mem warned reason) in
    if f then Hashtbl.add warned reason ();
    Mutex.unlock warned_lock;
    f
  in
  let msg =
    Printf.sprintf
      "enumeration saturated its %s cap (explored %d, emitted %d, budget \
       %d/%d): candidate pool is truncated — consider --generator isegen"
      reason explored emitted budget.max_explored budget.max_candidates
  in
  if first then Engine.Log.warn "%s" msg else Engine.Log.debug "%s" msg

let connected_full ?guard ?(constraints = Isa.Hw_model.default_constraints)
    ?(budget = default_budget) ?allowed dfg =
  let guard =
    match guard with Some g -> g | None -> Engine.Guard.default ()
  in
  let n = Ir.Dfg.node_count dfg in
  Engine.Trace.with_span "enumerate.connected"
    ~attrs:[ ("nodes", string_of_int n) ]
  @@ fun () ->
  let allowed =
    match allowed with
    | Some a -> a
    | None -> Bitset.of_list n (List.init n (fun i -> i))
  in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let push set =
    let key = key_of_set set in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.push set queue
    end
  in
  for v = 0 to n - 1 do
    if Ir.Dfg.valid_node dfg v && Bitset.mem allowed v then
      push (Bitset.of_list n [ v ])
  done;
  let results = ref [] in
  let emitted = ref 0 in
  let explored = ref 0 in
  (* one fuel unit per expansion — the same granularity as
     [budget.max_explored], but shared across calls when the caller
     passes one guard for a whole sweep *)
  while
    (not (Queue.is_empty queue))
    && !explored < budget.max_explored
    && !emitted < budget.max_candidates
    && Engine.Guard.tick guard
  do
    let set = Queue.pop queue in
    incr explored;
    (match Isa.Custom_inst.check ~constraints dfg set with
     | Ok ci when Isa.Custom_inst.gain ci > 0 ->
       incr emitted;
       results := ci :: !results
     | Ok _ | Error _ -> ());
    if Bitset.cardinal set < budget.max_size then
      List.iter
        (fun v ->
          let grown = Bitset.copy set in
          Bitset.set grown v;
          push grown)
        (frontier dfg allowed set)
  done;
  Engine.Telemetry.add "enumerate.explored" !explored;
  Engine.Telemetry.add "enumerate.candidates" !emitted;
  Engine.Histogram.observe "enumerate.candidates_per_block"
    (float_of_int !emitted);
  let saturation =
    if !emitted >= budget.max_candidates then Some Cap_candidates
    else if (not (Queue.is_empty queue)) && !explored >= budget.max_explored
    then Some Cap_explored
    else None
  in
  Option.iter
    (fun sat -> report_saturation budget sat ~explored:!explored ~emitted:!emitted)
    saturation;
  (List.rev !results, saturation)

let connected ?guard ?constraints ?budget ?allowed dfg =
  fst (connected_full ?guard ?constraints ?budget ?allowed dfg)

let max_miso ?(constraints = Isa.Hw_model.default_constraints) dfg =
  let n = Ir.Dfg.node_count dfg in
  Engine.Trace.with_span "enumerate.max_miso"
    ~attrs:[ ("nodes", string_of_int n) ]
  @@ fun () ->
  let patterns = ref [] in
  let seen = Hashtbl.create 64 in
  for sink = 0 to n - 1 do
    if Ir.Dfg.valid_node dfg sink then begin
      let set = Bitset.of_list n [ sink ] in
      (* Add a parent only when all of its consumers are already inside,
         so the pattern keeps a single output; stop growing through
         invalid nodes or past the input-port limit. *)
      let rec grow () =
        let added = ref false in
        Bitset.iter
          (fun v ->
            List.iter
              (fun p ->
                if
                  Ir.Dfg.valid_node dfg p
                  && (not (Bitset.mem set p))
                  && (not (Ir.Dfg.live_out dfg p))
                  && List.for_all (fun s -> Bitset.mem set s) (Ir.Dfg.succs dfg p)
                then begin
                  Bitset.set set p;
                  if Ir.Dfg.input_count dfg set > constraints.Isa.Hw_model.max_inputs
                  then Bitset.clear set p
                  else added := true
                end)
              (Ir.Dfg.preds dfg v))
          set;
        if !added then grow ()
      in
      grow ();
      let key = key_of_set set in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match Isa.Custom_inst.check ~constraints dfg set with
        | Ok ci when Isa.Custom_inst.gain ci > 0 -> patterns := ci :: !patterns
        | Ok _ | Error _ -> ()
      end
    end
  done;
  List.rev !patterns

let best_single_cut ?guard ?constraints ?(budget = default_budget) ~allowed dfg =
  let candidates = connected ?guard ?constraints ~budget ~allowed dfg in
  List.fold_left
    (fun best ci ->
      match best with
      | None -> Some ci
      | Some b ->
        if Isa.Custom_inst.gain ci > Isa.Custom_inst.gain b then Some ci else best)
    None candidates
