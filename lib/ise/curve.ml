type params = {
  constraints : Isa.Hw_model.constraints;
  budget : Enumerate.budget;
  hot_threshold : float;
  sweep_points : int;
  generator : Isegen.choice;
  isegen : Isegen.params;
  hw : Isa.Hw_model.backend;
}

let default =
  { constraints = Isa.Hw_model.default_constraints;
    budget = Enumerate.default_budget;
    hot_threshold = 0.01;
    sweep_points = 24;
    generator = Isegen.Exhaustive;
    isegen = Isegen.default_params;
    hw = Isa.Hw_model.uniform }

let small = { default with budget = Enumerate.small_budget }

let params_key p =
  Printf.sprintf "io=%d:%d;budget=%d:%d:%d;hot=%h;sweep=%d;gen=%s;ise=%s;hw=%s"
    p.constraints.Isa.Hw_model.max_inputs
    p.constraints.Isa.Hw_model.max_outputs
    p.budget.Enumerate.max_size p.budget.Enumerate.max_explored
    p.budget.Enumerate.max_candidates p.hot_threshold p.sweep_points
    (Isegen.choice_to_string p.generator)
    (Isegen.params_key p.isegen) p.hw.Isa.Hw_model.name

let profile_cycles profile =
  Util.Numeric.sum_byf
    (fun (b, freq) -> freq *. float_of_int (Ir.Cfg.block_cycles b))
    profile

let base_cycles cfg =
  int_of_float (Float.round (profile_cycles (Ir.Cfg.profile cfg)))

(* Work items are per hot block / per area budget — fine enough grain
   for the pool's stealing to balance, while an omitted [?pool] (or a
   1-wide pool) runs the exact sequential List.map. Either way the
   items are solved independently and reassembled in input order, so
   the curve is bit-identical across any jobs count. *)
let pool_map pool f xs =
  match pool with
  | Some pool -> Engine.Parallel.Pool.map pool f xs
  | None -> List.map f xs

let candidates ?pool ?(params = default) cfg =
  Engine.Trace.with_span "curve.candidates" @@ fun () ->
  Engine.Telemetry.time "curve.candidates" @@ fun () ->
  let profile = Ir.Cfg.profile cfg in
  let total = profile_cycles profile in
  let hot =
    List.filteri (fun _ (b, freq) ->
        freq *. float_of_int (Ir.Cfg.block_cycles b)
        >= params.hot_threshold *. total)
      profile
  in
  List.concat
    (pool_map pool
       (fun (block, (b, freq)) ->
         Select.candidates_of_block ~constraints:params.constraints
           ~budget:params.budget ~generator:params.generator
           ~isegen:params.isegen ~hw:params.hw ~block ~freq b.Ir.Cfg.body)
       (List.mapi (fun block bf -> (block, bf)) hot))

let generate ?pool ?(params = default) cfg =
  Engine.Trace.with_span "curve.generate"
    ~attrs:[ ("sweep_points", string_of_int params.sweep_points) ]
  @@ fun () ->
  Engine.Telemetry.time "curve.generate" @@ fun () ->
  Engine.Histogram.time "curve.generate_s" @@ fun () ->
  let cands = candidates ?pool ~params cfg in
  let base = base_cycles cfg in
  let use_greedy = List.length cands > 22 in
  if use_greedy then Engine.Telemetry.incr "curve.greedy_fallbacks";
  let select area_budget =
    if use_greedy then Select.greedy ~budget:area_budget cands
    else Select.branch_and_bound ~budget:area_budget cands
  in
  let unconstrained = select max_int in
  let max_area = Select.area_of unconstrained in
  let point i =
    let area_budget = max_area * i / params.sweep_points in
    let sel = select area_budget in
    let cycles = base - int_of_float (Float.round (Select.gain_of sel)) in
    { Isa.Config.area = Select.area_of sel; cycles = max 1 cycles }
  in
  let points =
    List.rev (pool_map pool point (List.init params.sweep_points (fun i -> i + 1)))
  in
  Obs.Metrics.inc ~labels:[ ("kernel", cfg.Ir.Cfg.name) ] "curve.curves_generated";
  Isa.Config.of_points ~base_cycles:base points
