type candidate = { ci : Isa.Custom_inst.t; block : int; freq : float }

let total_gain c = float_of_int (Isa.Custom_inst.gain c.ci) *. c.freq

let generate_candidates ?guard ?constraints ?budget
    ?(generator = Isegen.Exhaustive) ?(isegen = Isegen.default_params)
    ?allowed dfg =
  match generator with
  | Isegen.Exhaustive ->
    Enumerate.connected ?guard ?constraints ?budget ?allowed dfg
  | Isegen.Isegen ->
    Isegen.generate ?guard ?constraints ~params:isegen ?allowed dfg
  | Isegen.Auto ->
    let exhaustive, saturation =
      Enumerate.connected_full ?guard ?constraints ?budget ?allowed dfg
    in
    (match saturation with
     | None -> exhaustive
     | Some _ ->
       Engine.Telemetry.incr "isegen.auto_switches";
       Isegen.generate ?guard ?constraints ~params:isegen ?allowed dfg)

let candidates_of_block ?constraints ?budget ?generator ?isegen
    ?(hw = Isa.Hw_model.uniform) ~block ~freq dfg =
  let raw = generate_candidates ?constraints ?budget ?generator ?isegen dfg in
  let costed =
    if hw == Isa.Hw_model.uniform then raw
    else
      List.filter
        (fun ci -> Isa.Custom_inst.gain ci > 0)
        (List.map (Isa.Custom_inst.evaluate_with hw dfg) raw)
  in
  List.map (fun ci -> { ci; block; freq }) costed

let conflict a b = a.block = b.block && Isa.Custom_inst.overlaps a.ci b.ci

let area_of sel = List.fold_left (fun acc c -> acc + c.ci.Isa.Custom_inst.area) 0 sel
let gain_of sel = List.fold_left (fun acc c -> acc +. total_gain c) 0. sel

let selection_valid ~budget sel =
  area_of sel <= budget
  &&
  let rec pairwise = function
    | [] -> true
    | c :: rest -> (not (List.exists (conflict c) rest)) && pairwise rest
  in
  pairwise sel

let by_ratio_desc a b =
  let ratio c =
    if c.ci.Isa.Custom_inst.area = 0 then infinity
    else total_gain c /. float_of_int c.ci.Isa.Custom_inst.area
  in
  compare (ratio b) (ratio a)

let greedy ~budget candidates =
  Engine.Trace.with_span "select.greedy"
    ~attrs:[ ("candidates", string_of_int (List.length candidates)) ]
  @@ fun () ->
  Engine.Telemetry.incr "select.greedy_calls";
  let sorted = List.sort by_ratio_desc candidates in
  let rec take area chosen = function
    | [] -> List.rev chosen
    | c :: rest ->
      if
        area + c.ci.Isa.Custom_inst.area <= budget
        && not (List.exists (conflict c) chosen)
      then take (area + c.ci.Isa.Custom_inst.area) (c :: chosen) rest
      else take area chosen rest
  in
  take 0 [] sorted

let branch_and_bound ?(max_explored = 200_000) ~budget candidates =
  let cands = Array.of_list (List.sort by_ratio_desc candidates) in
  let n = Array.length cands in
  Engine.Trace.with_span "select.bnb" ~attrs:[ ("candidates", string_of_int n) ]
  @@ fun () ->
  let best_gain = ref 0. and best_sel = ref [] in
  let explored = ref 0 in
  (* Optimistic bound: fractional knapsack over remaining candidates,
     ignoring conflicts. *)
  let bound i area gain =
    let remaining = ref (budget - area) and b = ref gain in
    (try
       for j = i to n - 1 do
         let c = cands.(j) in
         let a = c.ci.Isa.Custom_inst.area in
         if a <= !remaining then begin
           remaining := !remaining - a;
           b := !b +. total_gain c
         end
         else begin
           if a > 0 then
             b := !b +. (total_gain c *. float_of_int !remaining /. float_of_int a);
           raise Exit
         end
       done
     with Exit -> ());
    !b
  in
  let rec search i area gain chosen =
    if !explored < max_explored then begin
      incr explored;
      if gain > !best_gain then begin
        best_gain := gain;
        best_sel := chosen
      end;
      if i < n && bound i area gain > !best_gain then begin
        let c = cands.(i) in
        let a = c.ci.Isa.Custom_inst.area in
        if area + a <= budget && not (List.exists (conflict c) chosen) then
          search (i + 1) (area + a) (gain +. total_gain c) (c :: chosen);
        search (i + 1) area gain chosen
      end
    end
  in
  search 0 0 0. [];
  Engine.Telemetry.add "select.bnb_nodes" !explored;
  (* distinct name: the unified registry keys kind by family name, so
     the per-solve distribution cannot share "select.bnb_nodes" with
     the cumulative counter above *)
  Engine.Histogram.observe "select.bnb_nodes_per_solve"
    (float_of_int !explored);
  List.rev !best_sel

let knapsack ~budget candidates =
  Engine.Trace.with_span "select.knapsack"
    ~attrs:[ ("candidates", string_of_int (List.length candidates)) ]
  @@ fun () ->
  let rec pairwise = function
    | [] -> ()
    | c :: rest ->
      if List.exists (conflict c) rest then
        invalid_arg "Select.knapsack: candidates overlap";
      pairwise rest
  in
  pairwise candidates;
  let areas = List.map (fun c -> c.ci.Isa.Custom_inst.area) candidates in
  let delta = max 1 (Util.Numeric.gcd_list (budget :: areas)) in
  let cells = (budget / delta) + 1 in
  let best = Array.make cells 0. in
  let sel : candidate list array = Array.make cells [] in
  List.iter
    (fun c ->
      let a = c.ci.Isa.Custom_inst.area in
      if a <= budget then
        let steps = Util.Numeric.ceil_div a delta in
        for cell = cells - 1 downto steps do
          let from = cell - steps in
          let candidate_gain = best.(from) +. total_gain c in
          if candidate_gain > best.(cell) then begin
            best.(cell) <- candidate_gain;
            sel.(cell) <- c :: sel.(from)
          end
        done)
    candidates;
  List.rev sel.(cells - 1)
