(** Configuration-curve generation — the XPRES-compiler substitute.

    Runs the full identify-then-select pipeline over a task's hot basic
    blocks at a sweep of area budgets and Pareto-filters the resulting
    (area, cycles) design points into the task's configuration curve
    (the staircase of Figure 3.1).  Chapter 3's selection algorithms
    consume these curves exactly as the thesis consumed XPRES output.

    Generation is deterministic for a given [params], which is why
    [params_key] can serve as a persistent-cache key and why the
    parallel engine reproduces the sequential results bit for bit. *)

type params = {
  constraints : Isa.Hw_model.constraints;  (** register-port I/O limits *)
  budget : Enumerate.budget;  (** identification search budget *)
  hot_threshold : float;
  (** minimum fraction of profiled cycles for a block to be customized
      (default 1 %) *)
  sweep_points : int;  (** area budgets swept per curve (default 24) *)
  generator : Isegen.choice;
  (** candidate generator (default [Exhaustive] — the legacy pipeline);
      [Isegen] scales past the enumeration caps, [Auto] switches to
      ISEGEN only when the exhaustive search saturates a cap *)
  isegen : Isegen.params;  (** ISEGEN tuning, used by [Isegen]/[Auto] *)
  hw : Isa.Hw_model.backend;
  (** hardware cost backend; non-[uniform] backends re-cost candidates
      and drop those whose gain vanishes *)
}

val default : params
(** Thesis settings: 4-in/2-out, {!Enumerate.default_budget}, 1 % hot
    threshold, 24 sweep points. *)

val small : params
(** {!default} with {!Enumerate.small_budget} — the fast setting every
    experiment driver uses. *)

val params_key : params -> string
(** Injective, human-readable rendering of [params], stable across runs
    — the constraints component of the persistent cache key. *)

val candidates :
  ?pool:Engine.Parallel.Pool.t -> ?params:params -> Ir.Cfg.t ->
  Select.candidate list
(** Candidate custom instructions of all hot basic blocks, with profiled
    frequencies attached.  With [?pool], each hot block is enumerated as
    its own work item on the pool; candidate order (and hence every
    downstream selection) is identical either way. *)

val base_cycles : Ir.Cfg.t -> int
(** Profiled software execution time of the task, in cycles. *)

val generate :
  ?pool:Engine.Parallel.Pool.t -> ?params:params -> Ir.Cfg.t -> Isa.Config.t
(** The task's configuration curve ([params.sweep_points] area budgets,
    each solved with branch-and-bound when the candidate set is small
    enough and the greedy selector otherwise).  With [?pool], each area
    budget of the sweep (and each hot block of candidate enumeration) is
    a separate pool work item, so one curve's generation spreads across
    the pool's domains; the curve is bit-identical to the sequential
    result. *)
