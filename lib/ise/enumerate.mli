(** Custom-instruction identification (thesis §2.3.1).

    Enumerates valid custom-instruction candidates — convex, I/O-bounded
    connected subgraphs — from a basic block's DFG.  Exhaustive
    enumeration is exponential in the worst case (Bonzini's
    O(n^{Nin+Nout}) bound), so the search is capped by a subgraph-size
    limit and an exploration budget; within those caps the search is
    complete.  This mirrors the pruned exhaustive searches of
    Pozzi/Atasu/Yu cited by the thesis. *)

type budget = {
  max_size : int;  (** largest candidate, in operations *)
  max_explored : int;  (** node-set expansions examined before stopping *)
  max_candidates : int;  (** candidates emitted before stopping *)
}

val default_budget : budget
val small_budget : budget
(** A cheaper budget for the fast paths of iterative algorithms. *)

type saturation = Cap_candidates | Cap_explored
(** Which structural cap stopped the search with work still pending.
    Saturation means the candidate pool is {e truncated}: subgraphs
    beyond the cap were never examined.  Each occurrence bumps the
    [enumerate.cap_saturated] telemetry counter and the labelled
    [enumerate.cap_saturated{reason}] metric, records a [Warn] flight
    event, and logs a warning (first occurrence per reason; [Debug]
    after that). *)

val saturation_reason : saturation -> string
(** Stable label: ["max_candidates"] or ["max_explored"]. *)

val connected_full :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:budget ->
  ?allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list * saturation option
(** Like {!connected}, and additionally reports whether a budget cap
    saturated (guard exhaustion is {e not} saturation — the guard's own
    status tracks that). *)

val connected :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:budget ->
  ?allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** All connected candidates with strictly positive gain, each node drawn
    from [allowed] (default: every node).  Deduplicated; order is
    breadth-first by size.

    The search is anytime by construction (it accumulates candidates
    breadth-first), so on top of [budget]'s structural caps it spends
    one [guard] fuel unit per expansion and simply stops early — with
    the candidates found so far — when the guard is exhausted.  [guard]
    defaults to {!Engine.Guard.default} (the CLI's [--deadline] /
    [--max-nodes] budget); pass one explicitly to share a budget across
    a whole enumeration sweep. *)

val max_miso :
  ?constraints:Isa.Hw_model.constraints ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** Maximal multiple-input single-output patterns, one per interior sink,
    grown greedily while the input constraint holds (the linear-time
    MaxMISO algorithm the thesis cites). *)

val best_single_cut :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:budget ->
  allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t option
(** Highest per-execution-gain single candidate inside [allowed] — the
    single-cut identification step of the Iterative Selection baseline
    (thesis §5.3.3). *)
