(** Custom-instruction selection (thesis §2.3.2).

    Given a library of candidates with profiled execution frequencies,
    pick a subset maximising total cycle gain under a silicon-area budget
    with the non-overlap constraint (a base operation is covered by at
    most one custom instruction).  Three selectors are provided:

    - {!greedy} — gain/area-ratio heuristic,
    - {!branch_and_bound} — exact, with fractional-knapsack bounding,
    - {!knapsack} — exact pseudo-polynomial DP for candidate sets already
      known to be pairwise disjoint (e.g. MLGP partitions). *)

type candidate = {
  ci : Isa.Custom_inst.t;
  block : int;  (** index of the owning basic block *)
  freq : float;  (** executions of the block per task run *)
}

val total_gain : candidate -> float
(** Cycles saved per task run: per-execution gain × frequency. *)

val generate_candidates :
  ?guard:Engine.Guard.t ->
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:Enumerate.budget ->
  ?generator:Isegen.choice ->
  ?isegen:Isegen.params ->
  ?allowed:Util.Bitset.t ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** Candidate identification behind a generator switch (default
    [Exhaustive], the legacy behaviour).  [Auto] runs the exhaustive
    enumerator and re-generates with ISEGEN only when a budget cap
    saturated (counted by the [isegen.auto_switches] telemetry
    counter). *)

val candidates_of_block :
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:Enumerate.budget ->
  ?generator:Isegen.choice ->
  ?isegen:Isegen.params ->
  ?hw:Isa.Hw_model.backend ->
  block:int -> freq:float -> Ir.Dfg.t -> candidate list
(** {!generate_candidates} wrapped with block/frequency metadata.  With
    a non-[uniform] [hw] backend, candidates are re-costed via
    {!Isa.Custom_inst.evaluate_with} and those whose gain drops to ≤ 0
    under the new model are filtered out. *)

val conflict : candidate -> candidate -> bool
(** Same block and overlapping node sets. *)

val selection_valid : budget:int -> candidate list -> bool
(** Pairwise conflict-free and within the area budget. *)

val area_of : candidate list -> int
val gain_of : candidate list -> float

val greedy : budget:int -> candidate list -> candidate list

val branch_and_bound :
  ?max_explored:int -> budget:int -> candidate list -> candidate list
(** Exact for small candidate sets; falls back to the best solution found
    when the exploration cap is hit. *)

val knapsack : budget:int -> candidate list -> candidate list
(** Exact 0-1 knapsack over the area dimension (granularity = gcd of
    areas).  Precondition: candidates are pairwise conflict-free; raises
    [Invalid_argument] otherwise. *)
