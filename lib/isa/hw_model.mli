(** Hardware cost model for custom functional units.

    Substitutes the Synopsys 0.18 µm synthesis flow of the thesis with a
    fixed operator table.  Conventions follow the thesis's experimental
    setup (§5.3.1):

    - area is reported in {e adder equivalents}; internally we use
      integer deci-adders (10 units = one 32-bit ripple adder) so that
      the dynamic programs can use exact integer arithmetic;
    - latency is in picoseconds; custom-instruction latency is the
      critical path of the datapath, normalised to cycles of a 120 MHz
      core (one MAC = one cycle);
    - custom instructions read at most [max_inputs] and write at most
      [max_outputs] register operands (register-file port limits). *)

type constraints = { max_inputs : int; max_outputs : int }

val default_constraints : constraints
(** 4 inputs, 2 outputs — the setting used in every thesis experiment. *)

val cycle_ps : int
(** Clock period of the 120 MHz base core, in picoseconds. *)

val area_units_per_adder : int
(** Deci-adders per adder (= 10). *)

val hw_delay_ps : Ir.Op.kind -> int
(** Synthesised propagation delay of one operator.  Raises
    [Invalid_argument] for ISE-ineligible operations. *)

val area : Ir.Op.kind -> int
(** Silicon area of one operator, in deci-adders.  Raises
    [Invalid_argument] for ISE-ineligible operations. *)

(** {1 Pluggable cost backends}

    A backend bundles the per-operator latency/area tables with the
    target's clock period and an explicit per-register-file-port area
    penalty, so one identification/selection pipeline can cost
    candidates for several hardware targets.  {!uniform} reproduces the
    legacy fixed tables exactly (zero port penalty, 120 MHz), so the
    default pipeline output is bit-identical to the pre-backend code. *)

type backend = {
  name : string;  (** stable identifier (["uniform"], ["riscv"]) *)
  op_delay_ps : Ir.Op.kind -> int;
  op_area : Ir.Op.kind -> int;
  io_area_per_port : int;
      (** area charged per input/output register port of a pattern *)
  cycle_time_ps : int;  (** target clock period *)
}

val uniform : backend
(** The thesis's synthesis tables — the legacy cost model. *)

val riscv : backend
(** A RISC-V-flavoured target: DSP-block multiplier, faster logic,
    costlier shifts, 6 deci-adders per register port, 100 MHz clock. *)

val backends : backend list
val backend_of_name : string -> backend option

val set_op_area_with : backend -> Ir.Dfg.t -> Util.Bitset.t -> int
(** Sum of the backend's operator areas over the set — monotone under
    set inclusion (no port terms). *)

val set_area_with : backend -> Ir.Dfg.t -> Util.Bitset.t -> int
(** {!set_op_area_with} plus [io_area_per_port] for each input and
    output port of the set. *)

val set_hw_cycles_with : backend -> Ir.Dfg.t -> Util.Bitset.t -> int
(** Hardware latency under the backend's delays and clock:
    ⌈critical-path delay / cycle⌉, at least 1 for non-empty sets. *)

val set_area : Ir.Dfg.t -> Util.Bitset.t -> int
(** [set_area_with uniform] — total area of a node set (sum of operator
    areas, as in the thesis's area estimation). *)

val set_hw_cycles : Ir.Dfg.t -> Util.Bitset.t -> int
(** [set_hw_cycles_with uniform] — hardware latency of a node set in
    core cycles: ⌈critical-path delay / cycle⌉, at least 1 for non-empty
    sets. *)

val adders_of_units : int -> float
(** Convert deci-adders to adders for reporting. *)

val gates_of_units : int -> int
(** Convert deci-adders to logic gates (Chapter 3 reports areas in
    gates; one adder ≈ 160 gates in a 0.18 µm library). *)
