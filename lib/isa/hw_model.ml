type constraints = { max_inputs : int; max_outputs : int }

let default_constraints = { max_inputs = 4; max_outputs = 2 }

let cycle_ps = 8333 (* 120 MHz *)

let area_units_per_adder = 10

let invalid k =
  invalid_arg ("Hw_model: " ^ Ir.Op.name k ^ " cannot be implemented in a CFU")

let hw_delay_ps = function
  | Ir.Op.Add | Ir.Op.Sub -> 2000
  | Ir.Op.Mul -> 5500
  | Ir.Op.Div | Ir.Op.Rem -> 30000
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 450
  | Ir.Op.Not -> 200
  | Ir.Op.Shl | Ir.Op.Shr -> 900
  | Ir.Op.Cmp -> 1800
  | Ir.Op.Select -> 600
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

let area = function
  | Ir.Op.Add | Ir.Op.Sub -> 10
  | Ir.Op.Mul -> 120
  | Ir.Op.Div | Ir.Op.Rem -> 300
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 3
  | Ir.Op.Not -> 1
  | Ir.Op.Shl | Ir.Op.Shr -> 9
  | Ir.Op.Cmp -> 8
  | Ir.Op.Select -> 5
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

(* -------------------------------------------------------------- *)
(* Pluggable cost backends                                        *)
(* -------------------------------------------------------------- *)

type backend = {
  name : string;
  op_delay_ps : Ir.Op.kind -> int;
  op_area : Ir.Op.kind -> int;
  io_area_per_port : int;
  cycle_time_ps : int;
}

let uniform =
  { name = "uniform";
    op_delay_ps = hw_delay_ps;
    op_area = area;
    io_area_per_port = 0;
    cycle_time_ps = cycle_ps }

(* A RISC-V-flavoured target (per the Rezunov et al. exploration flow):
   a tighter process shrinks the combinational delays, the multiplier
   rides a hard DSP block (cheaper area, shorter delay), dividers stay
   expensive, barrel shifts cost more LUTs, and every register-file
   port carries explicit wiring/mux area.  The core clocks at 100 MHz,
   so the same datapath packs differently into cycles. *)
let riscv_delay_ps = function
  | Ir.Op.Add | Ir.Op.Sub -> 1400
  | Ir.Op.Mul -> 3200
  | Ir.Op.Div | Ir.Op.Rem -> 21000
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 350
  | Ir.Op.Not -> 150
  | Ir.Op.Shl | Ir.Op.Shr -> 700
  | Ir.Op.Cmp -> 1200
  | Ir.Op.Select -> 500
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

let riscv_area = function
  | Ir.Op.Add | Ir.Op.Sub -> 12
  | Ir.Op.Mul -> 90
  | Ir.Op.Div | Ir.Op.Rem -> 350
  | Ir.Op.And | Ir.Op.Or | Ir.Op.Xor -> 4
  | Ir.Op.Not -> 1
  | Ir.Op.Shl | Ir.Op.Shr -> 14
  | Ir.Op.Cmp -> 9
  | Ir.Op.Select -> 6
  | Ir.Op.Const -> 0
  | (Ir.Op.Load | Ir.Op.Store | Ir.Op.Branch | Ir.Op.Call) as k -> invalid k

let riscv =
  { name = "riscv";
    op_delay_ps = riscv_delay_ps;
    op_area = riscv_area;
    io_area_per_port = 6;
    cycle_time_ps = 10_000 }

let backends = [ uniform; riscv ]

let backend_of_name n = List.find_opt (fun b -> b.name = n) backends

let set_op_area_with b dfg set =
  Util.Bitset.fold (fun v acc -> acc + b.op_area (Ir.Dfg.kind dfg v)) set 0

let set_area_with b dfg set =
  let ports =
    if b.io_area_per_port = 0 then 0
    else Ir.Dfg.input_count dfg set + Ir.Dfg.output_count dfg set
  in
  set_op_area_with b dfg set + (b.io_area_per_port * ports)

let set_hw_cycles_with b dfg set =
  if Util.Bitset.is_empty set then 0
  else
    let delay k = float_of_int (b.op_delay_ps k) in
    let path = Ir.Dfg.critical_path dfg ~delay set in
    max 1 (int_of_float (ceil (path /. float_of_int b.cycle_time_ps)))

(* The legacy entry points are exactly the [uniform] backend: its port
   penalty is zero and its tables are the original ones, so every
   existing output (golden corpus, cached curves) is byte-identical. *)
let set_area dfg set = set_area_with uniform dfg set

let set_hw_cycles dfg set = set_hw_cycles_with uniform dfg set

let adders_of_units u = float_of_int u /. float_of_int area_units_per_adder

let gates_of_units u = u * 16 (* 160 gates per adder / 10 units per adder *)
