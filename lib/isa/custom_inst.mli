(** Custom instructions: convex, I/O-bounded subgraphs of a basic block's
    DFG, together with their evaluated software cost, hardware latency,
    area and per-execution gain (thesis §2.3). *)

type t = private {
  nodes : Util.Bitset.t;  (** member operations *)
  size : int;  (** number of operations *)
  sw_cycles : int;  (** software cost of the replaced operations *)
  hw_cycles : int;  (** latency as one custom instruction *)
  area : int;  (** deci-adders *)
  inputs : int;
  outputs : int;
}

val gain : t -> int
(** Cycles saved by one execution: [sw_cycles - hw_cycles] (may be ≤ 0
    for patterns not worth implementing). *)

type rejection =
  | Invalid_operation  (** contains a memory access or control transfer *)
  | Not_convex
  | Too_many_inputs of int
  | Too_many_outputs of int
  | Empty

val check :
  ?constraints:Hw_model.constraints -> Ir.Dfg.t -> Util.Bitset.t ->
  (t, rejection) result
(** Validate a node set against the architectural constraints and
    evaluate its metrics. *)

val make :
  ?constraints:Hw_model.constraints -> Ir.Dfg.t -> Util.Bitset.t -> t
(** Like {!check} but raises [Invalid_argument] on rejection. *)

val make_unchecked : Ir.Dfg.t -> Util.Bitset.t -> t
(** Evaluate metrics without enforcing constraints (used by generators
    that maintain the invariants themselves, e.g. MLGP coarse vertices
    during refinement). *)

val feasible :
  ?constraints:Hw_model.constraints -> Ir.Dfg.t -> Util.Bitset.t -> bool

val evaluate_with : Hw_model.backend -> Ir.Dfg.t -> t -> t
(** Re-cost an instruction under another hardware backend: [hw_cycles]
    and [area] are recomputed from the backend's tables, while the node
    set, software cost and port counts are unchanged.
    [evaluate_with Hw_model.uniform] is the identity. *)

val overlaps : t -> t -> bool
(** The two instructions share at least one operation (same DFG). *)

val pp : Format.formatter -> t -> unit
val pp_rejection : Format.formatter -> rejection -> unit
