module Bitset = Util.Bitset

type t = {
  nodes : Bitset.t;
  size : int;
  sw_cycles : int;
  hw_cycles : int;
  area : int;
  inputs : int;
  outputs : int;
}

let gain ci = ci.sw_cycles - ci.hw_cycles

type rejection =
  | Invalid_operation
  | Not_convex
  | Too_many_inputs of int
  | Too_many_outputs of int
  | Empty

let make_unchecked dfg nodes =
  { nodes;
    size = Bitset.cardinal nodes;
    sw_cycles = Ir.Dfg.sw_cycles_of_set dfg nodes;
    hw_cycles = Hw_model.set_hw_cycles dfg nodes;
    area = Hw_model.set_area dfg nodes;
    inputs = Ir.Dfg.input_count dfg nodes;
    outputs = Ir.Dfg.output_count dfg nodes }

let check ?(constraints = Hw_model.default_constraints) dfg nodes =
  if Bitset.is_empty nodes then Error Empty
  else if not (Ir.Dfg.all_valid dfg nodes) then Error Invalid_operation
  else if not (Ir.Dfg.is_convex dfg nodes) then Error Not_convex
  else
    let inputs = Ir.Dfg.input_count dfg nodes in
    if inputs > constraints.Hw_model.max_inputs then Error (Too_many_inputs inputs)
    else
      let outputs = Ir.Dfg.output_count dfg nodes in
      if outputs > constraints.Hw_model.max_outputs then
        Error (Too_many_outputs outputs)
      else Ok (make_unchecked dfg nodes)

let pp_rejection fmt = function
  | Invalid_operation -> Format.pp_print_string fmt "contains an invalid operation"
  | Not_convex -> Format.pp_print_string fmt "not convex"
  | Too_many_inputs n -> Format.fprintf fmt "%d inputs exceed the port limit" n
  | Too_many_outputs n -> Format.fprintf fmt "%d outputs exceed the port limit" n
  | Empty -> Format.pp_print_string fmt "empty node set"

let make ?constraints dfg nodes =
  match check ?constraints dfg nodes with
  | Ok ci -> ci
  | Error r -> invalid_arg (Format.asprintf "Custom_inst.make: %a" pp_rejection r)

let feasible ?constraints dfg nodes = Result.is_ok (check ?constraints dfg nodes)

(* Structure (nodes, size, sw cost, port counts) is target-independent;
   only the hardware latency and silicon area move with the backend. *)
let evaluate_with backend dfg ci =
  { ci with
    hw_cycles = Hw_model.set_hw_cycles_with backend dfg ci.nodes;
    area = Hw_model.set_area_with backend dfg ci.nodes }

let overlaps a b = Bitset.intersects a.nodes b.nodes

let pp fmt ci =
  Format.fprintf fmt "CI{%d ops, sw=%d, hw=%d, gain=%d, area=%.1f adders, %d->%d}"
    ci.size ci.sw_cycles ci.hw_cycles (gain ci)
    (Hw_model.adders_of_units ci.area) ci.inputs ci.outputs
