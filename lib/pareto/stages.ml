module Intra = struct
  (* Candidates must be pairwise conflict-free so that choosing any
     subset is a real implementation (and the workload stays
     non-negative, which the multiplicative ε-guarantee needs).  Keep a
     maximal conflict-free subset, best gain/area ratio first. *)
  let conflict_free candidates =
    let ranked =
      List.sort
        (fun a b ->
          let ratio c =
            Ise.Select.total_gain c
            /. float_of_int (max 1 c.Ise.Select.ci.Isa.Custom_inst.area)
          in
          compare (ratio b) (ratio a))
        candidates
    in
    List.fold_left
      (fun kept c ->
        if List.exists (Ise.Select.conflict c) kept then kept else c :: kept)
      [] ranked
    |> List.rev

  let entities candidates =
    conflict_free candidates
    |> List.filter_map (fun c ->
           let delta = Ise.Select.total_gain c in
           let cost = c.Ise.Select.ci.Isa.Custom_inst.area in
           if delta <= 0. then None
           else Some [| { Mo_select.delta; cost } |])

  let exact ~workload candidates =
    Mo_select.exact_front ~base:(float_of_int workload) (entities candidates)

  let approx ~eps ~workload candidates =
    Mo_select.approx_front ~eps ~base:(float_of_int workload) (entities candidates)

  let of_task ?eps cfg =
    let workload = Ise.Curve.base_cycles cfg in
    let candidates = Ise.Curve.candidates ~params:Ise.Curve.small cfg in
    let front =
      match eps with
      | None -> exact ~workload candidates
      | Some eps -> approx ~eps ~workload candidates
    in
    (workload, front)
end

module Inter = struct
  type task_curve = {
    period : int;
    workload : int;
    front : Util.Pareto_front.point list;
  }

  let entities curves =
    List.map
      (fun tc ->
        Array.of_list
          (List.map
             (fun (p : Util.Pareto_front.point) ->
               { Mo_select.delta =
                   (float_of_int tc.workload -. p.value) /. float_of_int tc.period;
                 cost = p.cost })
             tc.front))
      curves

  let base_utilization curves =
    Util.Numeric.sum_byf
      (fun tc -> float_of_int tc.workload /. float_of_int tc.period)
      curves

  let exact curves =
    Mo_select.exact_front ~base:(base_utilization curves) (entities curves)

  let approx ~eps curves =
    Mo_select.approx_front ~eps ~base:(base_utilization curves) (entities curves)
end
