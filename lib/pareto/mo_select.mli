(** Two-objective selection machinery shared by the intra-task and
    inter-task stages of Chapter 4.

    Both stages are instances of one problem: a list of {e entities}
    (custom-instruction candidates / tasks), each offering a finite set
    of options [{delta; cost}] — choose exactly one option per entity so
    as to trade total cost (silicon area) against total value
    ([base − Σ delta]: workload or utilization).  Provided algorithms:

    - {!exact_front} — pseudo-polynomial DP over the full cost range,
      yielding the exact Pareto curve (thesis §4.2.1's Algorithm DP);
    - {!gap} — the polynomial-time GAP subroutine with the ⌈aᵢⱼ·r/b⌉
      cost transformation (§4.2.1.1);
    - {!approx_front} — the FPTAS of Algorithm 3: a geometric grid over
      the cost range with ratio (1+ε') where ε' = √(1+ε) − 1, one GAP
      call per coordinate, undominated solutions retained.  The result
      ε-covers the exact front with polynomially many points. *)

type option_ = {
  delta : float;  (** value reduction when this option is chosen (≥ 0) *)
  cost : int;  (** silicon cost (≥ 0) *)
}

type entity = option_ array
(** Options of one entity.  A zero option [{delta = 0.; cost = 0}] is
    added automatically if absent (not choosing is always possible). *)

val exact_front : base:float -> entity list -> Util.Pareto_front.point list
(** The exact cost/value Pareto curve.  Runtime O(#options · Σmax-cost).
    Subject to the process-wide {!Engine.Guard.default_spec} budget —
    see {!exact_front_guarded} for what an early stop returns. *)

val exact_front_guarded :
  ?guard:Engine.Guard.t ->
  base:float ->
  entity list ->
  Util.Pareto_front.point list * Engine.Guard.status
(** {!exact_front} under an explicit resource guard (default:
    {!Engine.Guard.default}).  The DP spends guard fuel proportional to
    each entity row's width; on exhaustion it stops between entities
    and returns the front of the entities processed so far with status
    [Partial] — every returned point is still an achievable solution
    (the skipped entities take their zero option), but the front may be
    dominated by the exact one. *)

val gap :
  eps:float ->
  cost_bound:int ->
  value_bound:float ->
  base:float ->
  entity list ->
  Util.Pareto_front.point option
(** [gap ~eps ~cost_bound:c ~value_bound:w ...] either returns a solution
    with cost ≤ c and value ≤ w, or [None], which guarantees no solution
    has cost ≤ c/(1+eps) and value ≤ w (the one-sided GAP guarantee). *)

val approx_front :
  eps:float -> base:float -> entity list -> Util.Pareto_front.point list
(** ε-approximate Pareto curve; polynomial in the input size and 1/ε. *)

val solve_at_cost : cost:int -> base:float -> entity list -> float
(** Minimum achievable value within a cost budget (exact DP restricted to
    one budget) — a convenience for single-budget queries. *)
