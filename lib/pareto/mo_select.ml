type option_ = { delta : float; cost : int }

type entity = option_ array

let with_zero_option entity =
  if Array.exists (fun o -> o.delta = 0. && o.cost = 0) entity then entity
  else Array.append [| { delta = 0.; cost = 0 } |] entity

let normalise entities =
  List.map with_zero_option entities
  |> List.map
       (Array.map (fun o ->
            if o.cost < 0 || o.delta < 0. then
              invalid_arg "Mo_select: negative option"
            else o))

(* Group knapsack: one option per entity, maximise Σ delta subject to a
   per-option cost function and a cell count.  Returns, per cost cell,
   the best delta and the true (untransformed) cost of a solution
   achieving it.

   The guard is ticked once per entity, weighted by the row width (the
   DP's actual work), and an exhausted guard stops the fold between
   entities.  The prefix DP is still sound: every cell holds a choice
   over the processed entities only, and [normalise] gives each entity
   a zero option, so those partial solutions remain achievable — they
   are just possibly dominated by full ones. *)
let group_knapsack ?guard entities ~cells ~scaled_cost =
  let best = Array.make (cells + 1) neg_infinity in
  let true_cost = Array.make (cells + 1) 0 in
  best.(0) <- 0.;
  let rec process = function
    | [] -> ()
    | entity :: rest ->
      let row_ok =
        match guard with
        | None -> true
        | Some g -> Engine.Guard.tick ~cost:(1 + cells) g
      in
      if row_ok then begin
        let next = Array.make (cells + 1) neg_infinity in
        let next_cost = Array.make (cells + 1) 0 in
        for cell = 0 to cells do
          if best.(cell) > neg_infinity then
            Array.iter
              (fun o ->
                let c = cell + scaled_cost o in
                if c <= cells then begin
                  let d = best.(cell) +. o.delta in
                  if d > next.(c) then begin
                    next.(c) <- d;
                    next_cost.(c) <- true_cost.(cell) + o.cost
                  end
                end)
              entity
        done;
        Array.blit next 0 best 0 (cells + 1);
        Array.blit next_cost 0 true_cost 0 (cells + 1);
        process rest
      end
  in
  process entities;
  (best, true_cost)

let exact_front_guarded ?guard ~base entities =
  let guard =
    match guard with Some g -> g | None -> Engine.Guard.default ()
  in
  let entities = normalise entities in
  let total =
    Util.Numeric.sum_by
      (fun e -> Array.fold_left (fun acc o -> max acc o.cost) 0 e)
      entities
  in
  let best, _ =
    group_knapsack ~guard entities ~cells:total ~scaled_cost:(fun o -> o.cost)
  in
  let points = ref [] in
  Array.iteri
    (fun cost d ->
      if d > neg_infinity then
        points := { Util.Pareto_front.cost; value = base -. d } :: !points)
    best;
  (Util.Pareto_front.front !points, Engine.Guard.status guard)

let exact_front ~base entities = fst (exact_front_guarded ~base entities)

let count_options entities =
  Util.Numeric.sum_by Array.length entities

(* One scaled DP: costs mapped by a'= ⌈a·r/b⌉, capped at r cells. *)
let scaled_best ~r ~bound entities =
  let scaled_cost o = Util.Numeric.ceil_div (o.cost * r) (max 1 bound) in
  group_knapsack entities ~cells:r ~scaled_cost

let gap ~eps ~cost_bound ~value_bound ~base entities =
  if eps <= 0. then invalid_arg "Mo_select.gap: eps must be positive";
  let entities = normalise entities in
  if cost_bound <= 0 then None
  else begin
    let n = max 1 (count_options entities) in
    let r = int_of_float (ceil (float_of_int n /. eps)) in
    let best, true_cost = scaled_best ~r ~bound:cost_bound entities in
    let found = ref None in
    Array.iteri
      (fun cell d ->
        if d > neg_infinity && base -. d <= value_bound +. 1e-9 then
          let candidate =
            { Util.Pareto_front.cost = true_cost.(cell); value = base -. d }
          in
          match !found with
          | None -> found := Some candidate
          | Some cur ->
            if
              candidate.value < cur.value
              || (candidate.value = cur.value && candidate.cost < cur.cost)
            then found := Some candidate)
      best;
    !found
  end

let approx_front ~eps ~base entities =
  if eps <= 0. then invalid_arg "Mo_select.approx_front: eps must be positive";
  let entities = normalise entities in
  let eps' = sqrt (1. +. eps) -. 1. in
  let n = max 1 (count_options entities) in
  let r = int_of_float (ceil (float_of_int n /. eps')) in
  let max_cost =
    List.fold_left
      (fun acc e -> Array.fold_left (fun acc o -> max acc o.cost) acc e)
      0 entities
  in
  let upper = max 1 (n * max_cost) in
  (* Geometric grid of cost coordinates with ratio (1 + ε'). *)
  let coords =
    let rec build b acc =
      if b > float_of_int upper then List.rev (upper :: acc)
      else build (b *. (1. +. eps')) (int_of_float (ceil b) :: acc)
    in
    build 1. []
    |> List.sort_uniq compare
  in
  let points = ref [ { Util.Pareto_front.cost = 0; value = base } ] in
  List.iter
    (fun b ->
      let best, true_cost = scaled_best ~r ~bound:b entities in
      (* Best value achievable at this coordinate. *)
      let best_point = ref None in
      Array.iteri
        (fun cell d ->
          if d > neg_infinity then
            let p = { Util.Pareto_front.cost = true_cost.(cell); value = base -. d } in
            match !best_point with
            | None -> best_point := Some p
            | Some cur -> if p.value < cur.value then best_point := Some p)
        best;
      match !best_point with
      | Some p -> points := p :: !points
      | None -> ())
    coords;
  Util.Pareto_front.front !points

let solve_at_cost ~cost ~base entities =
  let entities = normalise entities in
  let cells = max 0 cost in
  let best, _ = group_knapsack entities ~cells ~scaled_cost:(fun o -> o.cost) in
  let d = Array.fold_left Float.max neg_infinity best in
  base -. d
