(** A self-contained random test case for the differential property
    suite.

    One instance carries everything any property may need — a periodic
    task set with configuration curves, an area budget, an approximation
    parameter and a DFG — so that a single value can be generated,
    shrunk, serialised to a repro file and replayed without knowing
    which property consumes which part.

    The specs are plain data (no abstract library types) so the shrinker
    can edit them structurally and the repro codec can round-trip them
    exactly; {!tasks} and {!dfg} materialise the library values on
    demand. *)

type curve_point = { area : int; cycles : int }

type task_spec = {
  period : int;
  base : int;  (** software-only cycles *)
  points : curve_point list;  (** custom configurations beyond software *)
}

type dfg_spec = {
  kinds : Ir.Op.kind list;  (** node operations, ids are list positions *)
  edges : (int * int) list;  (** data dependences, src < dst *)
  live_outs : int list;  (** nodes whose value escapes the block *)
}

type t = {
  tasks : task_spec list;
  budget : int;  (** shared silicon budget, deci-adders *)
  eps : float;  (** approximation parameter for the FPTAS properties *)
  dfg : dfg_spec;
}

val valid : t -> bool
(** The specs satisfy every constructor precondition ({!tasks} and
    {!dfg} will not raise): positive periods and bases, no configuration
    slower than software, in-range DAG edges respecting operand arities,
    non-negative budget, positive eps. *)

val tasks : t -> Rt.Task.t list
(** Materialise the task set (names [t0], [t1], ...). *)

val dfg : t -> Ir.Dfg.t
(** Materialise the data-flow graph. *)

val size : t -> int
(** Structural size the shrinker minimises: counts tasks, curve points,
    DFG nodes and edges, plus the magnitudes of periods, cycle counts,
    areas and the budget — so halving a parameter is also progress. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Serialise for repro files; inverse of {!Repro.instance_of_json}. *)
