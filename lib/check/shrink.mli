(** Greedy counterexample minimisation.

    Given a failing instance and a predicate that re-runs the failing
    property, repeatedly applies structural simplifications — drop a
    task, drop a curve point, shrink the budget, halve periods and
    cycle counts, drop DFG nodes and edges, round eps — keeping a
    transformation whenever the smaller instance still fails.  The
    result is a local minimum: no single simplification preserves the
    failure. *)

val candidates : Instance.t -> Instance.t list
(** All one-step simplifications of an instance, most aggressive first,
    restricted to {!Instance.valid} results that are strictly smaller
    under {!Instance.size} (eps rounding, which does not change the
    size, is also offered). *)

val shrink :
  ?max_steps:int ->
  still_fails:(Instance.t -> bool) ->
  Instance.t ->
  Instance.t * int
(** [shrink ~still_fails inst] greedily minimises [inst]; returns the
    shrunk instance and the number of accepted steps ([max_steps]
    defaults to 500). *)
