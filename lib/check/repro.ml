(* ---------------------------------------------------------------- *)
(* A minimal JSON reader — just enough for the repro schema.         *)
(* ---------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let is_hex = function
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
             | _ -> false
           in
           (* validate before int_of_string: it accepts '_' and '+' and
              raises Failure (not Parse_error) on garbage *)
           if not (String.for_all is_hex hex) then fail "malformed \\u escape";
           let code = int_of_string ("0x" ^ hex) in
           pos := !pos + 4;
           (* repro content is ASCII; anything else round-trips as '?' *)
           Buffer.add_char buf (if code < 128 then Char.chr code else '?')
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* ---------------------------------------------------------------- *)
(* Schema decoding                                                   *)
(* ---------------------------------------------------------------- *)

let field obj key =
  match obj with
  | Obj fields ->
    (match List.assoc_opt key fields with
     | Some v -> v
     | None -> raise (Parse_error ("missing field " ^ key)))
  | _ -> raise (Parse_error ("expected an object for " ^ key))

(* Past 2^53 a float no longer represents every integer, so [int_of_float]
   would silently return a neighbour of the written value. *)
let max_exact_int = 9007199254740992.0 (* 2^53 *)

let as_int = function
  | Num f when Float.is_integer f && Float.abs f <= max_exact_int -> int_of_float f
  | Num _ -> raise (Parse_error "integer out of exactly-representable range")
  | _ -> raise (Parse_error "expected an integer")

let as_float = function
  | Num f -> f
  | _ -> raise (Parse_error "expected a number")

let as_list = function
  | Arr vs -> vs
  | _ -> raise (Parse_error "expected an array")

let as_string = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let kind_of_name =
  let table = List.map (fun k -> (Ir.Op.name k, k)) Ir.Op.all in
  fun name ->
    match List.assoc_opt name table with
    | Some k -> k
    | None -> raise (Parse_error ("unknown operation " ^ name))

let decode_instance j =
  let task_of j =
    { Instance.period = as_int (field j "period");
      base = as_int (field j "base");
      points =
        List.map
          (fun p ->
            { Instance.area = as_int (field p "area");
              cycles = as_int (field p "cycles") })
          (as_list (field j "points")) }
  in
  let dfg = field j "dfg" in
  { Instance.tasks = List.map task_of (as_list (field j "tasks"));
    budget = as_int (field j "budget");
    eps = as_float (field j "eps");
    dfg =
      { Instance.kinds =
          List.map (fun k -> kind_of_name (as_string k)) (as_list (field dfg "kinds"));
        edges =
          List.map
            (fun e ->
              match as_list e with
              | [ s; d ] -> (as_int s, as_int d)
              | _ -> raise (Parse_error "edge must be a [src, dst] pair"))
            (as_list (field dfg "edges"));
        live_outs = List.map as_int (as_list (field dfg "live_outs")) } }

(* ---------------------------------------------------------------- *)
(* Emission — the exact inverse of [parse] on the repro/batch schema *)
(* ---------------------------------------------------------------- *)

(* Matches the conventions of Engine.Jsonx / Instance.to_json: integral
   doubles in [-2^53, 2^53] print in integer form (as [string_of_int]
   would), everything else via %.17g so doubles survive a round trip.
   Consequently [to_string (parse (to_string j)) = to_string j]. *)
let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f <= max_exact_int then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> num_to_string f
  | Str s -> Engine.Jsonx.string s
  | Arr vs -> "[" ^ String.concat ", " (List.map to_string vs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Engine.Jsonx.string k ^ ": " ^ to_string v) fields)
    ^ "}"

let num_int i = Num (float_of_int i)

let json_of_instance (t : Instance.t) =
  let point (p : Instance.curve_point) =
    Obj [ ("area", num_int p.area); ("cycles", num_int p.cycles) ]
  in
  let task (ts : Instance.task_spec) =
    Obj
      [ ("period", num_int ts.period);
        ("base", num_int ts.base);
        ("points", Arr (List.map point ts.points)) ]
  in
  Obj
    [ ("budget", num_int t.budget);
      ("eps", Num t.eps);
      ("tasks", Arr (List.map task t.tasks));
      ( "dfg",
        Obj
          [ ( "kinds",
              Arr (List.map (fun k -> Str (Ir.Op.name k)) t.dfg.Instance.kinds) );
            ( "edges",
              Arr
                (List.map
                   (fun (s, d) -> Arr [ num_int s; num_int d ])
                   t.dfg.Instance.edges) );
            ("live_outs", Arr (List.map num_int t.dfg.Instance.live_outs)) ] ) ]

let instance_of_json text =
  match decode_instance (parse text) with
  | inst when Instance.valid inst -> Ok inst
  | _ -> Error "instance violates a constructor precondition"
  | exception Parse_error msg -> Error msg

type t = { prop : string; seed : int; instance : Instance.t }

let version = 1

let write ~file ~prop ~seed inst =
  let body =
    Engine.Jsonx.obj
      [ ("version", string_of_int version);
        ("prop", Engine.Jsonx.string prop);
        ("seed", string_of_int seed);
        ("instance", Instance.to_json inst) ]
  in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc body;
      output_char oc '\n');
  Sys.rename tmp file

let read file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text ->
    (match parse text with
     | exception Parse_error msg -> Error msg
     | j ->
       (match
          let v = as_int (field j "version") in
          if v <> version then
            raise (Parse_error (Printf.sprintf "unsupported version %d" v));
          { prop = as_string (field j "prop");
            seed = as_int (field j "seed");
            instance = decode_instance (field j "instance") }
        with
        | r when Instance.valid r.instance -> Ok r
        | _ -> Error "instance violates a constructor precondition"
        | exception Parse_error msg -> Error msg))
