(** Replayable counterexample files.

    A repro file is one JSON object — property name, the seed the run
    started from, and the (shrunk) instance — written with
    {!Engine.Jsonx} and read back with the small JSON parser this
    module carries (parsing deliberately stays out of [lib/engine]).
    [isecustom check replay FILE] re-runs exactly the recorded property
    on exactly the recorded instance. *)

val write : file:string -> prop:string -> seed:int -> Instance.t -> unit
(** Atomically write a repro file (temp file + rename). *)

type t = { prop : string; seed : int; instance : Instance.t }

val read : string -> (t, string) result
(** Parse a repro file; [Error] carries a human-readable reason. *)

val instance_of_json : string -> (Instance.t, string) result
(** Decode just an instance object — exposed for round-trip tests. *)
