(** Replayable counterexample files, and the JSON codec they ride on.

    A repro file is one JSON object — property name, the seed the run
    started from, and the (shrunk) instance — written with
    {!Engine.Jsonx} and read back with the small JSON parser this
    module carries (parsing deliberately stays out of [lib/engine]).
    [isecustom check replay FILE] re-runs exactly the recorded property
    on exactly the recorded instance.

    The parser and emitter are also the wire codec of the batch request
    protocol ([lib/engine/batch]), so the full JSON surface is exposed
    here rather than kept private to the repro reader. *)

(** {1 JSON values} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
(** Recursive-descent parse of a complete JSON document.  Raises
    {!Parse_error} (never any other exception) on malformed input,
    including trailing content. *)

val to_string : json -> string
(** Deterministic emission matching the {!Engine.Jsonx} conventions:
    [", "]-separated members, integral doubles in [[-2^53, 2^53]] in
    integer form, other numbers via [%.17g] (exact double round-trip),
    non-finite numbers as [null].  On that domain
    [to_string (parse (to_string j)) = to_string j], which is what the
    batch memo tables rely on for byte-identical warm results. *)

(** {1 Schema accessors}

    All raise {!Parse_error} on a type or range mismatch. *)

val field : json -> string -> json
(** First binding of the key in an object. *)

val as_int : json -> int
(** Integral [Num] within the exactly-representable range ±2^53. *)

val as_float : json -> float

val as_string : json -> string

val as_list : json -> json list

(** {1 Instances} *)

val decode_instance : json -> Instance.t
(** Decode an instance object ({!Instance.to_json} schema).  Raises
    {!Parse_error}; does not check {!Instance.valid}. *)

val json_of_instance : Instance.t -> json
(** The same schema as a value; [to_string (json_of_instance i)] equals
    [Instance.to_json i] byte for byte (asserted in the test suite). *)

val instance_of_json : string -> (Instance.t, string) result
(** Decode and validate just an instance object. *)

(** {1 Repro files} *)

val write : file:string -> prop:string -> seed:int -> Instance.t -> unit
(** Atomically write a repro file (temp file + rename). *)

type t = { prop : string; seed : int; instance : Instance.t }

val read : string -> (t, string) result
(** Parse a repro file; [Error] carries a human-readable reason. *)
