type config = {
  seed : int;
  budget : int;
  suites : string list;
  repro_dir : string;
}

let default = { seed = 42; budget = 200; suites = []; repro_dir = "." }

type failure = {
  prop : string;
  suite : string;
  case : int;
  message : string;
  shrunk : Instance.t;
  shrink_steps : int;
  repro_file : string option;
}

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

let ok s = s.failures = []

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* Independent stream per property: mixing the name into the seed keeps
   one property's draws stable when others are added or filtered out. *)
let prng_for ~seed (p : Prop.t) =
  Util.Prng.create (seed lxor (Hashtbl.hash p.Prop.name * 0x1000193))

let still_fails (p : Prop.t) inst =
  match p.Prop.run inst with
  | Prop.Fail _ -> true
  | Prop.Pass | Prop.Skip _ -> false

let write_repro ~config ~seed (p : Prop.t) shrunk =
  let file =
    Filename.concat config.repro_dir
      (Printf.sprintf "repro-%s-%d.json" p.Prop.name seed)
  in
  match Repro.write ~file ~prop:p.Prop.name ~seed shrunk with
  | () -> Some file
  | exception (Sys_error _ | Unix.Unix_error _) -> None

let run_property ~fmt ~config (p : Prop.t) =
  Engine.Trace.with_span "check.property" ~attrs:[ ("prop", p.Prop.name) ]
  @@ fun () ->
  let prng = prng_for ~seed:config.seed p in
  let passed = ref 0 and skipped = ref 0 in
  let failure = ref None in
  let case = ref 0 in
  while !failure = None && !case < config.budget do
    let inst = Gen.instance (Util.Prng.split prng) in
    Obs.Metrics.inc ~labels:[ ("suite", p.Prop.suite) ] "check.cases";
    (match p.Prop.run inst with
     | Prop.Pass -> incr passed
     | Prop.Skip _ -> incr skipped
     | Prop.Fail message ->
       Obs.Metrics.inc ~labels:[ ("suite", p.Prop.suite) ] "check.failures";
       Engine.Log.err "check: %s/%s failed at case %d: %s" p.Prop.suite
         p.Prop.name !case message;
       let shrunk, shrink_steps =
         Shrink.shrink ~still_fails:(still_fails p) inst
       in
       let message =
         match p.Prop.run shrunk with
         | Prop.Fail m -> m
         | Prop.Pass | Prop.Skip _ -> message
       in
       let repro_file = write_repro ~config ~seed:config.seed p shrunk in
       (match repro_file with
        | Some file -> Engine.Log.err "check: repro written to %s" file
        | None ->
          Engine.Log.warn "check: could not write a repro file under %s"
            config.repro_dir);
       failure :=
         Some
           { prop = p.Prop.name;
             suite = p.Prop.suite;
             case = !case;
             message;
             shrunk;
             shrink_steps;
             repro_file });
    incr case
  done;
  (match !failure with
   | None ->
     Format.fprintf fmt "  %-34s ok   (%d cases, %d skipped)@." p.Prop.name
       !passed !skipped
   | Some f ->
     Format.fprintf fmt "  %-34s FAIL at case %d: %s@." p.Prop.name f.case
       f.message;
     Format.fprintf fmt "    shrunk %d step%s to size %d%s@." f.shrink_steps
       (if f.shrink_steps = 1 then "" else "s")
       (Instance.size f.shrunk)
       (match f.repro_file with
        | Some file -> Printf.sprintf "; replay with `check replay %s'" file
        | None -> ""));
  (!case, !passed, !skipped, !failure)

let run ?(fmt = null_fmt) ?props config =
  Engine.Trace.with_span "check.run" @@ fun () ->
  let props =
    match props with Some ps -> ps | None -> Prop.in_suites config.suites
  in
  let by_suite =
    List.fold_left
      (fun acc (p : Prop.t) ->
        if List.mem_assoc p.Prop.suite acc then acc
        else acc @ [ (p.Prop.suite, List.filter (fun (q : Prop.t) -> q.Prop.suite = p.Prop.suite) props) ])
      [] props
  in
  let totals = ref (0, 0, 0) and failures = ref [] in
  List.iter
    (fun (suite, ps) ->
      Format.fprintf fmt "suite %s:@." suite;
      List.iter
        (fun p ->
          let cases, passed, skipped, failure = run_property ~fmt ~config p in
          let c, pa, sk = !totals in
          totals := (c + cases, pa + passed, sk + skipped);
          match failure with
          | Some f -> failures := f :: !failures
          | None -> ())
        ps)
    by_suite;
  let cases, passed, skipped = !totals in
  let summary = { cases; passed; skipped; failures = List.rev !failures } in
  Format.fprintf fmt "%d cases: %d passed, %d skipped, %d failure%s@." cases
    passed skipped
    (List.length summary.failures)
    (if List.length summary.failures = 1 then "" else "s");
  summary

let replay ?(fmt = null_fmt) ?(props = Prop.all) file =
  match Repro.read file with
  | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
  | Ok { Repro.prop; seed; instance } ->
    (match List.find_opt (fun (p : Prop.t) -> p.Prop.name = prop) props with
     | None -> Error (Printf.sprintf "%s: unknown property %s" file prop)
     | Some p ->
       Format.fprintf fmt "replaying %s (recorded from seed %d):@.%a@." prop
         seed Instance.pp instance;
       (match p.Prop.run instance with
        | Prop.Pass ->
          Format.fprintf fmt "property now passes@.";
          Ok true
        | Prop.Skip reason ->
          Format.fprintf fmt "instance out of domain (%s)@." reason;
          Ok true
        | Prop.Fail message ->
          Format.fprintf fmt "failure reproduces: %s@." message;
          Ok false))

(* Drive every wired fault-injection point with probability 1 and prove
   the surrounding resilience code survives it: a selftest for the
   failure paths themselves, complementing [selftest] below which
   validates the bug-finding side of the harness. *)
exception Stage_failed of string

let fault_selftest ?(fmt = null_fmt) () =
  let check cond msg = if not cond then raise (Stage_failed msg) in
  let point p ?(cap = 1) () =
    Engine.Fault.configure
      { Engine.Fault.seed = 42;
        points = [ (p, { Engine.Fault.prob = 1.; cap = Some cap }) ] }
  in
  let counter = Engine.Telemetry.counter in
  let injected_since before p =
    check
      (counter "fault.injected" > before)
      (p ^ ": fault.injected telemetry did not increase");
    check (Engine.Fault.fired p >= 1) (p ^ ": the point never fired")
  in
  let ns = "faultcheck" in
  let value = [ 3; 1; 4; 1; 5 ] in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "isecustom-faults-%d" (Unix.getpid ()))
  in
  let saved_dir = Engine.Cache.dir () in
  let saved_enabled = Engine.Cache.enabled () in
  (* the injected failures rightly produce cache warnings; keep them off
     stderr — the selftest's verdict is the signal *)
  let saved_level = Engine.Log.level () in
  Engine.Log.set_level Engine.Log.Error;
  Fun.protect
    ~finally:(fun () ->
      Engine.Fault.disable ();
      Engine.Log.set_level saved_level;
      ignore (Engine.Cache.clear ());
      (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
      Engine.Cache.set_dir saved_dir;
      Engine.Cache.set_enabled saved_enabled)
    (fun () ->
      Engine.Cache.set_dir tmp;
      Engine.Cache.set_enabled true;
      let stages =
        [ ( "cache.write",
            fun () ->
              let before = counter "fault.injected" in
              let failed_before = counter "cache.write_failed" in
              point "cache.write" ();
              Engine.Cache.store ~namespace:ns ~key:"w" value;
              injected_since before "cache.write";
              check
                (counter "cache.write_failed" = failed_before + 1)
                "cache.write: write_failed counter did not increase";
              (* the cap is spent: the retry persists and reads back *)
              Engine.Cache.store ~namespace:ns ~key:"w" value;
              check
                (Engine.Cache.find ~namespace:ns ~key:"w" () = Some value)
                "cache.write: re-store after the fault does not read back" );
          ( "cache.truncate",
            fun () ->
              let before = counter "fault.injected" in
              let corrupt_before = counter "cache.corrupt" in
              point "cache.truncate" ();
              Engine.Cache.store ~namespace:ns ~key:"t" value;
              injected_since before "cache.truncate";
              check
                (Engine.Cache.find ~namespace:ns ~key:"t" () = None)
                "cache.truncate: torn entry still reads as a hit";
              check
                (counter "cache.corrupt" > corrupt_before)
                "cache.truncate: torn entry not counted as corruption";
              Engine.Cache.store ~namespace:ns ~key:"t" value;
              check
                (Engine.Cache.find ~namespace:ns ~key:"t" () = Some value)
                "cache.truncate: recomputed entry does not read back" );
          ( "cache.read",
            fun () ->
              Engine.Fault.disable ();
              Engine.Cache.store ~namespace:ns ~key:"r" value;
              let before = counter "fault.injected" in
              point "cache.read" ();
              check
                (Engine.Cache.find ~namespace:ns ~key:"r" () = None)
                "cache.read: injected read error still reads as a hit";
              injected_since before "cache.read";
              (* intact on disk: once the cap is spent the entry is back *)
              check
                (Engine.Cache.find ~namespace:ns ~key:"r" () = Some value)
                "cache.read: entry lost after a transient read fault" );
          ( "parallel.worker",
            fun () ->
              let before = counter "fault.injected" in
              let recovered_before = counter "parallel.recovered" in
              point "parallel.worker" ();
              let outcomes =
                List.map
                  (Engine.Parallel.Pool.isolate ~attempts:2 (fun x -> x * x))
                  [ 1; 2; 3 ]
              in
              injected_since before "parallel.worker";
              check
                (outcomes = [ Ok 1; Ok 4; Ok 9 ])
                "parallel.worker: transient crash not retried to success";
              check
                (counter "parallel.recovered" > recovered_before)
                "parallel.worker: recovery not counted";
              (* a permanent failure is isolated to its slot *)
              Engine.Fault.disable ();
              let failed_before = counter "parallel.item_failed" in
              let outcomes =
                List.map
                  (Engine.Parallel.Pool.isolate ~attempts:2 (fun x ->
                       if x = 2 then failwith "permanent" else x * x))
                  [ 1; 2; 3 ]
              in
              (match outcomes with
               | [ Ok 1; Error _; Ok 9 ] -> ()
               | _ ->
                 raise
                   (Stage_failed
                      "parallel.worker: permanent failure not isolated to \
                       its item"));
              check
                (counter "parallel.item_failed" > failed_before)
                "parallel.worker: permanent failure not counted" );
          ( "guard.exhaust",
            fun () ->
              let before = counter "fault.injected" in
              let exhausted_before = counter "guard.exhausted" in
              point "guard.exhaust" ();
              let g = Engine.Guard.create ~fuel:1_000 () in
              check
                (not (Engine.Guard.tick g))
                "guard.exhaust: tick survived a forced exhaustion";
              injected_since before "guard.exhaust";
              check
                (Engine.Guard.status g
                 = Engine.Guard.Partial Engine.Guard.Injected)
                "guard.exhaust: status is not Partial Injected";
              check
                (counter "guard.exhausted" > exhausted_before)
                "guard.exhaust: exhaustion not counted" ) ]
      in
      match
        List.iter
          (fun (name, stage) ->
            stage ();
            Engine.Fault.disable ();
            Format.fprintf fmt "  %-18s survived@." name)
          stages
      with
      | () ->
        Ok
          (Printf.sprintf
             "all %d injection points fired and were survived"
             (List.length stages))
      | exception Stage_failed msg -> Error msg)

(* An off-by-one in the DP's area budget: the classic bug class the
   differential suite exists to catch.  Dropping one deci-adder changes
   the optimum exactly when the true optimum needs the full budget. *)
let broken_edf ~budget tasks = Core.Edf_select.run ~budget:(max 0 (budget - 1)) tasks

let selftest ?(fmt = null_fmt) ~seed ~repro_dir () =
  let prop = Prop.edf_against ~name:"selftest_edf_off_by_one" broken_edf in
  let config = { default with seed; budget = 2000; repro_dir } in
  Format.fprintf fmt "self-test: EDF DP with an off-by-one budget injected@.";
  let summary = run ~fmt ~props:[ prop ] config in
  match summary.failures with
  | [] ->
    Error
      (Printf.sprintf
         "injected off-by-one survived %d random cases — the harness is blind"
         summary.cases)
  | f :: _ ->
    (match f.repro_file with
     | None -> Error "bug caught but no repro file could be written"
     | Some file ->
       (match replay ~fmt ~props:[ prop ] file with
        | Ok false ->
          Ok
            (Printf.sprintf
               "injected bug caught at case %d, shrunk %d steps to size %d, \
                repro %s replays the failure"
               f.case f.shrink_steps (Instance.size f.shrunk) file)
        | Ok true -> Error "shrunk repro no longer fails on replay"
        | Error msg -> Error msg))
