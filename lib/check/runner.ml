type config = {
  seed : int;
  budget : int;
  suites : string list;
  repro_dir : string;
}

let default = { seed = 42; budget = 200; suites = []; repro_dir = "." }

type failure = {
  prop : string;
  suite : string;
  case : int;
  message : string;
  shrunk : Instance.t;
  shrink_steps : int;
  repro_file : string option;
}

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

let ok s = s.failures = []

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* Independent stream per property: mixing the name into the seed keeps
   one property's draws stable when others are added or filtered out. *)
let prng_for ~seed (p : Prop.t) =
  Util.Prng.create (seed lxor (Hashtbl.hash p.Prop.name * 0x1000193))

let still_fails (p : Prop.t) inst =
  match p.Prop.run inst with
  | Prop.Fail _ -> true
  | Prop.Pass | Prop.Skip _ -> false

let write_repro ~config ~seed (p : Prop.t) shrunk =
  let file =
    Filename.concat config.repro_dir
      (Printf.sprintf "repro-%s-%d.json" p.Prop.name seed)
  in
  match Repro.write ~file ~prop:p.Prop.name ~seed shrunk with
  | () -> Some file
  | exception (Sys_error _ | Unix.Unix_error _) -> None

let run_property ~fmt ~config (p : Prop.t) =
  Engine.Trace.with_span "check.property" ~attrs:[ ("prop", p.Prop.name) ]
  @@ fun () ->
  let prng = prng_for ~seed:config.seed p in
  let passed = ref 0 and skipped = ref 0 in
  let failure = ref None in
  let case = ref 0 in
  while !failure = None && !case < config.budget do
    let inst = Gen.instance (Util.Prng.split prng) in
    Engine.Telemetry.incr "check.cases";
    (match p.Prop.run inst with
     | Prop.Pass -> incr passed
     | Prop.Skip _ -> incr skipped
     | Prop.Fail message ->
       Engine.Telemetry.incr "check.failures";
       Engine.Log.err "check: %s/%s failed at case %d: %s" p.Prop.suite
         p.Prop.name !case message;
       let shrunk, shrink_steps =
         Shrink.shrink ~still_fails:(still_fails p) inst
       in
       let message =
         match p.Prop.run shrunk with
         | Prop.Fail m -> m
         | Prop.Pass | Prop.Skip _ -> message
       in
       let repro_file = write_repro ~config ~seed:config.seed p shrunk in
       (match repro_file with
        | Some file -> Engine.Log.err "check: repro written to %s" file
        | None ->
          Engine.Log.warn "check: could not write a repro file under %s"
            config.repro_dir);
       failure :=
         Some
           { prop = p.Prop.name;
             suite = p.Prop.suite;
             case = !case;
             message;
             shrunk;
             shrink_steps;
             repro_file });
    incr case
  done;
  (match !failure with
   | None ->
     Format.fprintf fmt "  %-34s ok   (%d cases, %d skipped)@." p.Prop.name
       !passed !skipped
   | Some f ->
     Format.fprintf fmt "  %-34s FAIL at case %d: %s@." p.Prop.name f.case
       f.message;
     Format.fprintf fmt "    shrunk %d step%s to size %d%s@." f.shrink_steps
       (if f.shrink_steps = 1 then "" else "s")
       (Instance.size f.shrunk)
       (match f.repro_file with
        | Some file -> Printf.sprintf "; replay with `check replay %s'" file
        | None -> ""));
  (!case, !passed, !skipped, !failure)

let run ?(fmt = null_fmt) ?props config =
  Engine.Trace.with_span "check.run" @@ fun () ->
  let props =
    match props with Some ps -> ps | None -> Prop.in_suites config.suites
  in
  let by_suite =
    List.fold_left
      (fun acc (p : Prop.t) ->
        if List.mem_assoc p.Prop.suite acc then acc
        else acc @ [ (p.Prop.suite, List.filter (fun (q : Prop.t) -> q.Prop.suite = p.Prop.suite) props) ])
      [] props
  in
  let totals = ref (0, 0, 0) and failures = ref [] in
  List.iter
    (fun (suite, ps) ->
      Format.fprintf fmt "suite %s:@." suite;
      List.iter
        (fun p ->
          let cases, passed, skipped, failure = run_property ~fmt ~config p in
          let c, pa, sk = !totals in
          totals := (c + cases, pa + passed, sk + skipped);
          match failure with
          | Some f -> failures := f :: !failures
          | None -> ())
        ps)
    by_suite;
  let cases, passed, skipped = !totals in
  let summary = { cases; passed; skipped; failures = List.rev !failures } in
  Format.fprintf fmt "%d cases: %d passed, %d skipped, %d failure%s@." cases
    passed skipped
    (List.length summary.failures)
    (if List.length summary.failures = 1 then "" else "s");
  summary

let replay ?(fmt = null_fmt) ?(props = Prop.all) file =
  match Repro.read file with
  | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
  | Ok { Repro.prop; seed; instance } ->
    (match List.find_opt (fun (p : Prop.t) -> p.Prop.name = prop) props with
     | None -> Error (Printf.sprintf "%s: unknown property %s" file prop)
     | Some p ->
       Format.fprintf fmt "replaying %s (recorded from seed %d):@.%a@." prop
         seed Instance.pp instance;
       (match p.Prop.run instance with
        | Prop.Pass ->
          Format.fprintf fmt "property now passes@.";
          Ok true
        | Prop.Skip reason ->
          Format.fprintf fmt "instance out of domain (%s)@." reason;
          Ok true
        | Prop.Fail message ->
          Format.fprintf fmt "failure reproduces: %s@." message;
          Ok false))

(* An off-by-one in the DP's area budget: the classic bug class the
   differential suite exists to catch.  Dropping one deci-adder changes
   the optimum exactly when the true optimum needs the full budget. *)
let broken_edf ~budget tasks = Core.Edf_select.run ~budget:(max 0 (budget - 1)) tasks

let selftest ?(fmt = null_fmt) ~seed ~repro_dir () =
  let prop = Prop.edf_against ~name:"selftest_edf_off_by_one" broken_edf in
  let config = { default with seed; budget = 2000; repro_dir } in
  Format.fprintf fmt "self-test: EDF DP with an off-by-one budget injected@.";
  let summary = run ~fmt ~props:[ prop ] config in
  match summary.failures with
  | [] ->
    Error
      (Printf.sprintf
         "injected off-by-one survived %d random cases — the harness is blind"
         summary.cases)
  | f :: _ ->
    (match f.repro_file with
     | None -> Error "bug caught but no repro file could be written"
     | Some file ->
       (match replay ~fmt ~props:[ prop ] file with
        | Ok false ->
          Ok
            (Printf.sprintf
               "injected bug caught at case %d, shrunk %d steps to size %d, \
                repro %s replays the failure"
               f.case f.shrink_steps (Instance.size f.shrunk) file)
        | Ok true -> Error "shrunk repro no longer fails on replay"
        | Error msg -> Error msg))
