(** The differential property suite: every solver pair checked against
    a brute-force oracle or an independent re-implementation on random
    instances.

    Suites: [select] (Chapter 3 DP / branch-and-bound / heuristics vs
    exhaustive enumeration), [sched] (Bini–Buttazzo exact RMS test vs
    response-time analysis), [pareto] (exact DP front vs cross-product
    enumeration, FPTAS ε-cover), [curve] (identification pipeline
    invariants on random DFGs), [engine] (cache round-trip and
    corruption tolerance, parallel ≡ sequential). *)

type outcome =
  | Pass
  | Fail of string  (** counterexample description *)
  | Skip of string  (** instance out of the property's domain *)

type t = {
  name : string;
  suite : string;
  run : Instance.t -> outcome;
}

val all : t list
(** Every property, grouped by suite. *)

val suites : string list
(** Distinct suite names, in declaration order. *)

val find : string -> t option
(** Look a property up by name in {!all}. *)

val in_suites : string list -> t list
(** Properties whose suite is in the list ([[]] means all). *)

val edf_against :
  name:string -> (budget:int -> Rt.Task.t list -> Core.Selection.t) -> t
(** The EDF-vs-oracle differential property with the solver under test
    swapped out — the hook the self-test uses to inject a deliberately
    broken solver and prove the harness catches and shrinks it. *)
