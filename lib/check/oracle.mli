(** Brute-force reference oracles for small instances.

    Every oracle is an independent re-implementation — exhaustive
    enumeration instead of dynamic programming, response-time analysis
    instead of the Bini–Buttazzo point test, cross-product Pareto
    enumeration instead of the DP front — so that a bug shared with the
    production solver cannot mask itself.  All are exponential (or
    pseudo-polynomial with no cleverness) and must only be fed the small
    instances {!Gen} produces; {!combination_count} lets properties skip
    pathological cases.

    The optional [guard] is a hard stop, not a degradation: an anytime
    partial oracle could silently agree with a buggy solver, so an
    exhausted guard raises {!Engine.Guard.Exhausted} (one fuel unit per
    enumerated assignment / option combination) and the calling
    property turns it into a skip. *)

val combination_count : Rt.Task.t list -> int
(** Π curve sizes — the number of assignments the selection oracles
    enumerate (saturates at [max_int] on overflow). *)

val selections :
  ?guard:Engine.Guard.t -> budget:int -> Rt.Task.t list -> Core.Selection.t list
(** Every full assignment within the area budget, in enumeration
    order. *)

val edf_best :
  ?guard:Engine.Guard.t -> budget:int -> Rt.Task.t list -> Core.Selection.t
(** Minimum-utilization in-budget assignment (ties broken towards
    smaller area); the software assignment when nothing else fits. *)

val rms_best :
  ?guard:Engine.Guard.t ->
  budget:int ->
  Rt.Task.t list ->
  Core.Selection.t option
(** Minimum-utilization in-budget assignment that passes
    {!response_time_schedulable}; [None] when no assignment does. *)

val response_time_schedulable : (int * int) list -> bool
(** Exact RMS test by response-time analysis: [(cycles, period)] pairs,
    sorted here by increasing period; task [i]'s response time is the
    least fixpoint of [R = Cᵢ + Σ_{j<i} ⌈R/Pⱼ⌉·Cⱼ], schedulable iff
    every fixpoint is ≤ the period.  Independent of
    {!Rt.Sched.rms_schedulable}'s Bini–Buttazzo recurrence. *)

val pareto_exhaustive :
  ?guard:Engine.Guard.t ->
  base:float ->
  Pareto.Mo_select.entity list ->
  Util.Pareto_front.point list
(** Exact cost/value Pareto front by enumerating the full cross product
    of entity options (a zero option is added per entity, mirroring
    {!Pareto.Mo_select}'s convention) and filtering dominated points. *)
