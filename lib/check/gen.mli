(** Random-but-valid workload generators, all driven by the splittable
    seeded {!Util.Prng} so that every draw replays from a seed.

    Instances are kept deliberately small: the differential properties
    compare the production solvers against brute-force oracles whose
    cost is exponential in the instance size. *)

val uunifast : Util.Prng.t -> n:int -> total:float -> float list
(** UUniFast (Bini–Buttazzo): [n] task utilizations, each positive,
    summing to [total], uniformly distributed over the simplex.
    Requires [n >= 1] and [total > 0]. *)

val task_set : Util.Prng.t -> Instance.task_spec list
(** 1–4 periodic tasks with random configuration curves; periods follow
    UUniFast utilization sampling around a target total in [0.4, 1.6]
    and are made pairwise distinct so RMS priorities are unambiguous. *)

val budget_for : Util.Prng.t -> Instance.task_spec list -> int
(** A shared area budget in [0, Σ max-areas + 10] — spanning "nothing
    fits" through "everything fits". *)

val dfg_spec : Util.Prng.t -> Instance.dfg_spec
(** A random DAG of 1–14 operations (including ISE-ineligible loads,
    stores and branches), forward edges respecting operand arities, and
    random live-out marks — the shape {!Ise.Enumerate} consumes. *)

val instance : Util.Prng.t -> Instance.t
(** A full instance: independent child generators ({!Util.Prng.split})
    drive each component.  Always {!Instance.valid}. *)
