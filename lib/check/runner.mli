(** Drives the property suites: generate → run → on failure shrink and
    write a replayable repro file.

    Determinism: each property gets its own child generator derived
    from the run seed and the property name, so adding or filtering
    properties never perturbs another property's random stream, and
    [--seed N] replays the exact same instances. *)

type config = {
  seed : int;
  budget : int;  (** random cases per property *)
  suites : string list;  (** suite filter; [[]] means every suite *)
  repro_dir : string;  (** where failure repro files are written *)
}

val default : config
(** seed 42, budget 200, all suites, repros in the working directory. *)

type failure = {
  prop : string;
  suite : string;
  case : int;  (** 0-based index of the failing case *)
  message : string;
  shrunk : Instance.t;
  shrink_steps : int;
  repro_file : string option;  (** [None] if writing the file failed *)
}

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

val ok : summary -> bool

val run : ?fmt:Format.formatter -> ?props:Prop.t list -> config -> summary
(** Run every selected property for [config.budget] cases each,
    stopping a property at its first failure (which is then shrunk and
    persisted).  Progress and failures go to [fmt] (default a null
    formatter) and to {!Engine.Log}; counters land in
    {!Engine.Telemetry} ([check.cases], [check.failures]).  [props]
    overrides the suite selection (the self-test injects a broken
    solver this way). *)

val replay : ?fmt:Format.formatter -> ?props:Prop.t list -> string -> (bool, string) result
(** Re-run a repro file's property on its recorded instance: [Ok true]
    when the property now passes, [Ok false] when the failure
    reproduces, [Error] when the file is unreadable or names an unknown
    property. *)

val fault_selftest : ?fmt:Format.formatter -> unit -> (string, string) result
(** Drive every wired {!Engine.Fault} injection point (cache.write,
    cache.truncate, cache.read, parallel.worker, guard.exhaust) at
    probability 1 against a throwaway cache directory, asserting that
    each fires (the ["fault.injected"] telemetry increases) and that the
    surrounding resilience code survives it with the documented
    degradation.  [Ok] summarises the points exercised; [Error] names
    the first unsurvived failure.  Restores the fault, cache and log
    configuration on exit. *)

val selftest :
  ?fmt:Format.formatter -> seed:int -> repro_dir:string -> unit -> (string, string) result
(** End-to-end harness validation: inject an off-by-one bug into the
    EDF DP's budget, prove the differential property catches it, shrink
    the counterexample, write its repro file and confirm {!replay}
    reproduces the failure.  [Ok] describes the catch; [Error] means
    the harness failed to detect the injected bug. *)
