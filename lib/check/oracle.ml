let combination_count tasks =
  List.fold_left
    (fun acc (t : Rt.Task.t) ->
      let n = Isa.Config.size t.curve in
      if acc > max_int / max n 1 then max_int else acc * n)
    1 tasks

(* The oracles are exhaustive by design, so an anytime partial answer
   would be worse than useless — it could silently agree with a buggy
   solver.  A guard therefore does not degrade them: [check_exn] raises
   [Engine.Guard.Exhausted] and the caller (a property) skips the case,
   keeping the differential verdicts all-or-nothing. *)
let oracle_tick guard =
  match guard with Some g -> Engine.Guard.check_exn g | None -> ()

let selections ?guard ~budget tasks =
  let rec explore acc = function
    | [] ->
      oracle_tick guard;
      let sel = Core.Selection.of_assignment (List.rev acc) in
      if sel.Core.Selection.area <= budget then [ sel ] else []
    | (task : Rt.Task.t) :: rest ->
      Array.fold_left
        (fun sels p -> sels @ explore ((task, p) :: acc) rest)
        []
        (Isa.Config.points task.curve)
  in
  explore [] tasks

let better (a : Core.Selection.t) (b : Core.Selection.t) =
  a.utilization < b.utilization -. 1e-12
  || (Float.abs (a.utilization -. b.utilization) <= 1e-12 && a.area < b.area)

let edf_best ?guard ~budget tasks =
  List.fold_left
    (fun best sel -> if better sel best then sel else best)
    (Core.Selection.software tasks)
    (selections ?guard ~budget tasks)

let response_time_schedulable pairs =
  let by_priority =
    List.stable_sort (fun (_, p1) (_, p2) -> compare p1 p2) pairs
    |> Array.of_list
  in
  let n = Array.length by_priority in
  let rec fits i =
    if i = n then true
    else begin
      let ci, pi = by_priority.(i) in
      (* least fixpoint of R = Cᵢ + Σ_{j<i} ⌈R/Pⱼ⌉ Cⱼ, abandoned past
         the deadline Pᵢ *)
      let rec iterate r =
        let demand = ref ci in
        for j = 0 to i - 1 do
          let cj, pj = by_priority.(j) in
          demand := !demand + (Util.Numeric.ceil_div r pj * cj)
        done;
        if !demand = r then r <= pi
        else if !demand > pi then false
        else iterate !demand
      in
      (ci = 0 || iterate ci) && fits (i + 1)
    end
  in
  fits 0

let rms_best ?guard ~budget tasks =
  List.fold_left
    (fun best sel ->
      let pairs =
        List.map
          (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
          sel.Core.Selection.assignment
      in
      if not (response_time_schedulable pairs) then best
      else
        match best with
        | None -> Some sel
        | Some b -> if better sel b then Some sel else best)
    None
    (selections ?guard ~budget tasks)

let pareto_exhaustive ?guard ~base entities =
  let with_zero (e : Pareto.Mo_select.entity) =
    if Array.exists (fun (o : Pareto.Mo_select.option_) -> o.cost = 0 && o.delta = 0.) e
    then e
    else Array.append [| { Pareto.Mo_select.delta = 0.; cost = 0 } |] e
  in
  let rec explore cost delta = function
    | [] ->
      oracle_tick guard;
      [ { Util.Pareto_front.cost; value = base -. delta } ]
    | e :: rest ->
      Array.fold_left
        (fun acc (o : Pareto.Mo_select.option_) ->
          acc @ explore (cost + o.cost) (delta +. o.delta) rest)
        [] (with_zero e)
  in
  Util.Pareto_front.front (explore 0 0. entities)
