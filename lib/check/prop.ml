type outcome = Pass | Fail of string | Skip of string

type t = {
  name : string;
  suite : string;
  run : Instance.t -> outcome;
}

let tol = 1e-9

(* Oracles enumerate the full assignment cross product; anything the
   generator emits is far below this, but shrink intermediates and
   replayed hand-edited repros go through the same guard. *)
let combo_cap = 20_000

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let pairs_of (sel : Core.Selection.t) =
  List.map
    (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
    sel.assignment

let distinct_periods tasks =
  let periods = List.map (fun (t : Rt.Task.t) -> t.period) tasks in
  List.length periods = List.length (List.sort_uniq compare periods)

let with_tasks inst k =
  let tasks = Instance.tasks inst in
  if Oracle.combination_count tasks > combo_cap then
    Skip "assignment space too large for the oracle"
  else k tasks

(* Belt and braces on top of [combo_cap]: the oracles run under a
   generous deterministic fuel budget, so an adversarial instance that
   slips past the size check (a hand-edited repro, a pathological
   shrink intermediate) reads as a skip instead of hanging the suite. *)
let oracle_fuel = 5_000_000

let with_oracle k =
  match k (Engine.Guard.create ~fuel:oracle_fuel ()) with
  | exception Engine.Guard.Exhausted _ -> Skip "oracle fuel budget exhausted"
  | (outcome : outcome) -> outcome

(* ---------------------------------------------------------------- *)
(* select                                                           *)
(* ---------------------------------------------------------------- *)

let edf_against ~name solver =
  { name;
    suite = "select";
    run =
      (fun inst ->
        with_tasks inst @@ fun tasks ->
        with_oracle @@ fun og ->
        let got = solver ~budget:inst.budget tasks in
        let want = Oracle.edf_best ~guard:og ~budget:inst.budget tasks in
        if got.Core.Selection.area > inst.budget then
          failf "selection area %d exceeds budget %d" got.Core.Selection.area
            inst.budget
        else if
          Float.abs (got.Core.Selection.utilization -. want.Core.Selection.utilization)
          > tol
        then
          failf "utilization %.9f, oracle %.9f at budget %d"
            got.Core.Selection.utilization want.Core.Selection.utilization
            inst.budget
        else Pass) }

let edf_dp_matches_oracle =
  edf_against ~name:"edf_dp_matches_oracle" Core.Edf_select.run

let rms_bnb_matches_oracle =
  { name = "rms_bnb_matches_oracle";
    suite = "select";
    run =
      (fun inst ->
        with_tasks inst @@ fun tasks ->
        if not (distinct_periods tasks) then Skip "duplicate periods"
        else
          with_oracle @@ fun og ->
          match
            (Core.Rms_select.run ~budget:inst.budget tasks,
             Oracle.rms_best ~guard:og ~budget:inst.budget tasks)
          with
          | None, None -> Pass
          | Some got, Some want ->
            if got.Core.Selection.area > inst.budget then
              failf "selection area %d exceeds budget %d"
                got.Core.Selection.area inst.budget
            else if
              Float.abs
                (got.Core.Selection.utilization -. want.Core.Selection.utilization)
              > tol
            then
              failf "utilization %.9f, oracle %.9f at budget %d"
                got.Core.Selection.utilization want.Core.Selection.utilization
                inst.budget
            else Pass
          | Some got, None ->
            failf "B&B claims schedulable (U=%.9f), oracle finds none"
              got.Core.Selection.utilization
          | None, Some want ->
            failf "B&B claims infeasible, oracle schedules at U=%.9f"
              want.Core.Selection.utilization) }

let heuristics_bounded_by_optimal =
  { name = "heuristics_bounded_by_optimal";
    suite = "select";
    run =
      (fun inst ->
        with_tasks inst @@ fun tasks ->
        with_oracle @@ fun og ->
        let opt = Oracle.edf_best ~guard:og ~budget:inst.budget tasks in
        let rec check = function
          | [] -> Pass
          | strategy :: rest ->
            let h = Core.Heuristics.run strategy ~budget:inst.budget tasks in
            if h.Core.Selection.area > inst.budget then
              failf "%s spends %d over budget %d"
                (Core.Heuristics.name strategy)
                h.Core.Selection.area inst.budget
            else if
              opt.Core.Selection.utilization
              > h.Core.Selection.utilization +. tol
            then
              failf "%s beats the optimum: %.9f < %.9f"
                (Core.Heuristics.name strategy)
                h.Core.Selection.utilization opt.Core.Selection.utilization
            else check rest
        in
        check Core.Heuristics.all) }

let edf_budget_monotone =
  { name = "edf_budget_monotone";
    suite = "select";
    run =
      (fun inst ->
        let tasks = Instance.tasks inst in
        let u b = (Core.Edf_select.run ~budget:b tasks).Core.Selection.utilization in
        let budgets =
          [ 0; inst.budget; inst.budget + 1; (2 * inst.budget) + 1 ]
        in
        let us = List.map u budgets in
        let rec non_increasing = function
          | a :: (b :: _ as rest) ->
            if a < b -. tol then
              failf "more area raised utilization: %.9f then %.9f" a b
            else non_increasing rest
          | _ -> Pass
        in
        non_increasing us) }

(* Soundness under exhaustion: starve the B&B of fuel and check the
   anytime contract — whatever comes back is a genuine feasible
   schedule no better than the true optimum, and a claimed [Exact]
   status really is the optimum.  Fuel varies with the instance so
   exhaustion lands at many different search depths. *)
let rms_guarded_partial_sound =
  { name = "rms_guarded_partial_sound";
    suite = "select";
    run =
      (fun inst ->
        with_tasks inst @@ fun tasks ->
        if not (distinct_periods tasks) then Skip "duplicate periods"
        else
          with_oracle @@ fun og ->
          let want = Oracle.rms_best ~guard:og ~budget:inst.budget tasks in
          let fuel = 1 + (inst.budget mod 17) in
          let guard = Engine.Guard.create ~fuel () in
          let got, status =
            Core.Rms_select.run_guarded ~guard ~budget:inst.budget tasks
          in
          match (status, got) with
          | Engine.Guard.Exact, None ->
            (match want with
             | None -> Pass
             | Some w ->
               failf "Exact status claims infeasible, oracle schedules at U=%.9f"
                 w.Core.Selection.utilization)
          | Engine.Guard.Exact, Some g ->
            (match want with
             | None ->
               failf "Exact status claims schedulable (U=%.9f), oracle finds none"
                 g.Core.Selection.utilization
             | Some w ->
               if
                 Float.abs
                   (g.Core.Selection.utilization -. w.Core.Selection.utilization)
                 > tol
               then
                 failf "Exact status but utilization %.9f differs from optimum %.9f"
                   g.Core.Selection.utilization w.Core.Selection.utilization
               else Pass)
          | Engine.Guard.Partial _, None ->
            (* ran out before the first incumbent — allowed *)
            Pass
          | Engine.Guard.Partial _, Some g ->
            if g.Core.Selection.area > inst.budget then
              failf "partial incumbent spends %d over budget %d"
                g.Core.Selection.area inst.budget
            else if not (Oracle.response_time_schedulable (pairs_of g)) then
              Fail "partial incumbent is not RMS-schedulable"
            else (
              match want with
              | None ->
                Fail
                  "partial incumbent exists but the oracle finds no schedulable \
                   assignment"
              | Some w ->
                if
                  g.Core.Selection.utilization
                  < w.Core.Selection.utilization -. tol
                then
                  failf "partial incumbent beats the true optimum: %.9f < %.9f"
                    g.Core.Selection.utilization w.Core.Selection.utilization
                else Pass)) }

let rms_pruning_invariant =
  { name = "rms_pruning_invariant";
    suite = "select";
    run =
      (fun inst ->
        let tasks = Instance.tasks inst in
        if not (distinct_periods tasks) then Skip "duplicate periods"
        else begin
          let outcomes =
            List.map
              (fun (use_bound, fastest_first) ->
                fst
                  (Core.Rms_select.run_instrumented ~use_bound ~fastest_first
                     ~budget:inst.budget tasks))
              [ (true, true); (true, false); (false, true); (false, false) ]
          in
          match outcomes with
          | reference :: rest ->
            let same = function
              | None, None -> true
              | Some (a : Core.Selection.t), Some (b : Core.Selection.t) ->
                Float.abs (a.utilization -. b.utilization) <= tol
              | _ -> false
            in
            if List.for_all (fun o -> same (reference, o)) rest then Pass
            else Fail "disabling pruning changed the optimum"
          | [] -> Pass
        end) }

(* ---------------------------------------------------------------- *)
(* sched                                                            *)
(* ---------------------------------------------------------------- *)

let rms_test_matches_response_time =
  { name = "rms_test_matches_response_time";
    suite = "sched";
    run =
      (fun inst ->
        let tasks = Instance.tasks inst in
        if not (distinct_periods tasks) then Skip "duplicate periods"
        else begin
          let software = pairs_of (Core.Selection.software tasks) in
          let full_custom =
            List.map
              (fun (t : Rt.Task.t) ->
                (Isa.Config.min_cycles t.curve, t.period))
              tasks
          in
          let rec check = function
            | [] -> Pass
            | (label, pairs) :: rest ->
              let exact = Rt.Sched.rms_schedulable pairs in
              let rta = Oracle.response_time_schedulable pairs in
              if exact <> rta then
                failf "%s: Bini–Buttazzo says %b, response-time analysis %b"
                  label exact rta
              else check rest
          in
          check [ ("software", software); ("full-custom", full_custom) ]
        end) }

(* ---------------------------------------------------------------- *)
(* pareto                                                           *)
(* ---------------------------------------------------------------- *)

(* One entity per task: choose a configuration, delta = cycles saved,
   cost = area — the inter-task workload view of Chapter 4. *)
let entities_of inst =
  List.map
    (fun (ts : Instance.task_spec) ->
      List.map
        (fun (p : Instance.curve_point) ->
          { Pareto.Mo_select.delta = float_of_int (ts.base - p.cycles);
            cost = p.area })
        ts.points
      |> Array.of_list)
    inst.Instance.tasks

let base_of inst =
  Util.Numeric.sum_byf
    (fun (ts : Instance.task_spec) -> float_of_int ts.base)
    inst.Instance.tasks

let fronts_agree exact oracle =
  List.length exact = List.length oracle
  && List.for_all2
       (fun (a : Util.Pareto_front.point) (b : Util.Pareto_front.point) ->
         a.cost = b.cost && Float.abs (a.value -. b.value) <= 1e-6)
       exact oracle

let exact_front_matches_oracle =
  { name = "exact_front_matches_oracle";
    suite = "pareto";
    run =
      (fun inst ->
        let entities = entities_of inst in
        let base = base_of inst in
        with_oracle @@ fun og ->
        let exact = Pareto.Mo_select.exact_front ~base entities in
        let oracle = Oracle.pareto_exhaustive ~guard:og ~base entities in
        if fronts_agree exact oracle then Pass
        else
          failf "DP front has %d points, enumeration %d (or values differ)"
            (List.length exact) (List.length oracle)) }

let approx_front_eps_covers =
  { name = "approx_front_eps_covers";
    suite = "pareto";
    run =
      (fun inst ->
        let entities = entities_of inst in
        let base = base_of inst in
        let exact = Pareto.Mo_select.exact_front ~base entities in
        let approx = Pareto.Mo_select.approx_front ~eps:inst.eps ~base entities in
        if not (Util.Pareto_front.is_front approx) then
          Fail "approximate output is not a valid Pareto front"
        else if not (Util.Pareto_front.eps_covers ~eps:inst.eps ~exact approx)
        then
          failf "FPTAS output misses the eps=%.3f cover (%d exact, %d approx)"
            inst.eps (List.length exact) (List.length approx)
        else Pass) }

let inter_stage_approx_covers =
  { name = "inter_stage_approx_covers";
    suite = "pareto";
    run =
      (fun inst ->
        let curves =
          List.map
            (fun (t : Rt.Task.t) ->
              { Pareto.Stages.Inter.period = t.period;
                workload = t.wcet;
                front =
                  Array.to_list (Isa.Config.points t.curve)
                  |> List.map (fun (p : Isa.Config.point) ->
                         { Util.Pareto_front.cost = p.area;
                           value = float_of_int p.cycles }) })
            (Instance.tasks inst)
        in
        let exact = Pareto.Stages.Inter.exact curves in
        let approx = Pareto.Stages.Inter.approx ~eps:inst.eps curves in
        if Util.Pareto_front.eps_covers ~eps:inst.eps ~exact approx then Pass
        else
          failf "inter-stage FPTAS misses the eps=%.3f cover (%d exact, %d approx)"
            inst.eps (List.length exact) (List.length approx)) }

(* ---------------------------------------------------------------- *)
(* curve                                                            *)
(* ---------------------------------------------------------------- *)

let fuzz_params = { Ise.Curve.small with sweep_points = 8 }

let generated_curve_well_formed =
  { name = "generated_curve_well_formed";
    suite = "curve";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let cfg =
          { Ir.Cfg.name = "fuzz"; code = Ir.Cfg.block "b0" dfg }
        in
        match Ise.Curve.generate ~params:fuzz_params cfg with
        | exception e ->
          failf "curve generation raised %s" (Printexc.to_string e)
        | curve ->
          let pts = Isa.Config.points curve in
          let ok = ref Pass in
          if pts.(0).Isa.Config.area <> 0 then
            ok := Fail "first curve point is not the software configuration";
          for i = 1 to Array.length pts - 1 do
            if !ok = Pass
               && not
                    (pts.(i).Isa.Config.area > pts.(i - 1).Isa.Config.area
                     && pts.(i).Isa.Config.cycles < pts.(i - 1).Isa.Config.cycles)
            then
              ok :=
                failf "curve not strictly monotone at point %d: (%d,%d) after (%d,%d)"
                  i pts.(i).Isa.Config.area pts.(i).Isa.Config.cycles
                  pts.(i - 1).Isa.Config.area pts.(i - 1).Isa.Config.cycles
          done;
          (* more area can never buy a slower configuration *)
          let max_area = Isa.Config.max_area curve in
          let prev = ref (Isa.Config.best_at curve 0) in
          for b = 1 to max_area do
            let p = Isa.Config.best_at curve b in
            if !ok = Pass && p.Isa.Config.cycles > !prev.Isa.Config.cycles then
              ok := failf "best_at %d slower than best_at %d" b (b - 1);
            prev := p
          done;
          !ok) }

let candidates_respect_constraints =
  { name = "candidates_respect_constraints";
    suite = "curve";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let constraints = Isa.Hw_model.default_constraints in
        let cands = Ise.Enumerate.connected ~constraints dfg in
        let rec check = function
          | [] -> Pass
          | (ci : Isa.Custom_inst.t) :: rest ->
            if ci.inputs > constraints.Isa.Hw_model.max_inputs then
              failf "candidate with %d inputs (limit %d)" ci.inputs
                constraints.Isa.Hw_model.max_inputs
            else if ci.outputs > constraints.Isa.Hw_model.max_outputs then
              failf "candidate with %d outputs (limit %d)" ci.outputs
                constraints.Isa.Hw_model.max_outputs
            else if Isa.Custom_inst.gain ci <= 0 then
              failf "candidate with non-positive gain %d" (Isa.Custom_inst.gain ci)
            else if not (Ir.Dfg.is_convex dfg ci.nodes) then
              Fail "non-convex candidate emitted"
            else if not (Ir.Dfg.is_connected dfg ci.nodes) then
              Fail "disconnected candidate emitted"
            else if not (Ir.Dfg.all_valid dfg ci.nodes) then
              Fail "candidate contains an ISE-ineligible operation"
            else begin
              match Isa.Custom_inst.check ~constraints dfg ci.nodes with
              | Ok _ -> check rest
              | Error r ->
                failf "candidate fails re-validation: %s"
                  (Format.asprintf "%a" Isa.Custom_inst.pp_rejection r)
            end
        in
        check cands) }

(* ---------------------------------------------------------------- *)
(* isegen                                                           *)
(* ---------------------------------------------------------------- *)

(* Instance-derived ISEGEN tuning: the seed varies with the instance so
   three fuzz seeds exercise many restart samplings, while every walk
   stays cheap enough for a 200-case budget. *)
let isegen_params_of inst =
  { Ise.Isegen.default_params with
    Ise.Isegen.seed = 1 + inst.Instance.budget;
    restarts = 16;
    max_moves = 16 }

(* Structural identity of a candidate, independent of Bitset mutability
   and of evaluation backend bookkeeping. *)
let ci_sig (ci : Isa.Custom_inst.t) =
  (Util.Bitset.elements ci.nodes, Isa.Custom_inst.gain ci, ci.area)

let ci_keys cis =
  List.sort compare
    (List.map (fun (ci : Isa.Custom_inst.t) -> Util.Bitset.elements ci.nodes) cis)

let legal_candidate dfg constraints (ci : Isa.Custom_inst.t) =
  if ci.inputs > constraints.Isa.Hw_model.max_inputs then
    failf "candidate with %d inputs (limit %d)" ci.inputs
      constraints.Isa.Hw_model.max_inputs
  else if ci.outputs > constraints.Isa.Hw_model.max_outputs then
    failf "candidate with %d outputs (limit %d)" ci.outputs
      constraints.Isa.Hw_model.max_outputs
  else if Isa.Custom_inst.gain ci <= 0 then
    failf "candidate with non-positive gain %d" (Isa.Custom_inst.gain ci)
  else if not (Ir.Dfg.is_convex dfg ci.nodes) then
    Fail "non-convex candidate emitted"
  else if not (Ir.Dfg.is_connected dfg ci.nodes) then
    Fail "disconnected candidate emitted"
  else if not (Ir.Dfg.all_valid dfg ci.nodes) then
    Fail "candidate contains an ISE-ineligible operation"
  else
    match Isa.Custom_inst.check ~constraints dfg ci.nodes with
    | Ok _ -> Pass
    | Error r ->
      failf "candidate fails re-validation: %s"
        (Format.asprintf "%a" Isa.Custom_inst.pp_rejection r)

let rec first_failure = function
  | [] -> Pass
  | Pass :: rest -> first_failure rest
  | outcome :: _ -> outcome

let isegen_candidates_legal =
  { name = "isegen_candidates_legal";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let constraints = Isa.Hw_model.default_constraints in
        let cands =
          Ise.Isegen.generate ~constraints ~params:(isegen_params_of inst) dfg
        in
        first_failure
          (List.map
             (fun (ci : Isa.Custom_inst.t) ->
               match legal_candidate dfg constraints ci with
               | Pass ->
                 (* uniform re-evaluation is the identity; any backend's
                    costs must agree with its own set-level tables *)
                 let u = Isa.Custom_inst.evaluate_with Isa.Hw_model.uniform dfg ci in
                 let r = Isa.Custom_inst.evaluate_with Isa.Hw_model.riscv dfg ci in
                 if ci_sig u <> ci_sig ci then
                   Fail "uniform re-evaluation changed a candidate"
                 else if
                   r.Isa.Custom_inst.hw_cycles
                   <> Isa.Hw_model.set_hw_cycles_with Isa.Hw_model.riscv dfg
                        ci.nodes
                   || r.Isa.Custom_inst.area
                      <> Isa.Hw_model.set_area_with Isa.Hw_model.riscv dfg
                           ci.nodes
                 then Fail "riscv re-evaluation disagrees with its cost tables"
                 else if
                   Isa.Custom_inst.gain r
                   <> r.Isa.Custom_inst.sw_cycles - r.Isa.Custom_inst.hw_cycles
                 then Fail "gain inconsistent after re-evaluation"
                 else Pass
               | outcome -> outcome)
             cands)) }

(* The differential heart of the suite: on small DFGs the uncapped
   enumerator is a complete oracle, and ISEGEN must find at least 90 %
   of the best candidate's gain (in practice it finds the optimum). *)
let isegen_matches_oracle_on_small =
  { name = "isegen_matches_oracle_on_small";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let n = Ir.Dfg.node_count dfg in
        if n > 12 then Skip "DFG too large for the exhaustive oracle"
        else begin
          let oracle_budget =
            { Ise.Enumerate.max_size = n;
              max_explored = 200_000;
              max_candidates = 20_000 }
          in
          let guard = Engine.Guard.create ~fuel:oracle_fuel () in
          let oracle, saturation =
            Ise.Enumerate.connected_full ~guard ~budget:oracle_budget dfg
          in
          match saturation with
          | Some _ -> Skip "oracle enumeration saturated"
          | None ->
            let best =
              List.fold_left
                (fun acc ci -> max acc (Isa.Custom_inst.gain ci))
                0 oracle
            in
            let mine =
              Ise.Isegen.generate ~params:(isegen_params_of inst) dfg
            in
            let got =
              match mine with [] -> 0 | ci :: _ -> Isa.Custom_inst.gain ci
            in
            if best = 0 then
              if mine = [] then Pass
              else
                failf "oracle finds no feasible candidate but isegen emits %d"
                  (List.length mine)
            else if 10 * got < 9 * best then
              failf "isegen best gain %d < 90%% of oracle best %d (%d nodes)"
                got best n
            else Pass
        end) }

let isegen_deterministic =
  { name = "isegen_deterministic";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let params = isegen_params_of inst in
        let a = Ise.Isegen.generate ~params dfg in
        let b = Ise.Isegen.generate ~params dfg in
        if List.map ci_sig a <> List.map ci_sig b then
          Fail "two runs with identical params diverge"
        else Pass) }

let isegen_guard_anytime =
  { name = "isegen_guard_anytime";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let constraints = Isa.Hw_model.default_constraints in
        let params = isegen_params_of inst in
        let full = Ise.Isegen.generate ~constraints ~params dfg in
        let fuel = 1 + (inst.Instance.budget mod 60) in
        let guard = Engine.Guard.create ~fuel () in
        let partial = Ise.Isegen.generate ~guard ~constraints ~params dfg in
        match first_failure (List.map (legal_candidate dfg constraints) partial) with
        | Pass ->
          (match Engine.Guard.status guard with
           | Engine.Guard.Exact ->
             if List.map ci_sig partial <> List.map ci_sig full then
               Fail "guard never fired yet output differs from unguarded run"
             else Pass
           | Engine.Guard.Partial _ ->
             (* truncation evaluates a prefix of the full run's move
                sequence, so the anytime pool is a subset of the full
                pool *)
             let full_keys = ci_keys full in
             if
               List.for_all
                 (fun k -> List.mem k full_keys)
                 (ci_keys partial)
             then Pass
             else Fail "anytime cut emitted a candidate the full run lacks")
        | outcome -> outcome) }

let hw_backend_area_monotone =
  { name = "hw_backend_area_monotone";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        let n = Ir.Dfg.node_count dfg in
        let valid =
          List.filter (Ir.Dfg.valid_node dfg) (List.init n (fun i -> i))
        in
        if valid = [] then Skip "no ISE-eligible operation"
        else begin
          let full = Util.Bitset.of_list n valid in
          first_failure
            (List.concat_map
               (fun (b : Isa.Hw_model.backend) ->
                 let whole = Isa.Hw_model.set_op_area_with b dfg full in
                 let monotone =
                   List.map
                     (fun v ->
                       let sub = Util.Bitset.copy full in
                       Util.Bitset.clear sub v;
                       if Isa.Hw_model.set_op_area_with b dfg sub > whole then
                         failf "%s: removing node %d raised operator area"
                           b.Isa.Hw_model.name v
                       else Pass)
                     valid
                 in
                 let port_floor =
                   if Isa.Hw_model.set_area_with b dfg full < whole then
                     failf "%s: port-aware area below operator area"
                       b.Isa.Hw_model.name
                   else Pass
                 in
                 let legacy_agrees =
                   if
                     b.Isa.Hw_model.name = "uniform"
                     && Isa.Hw_model.set_area_with b dfg full
                        <> Isa.Hw_model.set_area dfg full
                   then Fail "uniform backend disagrees with legacy set_area"
                   else Pass
                 in
                 port_floor :: legacy_agrees :: monotone)
               Isa.Hw_model.backends)
        end) }

let auto_dispatch_consistent =
  { name = "auto_dispatch_consistent";
    suite = "isegen";
    run =
      (fun inst ->
        let dfg = Instance.dfg inst in
        (* a budget tight enough that many instances saturate, so both
           arms of the dispatch are exercised *)
        let budget =
          { Ise.Enumerate.max_size = 3;
            max_explored = 8 + (inst.Instance.budget mod 40);
            max_candidates = 6 }
        in
        let isegen = isegen_params_of inst in
        let exhaustive, saturation =
          Ise.Enumerate.connected_full ~budget dfg
        in
        let auto =
          Ise.Select.generate_candidates ~budget ~generator:Ise.Isegen.Auto
            ~isegen dfg
        in
        let expected =
          match saturation with
          | None -> exhaustive
          | Some _ -> Ise.Isegen.generate ~params:isegen dfg
        in
        if List.map ci_sig auto <> List.map ci_sig expected then
          failf "auto dispatch diverges from the %s arm"
            (match saturation with None -> "exhaustive" | Some _ -> "isegen")
        else Pass) }

(* ---------------------------------------------------------------- *)
(* engine                                                           *)
(* ---------------------------------------------------------------- *)

let cache_counter = ref 0

let cache_roundtrip_and_corruption =
  { name = "cache_roundtrip_and_corruption";
    suite = "engine";
    run =
      (fun inst ->
        (* this property asserts exact round-trips, which injected cache
           faults deliberately violate; the survival story under faults
           is covered by [Runner.fault_selftest] and test_resilience *)
        if Engine.Fault.active () then Skip "fault injection active"
        else begin
        incr cache_counter;
        let tmp =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "isecustom-check-%d-%d" (Unix.getpid ())
               !cache_counter)
        in
        let saved_dir = Engine.Cache.dir () in
        let saved_enabled = Engine.Cache.enabled () in
        (* the deliberate corruption below rightly triggers the cache's
           corruption warning; keep it off the fuzzer's stderr *)
        let saved_level = Engine.Log.level () in
        Engine.Log.set_level Engine.Log.Error;
        Fun.protect
          ~finally:(fun () ->
            Engine.Log.set_level saved_level;
            ignore (Engine.Cache.clear ());
            (try Unix.rmdir tmp with Unix.Unix_error _ | Sys_error _ -> ());
            Engine.Cache.set_dir saved_dir;
            Engine.Cache.set_enabled saved_enabled)
          (fun () ->
            Engine.Cache.set_dir tmp;
            Engine.Cache.set_enabled true;
            let key = Printf.sprintf "check-%d" inst.Instance.budget in
            let value = inst.Instance.tasks in
            Engine.Cache.store ~namespace:"check" ~key value;
            match Engine.Cache.find ~namespace:"check" ~key () with
            | None -> Fail "stored entry reads as a miss"
            | Some (v : Instance.task_spec list) when v <> value ->
              Fail "cache hit returned a different value"
            | Some _ ->
              (* truncate the entry at a random point: loading must
                 degrade to a miss, never raise *)
              let file = Engine.Cache.file_of ~namespace:"check" ~key in
              let contents =
                let ic = open_in_bin file in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              let cut = inst.Instance.budget mod max 1 (String.length contents) in
              let oc = open_out_bin file in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (String.sub contents 0 cut));
              let corrupt_before = Engine.Telemetry.counter "cache.corrupt" in
              (match Engine.Cache.find ~namespace:"check" ~key () with
               | exception e ->
                 failf "corrupt entry raised %s instead of recomputing"
                   (Printexc.to_string e)
               | Some _ ->
                 Fail "truncated entry still reads as a hit"
               | None when Engine.Telemetry.counter "cache.corrupt" = corrupt_before ->
                 Fail "truncated entry read as a plain miss, not corruption"
               | None ->
                 (* the recompute-and-store path must repair the entry *)
                 Engine.Cache.store ~namespace:"check" ~key value;
                 if Engine.Cache.find ~namespace:"check" ~key () = Some value
                 then Pass
                 else Fail "re-stored entry does not read back"))
        end) }

let parallel_map_matches_sequential =
  { name = "parallel_map_matches_sequential";
    suite = "engine";
    run =
      (fun inst ->
        (* [Pool.map] propagates injected worker crashes by design; the
           recovery story lives in [map_result] and the "parallel"
           suite's fault property *)
        if Engine.Fault.active () then Skip "fault injection active"
        else
        let xs = List.init (1 + (inst.Instance.budget mod 40)) Fun.id in
        let f x = Hashtbl.hash (x, inst.Instance.budget, inst.Instance.eps) in
        let seq = List.map f xs in
        Engine.Parallel.Pool.with_pool ~jobs:3 @@ fun pool ->
        let par = Engine.Parallel.Pool.map pool f xs in
        if par <> seq then Fail "Pool.map diverges from List.map"
        else begin
          let sum = List.fold_left ( + ) 0 seq in
          let par_sum =
            Engine.Parallel.Pool.map_reduce pool ~map:f
              ~reduce:(fun acc v -> acc + v)
              0 xs
          in
          if par_sum <> sum then
            failf "map_reduce sum %d, sequential %d" par_sum sum
          else Pass
        end) }

let pool_map_result_matches_sequential_fold =
  { name = "pool_map_result_matches_sequential_fold";
    suite = "parallel";
    run =
      (fun inst ->
        (* Reconfigures the process-global fault state, so it must not
           run while an external spec (make faults) is armed. *)
        if Engine.Fault.active () then Skip "fault injection active"
        else begin
          let budget = inst.Instance.budget in
          let cap = 1 + (budget mod 3) in
          let spec =
            { Engine.Fault.seed = 1000 + budget;
              points =
                [ ( "parallel.worker",
                    { Engine.Fault.prob = 0.3 +. (0.4 *. inst.Instance.eps);
                      cap = Some cap } ) ] }
          in
          let xs = List.init (2 + (budget mod 23)) Fun.id in
          let f x = Hashtbl.hash (x, budget, inst.Instance.eps) in
          let seq = List.map f xs in
          Engine.Fault.configure spec;
          Fun.protect ~finally:Engine.Fault.disable @@ fun () ->
          Engine.Parallel.Pool.with_pool ~jobs:(2 + (budget mod 3))
          @@ fun pool ->
          (* the point fires at most [cap] times, so [cap + 1] attempts
             guarantee every slot eventually computes: under injected
             crashes pooled map_result must still equal the sequential
             fold, slot for slot *)
          let outcomes =
            Engine.Parallel.Pool.map_result pool ~attempts:(cap + 1) f xs
          in
          let first_error =
            List.find_map
              (function Ok _ -> None | Error (e : Engine.Parallel.error) -> Some e)
              outcomes
          in
          match first_error with
          | Some e ->
            failf "slot failed despite attempts > cap: %s" e.message
          | None ->
            let got =
              List.filter_map (function Ok v -> Some v | Error _ -> None) outcomes
            in
            if got <> seq then
              Fail "pooled map_result diverges from sequential fold under faults"
            else Pass
        end) }

(* ---------------------------------------------------------------- *)

let all =
  [ edf_dp_matches_oracle;
    rms_bnb_matches_oracle;
    heuristics_bounded_by_optimal;
    edf_budget_monotone;
    rms_guarded_partial_sound;
    rms_pruning_invariant;
    rms_test_matches_response_time;
    exact_front_matches_oracle;
    approx_front_eps_covers;
    inter_stage_approx_covers;
    generated_curve_well_formed;
    candidates_respect_constraints;
    isegen_candidates_legal;
    isegen_matches_oracle_on_small;
    isegen_deterministic;
    isegen_guard_anytime;
    hw_backend_area_monotone;
    auto_dispatch_consistent;
    cache_roundtrip_and_corruption;
    parallel_map_matches_sequential;
    pool_map_result_matches_sequential_fold ]

let suites =
  List.fold_left
    (fun acc p -> if List.mem p.suite acc then acc else acc @ [ p.suite ])
    [] all

let find name = List.find_opt (fun p -> p.name = name) all

let in_suites = function
  | [] -> all
  | wanted -> List.filter (fun p -> List.mem p.suite wanted) all
