type curve_point = { area : int; cycles : int }

type task_spec = { period : int; base : int; points : curve_point list }

type dfg_spec = {
  kinds : Ir.Op.kind list;
  edges : (int * int) list;
  live_outs : int list;
}

type t = {
  tasks : task_spec list;
  budget : int;
  eps : float;
  dfg : dfg_spec;
}

let valid_task ts =
  ts.period > 0 && ts.base > 0
  && List.for_all (fun p -> p.area >= 0 && p.cycles >= 1 && p.cycles <= ts.base)
       ts.points

let valid_dfg d =
  let n = List.length d.kinds in
  let in_degree = Array.make (max n 1) 0 in
  List.for_all
    (fun (src, dst) ->
      let ok = 0 <= src && src < dst && dst < n in
      if ok then in_degree.(dst) <- in_degree.(dst) + 1;
      ok)
    d.edges
  && List.for_all (fun v -> 0 <= v && v < n) d.live_outs
  && List.for_all2
       (fun kind deg -> deg <= Ir.Op.arity kind)
       d.kinds
       (Array.to_list (Array.sub in_degree 0 n))

let valid t =
  t.budget >= 0 && t.eps > 0.
  && List.for_all valid_task t.tasks
  && valid_dfg t.dfg

let tasks t =
  List.mapi
    (fun i ts ->
      let curve =
        Isa.Config.of_points ~base_cycles:ts.base
          (List.map (fun p -> { Isa.Config.area = p.area; cycles = p.cycles })
             ts.points)
      in
      Rt.Task.make ~name:(Printf.sprintf "t%d" i) ~period:ts.period curve)
    t.tasks

let dfg t =
  let b = Ir.Dfg.Builder.create () in
  List.iter (fun kind -> ignore (Ir.Dfg.Builder.add b kind)) t.dfg.kinds;
  List.iter (fun (src, dst) -> Ir.Dfg.Builder.edge b src dst) t.dfg.edges;
  List.iter (fun v -> Ir.Dfg.Builder.mark_live_out b v) t.dfg.live_outs;
  Ir.Dfg.Builder.finish b

let size t =
  List.length t.tasks
  + Util.Numeric.sum_by
      (fun ts ->
        ts.period + ts.base
        + Util.Numeric.sum_by (fun p -> 1 + p.area + p.cycles) ts.points)
      t.tasks
  + List.length t.dfg.kinds
  + List.length t.dfg.edges
  + t.budget

let equal a b = a = b

let pp fmt t =
  Format.fprintf fmt "@[<v>budget %d, eps %.3f@," t.budget t.eps;
  List.iteri
    (fun i ts ->
      Format.fprintf fmt "t%d: P=%d C=%d curve=[%s]@," i ts.period ts.base
        (String.concat "; "
           (List.map (fun p -> Printf.sprintf "(%d,%d)" p.area p.cycles) ts.points)))
    t.tasks;
  Format.fprintf fmt "dfg: %d nodes, %d edges@]" (List.length t.dfg.kinds)
    (List.length t.dfg.edges)

let to_json t =
  let open Engine.Jsonx in
  obj
    [ ("budget", string_of_int t.budget);
      (* %.17g round-trips doubles exactly; Jsonx.float's %.6f would
         change eps across a repro write/read cycle *)
      ("eps", Printf.sprintf "%.17g" t.eps);
      ( "tasks",
        arr
          (List.map
             (fun ts ->
               obj
                 [ ("period", string_of_int ts.period);
                   ("base", string_of_int ts.base);
                   ( "points",
                     arr
                       (List.map
                          (fun p ->
                            obj
                              [ ("area", string_of_int p.area);
                                ("cycles", string_of_int p.cycles) ])
                          ts.points) ) ])
             t.tasks) );
      ( "dfg",
        obj
          [ ( "kinds",
              arr (List.map (fun k -> string (Ir.Op.name k)) t.dfg.kinds) );
            ( "edges",
              arr
                (List.map
                   (fun (s, d) -> arr [ string_of_int s; string_of_int d ])
                   t.dfg.edges) );
            ( "live_outs",
              arr (List.map string_of_int t.dfg.live_outs) ) ] ) ]
