let remove_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Drop node [v] from a DFG spec: edges touching it disappear, higher
   node ids and live-outs shift down by one. *)
let drop_dfg_node (d : Instance.dfg_spec) v =
  let shift i = if i > v then i - 1 else i in
  { Instance.kinds = remove_nth d.kinds v;
    edges =
      List.filter_map
        (fun (s, t) ->
          if s = v || t = v then None else Some (shift s, shift t))
        d.edges;
    live_outs =
      List.filter_map
        (fun i -> if i = v then None else Some (shift i))
        d.live_outs }

let map_task (inst : Instance.t) i f =
  { inst with
    tasks = List.mapi (fun j ts -> if j = i then f ts else ts) inst.tasks }

let candidates (inst : Instance.t) =
  let n_tasks = List.length inst.tasks in
  let n_nodes = List.length inst.dfg.kinds in
  let drop_tasks =
    List.init n_tasks (fun i ->
        { inst with tasks = remove_nth inst.tasks i })
  in
  let drop_points =
    List.concat
      (List.mapi
         (fun i (ts : Instance.task_spec) ->
           List.init (List.length ts.points) (fun j ->
               map_task inst i (fun ts ->
                   { ts with points = remove_nth ts.points j })))
         inst.tasks)
  in
  let shrink_budget =
    List.filter_map
      (fun b -> if b < inst.budget && b >= 0 then Some { inst with budget = b } else None)
      [ 0; inst.budget / 2; inst.budget - 1 ]
  in
  let shrink_periods =
    List.init n_tasks (fun i ->
        map_task inst i (fun ts -> { ts with period = max 1 (ts.period / 2) }))
  in
  let shrink_cycles =
    List.concat
      (List.mapi
         (fun i (ts : Instance.task_spec) ->
           map_task inst i (fun ts -> { ts with base = max 1 (ts.base / 2) })
           :: List.init (List.length ts.points) (fun j ->
                  map_task inst i (fun ts ->
                      { ts with
                        points =
                          List.mapi
                            (fun k (p : Instance.curve_point) ->
                              if k = j then
                                { Instance.area = max 0 (p.area / 2);
                                  cycles = max 1 (p.cycles / 2) }
                              else p)
                            ts.points })))
         inst.tasks)
  in
  let drop_nodes =
    List.init n_nodes (fun v -> { inst with dfg = drop_dfg_node inst.dfg v })
  in
  let drop_edges =
    List.init (List.length inst.dfg.edges) (fun j ->
        { inst with
          dfg = { inst.dfg with edges = remove_nth inst.dfg.edges j } })
  in
  let round_eps =
    if inst.eps < 0.5 then [ { inst with eps = 0.5 } ]
    else if inst.eps < 1.0 then [ { inst with eps = 1.0 } ]
    else []
  in
  List.filter
    (fun c ->
      Instance.valid c
      && (Instance.size c < Instance.size inst || c.Instance.eps <> inst.eps))
    (drop_tasks @ drop_points @ shrink_budget @ drop_nodes @ drop_edges
   @ shrink_periods @ shrink_cycles @ round_eps)

let shrink ?(max_steps = 500) ~still_fails inst =
  let rec go inst steps =
    if steps >= max_steps then (inst, steps)
    else
      match List.find_opt still_fails (candidates inst) with
      | Some smaller -> go smaller (steps + 1)
      | None -> (inst, steps)
  in
  go inst 0
