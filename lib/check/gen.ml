let uunifast prng ~n ~total =
  if n < 1 || total <= 0. then invalid_arg "Gen.uunifast";
  (* Bini–Buttazzo: peel utilization off the remaining sum with the
     (n-i)-th root of a uniform draw; keeps the vector uniform on the
     simplex.  Guard each share away from 0 so periods stay finite. *)
  let rec go i sum acc =
    if i = n then List.rev (sum :: acc)
    else begin
      let r = Util.Prng.float prng 1.0 in
      let next = sum *. (r ** (1. /. float_of_int (n - i))) in
      go (i + 1) next ((sum -. next) :: acc)
    end
  in
  List.map (fun u -> Float.max u (0.001 *. total)) (go 1 total [])

let curve_points prng ~base =
  let k = Util.Prng.int prng 4 in
  List.init k (fun _ ->
      { Instance.area = Util.Prng.in_range prng 1 40;
        cycles = Util.Prng.in_range prng 1 base })

let task_set prng =
  let n = Util.Prng.in_range prng 1 4 in
  let total = 0.4 +. Util.Prng.float prng 1.2 in
  let bases = List.init n (fun _ -> Util.Prng.in_range prng 10 120) in
  let shares = uunifast prng ~n ~total in
  let specs =
    List.map2
      (fun base u ->
        let period =
          Util.Numeric.clamp ~lo:1 ~hi:1_000_000
            (int_of_float (Float.round (float_of_int base /. u)))
        in
        { Instance.period; base; points = curve_points prng ~base })
      bases shares
  in
  (* Distinct periods: RMS priority order (and hence the B&B/oracle
     comparison) must be unambiguous. *)
  let seen = Hashtbl.create 8 in
  List.map
    (fun (ts : Instance.task_spec) ->
      let period = ref ts.period in
      while Hashtbl.mem seen !period do incr period done;
      Hashtbl.add seen !period ();
      { ts with period = !period })
    specs

let budget_for prng specs =
  let max_area =
    Util.Numeric.sum_by
      (fun (ts : Instance.task_spec) ->
        List.fold_left (fun acc (p : Instance.curve_point) -> max acc p.area) 0
          ts.points)
      specs
  in
  Util.Prng.int prng (max_area + 11)

let dfg_kinds =
  [| Ir.Op.Add; Ir.Op.Sub; Ir.Op.Mul; Ir.Op.Div; Ir.Op.And; Ir.Op.Or;
     Ir.Op.Xor; Ir.Op.Not; Ir.Op.Shl; Ir.Op.Shr; Ir.Op.Cmp; Ir.Op.Select;
     Ir.Op.Const; Ir.Op.Load; Ir.Op.Store; Ir.Op.Branch |]

let dfg_spec prng =
  let n = Util.Prng.in_range prng 1 14 in
  let kinds = List.init n (fun _ -> Util.Prng.choose prng dfg_kinds) in
  let edges = ref [] in
  List.iteri
    (fun i kind ->
      if i > 0 then begin
        let wired = ref [] in
        for _ = 1 to Ir.Op.arity kind do
          if Util.Prng.float prng 1.0 < 0.7 then begin
            let src = Util.Prng.int prng i in
            if not (List.mem src !wired) then begin
              wired := src :: !wired;
              edges := (src, i) :: !edges
            end
          end
        done
      end)
    kinds;
  let live_outs =
    List.init n (fun i -> i)
    |> List.filter (fun _ -> Util.Prng.float prng 1.0 < 0.15)
  in
  { Instance.kinds; edges = List.rev !edges; live_outs }

let instance prng =
  let tasks_rng = Util.Prng.split prng in
  let budget_rng = Util.Prng.split prng in
  let dfg_rng = Util.Prng.split prng in
  let tasks = task_set tasks_rng in
  { Instance.tasks;
    budget = budget_for budget_rng tasks;
    eps = 0.05 +. Util.Prng.float (Util.Prng.split prng) 0.95;
    dfg = dfg_spec dfg_rng }
