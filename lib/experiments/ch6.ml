(* Chapter 6 — runtime reconfiguration of custom instructions (§6.4). *)

let published_table_6_1 =
  (* (hot loops, exhaustive s, greedy s, iterative s) from Table 6.1 *)
  [ (5, Some 0.26, 0.01, 0.07); (6, Some 1.34, 0.02, 0.07);
    (7, Some 7.84, 0.01, 0.07); (8, Some 43.91, 0.01, 0.09);
    (9, Some 283.22, 0.04, 0.07); (10, Some 1788.20, 0.01, 0.11);
    (11, Some 12604.33, 0.01, 0.13); (12, Some 86338.37, 0.01, 0.15);
    (20, None, 0.02, 0.48); (40, None, 0.04, 4.30); (60, None, 0.07, 18.25);
    (80, None, 0.11, 55.61); (100, None, 0.16, 118.76) ]

let sizes_timing = [ 5; 6; 7; 8; 9; 10; 11; 12; 20; 40; 60; 80; 100 ]
let exhaustive_limit = 12

let table_6_1 fmt =
  Report.banner fmt ~id:"Table 6.1" "running time of the algorithms (synthetic input)";
  Report.row fmt
    [ Report.cellr ~width:6 "loops"; Report.cellr ~width:14 "exhaustive(s)";
      Report.cellr ~width:12 "greedy(s)"; Report.cellr ~width:13 "iterative(s)";
      Report.cell ~width:34 "  published (exh/greedy/iter)" ];
  List.iter
    (fun n ->
      let p = Reconfig.Synthetic.generate ~seed:(1000 + n) ~loops:n in
      let exhaustive_cell =
        if n > exhaustive_limit then Report.cellr ~width:14 "N.A."
        else
          let result, elapsed =
            Report.timed (fun () ->
                Reconfig.Algorithms.exhaustive ~max_partitions:5_000_000 p)
          in
          match result with
          | Some _ -> Report.cellr ~width:14 (Printf.sprintf "%.2f" elapsed)
          | None -> Report.cellr ~width:14 "refused"
      in
      let _, greedy_t = Report.timed (fun () -> Reconfig.Algorithms.greedy p) in
      let _, iter_t = Report.timed (fun () -> Reconfig.Algorithms.iterative p) in
      let published =
        match List.assoc_opt n (List.map (fun (a, b, c, d) -> (a, (b, c, d))) published_table_6_1) with
        | Some (Some e, g, i) -> Printf.sprintf "  %.2f / %.2f / %.2f" e g i
        | Some (None, g, i) -> Printf.sprintf "  N.A. / %.2f / %.2f" g i
        | None -> ""
      in
      Report.row fmt
        [ Report.cellr ~width:6 (string_of_int n); exhaustive_cell;
          Report.cellr ~width:12 (Printf.sprintf "%.3f" greedy_t);
          Report.cellr ~width:13 (Printf.sprintf "%.3f" iter_t);
          Report.cell ~width:34 published ])
    sizes_timing

let figure_6_4 fmt =
  Report.banner fmt ~id:"Figure 6.4" "motivating example (published numbers)";
  let loops =
    [ Reconfig.Problem.loop "loop1" [ (111, 257); (160, 301); (563, 1612) ];
      Reconfig.Problem.loop "loop2" [ (230, 76); (387, 1041); (426, 1321); (556, 2004) ];
      Reconfig.Problem.loop "loop3" [ (493, 967); (549, 1249) ] ]
  in
  let trace =
    Ir.Trace.of_pair_counts
      [ (("loop1", "loop2"), 9); (("loop1", "loop3"), 9); (("loop2", "loop3"), 31) ]
  in
  let p = { Reconfig.Problem.loops; trace; max_area = 2048; reconfig_cost = 15 } in
  let show label placement =
    Report.row fmt
      [ Report.cell ~width:26 label;
        Printf.sprintf "gain %dK - %d reconfigs x 15K = net %dK"
          (Reconfig.Problem.raw_gain p placement)
          (Reconfig.Problem.reconfigurations p placement)
          (Reconfig.Problem.net_gain p placement) ]
  in
  let static_sel =
    Reconfig.Algorithms.spatial_select ~loops ~area:2048
  in
  show "(A) static, k=1"
    { Reconfig.Problem.version_of = static_sel;
      config_of =
        List.filter_map (fun (n, j) -> if j > 0 then Some (n, 0) else None) static_sel };
  show "(B) one loop per config"
    { Reconfig.Problem.version_of = [ ("loop1", 3); ("loop2", 4); ("loop3", 2) ];
      config_of = [ ("loop1", 0); ("loop2", 1); ("loop3", 2) ] };
  show "(C) iterative algorithm" (Reconfig.Algorithms.iterative p);
  Report.row fmt
    [ "paper: (A) 883K, (B) 933K, (C) 1173K  (the thesis's (A) illustrates a \
       particular static choice; our static DP finds the optimal one)" ]

let figure_6_8 fmt =
  Report.banner fmt ~id:"Figure 6.8" "solution quality (net gain, synthetic input)";
  Report.row fmt
    [ Report.cellr ~width:6 "loops"; Report.cellr ~width:12 "exhaustive";
      Report.cellr ~width:12 "greedy"; Report.cellr ~width:12 "iterative";
      Report.cellr ~width:16 "iter/greedy" ];
  List.iter
    (fun n ->
      let p = Reconfig.Synthetic.generate ~seed:(2000 + n) ~loops:n in
      let exhaustive_gain =
        if n > exhaustive_limit then None
        else
          Option.map (Reconfig.Problem.net_gain p)
            (Reconfig.Algorithms.exhaustive ~max_partitions:5_000_000 p)
      in
      let greedy_gain = Reconfig.Problem.net_gain p (Reconfig.Algorithms.greedy p) in
      let iter_gain = Reconfig.Problem.net_gain p (Reconfig.Algorithms.iterative p) in
      Report.row fmt
        [ Report.cellr ~width:6 (string_of_int n);
          Report.cellr ~width:12
            (match exhaustive_gain with
             | Some g -> string_of_int g
             | None -> "N.A.");
          Report.cellr ~width:12 (string_of_int greedy_gain);
          Report.cellr ~width:12 (string_of_int iter_gain);
          Report.cellr ~width:16
            (Printf.sprintf "%.2fx" (float_of_int iter_gain /. Float.max 1. (float_of_int greedy_gain))) ])
    [ 5; 6; 7; 8; 9; 10; 11; 12; 14; 16; 20 ]

(* The JPEG case study (Table 6.2 / Figure 6.10): hot loops modelled from
   the JPEG encoder kernel, CIS versions generated by the real
   identification/selection pipeline, and the loop trace of a frame. *)
let jpeg_problem ~max_area ~reconfig_cost =
  let mk_loop name block_builder iterations =
    let dfg = block_builder () in
    let cfg = { Ir.Cfg.name; code = Ir.Cfg.loop iterations (Ir.Cfg.block "body" dfg) } in
    let curve = Ise.Curve.generate ~params:Ise.Curve.small cfg in
    let points =
      Array.to_list (Isa.Config.points curve)
      |> List.filter_map (fun (pt : Isa.Config.point) ->
             if pt.area = 0 then None
             else Some (Isa.Config.base_cycles curve - pt.cycles, pt.area))
    in
    (* keep at most 5 versions, spread over the curve *)
    let n = List.length points in
    let stride = max 1 (n / 5) in
    let sampled =
      List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) points
      |> List.sort_uniq compare
    in
    Reconfig.Problem.loop name sampled
  in
  let prng = Util.Prng.create 600 in
  let dsp size () = Kernels.Blockgen.block prng ~loads:4 ~stores:2 ~size Kernels.Blockgen.dsp_mix in
  let ctrl size () = Kernels.Blockgen.block prng ~loads:3 ~stores:1 ~size Kernels.Blockgen.control_mix in
  let loops =
    [ mk_loop "color_convert" (dsp 48) 256;
      mk_loop "dct" (fun () -> Kernels.Blockgen.dct8 ()) 512;
      mk_loop "quantize" (ctrl 24) 512;
      mk_loop "zigzag" (ctrl 16) 256;
      mk_loop "huffman" (ctrl 40) 256 ]
  in
  (* per-MCU activation sequence over a 64-MCU frame *)
  let trace =
    Ir.Trace.repeat [ "color_convert"; "dct"; "quantize"; "zigzag"; "huffman" ] 64
  in
  { Reconfig.Problem.loops; trace; max_area; reconfig_cost }

let table_6_2 fmt =
  Report.banner fmt ~id:"Table 6.2" "CIS versions for the JPEG application";
  let p = jpeg_problem ~max_area:1000 ~reconfig_cost:50 in
  Report.row fmt
    [ Report.cell ~width:16 "loop"; Report.cell "versions (gain/area)" ];
  List.iter
    (fun (l : Reconfig.Problem.hot_loop) ->
      Report.row fmt
        [ Report.cell ~width:16 l.name;
          String.concat "  "
            (Array.to_list l.versions
             |> List.filteri (fun i _ -> i > 0)
             |> List.map (fun (v : Reconfig.Problem.version) ->
                    Printf.sprintf "%d/%d" v.gain v.area)) ])
    p.Reconfig.Problem.loops

let figure_6_10 fmt =
  Report.banner fmt ~id:"Figure 6.10" "JPEG case study: solution quality vs fabric size";
  Report.row fmt
    [ Report.cellr ~width:10 "max area"; Report.cellr ~width:12 "exhaustive";
      Report.cellr ~width:12 "greedy"; Report.cellr ~width:12 "iterative";
      Report.cellr ~width:10 "configs" ];
  List.iter
    (fun max_area ->
      let p = jpeg_problem ~max_area ~reconfig_cost:50 in
      let ex =
        Option.map (Reconfig.Problem.net_gain p) (Reconfig.Algorithms.exhaustive p)
      in
      let greedy_gain = Reconfig.Problem.net_gain p (Reconfig.Algorithms.greedy p) in
      let iter_placement = Reconfig.Algorithms.iterative p in
      let iter_gain = Reconfig.Problem.net_gain p iter_placement in
      Report.row fmt
        [ Report.cellr ~width:10 (string_of_int max_area);
          Report.cellr ~width:12
            (match ex with Some g -> string_of_int g | None -> "N.A.");
          Report.cellr ~width:12 (string_of_int greedy_gain);
          Report.cellr ~width:12 (string_of_int iter_gain);
          Report.cellr ~width:10 (string_of_int (Reconfig.Problem.num_configs iter_placement)) ])
    [ 250; 500; 750; 1000; 1500; 2000 ]
