(** Structured experiment output.

    Experiment drivers used to print straight to a formatter; they now
    accumulate into a {!t} builder and the registry packages the run as
    a {!result} — rows plus labelled sub-step timings plus total wall
    time — which callers can render as text ({!render}), serialise
    ({!to_json}), or assert on directly in tests. *)

type result = {
  banner : (string * string) option;
      (** printed heading, e.g. [("Table 3.1", "composition of task sets")] *)
  rows : string list list;  (** table rows; cells are pre-padded text *)
  timings : (string * float) list;
      (** labelled sub-step wall times recorded with {!timed_into} *)
  elapsed : float;  (** total wall-clock seconds of the run *)
  status : string;
      (** ["exact"] when every solver ran to completion; ["partial"] when
          a resource guard (deadline / fuel / injected fault) stopped one
          early, detected via the ["guard.exhausted"] telemetry delta *)
}

type t
(** Mutable builder handed to each experiment driver. *)

val create : unit -> t

val banner : t -> id:string -> string -> unit
(** Set the experiment heading, e.g.
    [banner t ~id:"f3.3" "utilization vs area"]. *)

val row : t -> string list -> unit
(** Append one table row, columns separated by two spaces when rendered
    (caller pre-pads). *)

val timing : t -> string -> float -> unit
(** Record a labelled sub-step wall time. *)

val result : ?elapsed:float -> ?status:string -> t -> result
val collect : (t -> unit) -> result
(** Run a driver against a fresh builder and package the result,
    measuring [elapsed] and deriving [status] from the guard-exhaustion
    telemetry delta across the run. *)

val render : Format.formatter -> result -> unit
(** The classic text rendering (banner line, then rows). *)

val to_json : result -> string

val cell : ?width:int -> string -> string
(** Right-pad to a column width (default 12). *)

val cellr : ?width:int -> string -> string
(** Left-pad (right-align) to a column width (default 12). *)

val timed : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val timed_into : t -> string -> (unit -> 'a) -> 'a * float
(** {!timed}, also recording the measurement into the result's
    [timings]. *)

val pct : float -> string
(** Format a percentage with one decimal. *)
