let base_params = Ise.Curve.small

(* Process-wide generator selection (the CLI's [--generator]).  The
   in-process memo tables are keyed by kernel name only, so switching
   generators must drop them; the persistent store is safe because the
   generator is part of [Ise.Curve.params_key]. *)
let generator = ref Ise.Isegen.Exhaustive
let hw = ref Isa.Hw_model.uniform

(* Two-level cache: a per-process memo table in front of the persistent
   Engine.Cache store, so one process never deserialises an entry twice
   and a warm process never regenerates a curve at all.  Namespaces
   carry a schema tag; bump them (or Engine.Cache.format_version) when
   the stored value's meaning changes. *)
let curve_ns = "curve"
let cand_ns = "candidates"

let curve_table : (string, Isa.Config.t) Hashtbl.t = Hashtbl.create 32
let candidate_table : (string, Ise.Select.candidate list) Hashtbl.t = Hashtbl.create 32

let reset () =
  Hashtbl.reset curve_table;
  Hashtbl.reset candidate_table

let set_generator g =
  if g <> !generator then begin
    generator := g;
    reset ()
  end

let set_hw b =
  if not (b == !hw) then begin
    hw := b;
    reset ()
  end

let current_params () =
  { base_params with Ise.Curve.generator = !generator; hw = !hw }

let key_of name = name ^ "|" ^ Ise.Curve.params_key (current_params ())

let cached table ~namespace ~generate name =
  match Hashtbl.find_opt table name with
  | Some v ->
    Engine.Telemetry.incr "curves.memo_hits";
    v
  | None ->
    Engine.Trace.with_span "curves.lookup"
      ~attrs:[ ("kernel", name); ("namespace", namespace) ]
    @@ fun () ->
    let key = key_of name in
    let v =
      match Engine.Cache.find ~namespace ~key () with
      | Some v -> v
      | None ->
        Engine.Log.info "curves: generating %s for %s" namespace name;
        let v = generate (Kernels.find name) in
        Engine.Cache.store ~namespace ~key v;
        v
    in
    Hashtbl.add table name v;
    v

let curve name =
  cached curve_table ~namespace:curve_ns
    ~generate:(Ise.Curve.generate ~params:(current_params ())) name

let candidates name =
  cached candidate_table ~namespace:cand_ns
    ~generate:(Ise.Curve.candidates ~params:(current_params ())) name

let warm ?pool names =
  Engine.Trace.with_span "curves.warm"
    ~attrs:[ ("kernels", string_of_int (List.length names)) ]
  @@ fun () ->
  let missing =
    List.sort_uniq compare names
    |> List.filter (fun n -> not (Hashtbl.mem curve_table n))
  in
  (* pull persisted curves first so the pool is handed only real
     generation work *)
  let to_generate =
    List.filter
      (fun name ->
        match Engine.Cache.find ~namespace:curve_ns ~key:(key_of name) () with
        | Some c ->
          Hashtbl.replace curve_table name c;
          false
        | None -> true)
      missing
  in
  if to_generate <> [] then
    Engine.Log.info "curves: warming %d kernel%s%s" (List.length to_generate)
      (if List.length to_generate = 1 then "" else "s")
      (match pool with
       | Some p when Engine.Parallel.Pool.jobs p > 1 ->
         Printf.sprintf " on %d domains" (Engine.Parallel.Pool.jobs p)
       | _ -> "");
  (* outer items are per kernel; each generation then splits into
     per-block / per-budget items on the same pool, so the curves that
     finish early leave their domains free to steal the stragglers' *)
  (match pool with
   | Some p ->
     Engine.Parallel.Pool.map p
       (fun name ->
         (name, Ise.Curve.generate ~pool:p ~params:(current_params ())
                  (Kernels.find name)))
       to_generate
   | None ->
     List.map
       (fun name ->
         (name, Ise.Curve.generate ~params:(current_params ()) (Kernels.find name)))
       to_generate)
  |> List.iter (fun (name, c) ->
         Engine.Cache.store ~namespace:curve_ns ~key:(key_of name) c;
         Hashtbl.replace curve_table name c)

let taskset_ch3 = function
  | 1 -> [ "crc32"; "sha"; "jpeg_dec"; "blowfish" ]
  | 2 -> [ "blowfish"; "adpcm_dec"; "crc32"; "jpeg_enc" ]
  | 3 -> [ "adpcm_enc"; "blowfish"; "jpeg_dec"; "crc32" ]
  | 4 -> [ "sha"; "susan"; "crc32"; "g721encode" ]
  | 5 -> [ "adpcm_dec"; "jpeg_dec"; "crc32"; "blowfish" ]
  | 6 -> [ "crc32"; "sha"; "blowfish"; "susan" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch3: no task set %d" n)

let taskset_ch4 = function
  | 1 -> [ "jpeg_enc"; "adpcm_enc"; "aes"; "compress"; "rijndael"; "md5" ]
  | 2 -> [ "jpeg_dec"; "g721decode"; "jpeg_enc"; "md5"; "adpcm_enc"; "jfdctint"; "aes" ]
  | 3 -> [ "jpeg_enc"; "md5"; "edn"; "sha"; "g721decode"; "jpeg_dec"; "compress"; "ndes" ]
  | 4 -> [ "adpcm_enc"; "rijndael"; "jpeg_enc"; "md5"; "sha"; "ndes"; "jpeg_dec"; "compress"; "edn" ]
  | 5 -> [ "aes"; "jpeg_dec"; "g721decode"; "rijndael"; "jfdctint"; "jpeg_enc"; "edn"; "md5"; "sha"; "ndes" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch4: no task set %d" n)

let taskset_ch5 = function
  | 1 -> [ "3des"; "rijndael"; "sha"; "g721decode" ]
  | 2 -> [ "sha"; "jfdctint"; "rijndael"; "ndes" ]
  | 3 -> [ "ndes"; "g721decode"; "rijndael"; "sha" ]
  | 4 -> [ "aes"; "3des"; "adpcm_enc"; "jfdctint" ]
  | 5 -> [ "adpcm_enc"; "jfdctint"; "rijndael"; "sha" ]
  | n -> invalid_arg (Printf.sprintf "taskset_ch5: no task set %d" n)

let tasks_of ~u names =
  List.map (fun name -> Rt.Task.make ~name ~period:1 (curve name)) names
  |> Rt.Task.with_target_utilization u

let max_area_of tasks =
  Util.Numeric.sum_by (fun (t : Rt.Task.t) -> Isa.Config.max_area t.curve) tasks
