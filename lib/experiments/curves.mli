(** Cached per-kernel configuration curves and the published task-set
    compositions.

    Curve generation (the XPRES substitute) is the expensive part of the
    Chapter 3/4 experiments, so curves live in a two-level cache: a
    per-process memo table backed by the persistent on-disk store
    ([Engine.Cache], under [_cache/]).  A warm process therefore never
    regenerates a curve; telemetry distinguishes ["curves.memo_hits"]
    from the engine's ["cache.hits"] / ["cache.misses"]. *)

val base_params : Ise.Curve.params
(** The generation parameters every experiment shares
    ([Ise.Curve.small]); they are part of the persistent cache key. *)

val set_generator : Ise.Isegen.choice -> unit
(** Select the candidate generator for every subsequently generated
    curve (the CLI's [--generator]).  Switching drops the in-process
    memo tables; persistent cache entries are distinguished by key. *)

val set_hw : Isa.Hw_model.backend -> unit
(** Select the hardware cost backend for every subsequently generated
    curve (the CLI's [--hw-model]); same memo-dropping behaviour as
    {!set_generator}. *)

val current_params : unit -> Ise.Curve.params
(** {!base_params} with the selected generator and cost backend
    applied. *)

val curve : string -> Isa.Config.t
(** Configuration curve of a kernel by benchmark name (cached). *)

val candidates : string -> Ise.Select.candidate list
(** Custom-instruction candidates of a kernel (cached). *)

val warm : ?pool:Engine.Parallel.Pool.t -> string list -> unit
(** Ensure every named kernel's curve is resident: disk-cached curves
    are loaded, the rest are generated on [pool]'s resident domains
    (per-kernel outer items, each splitting into per-block/per-budget
    inner items that idle domains steal) and persisted.  Without a pool
    generation runs sequentially; results are bit-identical either
    way. *)

val reset : unit -> unit
(** Drop the in-process memo tables (the persistent store is
    untouched) — used by benchmarks to measure cold paths. *)

val taskset_ch3 : int -> string list
(** Composition of Table 3.1's task sets (1-based index 1..6). *)

val taskset_ch4 : int -> string list
(** Composition of Table 4.1's task sets (1..5).  The thesis's [ispell]
    (Trimaran) benchmark is substituted by [md5] — see DESIGN.md. *)

val taskset_ch5 : int -> string list
(** Composition of Table 5.2's task sets (1..5). *)

val tasks_of : u:float -> string list -> Rt.Task.t list
(** Real-time tasks over the kernels' curves with periods set for a
    total software utilization of [u] in equal shares (§3.2). *)

val max_area_of : Rt.Task.t list -> int
(** Σ of the tasks' maximum configuration areas — the Max_Area budget
    reference of §3.2. *)
