(* Chapter 7 — runtime reconfiguration for multi-tasking real-time
   systems (§7.3): DP vs Optimal (ILP substitute) vs Static. *)

(* Periodic task sets whose CIS versions come from the real kernel
   pipeline; periods are set for a software utilization just above 1 so
   that customization decides schedulability, as in Figure 7.4. *)
let instance ~seed ~n_tasks ~max_area ~reconfig_cost ~u =
  let prng = Util.Prng.create seed in
  let kernel_names =
    [| "lms"; "ndes"; "jfdctint"; "edn"; "compress"; "adpcm_enc"; "aes"; "md5" |]
  in
  let chosen = Array.init n_tasks (fun i -> kernel_names.(i mod Array.length kernel_names)) in
  let share = u /. float_of_int n_tasks in
  let tasks =
    Array.to_list chosen
    |> List.mapi (fun i name ->
           let curve = Curves.curve name in
           let wcet = Isa.Config.base_cycles curve in
           (* jitter the share so periods are not all proportional *)
           let jitter = 0.7 +. Util.Prng.float prng 0.6 in
           let period =
             max wcet
               (int_of_float (Float.round (float_of_int wcet /. (share *. jitter))))
           in
           let points =
             Array.to_list (Isa.Config.points curve)
             |> List.filter_map (fun (p : Isa.Config.point) ->
                    if p.area = 0 || p.area > max_area then None
                    else Some (wcet - p.cycles, p.area))
             |> List.sort_uniq compare
           in
           (* keep at most 4 versions *)
           let n = List.length points in
           let stride = max 1 (n / 4) in
           let sampled =
             List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) points
             |> List.sort_uniq compare
           in
           Rtreconfig.Model.task
             ~name:(Printf.sprintf "%s#%d" name i)
             ~period ~wcet sampled)
  in
  { Rtreconfig.Model.tasks; max_area; reconfig_cost }

let table_7_1 fmt =
  Report.banner fmt ~id:"Table 7.1" "CIS versions of the tasks";
  let t = instance ~seed:70 ~n_tasks:5 ~max_area:600 ~reconfig_cost:2000 ~u:1.1 in
  Report.row fmt
    [ Report.cell ~width:14 "task"; Report.cellr ~width:12 "period";
      Report.cellr ~width:12 "wcet"; Report.cell ~width:40 "  versions (gain/area)" ];
  List.iter
    (fun (tk : Rtreconfig.Model.task) ->
      Report.row fmt
        [ Report.cell ~width:14 tk.name;
          Report.cellr ~width:12 (string_of_int tk.period);
          Report.cellr ~width:12 (string_of_int tk.wcet);
          "  "
          ^ String.concat "  "
              (Array.to_list tk.versions
               |> List.filteri (fun i _ -> i > 0)
               |> List.map (fun (v : Rtreconfig.Model.version) ->
                      Printf.sprintf "%d/%d" v.gain v.area)) ])
    t.Rtreconfig.Model.tasks

let figure_7_4 fmt =
  Report.banner fmt ~id:"Figure 7.4" "utilization: DP vs Optimal vs Static";
  Report.row fmt
    [ Report.cellr ~width:6 "tasks"; Report.cellr ~width:10 "area";
      Report.cellr ~width:10 "software"; Report.cellr ~width:10 "static";
      Report.cellr ~width:10 "DP"; Report.cellr ~width:10 "optimal";
      Report.cell ~width:16 "  schedulable" ];
  List.iter
    (fun (n_tasks, max_area, seed) ->
      let t = instance ~seed ~n_tasks ~max_area ~reconfig_cost:2000 ~u:1.08 in
      let u p = Rtreconfig.Model.utilization t p in
      let sw = u (Rtreconfig.Model.software_placement t) in
      let st = u (Rtreconfig.Solvers.static t) in
      let dp_p = Rtreconfig.Solvers.dp t in
      let dp = u dp_p in
      let opt = u (Rtreconfig.Solvers.optimal t) in
      Report.row fmt
        [ Report.cellr ~width:6 (string_of_int n_tasks);
          Report.cellr ~width:10 (string_of_int max_area);
          Report.cellr ~width:10 (Printf.sprintf "%.3f" sw);
          Report.cellr ~width:10 (Printf.sprintf "%.3f" st);
          Report.cellr ~width:10 (Printf.sprintf "%.3f" dp);
          Report.cellr ~width:10 (Printf.sprintf "%.3f" opt);
          Report.cell ~width:16
            (Printf.sprintf "  %s"
               (if Rtreconfig.Model.schedulable t dp_p then "DP schedules"
                else "DP infeasible")) ])
    [ (3, 100, 71); (4, 100, 72); (4, 150, 72); (5, 150, 73); (5, 200, 73);
      (6, 200, 74); (6, 300, 74); (4, 600, 75) ];
  Report.row fmt
    [ "paper: DP tracks Optimal closely; Static suffers when area is tight" ]

let table_7_2 fmt =
  Report.banner fmt ~id:"Table 7.2" "running time of Optimal and DP (seconds)";
  Report.row fmt
    [ Report.cellr ~width:6 "tasks"; Report.cellr ~width:12 "optimal(s)";
      Report.cellr ~width:12 "DP(s)" ];
  List.iter
    (fun n_tasks ->
      let t = instance ~seed:(80 + n_tasks) ~n_tasks ~max_area:400
          ~reconfig_cost:2000 ~u:1.08
      in
      let _, opt_t =
        Report.timed_into fmt
          (Printf.sprintf "optimal %d tasks" n_tasks)
          (fun () -> Rtreconfig.Solvers.optimal t)
      in
      let _, dp_t =
        Report.timed_into fmt
          (Printf.sprintf "dp %d tasks" n_tasks)
          (fun () -> Rtreconfig.Solvers.dp t)
      in
      Report.row fmt
        [ Report.cellr ~width:6 (string_of_int n_tasks);
          Report.cellr ~width:12 (Printf.sprintf "%.3f" opt_t);
          Report.cellr ~width:12 (Printf.sprintf "%.4f" dp_t) ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Report.row fmt [ "paper: Optimal (ILP) grows exponentially; DP stays flat" ]
