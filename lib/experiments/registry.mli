(** The experiment registry: every table and figure of the evaluation,
    addressable by its paper identifier (e.g. ["f3.3"], ["t6.1"]). *)

type experiment = {
  id : string;  (** short id, e.g. "f3.3" *)
  title : string;
  run : unit -> Report.result;
      (** execute the driver and return its structured report *)
}

val all : experiment list
(** In paper order. *)

val find : string -> experiment option

val ids : unit -> string list

val kernels_of : experiment -> string list
(** The benchmark kernels whose shared configuration curves the
    experiment consumes (via [Curves.curve]) — the work the parallel
    runner front-loads. *)

val run_parallel : ?pool:Engine.Parallel.Pool.t -> experiment -> Report.result
(** Generate all of {!kernels_of}'s missing curves on [pool]'s resident
    domains (see [Curves.warm]), then run the experiment; the warm-up
    time is prepended to the result's [timings] as ["curve-prewarm"]. *)

val run_sweep :
  ?pool:Engine.Parallel.Pool.t ->
  experiment list ->
  (experiment * (Report.result, string) result) list
(** {!run_parallel} over a list with crash isolation
    ([Engine.Parallel.Pool.isolate]): a driver that raises (including an
    injected fault, see [Engine.Fault]) is retried once and then
    reported as [Error message] in its slot, and the remaining
    experiments still run.  Experiments run one at a time; [pool]
    parallelises each one's internal curve warm-up. *)
