type experiment = {
  id : string;
  title : string;
  run : unit -> Report.result;
}

let exp id title driver =
  { id;
    title;
    run =
      (fun () ->
        Engine.Trace.with_span ("experiment." ^ id) ~attrs:[ ("title", title) ]
          (fun () -> Report.collect driver)) }

let all =
  [ exp "t3.1" "Table 3.1: composition of task sets" Ch3.table_3_1;
    exp "f3.1" "Figure 3.1: performance vs area (g721)" Ch3.figure_3_1;
    exp "f3.2" "Figure 3.2: heuristics vs optimal" Ch3.figure_3_2;
    exp "f3.3" "Figure 3.3: utilization vs area (EDF/RMS)" Ch3.figure_3_3;
    exp "f3.4" "Figure 3.4: energy vs area (task set 3)" Ch3.figure_3_4;
    exp "t4.1" "Table 4.1: composition of task sets" Ch4.table_4_1;
    exp "t4.2" "Table 4.2: approximation-scheme speedup" Ch4.table_4_2;
    exp "f4.4" "Figure 4.4: exact vs approximate Pareto" Ch4.figure_4_4;
    exp "t5.1" "Table 5.1: benchmark characteristics" Ch5.table_5_1;
    exp "t5.2" "Table 5.2: task sets" Ch5.table_5_2;
    exp "f5.3" "Figure 5.3: utilization vs iterations" Ch5.figure_5_3;
    exp "f5.4" "Figure 5.4: analysis time and area vs U" Ch5.figure_5_4;
    exp "f5.5" "Figure 5.5: speedup vs analysis time" Ch5.figure_5_5;
    exp "f5.6" "Figure 5.6: area vs speedup" Ch5.figure_5_6;
    exp "t6.1" "Table 6.1: algorithm running times" Ch6.table_6_1;
    exp "f6.4" "Figure 6.4: motivating example" Ch6.figure_6_4;
    exp "f6.8" "Figure 6.8: solution quality" Ch6.figure_6_8;
    exp "t6.2" "Table 6.2: JPEG CIS versions" Ch6.table_6_2;
    exp "f6.10" "Figure 6.10: JPEG solution quality" Ch6.figure_6_10;
    exp "t7.1" "Table 7.1: CIS versions of the tasks" Ch7.table_7_1;
    exp "f7.4" "Figure 7.4: DP vs Optimal vs Static" Ch7.figure_7_4;
    exp "t7.2" "Table 7.2: Optimal vs DP running time" Ch7.table_7_2;
    exp "a1" "Ablation: MLGP refinement" Ablations.mlgp_refinement;
    exp "a2" "Ablation: RMS B&B pruning" Ablations.rms_pruning;
    exp "a3" "Ablation: temporal balance portfolio" Ablations.reconfig_portfolio;
    exp "a4" "Ablation: identification budget" Ablations.enumeration_budget;
    exp "micro" "Bechamel micro-benchmarks" Micro.run ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

(* Kernels whose configuration curves the experiment pulls through
   Curves.curve — the set the parallel runner pre-generates.  Drivers
   that build bespoke curves (ch5's iterative runs, ch6's JPEG loops,
   a4's budget sweep) warm nothing: their curves are not cacheable under
   the shared key. *)
let kernels_of e =
  let union_of taskset sets = List.concat_map taskset sets in
  let ch7_pool = [ "lms"; "ndes"; "jfdctint"; "edn"; "compress"; "adpcm_enc"; "aes"; "md5" ] in
  let names =
    match e.id with
    | "f3.1" -> [ "g721decode" ]
    | "f3.3" | "a2" -> union_of Curves.taskset_ch3 [ 1; 2; 3; 4; 5; 6 ]
    | "f3.4" -> Curves.taskset_ch3 3
    | "t4.2" -> union_of Curves.taskset_ch4 [ 1; 2; 3; 4; 5 ]
    | "f4.4" -> "g721decode" :: Curves.taskset_ch4 1
    | "t7.1" | "f7.4" | "t7.2" | "micro" -> ch7_pool
    | _ -> []
  in
  List.sort_uniq compare names

let run_parallel ?pool e =
  let _, warm_time =
    Report.timed (fun () -> Curves.warm ?pool (kernels_of e))
  in
  let result = e.run () in
  { result with timings = ("curve-prewarm", warm_time) :: result.timings }

(* Experiments run one at a time (each already spreads its curve
   warm-up across the pool internally); [Pool.isolate] supplies the
   crash isolation and retry, so one raising driver degrades to a
   reported error instead of aborting the whole sweep. *)
let run_sweep ?pool exps =
  List.map
    (fun e ->
      match
        Engine.Parallel.Pool.isolate ~attempts:2 (fun e -> run_parallel ?pool e) e
      with
      | Ok r -> (e, Ok r)
      | Error (err : Engine.Parallel.error) ->
        Engine.Log.warn "experiment %s failed after %d attempt(s): %s" e.id
          err.attempts err.message;
        (e, Error err.message))
    exps
