type result = {
  banner : (string * string) option;
  rows : string list list;
  timings : (string * float) list;
  elapsed : float;
  status : string;
}

type t = {
  mutable header : (string * string) option;
  mutable rows_rev : string list list;
  mutable timings_rev : (string * float) list;
}

let create () = { header = None; rows_rev = []; timings_rev = [] }

let banner t ~id title = t.header <- Some (id, title)

let row t cells = t.rows_rev <- cells :: t.rows_rev

let timing t label dt = t.timings_rev <- (label, dt) :: t.timings_rev

let result ?(elapsed = 0.) ?(status = "exact") t =
  { banner = t.header;
    rows = List.rev t.rows_rev;
    timings = List.rev t.timings_rev;
    elapsed;
    status }

let collect f =
  let t = create () in
  (* any guard exhaustion during the driver means some solver stopped
     early and the numbers are best-effort, not exact *)
  let exhausted_before = Engine.Telemetry.counter "guard.exhausted" in
  let t0 = Unix.gettimeofday () in
  f t;
  let status =
    if Engine.Telemetry.counter "guard.exhausted" > exhausted_before then
      "partial"
    else "exact"
  in
  result ~elapsed:(Unix.gettimeofday () -. t0) ~status t

let pad width s align =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with `Left -> s ^ fill | `Right -> fill ^ s

let cell ?(width = 12) s = pad width s `Left
let cellr ?(width = 12) s = pad width s `Right

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let timed_into t label f =
  let r, dt = timed f in
  timing t label dt;
  (r, dt)

let pct v = Printf.sprintf "%.1f%%" v

let render fmt r =
  (match r.banner with
   | Some (id, title) -> Format.fprintf fmt "@.=== %s: %s ===@." id title
   | None -> ());
  if r.status <> "exact" then
    Format.fprintf fmt "(status: %s — a resource guard stopped a solver early)@."
      r.status;
  List.iter
    (fun cells -> Format.fprintf fmt "%s@." (String.concat "  " cells))
    r.rows

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json r =
  let trimmed_rows =
    List.map (fun cells -> List.map String.trim cells) r.rows
  in
  let rows =
    trimmed_rows
    |> List.map (fun cells ->
           "[" ^ String.concat ", " (List.map json_string cells) ^ "]")
    |> String.concat ", "
  in
  let timings =
    r.timings
    |> List.map (fun (label, dt) ->
           Printf.sprintf "%s: %.6f" (json_string label) dt)
    |> String.concat ", "
  in
  let banner =
    match r.banner with
    | Some (id, title) ->
      Printf.sprintf "{\"id\": %s, \"title\": %s}" (json_string id)
        (json_string title)
    | None -> "null"
  in
  Printf.sprintf
    "{\"banner\": %s, \"rows\": [%s], \"timings\": {%s}, \"elapsed\": %.6f, \
     \"status\": %s}"
    banner rows timings r.elapsed (json_string r.status)
