(** Optimal customization under RMS scheduling — Algorithm 2 of the
    paper (thesis §3.1.4).

    RMS has no utilization-only exact test, so the selection is a
    branch-and-bound over the tree of per-task configuration choices,
    visited in decreasing priority (increasing period) order.  Pruning:

    - area budget exceeded at a node → prune the subtree;
    - task Tᵢ fails the exact schedulability test (Theorem 1's Lᵢ ≤ 1,
      which only depends on T₁..Tᵢ thanks to the traversal order) →
      prune;
    - optimistic bound (chosen utilizations + best-possible utilizations
      of the remaining tasks, ignoring area) ≥ incumbent → prune.

    Configurations are tried fastest-first so a good incumbent appears
    early. *)

val run : budget:int -> Rt.Task.t list -> Selection.t option
(** Minimum-utilization RMS-schedulable assignment within the budget;
    [None] when no assignment (including software-only) is
    schedulable.  Always runs to completion (an explicit unlimited
    guard), whatever the process-wide default budget — differential
    oracles rely on this exactness. *)

val run_guarded :
  ?guard:Engine.Guard.t ->
  budget:int ->
  Rt.Task.t list ->
  Selection.t option * Engine.Guard.status
(** Bounded-effort {!run}: the branch-and-bound spends one fuel unit
    per search-tree node and, when the guard is exhausted, unwinds and
    returns the best incumbent found so far with status
    [Partial reason].  A [Partial] incumbent is still a complete,
    in-budget, RMS-schedulable assignment — just not proven minimal
    (and [None] under [Partial] means no incumbent was reached, not
    infeasibility).  [guard] defaults to {!Engine.Guard.default}, i.e.
    the CLI's [--deadline] / [--max-nodes] budget. *)

type stats = {
  explored : int;  (** search-tree nodes visited *)
  pruned_bound : int;  (** subtrees cut by the optimistic bound *)
  pruned_schedulability : int;  (** configurations failing the exact test *)
  pruned_area : int;  (** configurations over the remaining budget *)
  status : Engine.Guard.status;  (** [Exact], or [Partial] if the guard ran out *)
}

val run_instrumented :
  ?guard:Engine.Guard.t ->
  ?use_bound:bool ->
  ?fastest_first:bool ->
  budget:int ->
  Rt.Task.t list ->
  Selection.t option * stats
(** {!run} with pruning switches and search statistics, for the ablation
    study: [use_bound] enables the optimistic lower-bound pruning,
    [fastest_first] the minimum-execution-time visiting order the thesis
    prescribes (both default true).  Disabling them never changes the
    returned optimum, only the work done — a property the tests check.
    [guard] as in {!run_guarded}. *)

val exhaustive : budget:int -> Rt.Task.t list -> Selection.t option
(** Brute-force oracle for small instances. *)
