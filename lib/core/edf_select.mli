(** Optimal customization under EDF scheduling — Algorithm 1 of the
    paper (thesis §3.1.3).

    A pseudo-polynomial dynamic program over the area budget: Uᵢ(A) is
    the minimum total utilization of tasks T₁..Tᵢ spending at most A on
    custom instructions, recursing over each task's configuration curve.
    The area granularity Δ is the GCD of all configuration areas and the
    budget, exactly as in the thesis; complexity O(N · AREA/Δ · max nᵢ).

    Because EDF schedulability is exactly U ≤ 1, minimising utilization
    is complete for schedulability: the returned selection is
    schedulable iff its utilization is ≤ 1. *)

val run : budget:int -> Rt.Task.t list -> Selection.t
(** Minimum-utilization assignment within the budget (always exists —
    the software configuration is free). *)

val run_sweep : budgets:int list -> Rt.Task.t list -> Selection.t list
(** One selection per requested budget, in order, from a single DP
    filled to the largest budget at granularity
    Δ = gcd(budgets ∪ areas).  Because that Δ divides each per-budget
    granularity, every result is bit-identical to the corresponding
    [run ~budget] — a whole budget sweep for the price of one DP (the
    batch service's grouping relies on this; asserted property-based in
    the [batch] suite).  Counts ["edf.sweeps"]. *)

val run_schedulable : budget:int -> Rt.Task.t list -> Selection.t option
(** The same, filtered to EDF-schedulable results: [None] when even the
    optimum exceeds utilization 1. *)

val exhaustive : budget:int -> Rt.Task.t list -> Selection.t
(** Brute-force cross product of all curves (exponential) — test oracle
    for small instances. *)
