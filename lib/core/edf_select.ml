let positive_areas tasks =
  List.concat_map
    (fun (t : Rt.Task.t) ->
      Array.to_list (Isa.Config.points t.curve)
      |> List.filter_map (fun (p : Isa.Config.point) ->
             if p.area > 0 then Some p.area else None))
    tasks

let granularity ~budget tasks =
  max 1 (Util.Numeric.gcd_list (budget :: positive_areas tasks))

(* u.(a) = best utilization of the processed prefix with area budget
   a·Δ; choice.(i).(a) = configuration index picked for task i. *)
let dp_tables ~delta ~cells (tasks : Rt.Task.t array) =
  let n = Array.length tasks in
  let u = Array.make cells 0. in
  let choice = Array.make_matrix n cells 0 in
  for i = 0 to n - 1 do
    let task = tasks.(i) in
    let points = Isa.Config.points task.curve in
    let prev = Array.copy u in
    for cell = 0 to cells - 1 do
      let best = ref infinity and best_j = ref 0 in
      Array.iteri
        (fun j (p : Isa.Config.point) ->
          if p.area <= cell * delta then begin
            let rest = prev.((cell * delta - p.area) / delta) in
            let total = (float_of_int p.cycles /. float_of_int task.period) +. rest in
            if total < !best then begin
              best := total;
              best_j := j
            end
          end)
        points;
      u.(cell) <- !best;
      choice.(i).(cell) <- !best_j
    done
  done;
  choice

(* Recover an assignment by walking the parent pointers backwards from
   the cell holding the requested budget. *)
let traceback ~delta ~choice (tasks : Rt.Task.t array) start_cell =
  let n = Array.length tasks in
  let assignment = ref [] in
  let cell = ref start_cell in
  for i = n - 1 downto 0 do
    let task = tasks.(i) in
    let j = choice.(i).(!cell) in
    let p = (Isa.Config.points task.curve).(j) in
    assignment := (task, p) :: !assignment;
    cell := !cell - (p.Isa.Config.area / delta)
  done;
  Selection.of_assignment !assignment

let run ~budget tasks =
  if budget < 0 then invalid_arg "Edf_select.run: negative budget";
  Engine.Trace.with_span "edf.select"
    ~attrs:
      [ ("tasks", string_of_int (List.length tasks));
        ("budget", string_of_int budget) ]
  @@ fun () ->
  Engine.Telemetry.time "edf.select" @@ fun () ->
  Obs.Metrics.inc ~labels:[ ("solver", "edf") ] "solver.runs";
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then Selection.of_assignment []
  else begin
    let delta = granularity ~budget (Array.to_list tasks) in
    let cells = (budget / delta) + 1 in
    Engine.Telemetry.add "edf.dp_cells" (n * cells);
    Engine.Histogram.observe "edf.dp_cells" (float_of_int (n * cells));
    let choice = dp_tables ~delta ~cells tasks in
    traceback ~delta ~choice tasks (cells - 1)
  end

let run_sweep ~budgets tasks =
  List.iter
    (fun b -> if b < 0 then invalid_arg "Edf_select.run_sweep: negative budget")
    budgets;
  match budgets with
  | [] -> []
  | _ ->
    Engine.Trace.with_span "edf.sweep"
      ~attrs:
        [ ("tasks", string_of_int (List.length tasks));
          ("budgets", string_of_int (List.length budgets)) ]
    @@ fun () ->
    Engine.Telemetry.time "edf.select" @@ fun () ->
    Engine.Telemetry.incr "edf.sweeps";
    Obs.Metrics.inc ~labels:[ ("solver", "edf_sweep") ] "solver.runs";
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    if n = 0 then List.map (fun _ -> Selection.of_assignment []) budgets
    else begin
      (* The sweep granularity divides every per-budget granularity
         (it is a GCD over a superset), so the per-budget DP's states
         all live on the sweep grid: values, argmin scans and tie
         breaks coincide cell for cell, making each traceback
         bit-identical to [run ~budget]. *)
      let max_budget = List.fold_left max 0 budgets in
      let delta =
        max 1 (Util.Numeric.gcd_list (budgets @ positive_areas (Array.to_list tasks)))
      in
      let cells = (max_budget / delta) + 1 in
      Engine.Telemetry.add "edf.dp_cells" (n * cells);
      Engine.Histogram.observe "edf.dp_cells" (float_of_int (n * cells));
      let choice = dp_tables ~delta ~cells tasks in
      List.map (fun b -> traceback ~delta ~choice tasks (b / delta)) budgets
    end

let run_schedulable ~budget tasks =
  let sel = run ~budget tasks in
  if sel.Selection.utilization <= 1. then Some sel else None

let exhaustive ~budget tasks =
  let rec explore acc = function
    | [] ->
      let sel = Selection.of_assignment (List.rev acc) in
      if sel.Selection.area <= budget then Some sel else None
    | (task : Rt.Task.t) :: rest ->
      Array.fold_left
        (fun best p ->
          match explore ((task, p) :: acc) rest with
          | None -> best
          | Some sel ->
            (match best with
             | None -> Some sel
             | Some b ->
               if sel.Selection.utilization < b.Selection.utilization then Some sel
               else best))
        None (Isa.Config.points task.curve)
  in
  match explore [] tasks with
  | Some sel -> sel
  | None -> Selection.software tasks
