type stats = {
  explored : int;  (** search-tree nodes visited *)
  pruned_bound : int;  (** subtrees cut by the optimistic bound *)
  pruned_schedulability : int;  (** configurations failing the exact test *)
  pruned_area : int;  (** configurations over the remaining budget *)
  status : Engine.Guard.status;  (** [Exact], or [Partial] if the guard ran out *)
}

let sort_by_priority tasks =
  List.sort (fun (a : Rt.Task.t) (b : Rt.Task.t) -> compare a.period b.period) tasks

let run_instrumented ?guard ?(use_bound = true) ?(fastest_first = true) ~budget
    tasks =
  if budget < 0 then invalid_arg "Rms_select.run: negative budget";
  let guard =
    match guard with Some g -> g | None -> Engine.Guard.default ()
  in
  Engine.Trace.with_span "rms.bnb"
    ~attrs:
      [ ("tasks", string_of_int (List.length tasks));
        ("budget", string_of_int budget) ]
  @@ fun () ->
  Engine.Telemetry.time "rms.select" @@ fun () ->
  Obs.Metrics.inc ~labels:[ ("solver", "rms") ] "solver.runs";
  let tasks = Array.of_list (sort_by_priority tasks) in
  let n = Array.length tasks in
  (* Best achievable utilization of each suffix, area ignored — the
     optimistic component of the bound. *)
  let suffix_best = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    suffix_best.(i) <-
      suffix_best.(i + 1)
      +. (float_of_int (Isa.Config.min_cycles tasks.(i).curve)
          /. float_of_int tasks.(i).period)
  done;
  let incumbent_u = ref infinity in
  let incumbent = ref None in
  let explored = ref 0 and pruned_bound = ref 0 in
  let pruned_schedulability = ref 0 and pruned_area = ref 0 in
  (* cycles.(j) for j < i holds the chosen execution times, feeding the
     incremental exact test for task i. *)
  let cycles = Array.make n 0 in
  let chosen = Array.make n { Isa.Config.area = 0; cycles = 0 } in
  let prefix_tasks i =
    Array.init (i + 1) (fun j -> (cycles.(j), tasks.(j).Rt.Task.period))
  in
  (* One fuel unit per search-tree node: when the guard runs out the
     whole tree unwinds (every pending call re-checks and returns),
     leaving the incumbent — always a complete, schedulable, in-budget
     assignment — as the anytime answer. *)
  let rec search i area u =
    if not (Engine.Guard.tick guard) then ()
    else begin
      incr explored;
      search_node i area u
    end
  and search_node i area u =
    if i = n then begin
      if u < !incumbent_u then begin
        incumbent_u := u;
        incumbent :=
          Some (Array.to_list (Array.init n (fun j -> (tasks.(j), chosen.(j)))))
      end
    end
    else begin
      let task = tasks.(i) in
      let points = Array.copy (Isa.Config.points task.curve) in
      if fastest_first then
        Array.sort (fun (a : Isa.Config.point) b -> compare a.cycles b.cycles) points;
      Array.iter
        (fun (p : Isa.Config.point) ->
          if p.area > budget - area then incr pruned_area
          else begin
            cycles.(i) <- p.cycles;
            if not (Rt.Sched.rms_schedulable_prefix (prefix_tasks i) i) then
              incr pruned_schedulability
            else begin
              let u' = u +. (float_of_int p.cycles /. float_of_int task.period) in
              if use_bound && u' +. suffix_best.(i + 1) >= !incumbent_u then
                incr pruned_bound
              else begin
                chosen.(i) <- p;
                search (i + 1) (area + p.area) u'
              end
            end
          end)
        points
    end
  in
  search 0 0 0.;
  Engine.Telemetry.add "rms.explored" !explored;
  Engine.Histogram.observe "rms.bnb_nodes" (float_of_int !explored);
  Engine.Telemetry.add "rms.pruned_bound" !pruned_bound;
  Engine.Telemetry.add "rms.pruned_schedulability" !pruned_schedulability;
  Engine.Telemetry.add "rms.pruned_area" !pruned_area;
  ( Option.map Selection.of_assignment !incumbent,
    { explored = !explored; pruned_bound = !pruned_bound;
      pruned_schedulability = !pruned_schedulability; pruned_area = !pruned_area;
      status = Engine.Guard.status guard } )

let run ~budget tasks =
  (* the documented exact contract: never subject to the default budget *)
  fst (run_instrumented ~guard:(Engine.Guard.create ()) ~budget tasks)

let run_guarded ?guard ~budget tasks =
  let sel, stats = run_instrumented ?guard ~budget tasks in
  (sel, stats.status)

let exhaustive ~budget tasks =
  let tasks = sort_by_priority tasks in
  let rec explore acc = function
    | [] ->
      let sel = Selection.of_assignment (List.rev acc) in
      let pairs =
        List.map
          (fun ((t : Rt.Task.t), (p : Isa.Config.point)) -> (p.cycles, t.period))
          sel.Selection.assignment
      in
      if sel.Selection.area <= budget && Rt.Sched.rms_schedulable pairs then Some sel
      else None
    | (task : Rt.Task.t) :: rest ->
      Array.fold_left
        (fun best p ->
          match explore ((task, p) :: acc) rest with
          | None -> best
          | Some sel ->
            (match best with
             | None -> Some sel
             | Some b ->
               if sel.Selection.utilization < b.Selection.utilization then Some sel
               else best))
        None (Isa.Config.points task.curve)
  in
  explore [] tasks
