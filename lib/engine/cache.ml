let format_version = 1
let magic = "ISECACHE"

(* Families declared up front so /metrics exposes them (with help
   text) before the first hit or miss; cells carry a [namespace]
   label, and unlabeled [Telemetry.counter] reads sum across them. *)
let () =
  Obs.Metrics.declare ~help:"Persistent cache hits by namespace"
    Obs.Metrics.Counter "cache.hits";
  Obs.Metrics.declare ~help:"Persistent cache misses by namespace"
    Obs.Metrics.Counter "cache.misses";
  Obs.Metrics.declare
    ~help:"Writes degraded to memory-only after a persistence failure"
    Obs.Metrics.Counter "cache.write_failed";
  Obs.Metrics.declare ~help:"Corrupt cache entries discarded on read"
    Obs.Metrics.Counter "cache.corrupt"

let dir_ref =
  ref (Option.value ~default:"_cache" (Sys.getenv_opt "ISECUSTOM_CACHE_DIR"))

let dir () = !dir_ref
let set_dir d = dir_ref := d

let enabled_ref = ref true
let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let file_of ~namespace ~key =
  Filename.concat (dir ())
    (Printf.sprintf "%s-%s.cache" namespace
       (Digest.to_hex (Digest.string key)))

let ensure_dir () =
  let d = dir () in
  if not (Sys.file_exists d) then
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* One marshalled 6-tuple per entry.  The payload is itself a marshalled
   string so that a partial read fails inside the outer unmarshal (or the
   digest check) instead of producing a half-built value. *)
type header = string * int * string * string * string (* magic, version, ns, key, digest *)

let write_versioned ~version ~namespace ~key payload =
  ensure_dir ();
  let file = file_of ~namespace ~key in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  let committed = ref false in
  (* The finally clause both closes the channel and unlinks the orphan
     tmp file when anything below raises (ENOSPC, an injected fault):
     a failed write must not leak one .tmp.<pid> per attempt. *)
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Fault.inject "cache.write";
      Marshal.to_channel oc
        (((magic, version, namespace, key, Digest.string payload), payload)
          : header * string)
        [];
      flush oc;
      if Fault.fires "cache.truncate" then
        (* a torn write: the entry loses its tail but is still renamed
           into place, exactly what a crash between write and fsync
           leaves behind — the next read must see it as Corrupt *)
        Unix.ftruncate (Unix.descr_of_out_channel oc)
          (pos_out oc / 2);
      Sys.rename tmp file;
      committed := true)

let store_versioned ~version ~namespace ~key v =
  if enabled () then begin
    let payload = Marshal.to_string v [] in
    match write_versioned ~version ~namespace ~key payload with
    | () ->
      Log.debug "cache: stored %s/%s (%d bytes)" namespace key
        (String.length payload)
    | exception (Sys_error _ | Unix.Unix_error (_, _, _) | Fault.Injected _) ->
      (* degrade to in-memory-only: the caller keeps its computed value,
         the entry just is not persisted for the next process *)
      Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.write_failed";
      Obs.Flight.record ~severity:Obs.Flight.Warn "cache.write_degraded"
        [ ("namespace", namespace); ("key", key) ];
      Log.warn "cache: could not persist %s/%s — continuing without the disk \
                entry" namespace key
  end

let store ~namespace ~key v =
  store_versioned ~version:format_version ~namespace ~key v

(* Distinguishing a missing entry from a damaged one lets [find] warn
   about real corruption (truncated writes, foreign files, version
   drift) while a plain cold miss stays silent. *)
type read_result =
  | Missing
  | Corrupt of string
  | Entry of header * string

let read_entry file : read_result =
  match open_in_bin file with
  | exception Sys_error _ -> Missing
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (* Any corruption — truncation, garbage, a foreign file — lands
           here as an exception or a failed check and reads as a miss. *)
        match
          Fault.inject "cache.read";
          (Marshal.from_channel ic : header * string)
        with
        | ((m, _, _, _, _), _) when m <> magic -> Corrupt "bad magic"
        | ((_, v, _, _, _), _) when v <> format_version ->
          Corrupt (Printf.sprintf "format version %d (want %d)" v format_version)
        | ((_, _, _, _, digest), payload)
          when not (Digest.equal digest (Digest.string payload)) ->
          Corrupt "payload digest mismatch"
        | header, payload -> Entry (header, payload)
        | exception Fault.Injected p -> Corrupt ("injected fault at " ^ p)
        | exception _ -> Corrupt "truncated or unreadable")

let find ~namespace ~key () =
  if not (enabled ()) then None
  else begin
    let result =
      match read_entry (file_of ~namespace ~key) with
      | Entry ((_, _, ns, k, _), payload) when ns = namespace && k = key ->
        (try Some (Marshal.from_string payload 0)
         with _ ->
           Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.corrupt";
           Obs.Flight.record ~severity:Obs.Flight.Warn "cache.corrupt"
             [ ("namespace", namespace); ("key", key);
               ("reason", "undecodable payload") ];
           Log.warn "cache: undecodable payload in %s/%s — recomputing"
             namespace key;
           None)
      | Corrupt reason ->
        Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.corrupt";
        Obs.Flight.record ~severity:Obs.Flight.Warn "cache.corrupt"
          [ ("namespace", namespace); ("key", key); ("reason", reason) ];
        Log.warn "cache: %s in %s (%s/%s) — recomputing"
          reason (file_of ~namespace ~key) namespace key;
        None
      | Entry _ | Missing -> None
    in
    Obs.Metrics.inc
      ~labels:[ ("namespace", namespace) ]
      (if result = None then "cache.misses" else "cache.hits");
    Log.debug "cache: %s %s/%s"
      (if result = None then "miss" else "hit")
      namespace key;
    result
  end

type entry = { namespace : string; key : string; file : string; size : int }

let cache_files () =
  match Sys.readdir (dir ()) with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".cache")
    |> List.sort compare
    |> List.map (Filename.concat (dir ()))

let entries () =
  List.filter_map
    (fun file ->
      match read_entry file with
      | Entry ((_, _, namespace, key, _), payload) ->
        Some { namespace; key; file; size = String.length payload }
      | Missing | Corrupt _ ->
        (* keep corrupt/outdated files visible so `cache show` explains
           what `cache clear` would reclaim *)
        Some { namespace = "<unreadable>"; key = "-"; file;
               size = (try (Unix.stat file).Unix.st_size with _ -> 0) })
    (cache_files ())

let clear () =
  let files = cache_files () in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
  List.length files
