let format_version = 1
let magic = "ISECACHE"

(* Families declared up front so /metrics exposes them (with help
   text) before the first hit or miss; cells carry a [namespace]
   label, and unlabeled [Telemetry.counter] reads sum across them. *)
let () =
  Obs.Metrics.declare ~help:"Persistent cache hits by namespace"
    Obs.Metrics.Counter "cache.hits";
  Obs.Metrics.declare ~help:"Persistent cache misses by namespace"
    Obs.Metrics.Counter "cache.misses";
  Obs.Metrics.declare
    ~help:"Writes degraded to memory-only after a persistence failure"
    Obs.Metrics.Counter "cache.write_failed";
  Obs.Metrics.declare ~help:"Corrupt cache entries discarded on read"
    Obs.Metrics.Counter "cache.corrupt";
  Obs.Metrics.declare
    ~help:"Orphaned temp files reaped (writers killed mid-write)"
    Obs.Metrics.Counter "cache.tmp_swept";
  Obs.Metrics.declare
    ~help:"Cache generation bumps observed (invalidations by any process)"
    Obs.Metrics.Counter "cache.generation_bumps"

let dir_ref =
  ref (Option.value ~default:"_cache" (Sys.getenv_opt "ISECUSTOM_CACHE_DIR"))

let dir () = !dir_ref
let set_dir d = dir_ref := d

let enabled_ref = ref true
let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let file_of ~namespace ~key =
  Filename.concat (dir ())
    (Printf.sprintf "%s-%s.cache" namespace
       (Digest.to_hex (Digest.string key)))

let ensure_dir () =
  let d = dir () in
  if not (Sys.file_exists d) then
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* --------------- cross-process coherence protocol ------------------ *)
(* A warm daemon can share [dir ()] with concurrent `batch`/CLI writers.
   Entry files are already torn-proof individually (atomic rename +
   digest), but two things need a protocol across processes:

   - mutations that must not interleave (a writer's rename racing a
     sibling's [clear] mid-sweep) take an exclusive advisory lock on
     [<dir>/.lock];
   - invalidation intent must become visible to processes holding warm
     in-memory copies: [<dir>/.generation] is a monotone counter bumped
     under the lock by [clear], and [Memo.revalidate] drops its
     resident tables when it observes a new generation.

   [Unix.lockf] locks are per-process and released when *any* fd onto
   the file closes, so in-process use is serialised behind a mutex —
   the file lock only ever arbitrates between processes, which is the
   one job fcntl locks do reliably. *)

let lock_path () = Filename.concat (dir ()) ".lock"
let gen_path () = Filename.concat (dir ()) ".generation"

let lock_mutex = Mutex.create ()

let with_file_lock f =
  Mutex.lock lock_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock_mutex)
    (fun () ->
      ensure_dir ();
      match Unix.openfile (lock_path ()) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
      | exception Unix.Unix_error _ ->
        (* a read-only or vanished directory: degrade to lockless, the
           same best-effort stance the writes themselves take *)
        f ()
      | lfd ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.lockf lfd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
            try Unix.close lfd with Unix.Unix_error _ -> ())
          (fun () ->
            (try Unix.lockf lfd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
            f ()))

let generation () =
  match open_in_bin (gen_path ()) with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | line -> Option.value ~default:0 (int_of_string_opt (String.trim line))
        | exception End_of_file -> 0)

let bump_generation () =
  with_file_lock (fun () ->
      let g = generation () + 1 in
      let tmp = Printf.sprintf "%s.tmp.%d" (gen_path ()) (Unix.getpid ()) in
      (try
         let oc = open_out tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc (string_of_int g));
         Sys.rename tmp (gen_path ())
       with Sys_error _ | Unix.Unix_error _ -> (
         try Sys.remove tmp with Sys_error _ -> ()));
      Obs.Metrics.inc "cache.generation_bumps";
      g)

(* [<name>.tmp.<pid>] files are a live writer's scratch space until its
   rename; one left behind belongs to a writer that was SIGKILLed
   mid-write.  The pid in the name plus an age threshold tells the two
   apart: never reap a file whose writer is still alive. *)
let tmp_pid_of name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i ->
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    let stem = String.sub name 0 i in
    if Filename.check_suffix stem ".tmp" then int_of_string_opt suffix else None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, someone else's *)

let sweep_stale_tmp ?(older_than_s = 60.) () =
  match Sys.readdir (dir ()) with
  | exception Sys_error _ -> 0
  | files ->
    let now = Unix.gettimeofday () in
    let swept =
      Array.fold_left
        (fun n name ->
          match tmp_pid_of name with
          | None -> n
          | Some pid when pid_alive pid -> n
          | Some _ -> (
            let path = Filename.concat (dir ()) name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> n
            | st ->
              if now -. st.Unix.st_mtime < older_than_s then n
              else (
                match Sys.remove path with
                | () -> n + 1
                | exception Sys_error _ -> n)))
        0 files
    in
    if swept > 0 then begin
      Obs.Metrics.inc ~by:(float_of_int swept) "cache.tmp_swept";
      Obs.Flight.record "cache.tmp_swept"
        [ ("files", string_of_int swept); ("dir", dir ()) ];
      Log.warn "cache: reaped %d orphaned temp file(s) in %s (writer died \
                mid-write)" swept (dir ())
    end;
    swept

(* One marshalled 6-tuple per entry.  The payload is itself a marshalled
   string so that a partial read fails inside the outer unmarshal (or the
   digest check) instead of producing a half-built value. *)
type header = string * int * string * string * string (* magic, version, ns, key, digest *)

let write_versioned ~version ~namespace ~key payload =
  ensure_dir ();
  let file = file_of ~namespace ~key in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  let committed = ref false in
  (* The finally clause both closes the channel and unlinks the orphan
     tmp file when anything below raises (ENOSPC, an injected fault):
     a failed write must not leak one .tmp.<pid> per attempt. *)
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Fault.inject "cache.write";
      Marshal.to_channel oc
        (((magic, version, namespace, key, Digest.string payload), payload)
          : header * string)
        [];
      flush oc;
      if Fault.fires "cache.truncate" then
        (* a torn write: the entry loses its tail but is still renamed
           into place, exactly what a crash between write and fsync
           leaves behind — the next read must see it as Corrupt *)
        Unix.ftruncate (Unix.descr_of_out_channel oc)
          (pos_out oc / 2);
      (* publish under the advisory lock so the rename cannot
         interleave with a sibling process's [clear] mid-sweep *)
      with_file_lock (fun () -> Sys.rename tmp file);
      committed := true)

let store_versioned ~version ~namespace ~key v =
  if enabled () then begin
    let payload = Marshal.to_string v [] in
    match write_versioned ~version ~namespace ~key payload with
    | () ->
      Log.debug "cache: stored %s/%s (%d bytes)" namespace key
        (String.length payload)
    | exception (Sys_error _ | Unix.Unix_error (_, _, _) | Fault.Injected _) ->
      (* degrade to in-memory-only: the caller keeps its computed value,
         the entry just is not persisted for the next process *)
      Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.write_failed";
      Obs.Flight.record ~severity:Obs.Flight.Warn "cache.write_degraded"
        [ ("namespace", namespace); ("key", key) ];
      Log.warn "cache: could not persist %s/%s — continuing without the disk \
                entry" namespace key
  end

let store ~namespace ~key v =
  store_versioned ~version:format_version ~namespace ~key v

(* Distinguishing a missing entry from a damaged one lets [find] warn
   about real corruption (truncated writes, foreign files, version
   drift) while a plain cold miss stays silent. *)
type read_result =
  | Missing
  | Corrupt of string
  | Entry of header * string

let read_entry file : read_result =
  match open_in_bin file with
  | exception Sys_error _ -> Missing
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (* Any corruption — truncation, garbage, a foreign file — lands
           here as an exception or a failed check and reads as a miss. *)
        match
          Fault.inject "cache.read";
          (Marshal.from_channel ic : header * string)
        with
        | ((m, _, _, _, _), _) when m <> magic -> Corrupt "bad magic"
        | ((_, v, _, _, _), _) when v <> format_version ->
          Corrupt (Printf.sprintf "format version %d (want %d)" v format_version)
        | ((_, _, _, _, digest), payload)
          when not (Digest.equal digest (Digest.string payload)) ->
          Corrupt "payload digest mismatch"
        | header, payload -> Entry (header, payload)
        | exception Fault.Injected p -> Corrupt ("injected fault at " ^ p)
        | exception _ -> Corrupt "truncated or unreadable")

let find ~namespace ~key () =
  if not (enabled ()) then None
  else begin
    let result =
      match read_entry (file_of ~namespace ~key) with
      | Entry ((_, _, ns, k, _), payload) when ns = namespace && k = key ->
        (try Some (Marshal.from_string payload 0)
         with _ ->
           Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.corrupt";
           Obs.Flight.record ~severity:Obs.Flight.Warn "cache.corrupt"
             [ ("namespace", namespace); ("key", key);
               ("reason", "undecodable payload") ];
           Log.warn "cache: undecodable payload in %s/%s — recomputing"
             namespace key;
           None)
      | Corrupt reason ->
        Obs.Metrics.inc ~labels:[ ("namespace", namespace) ] "cache.corrupt";
        Obs.Flight.record ~severity:Obs.Flight.Warn "cache.corrupt"
          [ ("namespace", namespace); ("key", key); ("reason", reason) ];
        Log.warn "cache: %s in %s (%s/%s) — recomputing"
          reason (file_of ~namespace ~key) namespace key;
        None
      | Entry _ | Missing -> None
    in
    Obs.Metrics.inc
      ~labels:[ ("namespace", namespace) ]
      (if result = None then "cache.misses" else "cache.hits");
    Log.debug "cache: %s %s/%s"
      (if result = None then "miss" else "hit")
      namespace key;
    result
  end

type entry = { namespace : string; key : string; file : string; size : int }

let cache_files () =
  match Sys.readdir (dir ()) with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".cache")
    |> List.sort compare
    |> List.map (Filename.concat (dir ()))

let entries () =
  List.filter_map
    (fun file ->
      match read_entry file with
      | Entry ((_, _, namespace, key, _), payload) ->
        Some { namespace; key; file; size = String.length payload }
      | Missing | Corrupt _ ->
        (* keep corrupt/outdated files visible so `cache show` explains
           what `cache clear` would reclaim *)
        Some { namespace = "<unreadable>"; key = "-"; file;
               size = (try (Unix.stat file).Unix.st_size with _ -> 0) })
    (cache_files ())

let clear () =
  (* One exclusive lock over the whole sweep: a concurrent writer's
     rename lands either before (and is removed) or after (and
     survives whole) — never half-interleaved.  The generation bump
     inside the same critical section is what tells warm siblings
     ([Memo.revalidate]) their resident copies were invalidated. *)
  let n =
    with_file_lock (fun () ->
        let files = cache_files () in
        List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
        List.length files)
  in
  ignore (bump_generation () : int);
  ignore (sweep_stale_tmp ~older_than_s:0. () : int);
  n
