(** Leveled logging for the solver pipeline, replacing ad-hoc
    [Format.eprintf] output.

    Two sinks, each independently optional:
    - a human-readable formatter sink (default [Format.err_formatter]),
      one [\[HH:MM:SS level\] message] line per record;
    - a JSONL file sink ({!set_json_file}), one
      [{"ts": seconds-since-epoch, "level": ..., "msg": ...}] object
      per line, for machine consumption.

    Records below the current level ({!set_level}, default {!Warn}) are
    dropped before formatting, so a disabled [debug] costs one branch.
    All emission is mutex-protected and therefore domain-safe: lines
    from concurrent {!Parallel} workers never interleave mid-record. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> (level, string) result
(** Case-insensitive ["error" | "warn" | "info" | "debug"]. *)

val string_of_level : level -> string

val would_log : level -> bool
(** [true] iff a record at this level would reach the sinks. *)

val set_formatter : Format.formatter -> unit
(** Redirect the human-readable sink (tests use a buffer formatter). *)

val set_json_file : string option -> unit
(** Open (append) the JSONL sink at the given path, or close it with
    [None].  Replacing the sink closes the previous channel. *)

val err : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ('a, Format.formatter, unit, unit) format4 -> 'a

val msg : level -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** The general form behind the four wrappers. *)
