(** Cooperative resource guards: bounded-effort execution for the
    worst-case-exponential solvers.

    A guard carries a work budget — an optional wall-clock deadline
    and/or an optional {e fuel} allowance (abstract work units, e.g.
    search-tree nodes) — and the solver spends it by calling {!tick} at
    poll points of its own choosing.  When the budget runs out, {!tick}
    starts returning [false] and the solver unwinds, returning its best
    incumbent so far tagged {!Partial} instead of {!Exact}.  Everything
    is cooperative and single-threaded: no signals, no timer threads,
    no cancellation races.

    Fuel budgets are deterministic — the same instance with the same
    fuel stops at the same node, so a [Partial] result is bit-for-bit
    reproducible.  Deadlines are not (they depend on machine speed);
    use fuel when reproducibility matters and deadlines when latency
    does.  The first exhaustion of a guard counts ["guard.exhausted"]
    in {!Telemetry}.

    The ["guard.exhaust"] {!Fault} point can force a {e bounded} guard
    to exhaust at any tick, so the degradation paths are testable
    without a pathological instance.  Guards with no limits never
    exhaust, injected or not — [create ()] is an ironclad way to demand
    an exact run. *)

type reason =
  | Deadline of float  (** the configured deadline, seconds *)
  | Fuel of int  (** the configured fuel allowance *)
  | Injected  (** forced by the ["guard.exhaust"] fault point *)

type status = Exact | Partial of reason
(** [Exact]: the solver ran to completion and its result carries its
    usual optimality/completeness guarantee.  [Partial]: the budget ran
    out first; the result is the best incumbent found — feasible, but
    not proven optimal (a property [lib/check] verifies). *)

exception Exhausted of reason
(** Raised by {!check_exn} for solvers (the brute-force oracles) whose
    partial results would be meaningless. *)

type spec = { deadline_s : float option; fuel : int option }

val no_limit : spec

val default_spec : unit -> spec
val set_default_spec : spec -> unit
(** Process-wide budget applied by solvers whose callers did not pass an
    explicit guard — how the CLI's [--deadline] / [--max-nodes] flags
    reach solvers buried inside experiment drivers.  Defaults to
    {!no_limit}. *)

type t
(** One guard instance.  Not shared across domains — each worker makes
    its own. *)

val create : ?deadline_s:float -> ?fuel:int -> unit -> t
(** A fresh guard; omitted limits are unlimited.  The deadline clock
    starts now.  Raises [Invalid_argument] on non-positive limits. *)

val of_spec : spec -> t

val default : unit -> t
(** [of_spec (default_spec ())]. *)

val tick : ?cost:int -> t -> bool
(** Spend [cost] fuel (default 1) and report whether to keep going:
    [false] means the guard is exhausted (now or previously) and the
    solver should unwind with its incumbent.  Wall-clock is polled only
    every 64 fuel units, so ticking in an inner loop is cheap. *)

val check_exn : ?cost:int -> t -> unit
(** {!tick}, raising {!Exhausted} instead of returning [false]. *)

val exhausted : t -> reason option

val status : t -> status
(** {!Exact} iff the guard never exhausted. *)

val used : t -> int
(** Fuel spent so far. *)

val merge_status : status -> status -> status
(** [Partial] dominates — for results combined from several guarded
    phases. *)

val string_of_reason : reason -> string
val string_of_status : status -> string
val pp_status : Format.formatter -> status -> unit
