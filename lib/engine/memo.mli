(** Sharded in-memory memo tables with optional spill to {!Cache}.

    A memo maps string keys (structural hashes in the batch service) to
    string payloads.  The key space is split across [shards] independent
    hash tables, each behind its own mutex, selected by the top bits of
    a hash of the key — so concurrent domains working on disjoint keys
    almost never contend on one lock.

    When [spill] is on, a store also writes the entry through {!Cache}
    (namespace-isolated, best-effort: a failing cache write degrades to
    memory-only exactly as {!Cache.store} documents), and a miss in the
    shard probes the cache before giving up; a spill hit is promoted
    back into its shard.  Lookups count ["memo.hits"] /
    ["memo.misses"] / ["memo.spill_hits"] / ["memo.stores"] in
    {!Telemetry}. *)

type t

val create : ?shards:int -> ?spill:bool -> namespace:string -> unit -> t
(** [shards] defaults to 16 (raises [Invalid_argument] below 1);
    [spill] defaults to [true].  [namespace] isolates the spilled
    entries in the cache directory. *)

val find : t -> key:string -> string option

val store : t -> key:string -> string -> unit

val find_or_compute : t -> key:string -> (unit -> string) -> string * bool
(** The cached payload and whether it was a hit; on a miss the computed
    payload is stored before returning [(payload, false)]. *)

val shards : t -> int

val size : t -> int
(** Entries currently resident in memory (spilled-only entries not
    counted). *)

val observe_occupancy : t -> unit
(** Record each shard's resident entry count into the
    ["memo.shard_occupancy"] {!Histogram} — a flat distribution means
    the hash prefix is spreading keys evenly. *)

val clear : t -> unit
(** Drop the in-memory shards (spilled entries survive in the cache). *)

val revalidate : t -> bool
(** Cross-process coherence probe: compare {!Cache.generation} against
    the generation the resident entries were loaded under; if a sibling
    process bumped it (a [cache clear] on the shared directory), drop
    the in-memory shards, count ["memo.invalidated"], record a Warn
    flight event and return [true].  Cheap when nothing changed (one
    small file read) — the daemon's watchdog calls this every tick.
    Always [false] for a no-spill memo (nothing shared to go stale). *)
