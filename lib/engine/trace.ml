type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  t_start : float;
  t_end : float;
  domain : int;
}

let enabled_flag = Atomic.make false
let next_id = Atomic.make 1
let epoch = Atomic.make 0.

let lock = Mutex.create ()
let global : span list ref = ref []

(* Completed spans stay in a domain-local buffer until [flush_local], so
   workers never contend on the global mutex per span — only once at
   join.  The open-span stack is also domain-local: nesting is a
   per-domain notion. *)
type local = { mutable stack : int list; mutable buf : span list }

let key = Domain.DLS.new_key (fun () -> { stack = []; buf = [] })

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && not (enabled ()) then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag b

let now () = Unix.gettimeofday () -. Atomic.get epoch

let current () =
  match (Domain.DLS.get key).stack with [] -> None | p :: _ -> Some p

let adopt parent f =
  match parent with
  | None -> f ()
  | Some p ->
    let l = Domain.DLS.get key in
    let saved = l.stack in
    l.stack <- [ p ];
    Fun.protect ~finally:(fun () -> l.stack <- saved) f

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let l = Domain.DLS.get key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match l.stack with [] -> None | p :: _ -> Some p in
    l.stack <- id :: l.stack;
    let t_start = now () in
    Fun.protect
      ~finally:(fun () ->
        let t_end = now () in
        l.stack <- List.tl l.stack;
        l.buf <-
          { id; parent; name; attrs; t_start; t_end;
            domain = (Domain.self () :> int) }
          :: l.buf)
      f
  end

let flush_local () =
  let l = Domain.DLS.get key in
  match l.buf with
  | [] -> ()
  | buf ->
    l.buf <- [];
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> global := List.rev_append buf !global)

let spans () =
  flush_local ();
  Mutex.lock lock;
  let all = Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> !global) in
  List.sort (fun a b -> compare (a.t_start, a.id) (b.t_start, b.id)) all

let reset () =
  let l = Domain.DLS.get key in
  l.buf <- [];
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> global := []);
  Atomic.set epoch (Unix.gettimeofday ())

type tree = { span : span; children : tree list }

let tree () =
  let all = spans () in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.id ()) all;
  let children = Hashtbl.create 64 in
  let roots =
    (* keep start order: children lists and the root list are built in
       one reversed pass over the already-sorted span list *)
    List.fold_left
      (fun roots s ->
        match s.parent with
        | Some p when Hashtbl.mem ids p ->
          Hashtbl.replace children p
            (s :: Option.value ~default:[] (Hashtbl.find_opt children p));
          roots
        | Some _ | None -> s :: roots)
      [] (List.rev all)
  in
  let rec build s =
    { span = s;
      children =
        List.map build (Option.value ~default:[] (Hashtbl.find_opt children s.id)) }
  in
  List.map build roots

let duration s = s.t_end -. s.t_start

let pp_tree fmt () =
  let rec pp depth t =
    Format.fprintf fmt "%s%-*s %9.3f ms%s@."
      (String.make (2 * depth) ' ')
      (max 1 (40 - (2 * depth)))
      t.span.name
      (1e3 *. duration t.span)
      (match t.span.attrs with
       | [] -> ""
       | attrs ->
         "  ["
         ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
         ^ "]");
    List.iter (pp (depth + 1)) t.children
  in
  match tree () with
  | [] -> Format.fprintf fmt "no spans recorded@."
  | roots -> List.iter (pp 0) roots

let to_chrome_json () =
  let event s =
    let args =
      ("span_id", Jsonx.string (string_of_int s.id))
      :: (match s.parent with
          | Some p -> [ ("parent_id", Jsonx.string (string_of_int p)) ]
          | None -> [])
      @ List.map (fun (k, v) -> (k, Jsonx.string v)) s.attrs
    in
    Jsonx.obj
      [ ("name", Jsonx.string s.name);
        ("cat", Jsonx.string "isecustom");
        ("ph", Jsonx.string "X");
        ("ts", Jsonx.float (1e6 *. s.t_start));
        ("dur", Jsonx.float (1e6 *. duration s));
        ("pid", "1");
        ("tid", string_of_int s.domain);
        ("args", Jsonx.obj args) ]
  in
  Jsonx.obj
    [ ("traceEvents", Jsonx.arr (List.map event (spans ())));
      ("displayTimeUnit", Jsonx.string "ms") ]

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')
