(* The implementation lives in Obs.Jsonx so the obs library (which the
   engine depends on) can emit JSON too; this re-export keeps every
   existing Engine.Jsonx caller working. *)
include Obs.Jsonx
