(** Hierarchical execution tracing: nested spans recording where
    wall-clock time goes inside a run.

    [with_span "rms.bnb" ~attrs f] times [f] and records a span whose
    parent is the span enclosing it on the same domain, so spans nest
    into a per-run tree (enumerate → select → curve → schedulability).
    Tracing is off by default; a disabled [with_span] is one atomic
    load and a tail call.

    Domain safety: each domain accumulates completed spans in a
    domain-local buffer; {!Parallel} workers adopt the spawning
    domain's current span as their root parent ({!adopt}) and merge
    their buffers into the global trace at join ({!flush_local}), so
    worker spans appear under the span that launched the parallel
    region.

    Export: a span tree ({!pp_tree}) or Chrome [trace_event] JSON
    ({!to_chrome_json}, {!write_chrome}) loadable in [about:tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  t_start : float;  (** seconds, relative to the trace epoch *)
  t_end : float;
  domain : int;  (** numeric id of the recording domain *)
}

val set_enabled : bool -> unit
(** Turn tracing on or off.  Turning it on (re)sets the trace epoch. *)

val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span (recorded also on exception).
    When tracing is disabled this is just the thunk. *)

val current : unit -> int option
(** Id of the innermost open span on this domain, if any. *)

val adopt : int option -> (unit -> 'a) -> 'a
(** [adopt parent f] runs [f] with its span stack rooted at [parent] —
    the bridge {!Parallel} uses to connect worker spans to the caller's
    tree.  [adopt None] just runs [f]. *)

val flush_local : unit -> unit
(** Merge this domain's completed-span buffer into the global trace.
    Must be called on a worker domain before it terminates; harmless
    anywhere else. *)

val spans : unit -> span list
(** All completed spans (flushing this domain first), in start order. *)

val reset : unit -> unit
(** Drop all recorded spans and restart the trace epoch.  Spans still
    open, and unflushed buffers of other live domains, survive into the
    new epoch — reset between parallel regions, not inside one. *)

type tree = { span : span; children : tree list }

val tree : unit -> tree list
(** Completed spans as a forest, children in start order.  A span whose
    parent is still open (or was dropped) roots its own tree. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented rendering of {!tree} with per-span durations. *)

val to_chrome_json : unit -> string
(** Chrome [trace_event] JSON: one complete ("ph":"X") event per span,
    [tid] = recording domain, timestamps in microseconds. *)

val write_chrome : string -> unit
(** Write {!to_chrome_json} to a file. *)
