(** Seeded fault injection for the execution engine.

    Failure-handling code is only trustworthy if its paths actually run,
    so the engine's I/O and worker layers carry named {e injection
    points} — [Fault.inject "cache.write"] and friends — that are inert
    until a spec is {!configure}d (or the [ISECUSTOM_FAULT_SPEC]
    environment variable is set, which CI's fault job uses).  A firing
    point raises {!Injected}, which the surrounding resilience code must
    survive exactly as it would the real failure (ENOSPC, a crashing
    worker, a torn write).

    Points wired in as of this writing:
    - ["cache.write"] — raised before a cache entry is written
      (exercises the degrade-to-in-memory path);
    - ["cache.read"] — raised while loading an entry (reads as
      corruption, forcing a recompute);
    - ["cache.truncate"] — does not raise; makes the write tear
      mid-entry so the {e next read} sees a truncated file;
    - ["parallel.worker"] — raised inside a worker's per-item
      computation ({!Parallel.Pool.map_result} retries / isolates it);
    - ["guard.exhaust"] — forces a {!Guard.t} to report exhaustion.

    Draws come from a seeded splitmix64 stream behind a mutex, so a
    single-threaded run with a given seed fires deterministically;
    under concurrent workers the draw order (not the rate) depends on
    scheduling. *)

exception Injected of string
(** Raised by a firing injection point, carrying the point name. *)

type point_spec = {
  prob : float;  (** chance a visit to the point fires, in [0, 1] *)
  cap : int option;  (** stop firing after this many fires ([None] = forever) *)
}

type spec = { seed : int; points : (string * point_spec) list }

val none : spec
(** Seed 0, no points — configuring it turns injection off. *)

val parse : string -> (spec, string) result
(** Parse the spec grammar: comma-separated clauses, each [seed=INT] or
    [POINT=RATE] where [RATE] is a probability with an optional [xN]
    fire cap — e.g. ["seed=7,cache.write=0.1,parallel.worker=1x2"]
    (inject into every cache write with probability 0.1, and crash a
    worker item deterministically, but at most twice). *)

val configure : spec -> unit
(** Install a spec, resetting the PRNG to its seed and all fire counts
    to zero. *)

val disable : unit -> unit
(** Turn injection off (equivalent to [configure none]). *)

val active : unit -> bool
(** Whether any injection point is configured.  Cheap (one load); test
    properties that assert non-degraded behaviour use it to skip. *)

val fires : string -> bool
(** Draw for the named point: [true] if it fires now.  For failure modes
    that are not exceptions (e.g. a torn write).  A fire counts against
    the point's cap, bumps ["fault.injected"] and
    ["fault.injected.<point>"] in {!Telemetry} and logs at debug
    level. *)

val inject : string -> unit
(** [fires] turned into a crash: raise {!Injected} when the point
    fires, no-op otherwise. *)

val fired : string -> int
(** How many times the point has fired since the last {!configure}. *)
