(** Solver telemetry: named monotone counters and cumulative wall-clock
    timers, reported into by the identification/selection pipeline
    ([Ise.Enumerate], [Ise.Select], [Ise.Curve]), the Chapter 3 solvers
    ([Core.Edf_select], [Core.Rms_select]) and the engine's cache.

    All operations are domain-safe, so workers of {!Parallel} can report
    concurrently.  Counter names are dotted paths, e.g.
    ["enumerate.candidates"], ["select.bnb_nodes"], ["cache.hits"].

    Since the labeled registry landed, this module is a compatibility
    veneer over [Obs.Metrics]: each name is a counter family there,
    instrumented call sites may attach labels to the same names
    (e.g. [cache.hits{namespace}], [fault.injected{point}]), and the
    reads here aggregate across label cells, so unlabeled callers keep
    seeing the familiar totals.  New code should prefer [Obs.Metrics]
    directly. *)

val incr : string -> unit
(** Add 1 to a counter (created at 0 on first use). *)

val add : string -> int -> unit
(** Add [n] to a counter. *)

val counter : string -> int
(** Current value of a counter; 0 if never touched. *)

val add_time : string -> float -> unit
(** Add elapsed seconds to a timer. *)

val time : string -> (unit -> 'a) -> 'a
(** Run a thunk, accumulating its wall-clock time into the named timer
    (also on exception). *)

val timer : string -> float
(** Accumulated seconds of a timer; 0 if never touched. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val timers : unit -> (string * float) list
(** All timers, sorted by name. *)

val reset : unit -> unit
(** Zero everything (counters and timers).  The clear is atomic, but it
    is {b not} an epoch barrier — a {!Parallel} worker that reports
    after the reset lands in the new epoch while its earlier reports
    are gone, mixing epochs in the totals.  The safe pattern is not to
    reset at all: take an [Obs.Snapshot.take] before the region of
    interest and read [Obs.Snapshot.delta] afterwards, as the CLI and
    bench now do.  [reset] remains for test isolation only. *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable two-column dump. *)

val to_json : unit -> string
(** [{"counters": {...}, "timers": {...}}].  Always valid JSON: empty
    tables serialise to [{}], names are escaped (quotes included), and
    a non-finite timer sum becomes [null]. *)
