(** Solver telemetry: named monotone counters and cumulative wall-clock
    timers, reported into by the identification/selection pipeline
    ([Ise.Enumerate], [Ise.Select], [Ise.Curve]), the Chapter 3 solvers
    ([Core.Edf_select], [Core.Rms_select]) and the engine's cache.

    All operations are domain-safe, so workers of {!Parallel} can report
    concurrently.  Counter names are dotted paths, e.g.
    ["enumerate.candidates"], ["select.bnb_nodes"], ["cache.hits"]. *)

val incr : string -> unit
(** Add 1 to a counter (created at 0 on first use). *)

val add : string -> int -> unit
(** Add [n] to a counter. *)

val counter : string -> int
(** Current value of a counter; 0 if never touched. *)

val add_time : string -> float -> unit
(** Add elapsed seconds to a timer. *)

val time : string -> (unit -> 'a) -> 'a
(** Run a thunk, accumulating its wall-clock time into the named timer
    (also on exception). *)

val timer : string -> float
(** Accumulated seconds of a timer; 0 if never touched. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val timers : unit -> (string * float) list
(** All timers, sorted by name. *)

val reset : unit -> unit
(** Zero everything (counters and timers).  Both tables are cleared
    under the same mutex as every report, so a reset is atomic: no
    reader ever sees one table cleared and the other not.  It is {b not}
    an epoch barrier, though — a {!Parallel} worker that reports after
    the reset lands in the new epoch while its earlier reports are gone,
    mixing epochs in the totals.  Callers that need clean numbers must
    quiesce first: reset only while no worker is running, as the CLI and
    bench harness do (reset before spawning, read after join). *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable two-column dump. *)

val to_json : unit -> string
(** [{"counters": {...}, "timers": {...}}].  Always valid JSON: empty
    tables serialise to [{}], names are escaped (quotes included), and
    a non-finite timer sum becomes [null]. *)
