let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Work-stealing over an atomic index into a shared input array.  Each
   worker writes only its own output slots, so no result synchronisation
   is needed; ordering the output array by input index makes the result
   independent of scheduling, i.e. deterministic.

   [run_workers] is the shared pool: it spawns [jobs - 1] domains (the
   caller's domain is the last worker), parents worker trace spans to
   the span enclosing the call, and merges each worker's trace buffer
   before its domain terminates — after join the caller sees one
   connected tree. *)
let run_workers ~jobs body =
  let span_parent = Trace.current () in
  let worker () =
    Trace.adopt span_parent body;
    Trace.flush_local ()
  in
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains

let map ?jobs f xs =
  let n = List.length xs in
  let jobs =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested n)
  in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Set on the first failure and polled before every queue pop, so
       the surviving workers stop claiming fresh items promptly instead
       of draining the queue while the failure waits to be re-raised. *)
    let cancelled = Atomic.make false in
    let rec worker () =
      if not (Atomic.get cancelled) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (try
             Fault.inject "parallel.worker";
             output.(i) <- Some (f input.(i))
           with e ->
             (* keep the first failure; later ones lose the race and are
                dropped, as List.map would also only surface one *)
             ignore (Atomic.compare_and_set failure None (Some e));
             Atomic.set cancelled true);
          worker ()
        end
      end
    in
    run_workers ~jobs worker;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)
  end

let map_reduce ?jobs ~map:f ~reduce init xs =
  (* reduce in input order so the result is deterministic even for
     merely-associative (non-commutative) reducers *)
  List.fold_left reduce init (map ?jobs f xs)

type error = { attempts : int; message : string }

(* One item, with bounded retry.  Retrying covers transient failures
   (an injected crash that does not re-fire, a racy resource); a
   deterministic failure burns its attempts and is reported, isolated
   to its own slot. *)
let run_item ~attempts f x =
  let rec go attempt =
    match
      Fault.inject "parallel.worker";
      f x
    with
    | v ->
      if attempt > 1 then Telemetry.incr "parallel.recovered";
      Ok v
    | exception e ->
      if attempt < attempts then begin
        Telemetry.incr "parallel.retried";
        go (attempt + 1)
      end
      else begin
        Telemetry.incr "parallel.item_failed";
        Log.warn "parallel: item failed after %d attempt%s: %s" attempt
          (if attempt = 1 then "" else "s")
          (Printexc.to_string e);
        Error { attempts = attempt; message = Printexc.to_string e }
      end
  in
  go 1

let map_result ?jobs ?(attempts = 2) f xs =
  if attempts < 1 then invalid_arg "Parallel.map_result: attempts < 1";
  let n = List.length xs in
  let jobs =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested n)
  in
  if jobs <= 1 || n <= 1 then List.map (run_item ~attempts f) xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    (* no cancellation here: a failed item degrades to its own Error
       slot and every other item still runs to completion *)
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        output.(i) <- Some (run_item ~attempts f input.(i));
        worker ()
      end
    in
    run_workers ~jobs worker;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)
  end
