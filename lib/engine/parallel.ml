let default_jobs () = max 1 (Domain.recommended_domain_count ())

let () =
  Obs.Metrics.declare ~help:"Worker domains spawned" Obs.Metrics.Counter
    "pool.spawned";
  Obs.Metrics.declare ~help:"Pool operations served by resident workers"
    Obs.Metrics.Counter "pool.reused";
  Obs.Metrics.declare ~help:"Tasks executed, by claim mode (local/stolen)"
    Obs.Metrics.Counter "pool.items";
  Obs.Metrics.declare ~help:"Tasks claimed from another domain's deque"
    Obs.Metrics.Counter "pool.steals";
  Obs.Metrics.declare ~help:"Worker domains of the most recent pool"
    Obs.Metrics.Gauge "pool.jobs";
  Obs.Metrics.declare ~help:"Time spent hunting before a successful steal"
    Obs.Metrics.Hist "pool.steal_wait_s"

(* A steal that had to hunt longer than this leaves an Info breadcrumb
   in the flight recorder: not an error (an idle worker legitimately
   waits), but the signal the steal-stall watchdog looks at. *)
let steal_stall_threshold_s = 0.5

type error = { attempts : int; message : string }

(* One item, with bounded retry.  Retrying covers transient failures
   (an injected crash that does not re-fire, a racy resource); a
   deterministic failure burns its attempts and is reported, isolated
   to its own slot. *)
let run_item ~attempts f x =
  let rec go attempt =
    match
      Fault.inject "parallel.worker";
      f x
    with
    | v ->
      if attempt > 1 then begin
        Telemetry.incr "parallel.recovered";
        Obs.Flight.record "pool.item_recovered"
          [ ("attempts", string_of_int attempt) ]
      end;
      Ok v
    | exception e ->
      if attempt < attempts then begin
        Telemetry.incr "parallel.retried";
        go (attempt + 1)
      end
      else begin
        Telemetry.incr "parallel.item_failed";
        Obs.Flight.record ~severity:Obs.Flight.Warn "pool.item_failed"
          [ ("attempts", string_of_int attempt);
            ("error", Printexc.to_string e) ];
        Log.warn "parallel: item failed after %d attempt%s: %s" attempt
          (if attempt = 1 then "" else "s")
          (Printexc.to_string e);
        Error { attempts = attempt; message = Printexc.to_string e }
      end
  in
  go 1

module Pool = struct
  type task = unit -> unit

  (* A two-ended work queue under its own mutex.  The owner pushes and
     pops at the "back" (newest first — LIFO keeps nested work hot);
     thieves take from the "front" (oldest first), so a steal grabs the
     work that has waited longest.  Both ends are amortised O(1). *)
  type deque = {
    dm : Mutex.t;
    mutable front : task list;  (* steal end, oldest first *)
    mutable back : task list;  (* owner end, newest first *)
  }

  let deque () = { dm = Mutex.create (); front = []; back = [] }

  let deque_push d t =
    Mutex.lock d.dm;
    d.back <- t :: d.back;
    Mutex.unlock d.dm

  let deque_take d ~thief =
    Mutex.lock d.dm;
    let r =
      if thief then begin
        (if d.front = [] then begin
           d.front <- List.rev d.back;
           d.back <- []
         end);
        match d.front with
        | t :: rest ->
          d.front <- rest;
          Some t
        | [] -> None
      end
      else
        match d.back with
        | t :: rest ->
          d.back <- rest;
          Some t
        | [] ->
          (match d.front with
           | t :: rest ->
             d.front <- rest;
             Some t
           | [] -> None)
    in
    Mutex.unlock d.dm;
    r

  type t = {
    jobs : int;
    deques : deque array;
    (* deque [i] belongs to spawned worker [i] for [i >= 1]; deque 0
       belongs to whichever external (non-worker) domain is currently
       submitting or helping — the CLI main domain in practice. *)
    m : Mutex.t;
    cv : Condition.t;
    (* [m]/[cv] carry every sleep/wake: workers with nothing to steal,
       and awaiting callers with nothing to help with, wait on [cv];
       every push and every completion broadcast goes through [m], so
       re-checking the condition under [m] can never miss a wakeup. *)
    pending : int Atomic.t;  (* queued, not-yet-claimed tasks *)
    rr : int Atomic.t;  (* round-robin cursor for external pushes *)
    stopped : bool Atomic.t;
    mutable domains : unit Domain.t list;  (* protected by [m] *)
  }

  (* The OCaml runtime refuses to run more than ~128 domains; clamp so
     an enthusiastic --jobs can never crash the pool. *)
  let max_jobs = 126

  let key : (t * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let my_index pool =
    match Domain.DLS.get key with
    | Some (p, i) when p == pool -> i
    | _ -> 0

  let jobs pool = pool.jobs

  let wake_all pool =
    Mutex.lock pool.m;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m

  let ensure_running pool ~op =
    if Atomic.get pool.stopped then
      invalid_arg (Printf.sprintf "Engine.Parallel.Pool.%s: pool is shut down" op)

  (* Claim a task: own deque first (not a steal), then the others in
     index order from [me] (steals).  Returns the task and whether it
     was stolen. *)
  let try_claim pool ~me =
    let n = Array.length pool.deques in
    let rec scan k =
      if k >= n then None
      else
        let i = (me + k) mod n in
        match deque_take pool.deques.(i) ~thief:(i <> me) with
        | Some t ->
          Atomic.decr pool.pending;
          Some (t, i <> me)
        | None -> scan (k + 1)
    in
    scan 0

  let note_steal ~hunt =
    Telemetry.incr "pool.steals";
    let waited =
      match hunt with
      | Some t0 -> Unix.gettimeofday () -. t0
      | None -> 0.
    in
    let waited = max 0. waited in
    Histogram.observe "pool.steal_wait_s" waited;
    (* Info, not Warn: a long hunt usually just means the pool went
       idle between operations, so it must not trip the at_exit
       crash-dump on clean runs. *)
    if waited > steal_stall_threshold_s then
      Obs.Flight.record "pool.steal_stall"
        [ ("waited_s", Printf.sprintf "%.3f" waited) ]

  (* Tasks are fully wrapped by their producers (map / map_result /
     submit capture outcomes themselves); a task that still raises is a
     pool bug, contained here so one bad closure cannot kill a resident
     worker. *)
  let exec ~stolen task =
    Obs.Metrics.inc
      ~labels:[ ("mode", if stolen then "stolen" else "local") ]
      "pool.items";
    try task () with
    | e -> Log.warn "pool: task raised %s (dropped)" (Printexc.to_string e)

  (* [hunt] is the time this domain started looking beyond its own
     deque, carried across sleeps so the steal-latency histogram sees
     the whole wait, not just the final scan. *)
  let rec worker_loop pool ~me ~hunt =
    match try_claim pool ~me with
    | Some (task, stolen) ->
      if stolen then note_steal ~hunt;
      exec ~stolen task;
      worker_loop pool ~me ~hunt:None
    | None ->
      if Atomic.get pool.stopped then ()
      else begin
        let hunt =
          match hunt with Some _ as h -> h | None -> Some (Unix.gettimeofday ())
        in
        Mutex.lock pool.m;
        if Atomic.get pool.pending = 0 && not (Atomic.get pool.stopped) then
          Condition.wait pool.cv pool.m;
        Mutex.unlock pool.m;
        worker_loop pool ~me ~hunt
      end

  (* Helping: run queued tasks until [done_ ()] — the awaiting caller
     becomes a worker, which is both the [jobs]-th compute stream and
     the reason nested submission cannot deadlock. *)
  let rec help pool ~me ~done_ ~hunt =
    if done_ () then ()
    else
      match try_claim pool ~me with
      | Some (task, stolen) ->
        if stolen then note_steal ~hunt;
        exec ~stolen task;
        help pool ~me ~done_ ~hunt:None
      | None ->
        let hunt =
          match hunt with Some _ as h -> h | None -> Some (Unix.gettimeofday ())
        in
        Mutex.lock pool.m;
        if (not (done_ ()))
           && Atomic.get pool.pending = 0
           && not (Atomic.get pool.stopped)
        then Condition.wait pool.cv pool.m;
        Mutex.unlock pool.m;
        help pool ~me ~done_ ~hunt

  let create ?jobs () =
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    if jobs < 1 then invalid_arg "Engine.Parallel.Pool.create: jobs < 1";
    let jobs = min jobs max_jobs in
    let pool =
      { jobs;
        deques = Array.init jobs (fun _ -> deque ());
        m = Mutex.create ();
        cv = Condition.create ();
        pending = Atomic.make 0;
        rr = Atomic.make 0;
        stopped = Atomic.make false;
        domains = [] }
    in
    if jobs > 1 then begin
      pool.domains <-
        List.init (jobs - 1) (fun k ->
            let me = k + 1 in
            Domain.spawn (fun () ->
                Domain.DLS.set key (Some (pool, me));
                worker_loop pool ~me ~hunt:None;
                Trace.flush_local ()));
      Telemetry.add "pool.spawned" (jobs - 1)
    end;
    Obs.Metrics.set "pool.jobs" (float_of_int jobs);
    pool

  let shutdown pool =
    let first = not (Atomic.exchange pool.stopped true) in
    wake_all pool;
    if first then begin
      Mutex.lock pool.m;
      let ds = pool.domains in
      pool.domains <- [];
      Mutex.unlock pool.m;
      List.iter Domain.join ds
    end

  let with_pool ?jobs f =
    let pool = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  (* A worker pushes onto its own deque (nested work stays local until
     stolen); an external domain round-robins across all deques so a
     flat batch lands spread out before any stealing is needed. *)
  let push pool task =
    let d =
      match Domain.DLS.get key with
      | Some (p, i) when p == pool -> pool.deques.(i)
      | _ ->
        let i = Atomic.fetch_and_add pool.rr 1 in
        pool.deques.(i mod Array.length pool.deques)
    in
    Atomic.incr pool.pending;
    deque_push d task;
    wake_all pool

  (* Queue the thunks and help until all have completed.  Each task
     adopts the submitter's current trace span and flushes its local
     span buffer on completion, so the caller sees one connected tree
     as soon as the operation returns — even though the worker domains
     stay alive long after. *)
  let run_all pool ~op thunks =
    ensure_running pool ~op;
    Telemetry.incr "pool.reused";
    let parent = Trace.current () in
    let remaining = Atomic.make (List.length thunks) in
    List.iter
      (fun th ->
        push pool (fun () ->
            Fun.protect
              ~finally:(fun () ->
                Trace.flush_local ();
                if Atomic.fetch_and_add remaining (-1) = 1 then wake_all pool)
              (fun () -> Trace.adopt parent th)))
      thunks;
    help pool ~me:(my_index pool)
      ~done_:(fun () -> Atomic.get remaining = 0)
      ~hunt:None

  let chunks n c =
    let rec go lo acc =
      if lo >= n then List.rev acc else go (lo + c) ((lo, min n (lo + c)) :: acc)
    in
    go 0 []

  let collect output =
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)

  let map ?(chunk = 1) pool f xs =
    if chunk < 1 then invalid_arg "Engine.Parallel.Pool.map: chunk < 1";
    ensure_running pool ~op:"map";
    let n = List.length xs in
    if pool.jobs <= 1 || n <= 1 then List.map f xs
    else begin
      let input = Array.of_list xs in
      let output = Array.make n None in
      let failure = Atomic.make None in
      (* Set on the first failure and polled before every item, so the
         surviving workers stop starting fresh items promptly instead
         of draining the queue while the failure waits to be
         re-raised. *)
      let cancelled = Atomic.make false in
      let thunk (lo, hi) () =
        let i = ref lo in
        while !i < hi && not (Atomic.get cancelled) do
          (try
             Fault.inject "parallel.worker";
             output.(!i) <- Some (f input.(!i))
           with e ->
             (* keep the first failure; later ones lose the race and
                are dropped, as List.map would also only surface one *)
             ignore (Atomic.compare_and_set failure None (Some e));
             Atomic.set cancelled true);
          incr i
        done
      in
      run_all pool ~op:"map" (List.map thunk (chunks n chunk));
      (match Atomic.get failure with Some e -> raise e | None -> ());
      collect output
    end

  let map_result ?(chunk = 1) ?(attempts = 2) pool f xs =
    if attempts < 1 then
      invalid_arg "Engine.Parallel.Pool.map_result: attempts < 1";
    if chunk < 1 then invalid_arg "Engine.Parallel.Pool.map_result: chunk < 1";
    ensure_running pool ~op:"map_result";
    let n = List.length xs in
    if pool.jobs <= 1 || n <= 1 then List.map (run_item ~attempts f) xs
    else begin
      let input = Array.of_list xs in
      let output = Array.make n None in
      (* no cancellation here: a failed item degrades to its own Error
         slot and every other item still runs to completion *)
      let thunk (lo, hi) () =
        for i = lo to hi - 1 do
          output.(i) <- Some (run_item ~attempts f input.(i))
        done
      in
      run_all pool ~op:"map_result" (List.map thunk (chunks n chunk));
      collect output
    end

  let map_reduce ?chunk pool ~map:f ~reduce init xs =
    (* reduce in input order so the result is deterministic even for
       merely-associative (non-commutative) reducers *)
    List.fold_left reduce init (map ?chunk pool f xs)

  let isolate ?(attempts = 2) f x =
    if attempts < 1 then invalid_arg "Engine.Parallel.Pool.isolate: attempts < 1";
    run_item ~attempts f x

  type 'a state = Pending | Done of 'a | Raised of exn

  type 'a future = { cell : 'a state Atomic.t; pool : t }

  let submit pool th =
    ensure_running pool ~op:"submit";
    let cell = Atomic.make Pending in
    if pool.jobs <= 1 then begin
      (match th () with
       | v -> Atomic.set cell (Done v)
       | exception e -> Atomic.set cell (Raised e));
      { cell; pool }
    end
    else begin
      Telemetry.incr "pool.reused";
      let parent = Trace.current () in
      push pool (fun () ->
          (match Trace.adopt parent th with
           | v -> Atomic.set cell (Done v)
           | exception e -> Atomic.set cell (Raised e));
          Trace.flush_local ();
          wake_all pool);
      { cell; pool }
    end

  let await fut =
    let resolved () =
      match Atomic.get fut.cell with Pending -> false | Done _ | Raised _ -> true
    in
    if not (resolved ()) then
      help fut.pool ~me:(my_index fut.pool) ~done_:resolved ~hunt:None;
    match Atomic.get fut.cell with
    | Done v -> v
    | Raised e -> raise e
    | Pending -> assert false
end
