let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Work-stealing over an atomic index into a shared input array.  Each
   worker writes only its own output slots, so no result synchronisation
   is needed; ordering the output array by input index makes the result
   independent of scheduling, i.e. deterministic. *)
let map ?jobs f xs =
  let n = List.length xs in
  let jobs =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested n)
  in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Spans recorded by workers hang off the span enclosing this map
       call, and each worker merges its trace buffer before its domain
       terminates — after join the caller sees one connected tree. *)
    let span_parent = Trace.current () in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (try output.(i) <- Some (f input.(i))
         with e ->
           (* keep the first failure; later ones lose the race and are
              dropped, as List.map would also only surface one *)
           ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    let worker () =
      Trace.adopt span_parent worker;
      Trace.flush_local ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)
  end

let map_reduce ?jobs ~map:f ~reduce init xs =
  (* reduce in input order so the result is deterministic even for
     merely-associative (non-commutative) reducers *)
  List.fold_left reduce init (map ?jobs f xs)
