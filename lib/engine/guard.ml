type reason = Deadline of float | Fuel of int | Injected

type status = Exact | Partial of reason

exception Exhausted of reason

type spec = { deadline_s : float option; fuel : int option }

let no_limit = { deadline_s = None; fuel = None }

let default_spec_ref = ref no_limit
let default_spec () = !default_spec_ref
let set_default_spec spec = default_spec_ref := spec

(* Wall-clock polls are batched: gettimeofday every [time_poll_interval]
   fuel units, so a tick in a solver's inner loop stays a few integer
   operations.  Fuel accounting itself is exact, which is what makes
   fuel-bounded runs bit-for-bit reproducible. *)
let time_poll_interval = 64

type t = {
  fuel : int option;
  deadline_s : float option;  (** the budget, for reporting *)
  deadline_at : float;  (** absolute, [infinity] when unlimited *)
  mutable used : int;
  mutable until_time_poll : int;
  mutable reason : reason option;
}

let create ?deadline_s ?fuel () =
  (match deadline_s with
   | Some d when d <= 0. -> invalid_arg "Guard.create: non-positive deadline"
   | _ -> ());
  (match fuel with
   | Some f when f <= 0 -> invalid_arg "Guard.create: non-positive fuel"
   | _ -> ());
  { fuel;
    deadline_s;
    deadline_at =
      (match deadline_s with
       | Some d -> Unix.gettimeofday () +. d
       | None -> infinity);
    used = 0;
    until_time_poll = time_poll_interval;
    reason = None }

let of_spec (s : spec) = create ?deadline_s:s.deadline_s ?fuel:s.fuel ()

let default () = of_spec (default_spec ())

let string_of_reason = function
  | Deadline d -> Printf.sprintf "deadline %.3fs exceeded" d
  | Fuel f -> Printf.sprintf "fuel budget %d spent" f
  | Injected -> "injected fault"

let string_of_status = function
  | Exact -> "exact"
  | Partial r -> "partial: " ^ string_of_reason r

let pp_status fmt s = Format.pp_print_string fmt (string_of_status s)

let () =
  Obs.Metrics.declare ~help:"Guarded solver runs stopped early, by reason"
    Obs.Metrics.Counter "guard.exhausted"

let reason_label = function
  | Deadline _ -> "deadline"
  | Fuel _ -> "fuel"
  | Injected -> "injected"

let exhaust g reason =
  g.reason <- Some reason;
  Obs.Metrics.inc ~labels:[ ("reason", reason_label reason) ] "guard.exhausted";
  Obs.Flight.record ~severity:Obs.Flight.Warn "guard.exhausted"
    [ ("reason", string_of_reason reason);
      ("used", string_of_int g.used) ];
  Log.info "guard: stopping early (%s)" (string_of_reason reason)

let tick ?(cost = 1) g =
  match g.reason with
  | Some _ -> false
  | None ->
    g.used <- g.used + cost;
    (match g.fuel with
     | Some f when g.used > f -> exhaust g (Fuel f)
     | _ ->
       (* Injection models a configured budget running out early, so an
          unbounded guard is immune: [create ()] keeps its exactness
          contract even under a fault spec. *)
       if
         (g.fuel <> None || g.deadline_s <> None)
         && Fault.fires "guard.exhaust"
       then exhaust g Injected
       else begin
         g.until_time_poll <- g.until_time_poll - cost;
         if g.until_time_poll <= 0 then begin
           g.until_time_poll <- time_poll_interval;
           match g.deadline_s with
           | Some d when Unix.gettimeofday () > g.deadline_at ->
             exhaust g (Deadline d)
           | _ -> ()
         end
       end);
    g.reason = None

let check_exn ?cost g =
  if not (tick ?cost g) then
    raise (Exhausted (Option.get g.reason))

let exhausted g = g.reason

let used g = g.used

let status g = match g.reason with None -> Exact | Some r -> Partial r

let merge_status a b =
  match (a, b) with Partial _, _ -> a | Exact, b -> b
