(** Persistent on-disk result cache (curves, candidate libraries).

    One file per entry under {!dir} (default [_cache/], overridable with
    the [ISECUSTOM_CACHE_DIR] environment variable), written with an
    atomic temp-file-plus-rename so a crash never leaves a half-written
    entry visible.  Every entry is versioned ({!format_version}) and
    digest-checked on load; truncated, corrupt or outdated files read as
    misses instead of raising, each with a {!Log.warn} naming the file
    and the damage so the recompute is explained.  Lookups report
    ["cache.hits"] / ["cache.misses"] (and ["cache.corrupt"]) into
    {!Telemetry}.

    The cache is best-effort in both directions: a failing write
    (ENOSPC, a read-only directory, the ["cache.write"] fault point)
    closes and unlinks its temp file, counts ["cache.write_failed"],
    warns and returns — the process simply continues without the disk
    entry.  The ["cache.read"] and ["cache.truncate"] {!Fault} points
    exercise the corruption path on demand.

    Values are stored with [Marshal]; callers are responsible for using
    a distinct [namespace] per value type (the namespace and full key
    are verified on load, so a key collision across namespaces cannot
    alias).

    {b Cross-process coherence.}  The cache directory may be shared by
    a resident daemon and concurrent [batch]/CLI writer processes.
    Three mechanisms keep that safe: entry publication ({!store}'s
    rename) and {!clear}'s sweep serialise on an exclusive advisory
    lock ([<dir>/.lock], [Unix.lockf] — within one process the lock is
    additionally mutex-serialised, since fcntl locks only arbitrate
    between processes); {!clear} bumps a monotone {!generation} stamp
    ([<dir>/.generation]) under that lock so processes holding warm
    in-memory copies can notice the invalidation ({!Memo.revalidate});
    and {!sweep_stale_tmp} reaps [*.tmp.<pid>] orphans left by writers
    killed mid-write (never touching a file whose writer pid is still
    alive).  All of it is best-effort like the rest of the cache: a
    directory where the lock file cannot be created degrades to the
    old lockless behaviour. *)

val format_version : int
(** Bumped whenever the stored value layout changes; older entries then
    read as misses. *)

val dir : unit -> string
val set_dir : string -> unit

val enabled : unit -> bool
val set_enabled : bool -> unit
(** When disabled, {!find} returns [None] without touching the disk or
    telemetry and {!store} is a no-op (the CLI's [--no-cache]). *)

val file_of : namespace:string -> key:string -> string
(** Path an entry lives at (exposed for tests and [cache show]). *)

val find : namespace:string -> key:string -> unit -> 'a option
(** Typed load.  The caller must request the same type it stored under
    this namespace — the usual [Marshal] contract. *)

val store : namespace:string -> key:string -> 'a -> unit

val store_versioned : version:int -> namespace:string -> key:string -> 'a -> unit
(** Like {!store} with an explicit format version — exposed so tests can
    fabricate outdated entries and migrations can backfill. *)

type entry = { namespace : string; key : string; file : string; size : int }

val entries : unit -> entry list
(** Everything in the cache directory, including unreadable files
    (reported with namespace ["<unreadable>"]). *)

val clear : unit -> int
(** Delete all cache files under the advisory lock, bump the
    {!generation} stamp, and reap dead writers' temp files; returns how
    many entries were removed. *)

val generation : unit -> int
(** The directory's invalidation stamp: [0] until the first {!clear},
    then monotone across all processes sharing the directory.  Lockless
    read (the stamp file is replaced atomically). *)

val bump_generation : unit -> int
(** Advance the stamp under the advisory lock and return the new value
    — for operators invalidating warm daemons without deleting entries
    (also exercised by tests). *)

val sweep_stale_tmp : ?older_than_s:float -> unit -> int
(** Remove [*.tmp.<pid>] files whose writer process is dead and whose
    mtime is at least [older_than_s] (default 60) seconds old; returns
    how many were reaped.  Counts ["cache.tmp_swept"].  The daemon's
    watchdog calls this periodically so a SIGKILLed sibling writer
    cannot litter the shared directory forever. *)
