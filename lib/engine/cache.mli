(** Persistent on-disk result cache (curves, candidate libraries).

    One file per entry under {!dir} (default [_cache/], overridable with
    the [ISECUSTOM_CACHE_DIR] environment variable), written with an
    atomic temp-file-plus-rename so a crash never leaves a half-written
    entry visible.  Every entry is versioned ({!format_version}) and
    digest-checked on load; truncated, corrupt or outdated files read as
    misses instead of raising, each with a {!Log.warn} naming the file
    and the damage so the recompute is explained.  Lookups report
    ["cache.hits"] / ["cache.misses"] (and ["cache.corrupt"]) into
    {!Telemetry}.

    The cache is best-effort in both directions: a failing write
    (ENOSPC, a read-only directory, the ["cache.write"] fault point)
    closes and unlinks its temp file, counts ["cache.write_failed"],
    warns and returns — the process simply continues without the disk
    entry.  The ["cache.read"] and ["cache.truncate"] {!Fault} points
    exercise the corruption path on demand.

    Values are stored with [Marshal]; callers are responsible for using
    a distinct [namespace] per value type (the namespace and full key
    are verified on load, so a key collision across namespaces cannot
    alias). *)

val format_version : int
(** Bumped whenever the stored value layout changes; older entries then
    read as misses. *)

val dir : unit -> string
val set_dir : string -> unit

val enabled : unit -> bool
val set_enabled : bool -> unit
(** When disabled, {!find} returns [None] without touching the disk or
    telemetry and {!store} is a no-op (the CLI's [--no-cache]). *)

val file_of : namespace:string -> key:string -> string
(** Path an entry lives at (exposed for tests and [cache show]). *)

val find : namespace:string -> key:string -> unit -> 'a option
(** Typed load.  The caller must request the same type it stored under
    this namespace — the usual [Marshal] contract. *)

val store : namespace:string -> key:string -> 'a -> unit

val store_versioned : version:int -> namespace:string -> key:string -> 'a -> unit
(** Like {!store} with an explicit format version — exposed so tests can
    fabricate outdated entries and migrations can backfill. *)

type entry = { namespace : string; key : string; file : string; size : int }

val entries : unit -> entry list
(** Everything in the cache directory, including unreadable files
    (reported with namespace ["<unreadable>"]). *)

val clear : unit -> int
(** Delete all cache files; returns how many were removed. *)
