type shard = { lock : Mutex.t; table : (string, string) Hashtbl.t }

type t = {
  shards : shard array;
  namespace : string;
  spill : bool;
  (* cache generation the resident entries were loaded under; a bump by
     a sibling process (cache clear) invalidates them — see
     [revalidate] *)
  cache_gen : int Atomic.t;
}

let () =
  Obs.Metrics.declare ~help:"Memo hits (in-memory or spilled) by namespace"
    Obs.Metrics.Counter "memo.hits";
  Obs.Metrics.declare ~help:"Memo hits served from the spill cache"
    Obs.Metrics.Counter "memo.spill_hits";
  Obs.Metrics.declare ~help:"Memo misses by namespace"
    Obs.Metrics.Counter "memo.misses";
  Obs.Metrics.declare ~help:"Memo stores by namespace"
    Obs.Metrics.Counter "memo.stores";
  Obs.Metrics.declare ~help:"Entries resident per memo shard"
    Obs.Metrics.Gauge "memo.shard_items";
  Obs.Metrics.declare
    ~help:"Memo tables dropped after a cache generation bump"
    Obs.Metrics.Counter "memo.invalidated"

let create ?(shards = 16) ?(spill = true) ~namespace () =
  if shards < 1 then invalid_arg "Memo.create: shards must be >= 1";
  { shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 64 });
    namespace;
    spill;
    cache_gen = Atomic.make (if spill then Cache.generation () else 0) }

(* FNV-1a; the shard index takes the top bits so keys sharing a long
   common prefix (the "op-" discriminator) still spread. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let shard_of t key =
  let h = Int64.to_int (Int64.shift_right_logical (fnv64 key) 3) land max_int in
  t.shards.(h mod Array.length t.shards)

let with_lock s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find t ~key =
  let ns = [ ("namespace", t.namespace) ] in
  let s = shard_of t key in
  match with_lock s (fun () -> Hashtbl.find_opt s.table key) with
  | Some v ->
    Obs.Metrics.inc ~labels:ns "memo.hits";
    Some v
  | None ->
    let spilled =
      if t.spill then (Cache.find ~namespace:t.namespace ~key () : string option)
      else None
    in
    (match spilled with
     | Some v ->
       Obs.Metrics.inc ~labels:ns "memo.hits";
       Obs.Metrics.inc ~labels:ns "memo.spill_hits";
       with_lock s (fun () -> Hashtbl.replace s.table key v);
       Some v
     | None ->
       Obs.Metrics.inc ~labels:ns "memo.misses";
       None)

let store t ~key value =
  let s = shard_of t key in
  with_lock s (fun () -> Hashtbl.replace s.table key value);
  Obs.Metrics.inc ~labels:[ ("namespace", t.namespace) ] "memo.stores";
  if t.spill then Cache.store ~namespace:t.namespace ~key value

let find_or_compute t ~key f =
  match find t ~key with
  | Some v -> (v, true)
  | None ->
    let v = f () in
    store t ~key v;
    (v, false)

let shards t = Array.length t.shards

let size t =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.table))
    0 t.shards

let observe_occupancy t =
  Array.iteri
    (fun i s ->
      let len = float_of_int (with_lock s (fun () -> Hashtbl.length s.table)) in
      Histogram.observe "memo.shard_occupancy" len;
      Obs.Metrics.set
        ~labels:[ ("namespace", t.namespace); ("shard", string_of_int i) ]
        "memo.shard_items" len)
    t.shards

let clear t =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.reset s.table)) t.shards

(* Cross-process coherence: resident entries were loaded (or computed)
   under some cache generation; if a sibling process bumped it (a
   `cache clear` invalidating the shared directory), drop them so the
   next requests recompute instead of serving from a table the
   operator meant to empty.  Values are deterministic per key, so this
   only matters when an invalidation *signals intent* — which is
   exactly what the generation stamp encodes. *)
let revalidate t =
  if not t.spill then false
  else begin
    let g = Cache.generation () in
    let seen = Atomic.get t.cache_gen in
    if g = seen || not (Atomic.compare_and_set t.cache_gen seen g) then false
    else begin
      clear t;
      Obs.Metrics.inc ~labels:[ ("namespace", t.namespace) ] "memo.invalidated";
      Obs.Flight.record ~severity:Obs.Flight.Warn "memo.invalidated"
        [ ("namespace", t.namespace);
          ("generation", string_of_int g) ];
      Log.warn
        "memo: cache generation moved to %d — dropped resident %s tables"
        g t.namespace;
      true
    end
  end
