type shard = { lock : Mutex.t; table : (string, string) Hashtbl.t }

type t = { shards : shard array; namespace : string; spill : bool }

let create ?(shards = 16) ?(spill = true) ~namespace () =
  if shards < 1 then invalid_arg "Memo.create: shards must be >= 1";
  { shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 64 });
    namespace;
    spill }

(* FNV-1a; the shard index takes the top bits so keys sharing a long
   common prefix (the "op-" discriminator) still spread. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let shard_of t key =
  let h = Int64.to_int (Int64.shift_right_logical (fnv64 key) 3) land max_int in
  t.shards.(h mod Array.length t.shards)

let with_lock s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find t ~key =
  let s = shard_of t key in
  match with_lock s (fun () -> Hashtbl.find_opt s.table key) with
  | Some v ->
    Telemetry.incr "memo.hits";
    Some v
  | None ->
    let spilled =
      if t.spill then (Cache.find ~namespace:t.namespace ~key () : string option)
      else None
    in
    (match spilled with
     | Some v ->
       Telemetry.incr "memo.hits";
       Telemetry.incr "memo.spill_hits";
       with_lock s (fun () -> Hashtbl.replace s.table key v);
       Some v
     | None ->
       Telemetry.incr "memo.misses";
       None)

let store t ~key value =
  let s = shard_of t key in
  with_lock s (fun () -> Hashtbl.replace s.table key value);
  Telemetry.incr "memo.stores";
  if t.spill then Cache.store ~namespace:t.namespace ~key value

let find_or_compute t ~key f =
  match find t ~key with
  | Some v -> (v, true)
  | None ->
    let v = f () in
    store t ~key v;
    (v, false)

let shards t = Array.length t.shards

let size t =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.table))
    0 t.shards

let observe_occupancy t =
  Array.iter
    (fun s ->
      Histogram.observe "memo.shard_occupancy"
        (float_of_int (with_lock s (fun () -> Hashtbl.length s.table))))
    t.shards

let clear t =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.reset s.table)) t.shards
