type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let string_of_level = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | s -> Error (Printf.sprintf "unknown log level %S (error|warn|info|debug)" s)

let lock = Mutex.create ()
let level_ref = ref Warn
let fmt_ref = ref Format.err_formatter
let json_oc : out_channel option ref = ref None

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_level l = protect (fun () -> level_ref := l)
let level () = protect (fun () -> !level_ref)
let would_log l = severity l <= severity (protect (fun () -> !level_ref))
let set_formatter fmt = protect (fun () -> fmt_ref := fmt)

let close_json () =
  match !json_oc with
  | Some oc ->
    close_out_noerr oc;
    json_oc := None
  | None -> ()

let set_json_file path =
  protect (fun () ->
      close_json ();
      match path with
      | None -> ()
      | Some path ->
        json_oc :=
          Some (open_out_gen [ Open_append; Open_creat ] 0o644 path))

let emit l message =
  let ts = Unix.gettimeofday () in
  protect (fun () ->
      let tm = Unix.localtime ts in
      Format.fprintf !fmt_ref "[%02d:%02d:%02d %-5s] %s@." tm.Unix.tm_hour
        tm.Unix.tm_min tm.Unix.tm_sec (string_of_level l) message;
      match !json_oc with
      | None -> ()
      | Some oc ->
        output_string oc
          (Jsonx.obj
             [ ("ts", Jsonx.float ts);
               ("level", Jsonx.string (string_of_level l));
               ("msg", Jsonx.string message) ]);
        output_char oc '\n';
        flush oc)

let msg l fmt =
  if would_log l then Format.kasprintf (emit l) fmt
  else Format.ikfprintf ignore Format.err_formatter fmt

let err fmt = msg Error fmt
let warn fmt = msg Warn fmt
let info fmt = msg Info fmt
let debug fmt = msg Debug fmt
