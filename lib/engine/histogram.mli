(** Named fixed-bucket log-scale histograms for per-event measurements —
    per-task curve-generation latency, per-block enumeration sizes, B&B
    nodes per solve — complementing {!Telemetry}'s cumulative counters
    with distributional shape (p50/p90/p99/max).

    Buckets are geometric with ratio [2^(1/8)] (~9% wide), spanning
    [2^-30, 2^30); values outside clamp into the end buckets.  Quantile
    estimates are therefore exact in rank and within ~5% in value, and
    are additionally clamped to the observed [min, max].  All operations
    are mutex-protected and domain-safe, like the rest of the engine's
    observability layer.  Names are dotted paths sharing {!Telemetry}'s
    convention, e.g. ["curve.generate_s"], ["select.bnb_nodes"].

    Since the labeled registry landed, this module is a compatibility
    veneer over [Obs.Metrics] histogram families (same bucket
    geometry); labeled cells written by instrumented call sites merge
    into the unlabeled reads here. *)

type stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val observe : string -> float -> unit
(** Record one sample.  Non-finite samples are dropped (and counted
    under the ["histogram.dropped"] telemetry counter). *)

val time : string -> (unit -> 'a) -> 'a
(** Run a thunk, recording its wall-clock seconds as one sample (also
    on exception) — the per-event counterpart of {!Telemetry.time}. *)

val stats : string -> stats option
(** Summary of a histogram; [None] if it has no samples. *)

val quantile : string -> float -> float option
(** [quantile name q] for [q] in [\[0, 1\]]; [None] if empty. *)

val all : unit -> (string * stats) list
(** Every non-empty histogram, sorted by name. *)

val reset : unit -> unit
(** Drop all histograms.  Like {!Telemetry.reset} this is not an epoch
    barrier; prefer [Obs.Snapshot.take]/[Obs.Snapshot.delta] for
    epoch-safe reads (as the CLI and bench do) and keep [reset] for
    test isolation. *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable table: count, p50, p90, p99, max per histogram. *)

val to_json : unit -> string
(** [{"name": {"count": ..., "sum": ..., "min": ..., "max": ...,
    "p50": ..., "p90": ..., "p99": ...}, ...}] — always valid JSON,
    also for empty registries and names containing quotes. *)
