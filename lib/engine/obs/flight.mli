(** Crash flight recorder: a bounded, mutex-protected ring of
    structured events.

    Instrumented slow paths (guard exhaustion, fault injection, cache
    write-degrade, pool steal stalls, batch outcomes) [record] here;
    the ring keeps the most recent [capacity] events across all
    domains in one global order.  When {!arm}ed, the ring dumps as
    JSONL to [<dir>/flight-<pid>.jsonl] on [at_exit] (only if a Warn
    or Crash event was recorded — clean runs leave no file) and on any
    uncaught exception.

    One JSON object per line:
    [{"seq": n, "t": epoch_s, "domain": id, "severity":
    "info"|"warn"|"crash", "kind": "...", ...string fields...}].
    [seq] is globally monotone, so a gap before the oldest retained
    event shows how much history the ring dropped. *)

type severity = Info | Warn | Crash

type event = {
  seq : int;
  t : float;
  domain : int;
  severity : severity;
  kind : string;
  fields : (string * string) list;
}

val record : ?severity:severity -> string -> (string * string) list -> unit
(** [record kind fields] appends an event (default severity [Info] —
    only [Warn]+ makes an armed process dump on exit). *)

val events : unit -> event list
(** Retained events, oldest first. *)

val worst_severity : unit -> severity
(** Highest severity recorded since the last {!clear}. *)

val clear : unit -> unit
(** Empty the ring and reset the severity high-water mark (the global
    [seq] keeps counting). *)

val set_capacity : int -> unit
(** Replace the ring (clearing it) with one of the given capacity
    (clamped to >= 1; default 1024). *)

val capacity : unit -> int

val set_enabled : bool -> unit
(** Kill-switch used by the overhead bench; disabled [record]s return
    before taking the lock. *)

val to_jsonl : unit -> string
(** The ring as JSONL (possibly empty). *)

val write : string -> unit
(** Write {!to_jsonl} to a file, creating the parent directory if
    missing. *)

val arm : ?dir:string -> unit -> unit
(** Install the [at_exit] dump and uncaught-exception handler
    (idempotent).  [dir] overrides the dump directory — default
    [$ISECUSTOM_FLIGHT_DIR] or ["_flight"].  At most one dump is
    written per process. *)

val severity_string : severity -> string
