(** Prometheus text exposition format v0.0.4.

    Dotted registry names sanitise to underscores; counters gain the
    conventional [_total] suffix and seconds-valued families a
    [_seconds] unit suffix.  Histograms expose a power-of-8 bucket
    ladder ([le] = 2{^k} for k in -20..10 step 3, plus [+Inf]) whose
    edges coincide with internal bucket boundaries, so cumulative
    counts are exact.  [# HELP]/[# TYPE] lines are emitted for every
    family, including declared-but-unsampled ones. *)

val render : unit -> string
(** Exposition of the live registry — the body [GET /metrics]
    serves. *)

val render_families : Metrics.family list -> string
(** Exposition of an explicit family list (e.g. a {!Snapshot}
    delta). *)

(** {1 Building blocks} (exposed for tests) *)

val sanitize_name : string -> string
val escape_label_value : string -> string
val format_value : float -> string
val ladder_exponents : int list
