(* Shared listener, waker and select-accept plumbing for Serve and the
   solver daemon.  See netio.mli for the contract. *)

let tcp_listener ?(host = "127.0.0.1") port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    let addr = Unix.inet_addr_of_string host in
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 64;
    (* select-then-accept must never block if the peer vanished *)
    Unix.set_nonblock sock;
    let bound =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    (sock, bound)
  with e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e

let unix_listener path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 64;
    Unix.set_nonblock sock;
    sock
  with e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e

(* The waker is a socketpair used as a sticky level-triggered signal:
   [wake] writes one byte that is never read back, so the read end is
   readable from then on and every select including it — even one
   entered later — returns at once. *)
type waker = {
  rd : Unix.file_descr;
  wr : Unix.file_descr;
  fired : bool Atomic.t;
  closed : bool Atomic.t;
}

let waker () =
  let rd, wr = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  { rd; wr; fired = Atomic.make false; closed = Atomic.make false }

let wake w =
  if not (Atomic.exchange w.fired true) then
    try ignore (Unix.write w.wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let woken w = Atomic.get w.fired

let waker_fd w = w.rd

let close_waker w =
  if not (Atomic.exchange w.closed true) then begin
    (try Unix.close w.rd with Unix.Unix_error _ -> ());
    try Unix.close w.wr with Unix.Unix_error _ -> ()
  end

let accept_loop ?(on_error = fun (_ : Unix.error) -> ()) ~listeners ~waker
    ~stop ~on_accept () =
  let fds = waker_fd waker :: listeners in
  (* Hard errors (EMFILE when the fd table is full, EBADF after a
     listener died) must neither kill the loop nor let it spin at 100%
     CPU retrying: report through [on_error], sleep an exponentially
     growing backoff, try again.  A successful accept resets it. *)
  let backoff = ref 0.01 in
  let errored e =
    on_error e;
    Unix.sleepf !backoff;
    backoff := Float.min 1.0 (!backoff *. 2.)
  in
  let rec loop () =
    if not (stop ()) then begin
      (match Unix.select fds [] [] (-1.0) with
       | ready, _, _ ->
         List.iter
           (fun s ->
             if not (List.memq s listeners) then ()
             else
               match Unix.accept s with
               | fd, peer ->
                 backoff := 0.01;
                 (try on_accept fd peer
                  with _ -> (
                    try Unix.close fd with Unix.Unix_error _ -> ()))
               | exception
                   Unix.Unix_error
                     ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                       | Unix.ECONNABORTED),
                       _, _ ) -> ()
               | exception Unix.Unix_error (e, _, _) -> errored e)
           ready
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error (e, _, _) ->
         (* a bad listener fd would otherwise make select a hot loop *)
         errored e);
      loop ()
    end
  in
  loop ()

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off >= Bytes.length b then true
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> false
  in
  go 0
