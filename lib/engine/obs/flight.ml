(* Bounded ring of structured events — a crash flight recorder.  Every
   record takes one mutex-protected array store, so instrumented call
   sites (guard exhaustion, fault injection, cache degrade, pool
   stalls, batch outcomes) can afford it on their slow paths.  The
   ring keeps the most recent [capacity] events; [seq] is a global
   monotone counter, so dropped history is visible as a gap before the
   oldest retained event. *)

type severity = Info | Warn | Crash

let severity_string = function
  | Info -> "info"
  | Warn -> "warn"
  | Crash -> "crash"

let severity_rank = function Info -> 0 | Warn -> 1 | Crash -> 2

type event = {
  seq : int;
  t : float;
  domain : int;
  severity : severity;
  kind : string;
  fields : (string * string) list;
}

let lock = Mutex.create ()
let default_capacity = 1024
let ring = ref (Array.make default_capacity None)
let next = ref 0
let worst = ref Info
let enabled_flag = ref true

let set_enabled b = enabled_flag := b

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ?(severity = Info) kind fields =
  if !enabled_flag then begin
    let t = Unix.gettimeofday () in
    let domain = (Domain.self () :> int) in
    protect (fun () ->
        let seq = !next in
        let r = !ring in
        r.(seq mod Array.length r) <-
          Some { seq; t; domain; severity; kind; fields };
        next := seq + 1;
        if severity_rank severity > severity_rank !worst then worst := severity)
  end

let events () =
  protect (fun () ->
      let r = !ring in
      let cap = Array.length r in
      let stop = !next in
      let start = Stdlib.max 0 (stop - cap) in
      let acc = ref [] in
      for i = stop - 1 downto start do
        match r.(i mod cap) with
        | Some e when e.seq = i -> acc := e :: !acc
        | Some _ | None -> ()
      done;
      !acc)

let worst_severity () = protect (fun () -> !worst)

let clear () =
  protect (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      worst := Info)

let set_capacity n =
  let n = Stdlib.max 1 n in
  protect (fun () ->
      ring := Array.make n None;
      worst := Info)

let capacity () = protect (fun () -> Array.length !ring)

let json_of_event e =
  Jsonx.obj
    ([ ("seq", string_of_int e.seq);
       ("t", Jsonx.float e.t);
       ("domain", string_of_int e.domain);
       ("severity", Jsonx.string (severity_string e.severity));
       ("kind", Jsonx.string e.kind) ]
    @ List.map (fun (k, v) -> (k, Jsonx.string v)) e.fields)

let to_jsonl () =
  String.concat "" (List.map (fun e -> json_of_event e ^ "\n") (events ()))

let write path =
  let dir = Filename.dirname path in
  (if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_jsonl ()))

(* ------------------------------------------------------------------ *)
(* Arming: dump the ring to a JSONL file when the process ends badly. *)

let armed = ref false
let dumped = ref false

let dump_dir =
  ref (Option.value ~default:"_flight" (Sys.getenv_opt "ISECUSTOM_FLIGHT_DIR"))

let dump_path () =
  Filename.concat !dump_dir (Printf.sprintf "flight-%d.jsonl" (Unix.getpid ()))

let dump_now () =
  if !dumped then None
  else begin
    dumped := true;
    let path = dump_path () in
    match write path with () -> Some path | exception _ -> None
  end

let arm ?dir () =
  Option.iter (fun d -> dump_dir := d) dir;
  if not !armed then begin
    armed := true;
    (* Dump only on abnormal history: a clean run leaves no file. *)
    at_exit (fun () ->
        if severity_rank (worst_severity ()) >= severity_rank Warn then
          ignore (dump_now ()));
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        record ~severity:Crash "uncaught_exception"
          [ ("exn", Printexc.to_string exn) ];
        (match dump_now () with
        | Some path -> Printf.eprintf "flight recorder: dumped %s\n%!" path
        | None -> ());
        Printexc.default_uncaught_exception_handler exn bt)
  end
