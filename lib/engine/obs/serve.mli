(** Minimal HTTP/1.1 metrics endpoint — the scrape surface of the
    future resident solver daemon.

    A background domain accepts connections on a loopback TCP port
    and/or a Unix-domain socket and answers:

    - [GET /metrics] — Prometheus text format v0.0.4 ({!Prometheus.render})
    - [GET /healthz] — ["ok"] (or 503 if the [healthz] callback says no)
    - [GET /flight] — the flight-recorder ring as JSONL

    Connections are one-shot ([Connection: close]); anything that is
    not a GET of a known path gets 404/405.  Scrapes themselves count
    under [obs.http_requests{path=...}]. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?unix_path:string ->
  ?healthz:(unit -> bool) ->
  unit ->
  t
(** Bind and spawn the accept domain.  At least one of [port] /
    [unix_path] is required ([Invalid_argument] otherwise).  [host]
    defaults to ["127.0.0.1"]; [port] may be [0] to bind an ephemeral
    port (read it back with {!port}).  A stale socket file at
    [unix_path] is unlinked first.  Raises [Unix.Unix_error] if
    binding fails. *)

val port : t -> int option
(** The bound TCP port, if a TCP listener was requested. *)

val stop : t -> unit
(** Stop accepting immediately (a {!Netio} waker interrupts the blocked
    select — no poll interval to wait out), join the domain, close the
    sockets, and unlink the Unix socket path.  Idempotent. *)
