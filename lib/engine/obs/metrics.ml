(* One process-global registry of labeled metric families.  Families
   are keyed by name; cells within a family by their canonically
   sorted label set.  Every access takes the single registry mutex —
   instrumented call sites touch it once per algorithm step, not per
   inner-loop iteration, so contention stays negligible (measured by
   the bench's obs_overhead key).  Writes never raise: a kind clash
   drops the sample and bumps [obs.kind_clash] instead, because
   instrumentation must not take down the instrumented code. *)

type labels = (string * string) list
type kind = Counter | Gauge | Hist

(* Histogram cells use the same geometric buckets the standalone
   Engine.Histogram introduced: ratio 2^(1/8), bucket [i] covering
   [2^((i-offset)/8), 2^((i-offset+1)/8)).  480 buckets span 2^-30 to
   2^30 — nanoseconds to decades in seconds, or counts up to ~1e9 —
   and anything outside clamps into the end buckets. *)
let sub_buckets = 8
let bucket_offset = 30 * sub_buckets
let n_buckets = 2 * bucket_offset

let bucket_of v =
  if v <= 0. then 0
  else
    let i =
      bucket_offset
      + int_of_float (Float.floor (Float.log2 v *. float_of_int sub_buckets))
    in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of a bucket — the representative value quantile
   estimates report before clamping to the observed range. *)
let value_of i =
  Float.exp2
    ((float_of_int (i - bucket_offset) +. 0.5) /. float_of_int sub_buckets)

type histdata = {
  hbuckets : int array;
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
}

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value = C of float | G of float | H of histdata

type family = {
  fam_name : string;
  fam_kind : kind;
  fam_help : string option;
  fam_unit_s : bool;
  fam_cells : (labels * value) list;
}

(* Mutable internals, only touched under [lock]. *)
type hcell = {
  buckets : int array;
  mutable hc : int;
  mutable hs : float;
  mutable hmn : float;
  mutable hmx : float;
}

type cell = Num of float ref | Hc of hcell

type fam = {
  name : string;
  kind : kind;
  mutable help : string option;
  unit_s : bool;
  cells : (labels, cell) Hashtbl.t;
}

let lock = Mutex.create ()
let registry : (string, fam) Hashtbl.t = Hashtbl.create 64

(* Kill-switch for the overhead bench: disabled writes return before
   taking the lock.  Reads and [declare] stay live so a disabled run
   still exposes its (empty) families. *)
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Under [lock].  Returns [None] on a kind clash, counting it. *)
let family_of ~kind ~unit_s ?help name =
  match Hashtbl.find_opt registry name with
  | Some f ->
    if f.help = None && help <> None then f.help <- help;
    if f.kind = kind then Some f else None
  | None ->
    let f = { name; kind; help; unit_s; cells = Hashtbl.create 8 } in
    Hashtbl.add registry name f;
    Some f

(* Under [lock]. *)
let note_clash () =
  match family_of ~kind:Counter ~unit_s:false "obs.kind_clash" with
  | None -> ()
  | Some f ->
    (match Hashtbl.find_opt f.cells [] with
    | Some (Num r) -> r := !r +. 1.
    | Some (Hc _) -> ()
    | None -> Hashtbl.add f.cells [] (Num (ref 1.)))

(* Under [lock]. *)
let cell_of f labels =
  let labels = canon_labels labels in
  match Hashtbl.find_opt f.cells labels with
  | Some c -> c
  | None ->
    let c =
      match f.kind with
      | Hist ->
        Hc
          { buckets = Array.make n_buckets 0;
            hc = 0; hs = 0.; hmn = infinity; hmx = neg_infinity }
      | Counter | Gauge -> Num (ref 0.)
    in
    Hashtbl.add f.cells labels c;
    c

let with_cell ~kind ~unit_s name labels k =
  if !enabled_flag then
    protect (fun () ->
        match family_of ~kind ~unit_s name with
        | Some f -> k (cell_of f labels)
        | None -> note_clash ())

let declare ?help ?(unit_s = false) kind name =
  protect (fun () ->
      match family_of ~kind ~unit_s ?help name with
      | Some _ -> ()
      | None -> note_clash ())

let inc ?(labels = []) ?(by = 1.) name =
  with_cell ~kind:Counter ~unit_s:false name labels (function
    | Num r -> r := !r +. by
    | Hc _ -> ())

let inc_s ?(labels = []) name dt =
  with_cell ~kind:Counter ~unit_s:true name labels (function
    | Num r -> r := !r +. dt
    | Hc _ -> ())

let set ?(labels = []) name v =
  with_cell ~kind:Gauge ~unit_s:false name labels (function
    | Num r -> r := v
    | Hc _ -> ())

let observe ?(labels = []) name v =
  if not (Float.is_finite v) then inc "histogram.dropped"
  else
    with_cell ~kind:Hist ~unit_s:false name labels (function
      | Hc h ->
        let b = bucket_of v in
        h.buckets.(b) <- h.buckets.(b) + 1;
        h.hc <- h.hc + 1;
        h.hs <- h.hs +. v;
        if v < h.hmn then h.hmn <- v;
        if v > h.hmx then h.hmx <- v
      | Num _ -> ())

let time ?labels name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> observe ?labels name (Unix.gettimeofday () -. t0))
    f

(* ------------------------------------------------------------------ *)
(* Reads.                                                             *)

let value ?(labels = []) name =
  protect (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> None
      | Some f ->
        (match Hashtbl.find_opt f.cells (canon_labels labels) with
        | Some (Num r) -> Some !r
        | Some (Hc _) | None -> None))

let sum name =
  protect (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> 0.
      | Some f ->
        Hashtbl.fold
          (fun _ c acc ->
            match c with Num r -> acc +. !r | Hc _ -> acc)
          f.cells 0.)

let empty_hist () =
  { hbuckets = Array.make n_buckets 0;
    hcount = 0; hsum = 0.; hmin = infinity; hmax = neg_infinity }

let snapshot_hcell (h : hcell) =
  { hbuckets = Array.copy h.buckets;
    hcount = h.hc; hsum = h.hs; hmin = h.hmn; hmax = h.hmx }

let merge_hist a b =
  { hbuckets = Array.init n_buckets (fun i -> a.hbuckets.(i) + b.hbuckets.(i));
    hcount = a.hcount + b.hcount;
    hsum = a.hsum +. b.hsum;
    hmin = Float.min a.hmin b.hmin;
    hmax = Float.max a.hmax b.hmax }

let hist_quantile_of (h : histdata) q =
  let rank =
    Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount)))
  in
  if rank >= h.hcount then h.hmax
  else
    let rec walk i seen =
      if i >= n_buckets then h.hmax
      else
        let seen = seen + h.hbuckets.(i) in
        if seen >= rank then Float.min h.hmax (Float.max h.hmin (value_of i))
        else walk (i + 1) seen
    in
    walk 0 0

let stats_of_hist (h : histdata) =
  { count = h.hcount; sum = h.hsum; min = h.hmin; max = h.hmax;
    p50 = hist_quantile_of h 0.5;
    p90 = hist_quantile_of h 0.9;
    p99 = hist_quantile_of h 0.99 }

let hist_data ?labels name =
  protect (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> None
      | Some f when f.kind <> Hist -> None
      | Some f ->
        (match labels with
        | Some ls ->
          (match Hashtbl.find_opt f.cells (canon_labels ls) with
          | Some (Hc h) -> Some (snapshot_hcell h)
          | Some (Num _) | None -> None)
        | None ->
          (* Merged view across every cell of the family. *)
          let merged =
            Hashtbl.fold
              (fun _ c acc ->
                match c with
                | Hc h -> merge_hist acc (snapshot_hcell h)
                | Num _ -> acc)
              f.cells (empty_hist ())
          in
          Some merged))

let hist_stats ?labels name =
  match hist_data ?labels name with
  | Some h when h.hcount > 0 -> Some (stats_of_hist h)
  | Some _ | None -> None

let hist_quantile ?labels name q =
  match hist_data ?labels name with
  | Some h when h.hcount > 0 -> Some (hist_quantile_of h q)
  | Some _ | None -> None

let dump () =
  protect (fun () ->
      Hashtbl.fold
        (fun _ f acc ->
          let cells =
            Hashtbl.fold
              (fun ls c acc ->
                let v =
                  match c with
                  | Num r ->
                    (match f.kind with
                    | Gauge -> G !r
                    | Counter | Hist -> C !r)
                  | Hc h -> H (snapshot_hcell h)
                in
                (ls, v) :: acc)
              f.cells []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          { fam_name = f.name; fam_kind = f.kind; fam_help = f.help;
            fam_unit_s = f.unit_s; fam_cells = cells }
          :: acc)
        registry [])
  |> List.sort (fun a b -> String.compare a.fam_name b.fam_name)

let reset ?kind () =
  protect (fun () ->
      match kind with
      | None -> Hashtbl.reset registry
      | Some k ->
        let doomed =
          Hashtbl.fold
            (fun n f acc -> if f.kind = k then n :: acc else acc)
            registry []
        in
        List.iter (Hashtbl.remove registry) doomed)
