(** Minimal JSON emission helpers shared by every observability sink
    (the metric registry, flight recorder, and — via the [Engine]
    re-export — [Trace] and [Log]).  Emission only — parsing stays out
    of the library; tests carry their own checker. *)

val escape : string -> string
(** Escape a string's content for inclusion between double quotes:
    quotes, backslashes and control characters become their JSON escape
    sequences. *)

val string : string -> string
(** A complete JSON string literal, quotes included. *)

val float : float -> string
(** A JSON number.  Non-finite values (nan, ±inf), which JSON cannot
    represent, are emitted as [null]. *)

val obj : (string * string) list -> string
(** [obj fields] braces already-serialised [(key, json-value)] pairs;
    keys are escaped here. *)

val arr : string list -> string
(** Bracket already-serialised values. *)
