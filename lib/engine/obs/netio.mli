(** Shared listener and wakeup plumbing for the socket servers.

    Both the metrics scrape endpoint ({!Serve}) and the resident solver
    daemon ([Daemon.Server]) need the same three things: loopback TCP
    and Unix-domain listeners in non-blocking accept mode, a {e waker}
    that makes a blocked [select] return immediately (so [stop] never
    waits out a poll interval), and a select-accept loop multiplexing
    the listeners against that waker.  This module is that plumbing,
    written once. *)

(** {1 Listeners} *)

val tcp_listener : ?host:string -> int -> Unix.file_descr * int
(** Bind a TCP listener on [host] (default ["127.0.0.1"]) and the given
    port ([0] binds an ephemeral port); returns the socket and the port
    actually bound.  The socket is non-blocking so a select-then-accept
    race (peer gone) yields [EWOULDBLOCK] instead of a hang.  Raises
    [Unix.Unix_error] on failure, with the socket closed. *)

val unix_listener : string -> Unix.file_descr
(** Bind a Unix-domain listener at the given path, unlinking a stale
    socket file first.  Non-blocking, like {!tcp_listener}. *)

(** {1 Waker}

    A one-shot broadcast built on a socketpair: {!wake} writes a byte
    and {e leaves it} in the buffer, so the read end stays readable
    forever after — every [select] that includes it, present or
    future, returns immediately.  That is exactly the semantics a
    shutdown signal needs (level-triggered, sticky), and why there is
    no [drain]. *)

type waker

val waker : unit -> waker

val wake : waker -> unit
(** Make {!waker_fd} permanently readable.  Idempotent; safe from any
    domain or thread. *)

val woken : waker -> bool

val waker_fd : waker -> Unix.file_descr
(** The read end, for inclusion in a [select] read set. *)

val close_waker : waker -> unit
(** Close both ends.  Idempotent.  Only close after every loop
    selecting on {!waker_fd} has exited. *)

(** {1 Select-accept loop} *)

val accept_loop :
  ?on_error:(Unix.error -> unit) ->
  listeners:Unix.file_descr list ->
  waker:waker ->
  stop:(unit -> bool) ->
  on_accept:(Unix.file_descr -> Unix.sockaddr -> unit) ->
  unit ->
  unit
(** Block in [select] over the listeners plus the waker's read end and
    call [on_accept] for each accepted connection, until [stop ()]
    becomes true — re-checked whenever the waker fires, so a {!wake}
    ends the loop immediately rather than after a timeout.  [EINTR]
    and transient accept errors ([EAGAIN]/[ECONNABORTED]) are absorbed;
    an exception escaping [on_accept] is swallowed after closing the
    connection (one bad connection must not kill the accept domain).
    Hard errors — [EMFILE] when the process is out of descriptors, a
    listener going bad under select — are reported through [on_error]
    (default: ignored) and retried under an exponential backoff sleep
    (10ms doubling to 1s, reset by the next successful accept), so an
    fd exhaustion storm degrades to slow accepts instead of a dead or
    spinning accept domain. *)

val write_all : Unix.file_descr -> string -> bool
(** Write the whole string, retrying short writes; [false] if the peer
    vanished ([EPIPE] and friends) or the descriptor blocked past its
    send timeout. *)
