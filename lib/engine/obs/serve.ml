(* Minimal HTTP/1.1 scrape endpoint — the metrics half of the resident
   solver daemon.  One background domain multiplexes the listening
   sockets (TCP and/or Unix) through Netio.accept_loop, answering GET
   /metrics, /healthz, and /flight; each connection is read once,
   answered with Content-Length + Connection: close, and closed.
   That is all a Prometheus scraper or load-balancer health probe
   needs, and it keeps the server free of request-pipelining state. *)

type t = {
  socks : Unix.file_descr list;
  unix_path : string option;
  bound_port : int option;
  stop_flag : bool Atomic.t;
  waker : Netio.waker;
  mutable dom : unit Domain.t option;
}

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let route ?healthz path =
  let metric_path =
    match path with
    | "/metrics" | "/healthz" | "/flight" -> path
    | _ -> "other"
  in
  Metrics.inc ~labels:[ ("path", metric_path) ] "obs.http_requests";
  match path with
  | "/metrics" ->
    http_response
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      (Prometheus.render ())
  | "/healthz" ->
    let ok =
      match healthz with
      | None -> true
      | Some f -> ( try f () with _ -> false)
    in
    if ok then http_response ~content_type:"text/plain" "ok\n"
    else
      http_response ~status:"503 Service Unavailable"
        ~content_type:"text/plain" "unhealthy\n"
  | "/flight" ->
    http_response ~content_type:"application/x-ndjson" (Flight.to_jsonl ())
  | _ ->
    http_response ~status:"404 Not Found" ~content_type:"text/plain"
      "not found\n"

(* Read until the request line is complete; headers and body (GETs
   have none) are ignored. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match String.index_opt (Buffer.contents buf) '\n' with
      | Some i -> Some (String.sub (Buffer.contents buf) 0 i)
      | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> None)
  in
  go ()

let handle_conn ?healthz fd =
  match read_request_line fd with
  | None -> ()
  | Some line ->
    let response =
      match String.split_on_char ' ' (String.trim line) with
      | "GET" :: target :: _ ->
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        route ?healthz path
      | _ ->
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "method not allowed\n"
    in
    ignore (Netio.write_all fd response)

let start ?(host = "127.0.0.1") ?port ?unix_path ?healthz () =
  if port = None && unix_path = None then
    invalid_arg "Obs.Serve.start: need ~port and/or ~unix_path";
  let tcp = Option.map (Netio.tcp_listener ~host) port in
  let uds =
    try Option.map Netio.unix_listener unix_path
    with e ->
      Option.iter (fun (s, _) -> try Unix.close s with _ -> ()) tcp;
      raise e
  in
  let socks =
    (match tcp with Some (s, _) -> [ s ] | None -> [])
    @ (match uds with Some s -> [ s ] | None -> [])
  in
  let t =
    { socks;
      unix_path = (match uds with Some _ -> unix_path | None -> None);
      bound_port = Option.map snd tcp;
      stop_flag = Atomic.make false;
      waker = Netio.waker ();
      dom = None }
  in
  t.dom <-
    Some
      (Domain.spawn
         (Netio.accept_loop ~listeners:socks ~waker:t.waker
            ~stop:(fun () -> Atomic.get t.stop_flag)
            ~on_accept:(fun fd _peer ->
              (* A silent client must not wedge the accept domain. *)
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
               with Unix.Unix_error _ -> ());
              (try handle_conn ?healthz fd with _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ())));
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (* the waker makes the blocked select return now, not after a poll
       interval — the accept domain re-checks the stop flag and exits *)
    Netio.wake t.waker;
    Option.iter Domain.join t.dom;
    Netio.close_waker t.waker;
    List.iter
      (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
      t.socks;
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      t.unix_path
  end
