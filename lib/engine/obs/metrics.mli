(** Process-global registry of labeled metric families.

    A {e family} is a named metric of one {!kind}; a {e cell} is one
    time series within it, keyed by a label set such as
    [[("solver", "edf")]].  Label order never matters — sets are
    canonicalised on every access.  The whole registry sits behind one
    mutex, so families are safe to write from any domain; hot paths
    touch it once per algorithm step, and the bench enforces < 5%
    total overhead on the curve suite.

    Writes are infallible by design: using a name with a conflicting
    kind drops the sample and bumps the [obs.kind_clash] counter
    rather than raising into the instrumented code.

    For epoch-safe reads under concurrency, do not [reset] — take a
    {!Snapshot.t} before and after the region of interest and read the
    delta. *)

type labels = (string * string) list

type kind = Counter | Gauge | Hist

val canon_labels : labels -> labels
(** Sort a label set into its canonical (key-ordered) form — the form
    [dump] reports cells under. *)

(** {1 Writing} *)

val declare : ?help:string -> ?unit_s:bool -> kind -> string -> unit
(** Register a family up front so it is exposed (with help text) even
    before its first sample.  Idempotent; a later [declare] may fill
    in missing help text but never changes an existing family's kind.
    [unit_s] marks the family as measuring seconds, which suffixes the
    Prometheus name with [_seconds]. *)

val inc : ?labels:labels -> ?by:float -> string -> unit
(** Add [by] (default 1) to a counter cell, creating family and cell
    on first use. *)

val inc_s : ?labels:labels -> string -> float -> unit
(** Add a duration in seconds to a counter cell; the family is marked
    [unit_s] when created here. *)

val set : ?labels:labels -> string -> float -> unit
(** Set a gauge cell to an absolute value. *)

val observe : ?labels:labels -> string -> float -> unit
(** Record a sample into a histogram cell.  Non-finite samples are
    dropped and counted under [histogram.dropped]. *)

val time : ?labels:labels -> string -> (unit -> 'a) -> 'a
(** Run the thunk and [observe] its wall-clock duration, even on
    exception. *)

val set_enabled : bool -> unit
(** Kill-switch: when disabled, writes return without taking the
    registry lock.  Reads and [declare] stay live.  Used by the bench
    to measure observability overhead. *)

val enabled : unit -> bool

(** {1 Reading} *)

val value : ?labels:labels -> string -> float option
(** Exact counter/gauge cell value, or [None] if the cell (or family)
    does not exist. *)

val sum : string -> float
(** Sum of every counter/gauge cell in the family, across all label
    sets; [0.] for missing families.  This is what lets unlabeled
    legacy reads ([Engine.Telemetry.counter]) keep working after call
    sites gain labels. *)

type histdata = {
  hbuckets : int array;  (** geometric buckets, ratio 2^(1/8) *)
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
}

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val hist_data : ?labels:labels -> string -> histdata option
(** Copy of a histogram cell; with [labels] omitted, the merge of
    every cell in the family. *)

val hist_stats : ?labels:labels -> string -> hstats option
(** [None] until the first sample lands. *)

val hist_quantile : ?labels:labels -> string -> float -> float option
(** Quantile estimate, clamped to the observed [min, max] range. *)

(** {1 Bulk access} *)

type value = C of float | G of float | H of histdata

type family = {
  fam_name : string;
  fam_kind : kind;
  fam_help : string option;
  fam_unit_s : bool;
  fam_cells : (labels * value) list;  (** labels canonically sorted *)
}

val dump : unit -> family list
(** Deep-copied, name-sorted view of the whole registry — the input to
    {!Snapshot} and {!Prometheus}. *)

val reset : ?kind:kind -> unit -> unit
(** Drop every family (or only those of [kind]).  Not an epoch
    barrier: samples written concurrently land in whichever epoch the
    mutex orders them into — prefer {!Snapshot} deltas.  Retained for
    test isolation and the legacy [Engine.Telemetry.reset] /
    [Engine.Histogram.reset] shims. *)

(** {1 Histogram geometry}

    Exposed for {!Prometheus} bucket ladders and tests. *)

val sub_buckets : int
val bucket_offset : int
val n_buckets : int
val bucket_of : float -> int
val value_of : int -> float
val empty_hist : unit -> histdata
val merge_hist : histdata -> histdata -> histdata
val stats_of_hist : histdata -> hstats
val hist_quantile_of : histdata -> float -> float
