(* Epoch reads without epoch barriers: capture the registry twice and
   subtract.  Because Metrics.dump deep-copies under the registry
   mutex, each snapshot is internally consistent, and the delta of two
   snapshots attributes every sample to exactly one epoch — the
   guarantee reset-based epoching could not give under concurrency. *)

type t = Metrics.family list

let take () = Metrics.dump ()
let families t = t

let sub_value a b =
  match (a, b) with
  | Metrics.C x, Metrics.C y -> Metrics.C (x -. y)
  (* Gauges are levels, not flows: the delta keeps the later level. *)
  | Metrics.G x, _ -> Metrics.G x
  | Metrics.H x, Metrics.H y ->
    Metrics.H
      { hbuckets =
          Array.init Metrics.n_buckets (fun i ->
              x.Metrics.hbuckets.(i) - y.Metrics.hbuckets.(i));
        hcount = x.Metrics.hcount - y.Metrics.hcount;
        hsum = x.Metrics.hsum -. y.Metrics.hsum;
        (* min/max cannot be un-merged; the later window's extremes
           are exact when the earlier window was empty (the common
           take-before-work case) and conservative otherwise. *)
        hmin = x.Metrics.hmin;
        hmax = x.Metrics.hmax }
  | v, _ -> v

let delta ~before ~after =
  List.map
    (fun (f : Metrics.family) ->
      match
        List.find_opt
          (fun (b : Metrics.family) -> b.Metrics.fam_name = f.Metrics.fam_name)
          before
      with
      | None -> f
      | Some bf ->
        let cells =
          List.map
            (fun (ls, v) ->
              match List.assoc_opt ls bf.Metrics.fam_cells with
              | None -> (ls, v)
              | Some bv -> (ls, sub_value v bv))
            f.Metrics.fam_cells
        in
        { f with Metrics.fam_cells = cells })
    after

let find t name =
  List.find_opt (fun (f : Metrics.family) -> f.Metrics.fam_name = name) t

let counter ?labels t name =
  match find t name with
  | None -> 0.
  | Some f ->
    (match labels with
    | Some ls ->
      (match List.assoc_opt (Metrics.canon_labels ls) f.Metrics.fam_cells with
      | Some (Metrics.C v) | Some (Metrics.G v) -> v
      | Some (Metrics.H _) | None -> 0.)
    | None ->
      List.fold_left
        (fun acc (_, v) ->
          match v with
          | Metrics.C x | Metrics.G x -> acc +. x
          | Metrics.H _ -> acc)
        0. f.Metrics.fam_cells)

let gauge ?labels t name = counter ?labels t name

let hist_data ?labels t name =
  match find t name with
  | None -> None
  | Some f when f.Metrics.fam_kind <> Metrics.Hist -> None
  | Some f ->
    (match labels with
    | Some ls ->
      (match List.assoc_opt (Metrics.canon_labels ls) f.Metrics.fam_cells with
      | Some (Metrics.H h) -> Some h
      | _ -> None)
    | None ->
      Some
        (List.fold_left
           (fun acc (_, v) ->
             match v with
             | Metrics.H h -> Metrics.merge_hist acc h
             | _ -> acc)
           (Metrics.empty_hist ()) f.Metrics.fam_cells))

let hist_stats ?labels t name =
  match hist_data ?labels t name with
  | Some h when h.Metrics.hcount > 0 -> Some (Metrics.stats_of_hist h)
  | Some _ | None -> None

(* JSON mirrors of Engine.Telemetry.to_json / Engine.Histogram.to_json,
   computed over a snapshot (usually a delta) instead of the live
   registry, so bench/CLI emission keeps its schema while gaining
   epoch safety. *)

let counter_families t =
  List.filter
    (fun (f : Metrics.family) ->
      f.Metrics.fam_kind = Metrics.Counter && f.Metrics.fam_cells <> [])
    t

let telemetry_json t =
  let cs, ts =
    List.partition
      (fun (f : Metrics.family) -> not f.Metrics.fam_unit_s)
      (counter_families t)
  in
  let total f = counter t f.Metrics.fam_name in
  Jsonx.obj
    [ ( "counters",
        Jsonx.obj
          (List.map
             (fun f ->
               (f.Metrics.fam_name, string_of_int (int_of_float (total f))))
             cs) );
      ( "timers",
        Jsonx.obj
          (List.map (fun f -> (f.Metrics.fam_name, Jsonx.float (total f))) ts)
      ) ]

let histograms_json t =
  let hs =
    List.filter_map
      (fun (f : Metrics.family) ->
        if f.Metrics.fam_kind <> Metrics.Hist then None
        else
          match hist_stats t f.Metrics.fam_name with
          | Some s -> Some (f.Metrics.fam_name, s)
          | None -> None)
      t
  in
  Jsonx.obj
    (List.map
       (fun (name, (s : Metrics.hstats)) ->
         ( name,
           Jsonx.obj
             [ ("count", string_of_int s.Metrics.count);
               ("sum", Jsonx.float s.Metrics.sum);
               ("min", Jsonx.float s.Metrics.min);
               ("max", Jsonx.float s.Metrics.max);
               ("p50", Jsonx.float s.Metrics.p50);
               ("p90", Jsonx.float s.Metrics.p90);
               ("p99", Jsonx.float s.Metrics.p99) ] ))
       hs)
