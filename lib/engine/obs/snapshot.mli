(** Epoch reads without epoch barriers.

    [let s0 = Snapshot.take () in ...work...; let d = Snapshot.delta
    ~before:s0 ~after:(Snapshot.take ())] attributes every sample to
    exactly one epoch, with no quiescence requirement — the pattern
    that replaces [Telemetry.reset]/[Histogram.reset] bracketing in
    the CLI and bench.  A snapshot is an immutable deep copy; taking
    one costs one pass over the registry under its mutex. *)

type t

val take : unit -> t
(** Consistent deep copy of the live registry. *)

val delta : before:t -> after:t -> t
(** Per-cell difference: counters and histogram buckets/count/sum
    subtract; gauges keep the [after] level (they are levels, not
    flows); histogram min/max come from [after] — exact when [before]
    had no samples, conservative otherwise.  Families or cells born
    after [before] pass through unchanged. *)

val families : t -> Metrics.family list

(** {1 Point reads} *)

val counter : ?labels:Metrics.labels -> t -> string -> float
(** Cell value, or the sum across all cells when [labels] is omitted;
    [0.] for missing families. *)

val gauge : ?labels:Metrics.labels -> t -> string -> float

val hist_data : ?labels:Metrics.labels -> t -> string -> Metrics.histdata option

val hist_stats : ?labels:Metrics.labels -> t -> string -> Metrics.hstats option

(** {1 JSON emission}

    Same shapes as [Engine.Telemetry.to_json] and
    [Engine.Histogram.to_json], so bench/CLI metric files keep their
    schema while switching to snapshot deltas. *)

val telemetry_json : t -> string
(** [{"counters": {...ints...}, "timers": {...seconds...}}] over the
    snapshot's counter families (label cells summed). *)

val histograms_json : t -> string
(** [{name: {count,sum,min,max,p50,p90,p99}}] over the snapshot's
    histogram families (label cells merged). *)
