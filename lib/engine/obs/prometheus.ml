(* Prometheus text exposition format v0.0.4.  Metric names sanitise
   dots to underscores ([cache.hits] -> [cache_hits]); counters take
   the conventional [_total] suffix and seconds-valued families a
   [_seconds] unit suffix, so [pool.steal_wait_s] scrapes as
   [pool_steal_wait_s_bucket{le=...}] etc.  Histogram cells downsample
   the internal 480-bucket 2^(1/8) geometry onto a power-of-8 ladder
   (2^-20 .. 2^10 plus +Inf) — every ladder edge is an exact internal
   bucket boundary, so cumulative counts are exact, not interpolated. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name name =
  let s = String.map (fun c -> if is_name_char c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let sanitize_label_name name =
  let s = sanitize_name name in
  (* Label names may not contain colons. *)
  String.map (fun c -> if c = ':' then '_' else c) s

let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let format_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_label_name k)
               (escape_label_value v))
           labels)
    ^ "}"

(* Exposed bucket ladder: upper bounds 2^k for k in -20..10 step 3,
   then +Inf.  Cumulative count at le = 2^k sums internal buckets
   [0, bucket_offset + sub_buckets*k). *)
let ladder_exponents = List.init 11 (fun i -> -20 + (3 * i))

let cumulative_le (h : Metrics.histdata) k =
  let hi =
    Stdlib.min Metrics.n_buckets
      (Stdlib.max 0 (Metrics.bucket_offset + (Metrics.sub_buckets * k)))
  in
  let s = ref 0 in
  for i = 0 to hi - 1 do
    s := !s + h.Metrics.hbuckets.(i)
  done;
  !s

let kind_string = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Hist -> "histogram"

let render_family b (f : Metrics.family) =
  let base =
    sanitize_name f.Metrics.fam_name
    ^ (if f.Metrics.fam_unit_s then "_seconds" else "")
  in
  let mname =
    match f.Metrics.fam_kind with
    | Metrics.Counter -> base ^ "_total"
    | Metrics.Gauge | Metrics.Hist -> base
  in
  (match f.Metrics.fam_help with
  | Some h ->
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n" mname (escape_help h))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "# TYPE %s %s\n" mname (kind_string f.Metrics.fam_kind));
  List.iter
    (fun (ls, v) ->
      match v with
      | Metrics.C x | Metrics.G x ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" mname (labels_string ls)
             (format_value x))
      | Metrics.H h ->
        List.iter
          (fun k ->
            let le = format_value (Float.exp2 (float_of_int k)) in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" mname
                 (labels_string (ls @ [ ("le", le) ]))
                 (cumulative_le h k)))
          ladder_exponents;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" mname
             (labels_string (ls @ [ ("le", "+Inf") ]))
             h.Metrics.hcount);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" mname (labels_string ls)
             (format_value h.Metrics.hsum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" mname (labels_string ls)
             h.Metrics.hcount))
    f.Metrics.fam_cells

let render_families fams =
  let b = Buffer.create 4096 in
  List.iter (render_family b) fams;
  Buffer.contents b

let render () = render_families (Metrics.dump ())
