(* Counters and timers are shared by every domain of the parallel
   engine, so all access goes through one mutex; the hot paths touch
   them once per algorithm invocation, not per inner-loop step, which
   keeps contention negligible. *)

let lock = Mutex.create ()
let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let timers_tbl : (string, float) Hashtbl.t = Hashtbl.create 32

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let add name n =
  if n <> 0 then
    protect (fun () ->
        let v = Option.value ~default:0 (Hashtbl.find_opt counters_tbl name) in
        Hashtbl.replace counters_tbl name (v + n))

let incr name = add name 1

let counter name =
  protect (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt counters_tbl name))

let add_time name dt =
  protect (fun () ->
      let v = Option.value ~default:0. (Hashtbl.find_opt timers_tbl name) in
      Hashtbl.replace timers_tbl name (v +. dt))

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f

let timer name =
  protect (fun () ->
      Option.value ~default:0. (Hashtbl.find_opt timers_tbl name))

let sorted tbl =
  protect (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted counters_tbl
let timers () = sorted timers_tbl

let reset () =
  protect (fun () ->
      Hashtbl.reset counters_tbl;
      Hashtbl.reset timers_tbl)

let pp_table fmt () =
  let cs = counters () and ts = timers () in
  if cs = [] && ts = [] then Format.fprintf fmt "no telemetry recorded@."
  else begin
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %14d@." k v) cs;
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %12.3f s@." k v) ts
  end

let to_json () =
  (* Jsonx escapes the names and maps non-finite timer sums to null, so
     the output is valid JSON whatever was reported — including nothing
     at all. *)
  let cs = List.map (fun (k, v) -> (k, string_of_int v)) (counters ()) in
  let ts = List.map (fun (k, v) -> (k, Jsonx.float v)) (timers ()) in
  Jsonx.obj [ ("counters", Jsonx.obj cs); ("timers", Jsonx.obj ts) ]
