(* Compatibility veneer over the labeled registry (Obs.Metrics).
   Every legacy name is a counter family there; instrumented call
   sites may attach labels to the same names ([cache.hits{namespace}],
   [fault.injected{point}], ...), and the reads here aggregate across
   label cells, so unlabeled callers keep seeing the familiar totals.
   Timers are seconds-unit counter families ([unit_s]), which is also
   what routes them to the "timers" half of [to_json]. *)

let add name n = if n <> 0 then Obs.Metrics.inc ~by:(float_of_int n) name
let incr name = Obs.Metrics.inc name
let counter name = int_of_float (Obs.Metrics.sum name)
let add_time name dt = Obs.Metrics.inc_s name dt

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_time name (Unix.gettimeofday () -. t0)) f

let timer name = Obs.Metrics.sum name

let family_total (f : Obs.Metrics.family) =
  List.fold_left
    (fun acc (_, v) ->
      match v with
      | Obs.Metrics.C x | Obs.Metrics.G x -> acc +. x
      | Obs.Metrics.H _ -> acc)
    0. f.Obs.Metrics.fam_cells

let counter_families () =
  List.filter
    (fun (f : Obs.Metrics.family) -> f.Obs.Metrics.fam_kind = Obs.Metrics.Counter)
    (Obs.Metrics.dump ())

let counters () =
  List.filter_map
    (fun (f : Obs.Metrics.family) ->
      if f.Obs.Metrics.fam_unit_s || f.Obs.Metrics.fam_cells = [] then None
      else Some (f.Obs.Metrics.fam_name, int_of_float (family_total f)))
    (counter_families ())

let timers () =
  List.filter_map
    (fun (f : Obs.Metrics.family) ->
      if f.Obs.Metrics.fam_unit_s && f.Obs.Metrics.fam_cells <> [] then
        Some (f.Obs.Metrics.fam_name, family_total f)
      else None)
    (counter_families ())

let reset () = Obs.Metrics.reset ~kind:Obs.Metrics.Counter ()

let pp_table fmt () =
  let cs = counters () and ts = timers () in
  if cs = [] && ts = [] then Format.fprintf fmt "no telemetry recorded@."
  else begin
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %14d@." k v) cs;
    List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %12.3f s@." k v) ts
  end

let to_json () =
  (* Jsonx escapes the names and maps non-finite timer sums to null, so
     the output is valid JSON whatever was reported — including nothing
     at all. *)
  let cs = List.map (fun (k, v) -> (k, string_of_int v)) (counters ()) in
  let ts = List.map (fun (k, v) -> (k, Jsonx.float v)) (timers ()) in
  Jsonx.obj [ ("counters", Jsonx.obj cs); ("timers", Jsonx.obj ts) ]
