module R = Check.Repro

let () =
  Obs.Metrics.declare ~help:"Batch requests received, by operation"
    Obs.Metrics.Counter "batch.requests";
  Obs.Metrics.declare ~help:"Groups recomputed inline after pool failure"
    Obs.Metrics.Counter "batch.group_recovered"

type stats = {
  requests : int;
  unique : int;
  groups : int;
  dedup_hits : int;
  memo_hits : int;
  swept : int;
}

let hit_rate s =
  if s.requests = 0 then 0.
  else float_of_int (s.dedup_hits + s.memo_hits) /. float_of_int s.requests

let pp_stats fmt s =
  Format.fprintf fmt
    "%d requests: %d unique, %d groups, %d dedup hits, %d memo hits, %d swept, \
     hit-rate %.1f%%"
    s.requests s.unique s.groups s.dedup_hits s.memo_hits s.swept
    (100. *. hit_rate s)

(* Same resolution as the fuzz properties: instance DFGs are small and
   the corpus expects stable curves. *)
let curve_params = { Ise.Curve.small with Ise.Curve.sweep_points = 8 }

(* The inter-task workload view (as in Check.Prop): one entity per
   task, delta = cycles saved, cost = area. *)
let entities_of (i : Check.Instance.t) =
  List.map
    (fun (ts : Check.Instance.task_spec) ->
      List.map
        (fun (p : Check.Instance.curve_point) ->
          { Pareto.Mo_select.delta = float_of_int (ts.base - p.cycles);
            cost = p.area })
        ts.points
      |> Array.of_list)
    i.Check.Instance.tasks

let base_of (i : Check.Instance.t) =
  Util.Numeric.sum_byf
    (fun (ts : Check.Instance.task_spec) -> float_of_int ts.base)
    i.Check.Instance.tasks

let num_int i = R.Num (float_of_int i)

let status_field st =
  ( "status",
    R.Str (match st with Engine.Guard.Exact -> "exact" | Partial _ -> "partial") )

let point_json (p : Isa.Config.point) =
  R.Obj [ ("area", num_int p.area); ("cycles", num_int p.cycles) ]

let selection_fields (sel : Core.Selection.t) =
  [ ("utilization", R.Num sel.Core.Selection.utilization);
    ("area", num_int sel.Core.Selection.area);
    ( "assignment",
      R.Arr (List.map (fun (_, p) -> point_json p) sel.Core.Selection.assignment)
    ) ]

let front_json front =
  R.Arr
    (List.map
       (fun (p : Util.Pareto_front.point) ->
         R.Obj [ ("cost", num_int p.cost); ("value", R.Num p.value) ])
       front)

let edf_payload sel = R.Obj (status_field Engine.Guard.Exact :: selection_fields sel)

(* [spec] is the request's resource budget (the daemon's per-class
   deadline/fuel admission specs arrive here); without one the solver
   falls back to the process-wide default, exactly as before. *)
let payload ?spec ?(generator = Ise.Isegen.Exhaustive) op
    (ci : Check.Instance.t) =
  let guard () =
    match spec with
    | Some s -> Engine.Guard.of_spec s
    | None -> Engine.Guard.default ()
  in
  match (op : Protocol.op) with
  | Edf -> edf_payload (Core.Edf_select.run ~budget:ci.budget (Check.Instance.tasks ci))
  | Rms ->
    let guard = guard () in
    (match Core.Rms_select.run_guarded ~guard ~budget:ci.budget (Check.Instance.tasks ci) with
     | Some sel, st ->
       R.Obj (status_field st :: ("feasible", R.Bool true) :: selection_fields sel)
     | None, st -> R.Obj [ status_field st; ("feasible", R.Bool false) ])
  | Pareto_exact ->
    let guard = guard () in
    let front, st =
      Pareto.Mo_select.exact_front_guarded ~guard ~base:(base_of ci) (entities_of ci)
    in
    R.Obj [ status_field st; ("points", front_json front) ]
  | Pareto_approx ->
    let front =
      Pareto.Mo_select.approx_front ~eps:ci.Check.Instance.eps ~base:(base_of ci)
        (entities_of ci)
    in
    R.Obj [ status_field Engine.Guard.Exact; ("points", front_json front) ]
  | Curve ->
    let cfg =
      { Ir.Cfg.name = "batch"; code = Ir.Cfg.block "b0" (Check.Instance.dfg ci) }
    in
    let params = { curve_params with Ise.Curve.generator } in
    let curve = Ise.Curve.generate ~params cfg in
    R.Obj
      [ status_field Engine.Guard.Exact;
        ("base", num_int (Isa.Config.base_cycles curve));
        ( "points",
          R.Arr (Array.to_list (Array.map point_json (Isa.Config.points curve))) )
      ]

(* Rendering always goes payload → string → parse → render, on every
   path, so a memo-warm answer is byte-identical to a cold one by
   construction rather than by argument. *)
let respond req =
  let p = Protocol.prepare req in
  let s =
    R.to_string
      (payload ~generator:p.Protocol.req.generator p.Protocol.req.op
         p.Protocol.canonical)
  in
  Protocol.render_response p ~payload:(R.parse s)

(* The daemon's one-request path: probe the shared memo, compute and
   store on a miss.  Both arms render through string -> parse -> render
   like [respond], so a memo-warm daemon answer is byte-identical to a
   cold one and to the sequential reference. *)
let answer ?memo ?spec req =
  let p = Protocol.prepare req in
  match Option.bind memo (fun m -> Engine.Memo.find m ~key:p.Protocol.key) with
  | Some s -> Protocol.render_response p ~payload:(R.parse s)
  | None ->
    let s =
      R.to_string
        (payload ?spec ~generator:p.Protocol.req.generator p.Protocol.req.op
           p.Protocol.canonical)
    in
    (match memo with
     | Some m -> Engine.Memo.store m ~key:p.Protocol.key s
     | None -> ());
    Protocol.render_response p ~payload:(R.parse s)

type group_result = { entries : (string * string) list; g_memo_hits : int; g_swept : int }

let compute_group memo (ps : Protocol.prepared list) =
  Engine.Trace.with_span "batch.group"
    ~attrs:[ ("size", string_of_int (List.length ps)) ]
  @@ fun () ->
  Engine.Histogram.time "batch.group_s" @@ fun () ->
  let probed =
    List.map
      (fun (p : Protocol.prepared) ->
        (p, Option.bind memo (fun m -> Engine.Memo.find m ~key:p.Protocol.key)))
      ps
  in
  let missing = List.filter_map (fun (p, r) -> if r = None then Some p else None) probed in
  let computed, swept =
    match missing with
    | [] -> ([], 0)
    | (first : Protocol.prepared) :: _
      when first.Protocol.req.op = Protocol.Edf && List.length missing > 1 ->
      (* a budget sweep over one task set: one DP answers the group *)
      let budgets =
        List.map
          (fun (p : Protocol.prepared) -> p.Protocol.canonical.Check.Instance.budget)
          missing
      in
      let sels =
        Core.Edf_select.run_sweep ~budgets
          (Check.Instance.tasks first.Protocol.canonical)
      in
      Engine.Telemetry.add "batch.sweep_budgets" (List.length missing);
      (List.map2 (fun p sel -> (p, edf_payload sel)) missing sels, List.length missing)
    | _ ->
      ( List.map
          (fun (p : Protocol.prepared) ->
            ( p,
              payload ~generator:p.Protocol.req.generator p.Protocol.req.op
                p.Protocol.canonical ))
          missing,
        0 )
  in
  let fresh =
    List.map
      (fun ((p : Protocol.prepared), pl) -> (p.Protocol.key, R.to_string pl))
      computed
  in
  (match memo with
   | Some m -> List.iter (fun (k, s) -> Engine.Memo.store m ~key:k s) fresh
   | None -> ());
  let hits =
    List.filter_map
      (fun ((p : Protocol.prepared), r) ->
        Option.map (fun s -> (p.Protocol.key, s)) r)
      probed
  in
  { entries = hits @ fresh; g_memo_hits = List.length hits; g_swept = swept }

let run ?pool ?memo reqs =
  Engine.Trace.with_span "batch.run"
    ~attrs:[ ("requests", string_of_int (List.length reqs)) ]
  @@ fun () ->
  Engine.Histogram.time "batch.run_s" @@ fun () ->
  let prepared = List.map Protocol.prepare reqs in
  List.iter
    (fun (p : Protocol.prepared) ->
      Obs.Metrics.inc
        ~labels:[ ("op", Protocol.op_name p.Protocol.req.Protocol.op) ]
        "batch.requests")
    prepared;
  let seen = Hashtbl.create 64 in
  let dedup_hits = ref 0 in
  let uniq =
    List.filter
      (fun (p : Protocol.prepared) ->
        if Hashtbl.mem seen p.Protocol.key then begin
          incr dedup_hits;
          false
        end
        else begin
          Hashtbl.add seen p.Protocol.key ();
          true
        end)
      prepared
  in
  let group_tbl = Hashtbl.create 64 in
  let group_order = ref [] in
  List.iter
    (fun (p : Protocol.prepared) ->
      let g = p.Protocol.group in
      match Hashtbl.find_opt group_tbl g with
      | Some ps -> Hashtbl.replace group_tbl g (p :: ps)
      | None ->
        Hashtbl.add group_tbl g [ p ];
        group_order := g :: !group_order)
    uniq;
  let groups =
    List.map (fun g -> List.rev (Hashtbl.find group_tbl g)) (List.rev !group_order)
  in
  let outcomes =
    match pool with
    | Some p -> Engine.Parallel.Pool.map_result p (compute_group memo) groups
    | None -> List.map (Engine.Parallel.Pool.isolate (compute_group memo)) groups
  in
  let results =
    List.map2
      (fun g -> function
        | Ok r -> r
        | Error (err : Engine.Parallel.error) ->
          (* the parallel pool gave up on this group (worker faults);
             recompute it inline — same code, same bytes *)
          Engine.Telemetry.incr "batch.group_recovered";
          Obs.Flight.record ~severity:Obs.Flight.Warn "batch.group_recovered"
            [ ("size", string_of_int (List.length g));
              ("error", err.Engine.Parallel.message) ];
          compute_group memo g)
      groups outcomes
  in
  let by_key = Hashtbl.create 64 in
  List.iter (fun r -> List.iter (fun (k, s) -> Hashtbl.replace by_key k s) r.entries) results;
  let lines =
    List.map
      (fun (p : Protocol.prepared) ->
        Protocol.render_response p
          ~payload:(R.parse (Hashtbl.find by_key p.Protocol.key)))
      prepared
  in
  (match memo with Some m -> Engine.Memo.observe_occupancy m | None -> ());
  let stats =
    { requests = List.length prepared;
      unique = List.length uniq;
      groups = List.length groups;
      dedup_hits = !dedup_hits;
      memo_hits = List.fold_left (fun a r -> a + r.g_memo_hits) 0 results;
      swept = List.fold_left (fun a r -> a + r.g_swept) 0 results }
  in
  Engine.Telemetry.add "batch.unique" stats.unique;
  Engine.Telemetry.add "batch.groups" stats.groups;
  Engine.Telemetry.add "batch.dedup_hits" stats.dedup_hits;
  Obs.Flight.record "batch.run"
    [ ("requests", string_of_int stats.requests);
      ("unique", string_of_int stats.unique);
      ("groups", string_of_int stats.groups);
      ("dedup_hits", string_of_int stats.dedup_hits);
      ("memo_hits", string_of_int stats.memo_hits);
      ("swept", string_of_int stats.swept) ];
  (lines, stats)
