(** The batching solver service.

    [run] answers a stream of requests in four phases:

    + {b prepare} — canonicalize every request ({!Canon}) and derive
      its memo key and sweep-group key ({!Protocol.prepare});
    + {b dedup} — requests repeating an earlier key in the stream are
      answered by that key's result;
    + {b group} — unique requests sharing a group key are a budget
      sweep over one problem; an EDF group is answered by a single
      shared DP ({!Core.Edf_select.run_sweep});
    + {b execute} — groups run as work items on the caller's persistent
      {!Engine.Parallel.Pool} (or sequentially with the same per-item
      crash isolation when no pool is passed), probing and filling the
      {!Engine.Memo} table; a crashed group is recomputed inline
      (["batch.group_recovered"]), so worker faults degrade to
      sequential execution, never to a lost answer.

    Responses come back in request order.  Both [run] and the
    one-at-a-time reference {!respond} serialise result payloads
    through {!Check.Repro.to_string} before rendering, so for any
    request stream the two produce byte-identical lines, cold or
    memo-warm — the central property of the [batch] suite.

    Telemetry: ["batch.requests"], ["batch.unique"],
    ["batch.dedup_hits"], ["batch.groups"], ["batch.sweep_budgets"],
    ["batch.group_recovered"]; histograms ["batch.run_s"],
    ["batch.group_s"]; spans ["batch.run"] / ["batch.group"]. *)

type stats = {
  requests : int;
  unique : int;  (** requests left after dedup *)
  groups : int;
  dedup_hits : int;  (** answered by an earlier request in the stream *)
  memo_hits : int;  (** answered by the memo table (earlier run / spill) *)
  swept : int;  (** EDF requests answered by a shared sweep DP *)
}

val hit_rate : stats -> float
(** [(dedup_hits + memo_hits) / requests]; [0.] on an empty stream. *)

val pp_stats : Format.formatter -> stats -> unit

val respond : Protocol.request -> string
(** Solve one request cold, no sharing — the sequential reference the
    batch path is differentially tested against. *)

val answer :
  ?memo:Engine.Memo.t -> ?spec:Engine.Guard.spec -> Protocol.request -> string
(** Solve one request against a shared memo — the resident daemon's
    per-request path.  A memo hit replays the stored payload; a miss
    computes (under [spec] if given, else the process default guard),
    stores, and renders.  Every arm serialises through
    {!Check.Repro.to_string} before rendering, so [answer] is
    byte-identical to {!respond} for any [Exact]-status result,
    warm or cold. *)

val run :
  ?pool:Engine.Parallel.Pool.t ->
  ?memo:Engine.Memo.t ->
  Protocol.request list ->
  string list * stats
(** Answer a stream.  Without [pool] the groups run sequentially (still
    crash-isolated per group); [memo] defaults to none (dedup and
    sweep-grouping still apply). *)
