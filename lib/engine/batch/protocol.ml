module R = Check.Repro

type op = Edf | Rms | Pareto_exact | Pareto_approx | Curve

let op_name = function
  | Edf -> "edf"
  | Rms -> "rms"
  | Pareto_exact -> "pareto_exact"
  | Pareto_approx -> "pareto_approx"
  | Curve -> "curve"

let all_ops = [ Edf; Rms; Pareto_exact; Pareto_approx; Curve ]

let op_of_name n = List.find_opt (fun op -> op_name op = n) all_ops

type request = {
  id : string;
  op : op;
  instance : Check.Instance.t;
  generator : Ise.Isegen.choice;
}

(* Only curve solving consults the generator; normalising it away on the
   other ops keeps their keys (and the golden corpus) unchanged. *)
let generator_of req =
  match req.op with Curve -> req.generator | _ -> Ise.Isegen.Exhaustive

type prepared = {
  req : request;
  canonical : Check.Instance.t;
  perm : int array;
  key : string;
  group : string;
}

let empty_dfg = { Check.Instance.kinds = []; edges = []; live_outs = [] }

(* Blank the instance fields the op ignores, so e.g. two edf requests
   differing only in eps share a key. *)
let trim op (i : Check.Instance.t) =
  match op with
  | Edf | Rms -> { i with Check.Instance.eps = 1.0; dfg = empty_dfg }
  | Pareto_exact -> { i with Check.Instance.budget = 0; eps = 1.0; dfg = empty_dfg }
  | Pareto_approx -> { i with Check.Instance.budget = 0; dfg = empty_dfg }
  | Curve ->
    { i with Check.Instance.tasks = []; budget = 0; eps = 1.0 }

let prepare req =
  let canonical, perm = Canon.instance req.instance in
  let gen_tag =
    match generator_of req with
    | Ise.Isegen.Exhaustive -> ""
    | g -> "+" ^ Ise.Isegen.choice_to_string g
  in
  let key_of i = op_name req.op ^ gen_tag ^ "-" ^ Shash.of_instance i in
  { req;
    canonical;
    perm;
    key = key_of (trim req.op canonical);
    group = key_of { (trim req.op canonical) with Check.Instance.budget = 0 } }

let parse_request line =
  match R.parse line with
  | exception R.Parse_error msg -> Error msg
  | j ->
    (match
       let id = R.as_string (R.field j "id") in
       let opn = R.as_string (R.field j "op") in
       (id, opn, R.decode_instance (R.field j "instance"))
     with
     | exception R.Parse_error msg -> Error msg
     | id, opn, instance ->
       let field_opt j name =
         match j with
         | R.Obj fields -> List.assoc_opt name fields
         | _ -> None
       in
       let generator =
         match field_opt j "generator" with
         | None -> Ok Ise.Isegen.Exhaustive
         | Some g ->
           (match R.as_string g with
            | exception R.Parse_error msg -> Error msg
            | name ->
              (match Ise.Isegen.choice_of_string name with
               | Some c -> Ok c
               | None -> Error (Printf.sprintf "unknown generator %S" name)))
       in
       (match op_of_name opn, generator with
        | None, _ -> Error (Printf.sprintf "unknown op %S" opn)
        | _, Error msg -> Error msg
        | Some op, Ok generator ->
          if Check.Instance.valid instance then
            Ok { id; op; instance; generator }
          else Error "instance violates a constructor precondition"))

let request_line req =
  (* emitted only when it matters, so pre-generator corpora round-trip
     byte-identically *)
  let generator =
    match generator_of req with
    | Ise.Isegen.Exhaustive -> []
    | g -> [ ("generator", R.Str (Ise.Isegen.choice_to_string g)) ]
  in
  R.to_string
    (R.Obj
       ([ ("id", R.Str req.id);
          ("op", R.Str (op_name req.op));
          ("instance", R.json_of_instance req.instance) ]
       @ generator))

let reproject perm = function
  | R.Arr entries when List.length entries = Array.length perm ->
    let arr = Array.of_list entries in
    R.Arr (List.init (Array.length perm) (fun i -> arr.(perm.(i))))
  | v -> v

let render_response p ~payload =
  let fields = match payload with R.Obj fs -> fs | v -> [ ("result", v) ] in
  let fields =
    List.map
      (fun (k, v) -> if k = "assignment" then (k, reproject p.perm v) else (k, v))
      fields
  in
  R.to_string
    (R.Obj
       (("id", R.Str p.req.id)
       :: ("op", R.Str (op_name p.req.op))
       :: ("key", R.Str p.key)
       :: fields))
