(** The batch wire protocol: JSONL requests and responses.

    One request per line:
    {v
    {"id": "q1", "op": "edf", "instance": { ...Instance.to_json schema... }}
    v}
    [op] is one of [edf], [rms], [pareto_exact], [pareto_approx],
    [curve].  One response line per request, in request order:
    {v
    {"id": "q1", "op": "edf", "key": "edf-2f1c...", "status": "exact", ...}
    v}
    Result fields per op: [edf]/[rms] carry [utilization], [area] and
    [assignment] (one [{area, cycles}] per task, {e in request task
    order}); an infeasible [rms] carries [feasible: false] instead;
    [pareto_exact]/[pareto_approx] carry [points] ([{cost, value}]);
    [curve] carries [base] and [points] ([{area, cycles}]).
    [status] is ["exact"] or ["partial"] per {!Engine.Guard.status}. *)

type op = Edf | Rms | Pareto_exact | Pareto_approx | Curve

val op_name : op -> string
val op_of_name : string -> op option

type request = {
  id : string;
  op : op;
  instance : Check.Instance.t;
  generator : Ise.Isegen.choice;
      (** candidate generator for [curve] requests; ignored (and
          normalised to [Exhaustive] in keys and on the wire) for every
          other op.  Absent on the wire ⇔ [Exhaustive], so pre-generator
          corpora parse and re-serialise unchanged. *)
}

(** A request after canonicalization and key derivation — what the
    service schedules. *)
type prepared = {
  req : request;
  canonical : Check.Instance.t;  (** {!Canon.instance} of the spec *)
  perm : int array;  (** request task [i] is canonical task [perm.(i)] *)
  key : string;
      (** dedup/memo key: ["<op>[+<generator>]-<hash>"], hashing only
          the instance fields the op consumes — an [edf] request and a
          [curve] request never alias, and two [edf] requests differing
          only in [eps] or the DFG do.  The generator tag appears only
          for non-exhaustive [curve] requests, so legacy keys are
          unchanged. *)
  group : string;
      (** like [key] with the budget blanked: requests sharing a group
          are a budget sweep over one problem *)
}

val prepare : request -> prepared

val parse_request : string -> (request, string) result
(** Parse one JSONL line; [Error] carries the parse or validation
    failure. *)

val request_line : request -> string
(** Serialise a request to its JSONL line ([parse_request] inverts
    it). *)

val render_response : prepared -> payload:Check.Repro.json -> string
(** The response line: [id]/[op]/[key] followed by the payload's
    fields, with any [assignment] array projected from canonical task
    order back to request order through [perm]. *)
