(* Deterministic colour mixing: OCaml int arithmetic wraps, so the
   values are stable across runs and platforms with 63-bit ints. *)
let combine h xs = List.fold_left (fun h x -> (h * 1000003) lxor x) h xs

let kind_color =
  let table = List.mapi (fun i k -> (k, i)) Ir.Op.all in
  fun k -> List.assoc k table

(* ---------------------------------------------------------------- *)
(* Tasks                                                             *)
(* ---------------------------------------------------------------- *)

let canon_task (ts : Check.Instance.task_spec) =
  { ts with Check.Instance.points = List.stable_sort compare ts.points }

let canon_tasks tasks =
  let arr = Array.of_list (List.map canon_task tasks) in
  let order = Array.init (Array.length arr) Fun.id in
  (* ties keep request order so the permutation is well defined *)
  Array.sort
    (fun i j ->
      match compare arr.(i) arr.(j) with 0 -> compare i j | c -> c)
    order;
  let perm = Array.make (Array.length arr) 0 in
  Array.iteri (fun pos old -> perm.(old) <- pos) order;
  (Array.to_list (Array.map (fun old -> arr.(old)) order), perm)

(* ---------------------------------------------------------------- *)
(* DFG                                                               *)
(* ---------------------------------------------------------------- *)

let dfg (d : Check.Instance.dfg_spec) =
  let n = List.length d.kinds in
  if n = 0 then d
  else begin
    let kinds = Array.of_list d.kinds in
    let live = Array.make n false in
    List.iter (fun v -> live.(v) <- true) d.live_outs;
    let preds = Array.make n [] and succs = Array.make n [] in
    List.iter
      (fun (s, t) ->
        succs.(s) <- t :: succs.(s);
        preds.(t) <- s :: preds.(t))
      d.edges;
    let color =
      Array.init n (fun v ->
          combine 0x1505
            [ kind_color kinds.(v);
              Ir.Op.arity kinds.(v);
              (if live.(v) then 1 else 0);
              List.length preds.(v);
              List.length succs.(v) ])
    in
    let refine rounds =
      for _ = 1 to rounds do
        let next =
          Array.init n (fun v ->
              combine color.(v)
                (List.sort compare (List.map (fun p -> color.(p)) preds.(v))
                @ (min_int
                  :: List.sort compare (List.map (fun s -> color.(s)) succs.(v)))))
        in
        Array.blit next 0 color 0 n
      done
    in
    refine (min n 10);
    (* individualization-refinement: number the minimum-colour ready
       node, re-refine, repeat — a canonical topological order *)
    let newid = Array.make n (-1) in
    let waiting = Array.init n (fun v -> List.length preds.(v)) in
    for pos = 0 to n - 1 do
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if newid.(v) < 0 && waiting.(v) = 0 then
          if !best < 0 || color.(v) < color.(!best) then best := v
      done;
      let v = !best in
      newid.(v) <- pos;
      List.iter (fun s -> waiting.(s) <- waiting.(s) - 1) succs.(v);
      color.(v) <- combine 0x9e3779b9 [ pos ];
      refine (min n 3)
    done;
    let old_of = Array.make n 0 in
    Array.iteri (fun old pos -> old_of.(pos) <- old) newid;
    { Check.Instance.kinds = List.init n (fun pos -> kinds.(old_of.(pos)));
      edges =
        List.sort compare
          (List.map (fun (s, t) -> (newid.(s), newid.(t))) d.edges);
      live_outs = List.sort_uniq compare (List.map (fun v -> newid.(v)) d.live_outs)
    }
  end

let instance (inst : Check.Instance.t) =
  let tasks, perm = canon_tasks inst.Check.Instance.tasks in
  ({ inst with Check.Instance.tasks; dfg = dfg inst.Check.Instance.dfg }, perm)
