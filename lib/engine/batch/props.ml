open Check.Prop

let renumber_dfg (d : Check.Instance.dfg_spec) =
  let n = List.length d.kinds in
  if n = 0 then d
  else begin
    let kinds = Array.of_list d.kinds in
    let waiting = Array.make n 0 in
    let succs = Array.make n [] in
    List.iter
      (fun (s, t) ->
        succs.(s) <- t :: succs.(s);
        waiting.(t) <- waiting.(t) + 1)
      d.edges;
    let newid = Array.make n (-1) in
    for pos = 0 to n - 1 do
      let pick = ref (-1) in
      for u = 0 to n - 1 do
        if newid.(u) < 0 && waiting.(u) = 0 then pick := u
      done;
      newid.(!pick) <- pos;
      waiting.(!pick) <- -1;
      List.iter (fun s -> waiting.(s) <- waiting.(s) - 1) succs.(!pick)
    done;
    let old_of = Array.make n 0 in
    Array.iteri (fun old pos -> old_of.(pos) <- old) newid;
    { Check.Instance.kinds = List.init n (fun pos -> kinds.(old_of.(pos)));
      edges = List.map (fun (s, t) -> (newid.(s), newid.(t))) d.edges;
      live_outs = List.map (fun v -> newid.(v)) d.live_outs }
  end

(* A request stream with everything the service claims to share:
   budget sweeps, exact duplicates, permuted/renumbered presentations
   of the same problem, every op. *)
let stream_of (inst : Check.Instance.t) =
  let b = inst.Check.Instance.budget in
  let budgets = List.sort_uniq compare [ 0; b / 2; b; b + 3 ] in
  let at bud = { inst with Check.Instance.budget = bud } in
  let permuted = { inst with Check.Instance.tasks = List.rev inst.Check.Instance.tasks } in
  let renumbered = { inst with Check.Instance.dfg = renumber_dfg inst.Check.Instance.dfg } in
  let specs =
    List.map (fun bud -> (Protocol.Edf, at bud)) budgets
    @ [ (Protocol.Rms, inst);
        (Protocol.Pareto_exact, inst);
        (Protocol.Pareto_approx, inst);
        (Protocol.Curve, inst);
        (Protocol.Edf, permuted);
        (Protocol.Rms, permuted);
        (Protocol.Curve, renumbered);
        (Protocol.Edf, inst);
        (Protocol.Pareto_exact, inst) ]
  in
  List.mapi
    (fun i (op, instance) ->
      { Protocol.id = Printf.sprintf "q%d" i; op; instance;
        generator = Ise.Isegen.Exhaustive })
    specs

let fresh_memo ?(spill = false) () =
  Engine.Memo.create ~shards:3 ~spill ~namespace:"batch-prop" ()

let diff_lines a b =
  let rec go i = function
    | [], [] -> "response lists differ in length"
    | x :: _, y :: _ when x <> y ->
      Printf.sprintf "line %d differs:\n  sequential: %s\n  batched:    %s" i x y
    | _ :: xs, _ :: ys -> go (i + 1) (xs, ys)
    | _ -> "response lists differ in length"
  in
  go 0 (a, b)

let batch_matches_sequential inst =
  if Engine.Fault.active () then Skip "fault injection active"
  else begin
    let reqs = stream_of inst in
    let sequential = List.map Service.respond reqs in
    let batched, stats =
      Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
      Service.run ~pool ~memo:(fresh_memo ()) reqs
    in
    if batched <> sequential then Fail (diff_lines sequential batched)
    else if stats.Service.dedup_hits = 0 then
      Fail "stream contains duplicates but dedup found none"
    else Pass
  end

let batch_memo_warm_identical inst =
  if Engine.Fault.active () then Skip "fault injection active"
  else begin
    let reqs = stream_of inst in
    let memo = fresh_memo () in
    let cold, _ = Service.run ~memo reqs in
    let warm, stats = Service.run ~memo reqs in
    if warm <> cold then Fail (diff_lines cold warm)
    else if stats.Service.memo_hits < stats.Service.unique then
      Fail
        (Printf.sprintf "warm run hit the memo %d times for %d unique requests"
           stats.Service.memo_hits stats.Service.unique)
    else Pass
  end

let key_of op instance =
  (Protocol.prepare
     { Protocol.id = "k"; op; instance; generator = Ise.Isegen.Exhaustive })
    .Protocol.key

let batch_hash_canonical (inst : Check.Instance.t) =
  let permuted = { inst with Check.Instance.tasks = List.rev inst.Check.Instance.tasks } in
  let renumbered = { inst with Check.Instance.dfg = renumber_dfg inst.Check.Instance.dfg } in
  let bumped = { inst with Check.Instance.budget = inst.Check.Instance.budget + 1 } in
  if key_of Protocol.Edf permuted <> key_of Protocol.Edf inst then
    Fail "task reordering changed the edf key"
  else if key_of Protocol.Curve renumbered <> key_of Protocol.Curve inst then
    Fail "DFG renumbering changed the curve key"
  else if key_of Protocol.Edf bumped = key_of Protocol.Edf inst then
    Fail "budget change did not change the edf key"
  else if key_of Protocol.Edf inst = key_of Protocol.Rms inst then
    Fail "edf and rms keys alias"
  else Pass

let batch_survives_faults inst =
  if not (Engine.Fault.active ()) then Skip "no fault injection configured"
  else begin
    let saved = Engine.Cache.dir () in
    let tmp =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "isecustom-batch-faults-%d" (Unix.getpid ()))
    in
    Engine.Cache.set_dir tmp;
    Fun.protect
      ~finally:(fun () -> Engine.Cache.set_dir saved)
      (fun () ->
        let reqs = stream_of inst in
        match
          Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
          Service.run ~pool ~memo:(fresh_memo ~spill:true ()) reqs
        with
        | exception e ->
          Fail ("service raised under fault injection: " ^ Printexc.to_string e)
        | lines, _ ->
          if List.length lines <> List.length reqs then
            Fail "response count does not match request count"
          else if
            List.for_all
              (fun l ->
                match Check.Repro.parse l with
                | Check.Repro.Obj _ -> true
                | _ | (exception Check.Repro.Parse_error _) -> false)
              lines
          then Pass
          else Fail "unparseable response line under fault injection")
  end

let all =
  [ { name = "batch_matches_sequential"; suite = "batch"; run = batch_matches_sequential };
    { name = "batch_memo_warm_identical"; suite = "batch"; run = batch_memo_warm_identical };
    { name = "batch_hash_canonical"; suite = "batch"; run = batch_hash_canonical };
    { name = "batch_survives_faults"; suite = "batch"; run = batch_survives_faults } ]
