(** Differential properties for the batch layer (suite ["batch"]).

    These live here rather than in [lib/check] because they exercise
    the batch service, which sits above [check] in the library graph;
    the CLI composes them with {!Check.Prop.all} when driving
    {!Check.Runner.run}.

    - [batch_matches_sequential] — on a derived request stream (budget
      sweeps, exact duplicates, task-permuted and DFG-renumbered
      copies, all five ops) the batched responses are byte-identical to
      one-at-a-time {!Service.respond};
    - [batch_memo_warm_identical] — a second run over a warm memo
      returns the same bytes and answers every unique request from the
      table;
    - [batch_hash_canonical] — memo keys are invariant under task
      reordering and DFG renumbering, and distinguish budgets and ops;
    - [batch_survives_faults] — under active fault injection (the
      [make faults] run; skipped otherwise) the service still answers
      every request with a parseable response. *)

val all : Check.Prop.t list

val stream_of : Check.Instance.t -> Protocol.request list
(** The derived request stream the properties batch (exposed for the
    unit tests and the bench). *)

val renumber_dfg : Check.Instance.dfg_spec -> Check.Instance.dfg_spec
(** A different valid topological numbering of the same graph (picks
    the highest-index ready node instead of the lowest) — the
    presentation change canonicalization must erase. *)
