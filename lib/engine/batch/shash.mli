(** Stable structural hashing for memo keys.

    FNV-1a over the canonical JSON serialization of an instance — a
    pure function of the bytes, so hashes are identical across runs,
    domains and machines (unlike [Hashtbl.hash], whose contract allows
    variation between OCaml versions). *)

val fnv64 : string -> int64
(** 64-bit FNV-1a of a byte string. *)

val hex : int64 -> string
(** 16 lowercase hex digits. *)

val of_instance : Check.Instance.t -> string
(** [hex (fnv64 (Instance.to_json i))] — the caller is expected to pass
    an already-canonicalized ({!Canon.instance}) and field-trimmed
    instance, so equal problems produce equal keys. *)
