(** Structural canonicalization of solver instances.

    Two requests that differ only in presentation — task order, DFG node
    numbering, curve-point order — describe the same problem and must
    land on the same memo entry.  [instance] rewrites a spec into a
    canonical form:

    - curve points of each task sorted by (area, cycles);
    - tasks sorted by (period, base, points), with the original
      positions recorded in a permutation so per-task results can be
      projected back into request order;
    - DFG nodes renumbered by Weisfeiler–Leman colour refinement with
      individualization: nodes get colours from (operation, arity,
      liveness, neighbour-colour multisets), then a canonical
      topological order repeatedly picks the minimum-colour ready node
      and re-refines — any valid renumbering of the same graph yields
      the same canonical graph (asserted property-based in the [batch]
      suite; WL-equivalent-but-non-isomorphic ties are the usual
      theoretical caveat and do not arise for these labelled DAGs).

    Canonicalization preserves {!Check.Instance.valid}. *)

val instance : Check.Instance.t -> Check.Instance.t * int array
(** Canonical form plus the task permutation: [perm.(i)] is the
    canonical position of the request's task [i].  The permutation of
    an already-canonical instance is the identity. *)

val dfg : Check.Instance.dfg_spec -> Check.Instance.dfg_spec
(** Canonicalize just the DFG (exposed for the hashing tests). *)
