(** A domain pool for data-parallel sweeps (OCaml 5 [Domain]s).

    Results are always returned in input order and are bit-identical to
    the sequential path — workers communicate only through disjoint
    output slots, so scheduling cannot reorder or merge anything.  With
    [jobs = 1] (or on a single-core machine, the default) no domain is
    spawned and the call degrades to [List.map]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs], computed by up to [jobs] domains
    pulling items off a shared queue ([jobs] defaults to
    {!default_jobs}; it is clamped to the list length).  If any [f]
    raises, the first exception is re-raised in the caller after all
    workers have drained.  [f] must be safe to run concurrently with
    itself (the whole pipeline below [Ise.Curve] is pure).

    Observability: workers report into {!Telemetry} and {!Histogram}
    directly (both are domain-safe); {!Trace} spans opened inside [f]
    are parented to the span enclosing the [map] call and merged into
    the global trace before [map] returns. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** Parallel map followed by a sequential in-order fold, so the result
    is deterministic for any reducer. *)
