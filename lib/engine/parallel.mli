(** A domain pool for data-parallel sweeps (OCaml 5 [Domain]s).

    Results are always returned in input order and are bit-identical to
    the sequential path — workers communicate only through disjoint
    output slots, so scheduling cannot reorder or merge anything.  With
    [jobs = 1] (or on a single-core machine, the default) no domain is
    spawned and the call degrades to [List.map]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs], computed by up to [jobs] domains
    pulling items off a shared queue ([jobs] defaults to
    {!default_jobs}; it is clamped to the list length).  If any [f]
    raises, the first exception is re-raised in the caller after all
    workers have drained; a shared cancellation flag, polled before
    every queue pop, stops the surviving workers from claiming further
    items in the meantime.  [f] must be safe to run concurrently with
    itself (the whole pipeline below [Ise.Curve] is pure).  The
    ["parallel.worker"] {!Fault} point, when armed, crashes items here
    like any other exception — use {!map_result} for the batch to
    survive it.

    Observability: workers report into {!Telemetry} and {!Histogram}
    directly (both are domain-safe); {!Trace} spans opened inside [f]
    are parented to the span enclosing the [map] call and merged into
    the global trace before [map] returns. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** Parallel map followed by a sequential in-order fold, so the result
    is deterministic for any reducer. *)

type error = {
  attempts : int;  (** how many times the item was tried *)
  message : string;  (** [Printexc.to_string] of the last failure *)
}

val map_result :
  ?jobs:int -> ?attempts:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Crash-isolated {!map}: every item's outcome is captured in its own
    slot (in input order), so one raising item degrades to an [Error]
    instead of aborting the batch — the other items all still run.
    Each item is tried up to [attempts] times (default 2, i.e. one
    retry), which absorbs transient failures; a deterministic failure
    is reported with its attempt count and rendered exception.
    Telemetry: ["parallel.retried"], ["parallel.recovered"],
    ["parallel.item_failed"]. *)
