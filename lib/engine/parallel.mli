(** A persistent work-stealing domain pool (OCaml 5 [Domain]s).

    {!Pool.create} spawns its worker domains {e once}; every subsequent
    parallel operation — {!Pool.map}, {!Pool.map_result}, {!Pool.submit}
    — reuses them, so domain spawn/teardown is amortised across a whole
    CLI or daemon lifetime instead of being paid per call.  Each worker
    owns a deque: it pushes work it creates onto its own deque and, when
    that runs dry, steals from the others — so fine-grained work items
    (per-block candidate enumeration, per-budget curve selects, batch
    groups) balance across domains regardless of which call produced
    them.

    Results are always returned in input order and are bit-identical to
    the sequential path — workers communicate only through disjoint
    output slots, so scheduling can change {e when} an item is computed,
    never {e what}.  A pool with [jobs = 1] (the single-core default)
    spawns no domain and runs everything inline.

    Nested use is safe: a work item running on a pool worker may itself
    call {!Pool.map}/{!Pool.submit}/{!Pool.await} on the same pool.
    Awaiting callers {e help}: they execute queued work items instead of
    blocking, so the pool can never deadlock on its own work.

    Telemetry: ["pool.spawned"] (domains ever spawned), ["pool.reused"]
    (parallel operations dispatched onto already-resident domains),
    ["pool.items"] (work items executed), ["pool.steals"] (items claimed
    from another worker's deque); histogram ["pool.steal_wait_s"] (time
    a worker hunted before a successful steal).  Per-item telemetry of
    the crash-isolated path keeps PR 4's names: ["parallel.retried"],
    ["parallel.recovered"], ["parallel.item_failed"]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the
    {!Pool.create} default. *)

type error = {
  attempts : int;  (** how many times the item was tried *)
  message : string;  (** [Printexc.to_string] of the last failure *)
}

module Pool : sig
  type t
  (** A handle on a set of resident worker domains.  Create one per
      process (CLI invocation, daemon), thread it through the layers,
      and {!shutdown} it when the process is done. *)

  val create : ?jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [jobs - 1] worker domains (the calling
      domain is the [jobs]-th worker whenever it awaits).  [jobs]
      defaults to {!default_jobs} and is clamped to [1 .. 126] (the
      runtime's domain ceiling).  Raises [Invalid_argument] on
      [jobs < 1]. *)

  val jobs : t -> int
  (** The pool's parallelism width (as clamped by {!create}). *)

  val shutdown : t -> unit
  (** Stop and join the worker domains.  Idempotent: later calls (from
      any thread) return immediately.  Any parallel operation on a shut
      down pool raises [Invalid_argument].  Must not race an in-flight
      {!map}/{!await} on the same pool. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [create], run, and {!shutdown} (also on exception). *)

  type 'a future

  val submit : t -> (unit -> 'a) -> 'a future
  (** Queue one computation on the pool.  On a [jobs = 1] pool the thunk
      runs inline before [submit] returns.  {!Trace} spans opened inside
      the thunk are parented to the span enclosing the [submit]. *)

  val await : 'a future -> 'a
  (** Wait for a future, executing other queued pool work while it is
      pending ({e helping} — this is what makes nested submission
      deadlock-free).  Re-raises the thunk's exception, if any.
      [await] may be called from any domain, any number of times. *)

  val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
  (** [map pool f xs] = [List.map f xs], computed by the pool's workers
      stealing chunks of [chunk] consecutive items (default 1).  Results
      come back in input order.  If any [f] raises, the first exception
      is re-raised in the caller once the operation has drained; a
      shared cancellation flag, polled before every item, stops the
      other workers from starting further items in the meantime.  [f]
      must be safe to run concurrently with itself.  The
      ["parallel.worker"] {!Fault} point, when armed, crashes items here
      like any other exception — use {!map_result} for the batch to
      survive it.  A [jobs = 1] pool (or a list of at most one element)
      degrades to [List.map] with no queuing and no fault point. *)

  val map_result :
    ?chunk:int -> ?attempts:int -> t -> ('a -> 'b) -> 'a list ->
    ('b, error) result list
  (** Crash-isolated {!map}: every item's outcome is captured in its own
      slot (in input order), so one raising item degrades to an [Error]
      instead of aborting the batch — the other items all still run.
      Each item is tried up to [attempts] times (default 2, i.e. one
      retry), which absorbs transient failures; a deterministic failure
      is reported with its attempt count and rendered exception. *)

  val map_reduce :
    ?chunk:int -> t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c ->
    'a list -> 'c
  (** Parallel map followed by a sequential in-order fold, so the result
      is deterministic for any reducer. *)

  val isolate : ?attempts:int -> ('a -> 'b) -> 'a -> ('b, error) result
  (** Run one item under the pool's per-work-item discipline — the
      ["parallel.worker"] fault point, bounded retry, outcome captured
      as a [result] — on the calling domain, with no pool involved.
      This is the primitive {!map_result} applies per item; callers that
      need crash isolation around inherently sequential steps (the
      experiment sweep, batch-group recovery) use it directly. *)
end
