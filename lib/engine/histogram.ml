(* Geometric buckets with ratio 2^(1/8): bucket [i] covers
   [2^((i-offset)/8), 2^((i-offset+1)/8)).  480 buckets span 2^-30 to
   2^30 — nanoseconds to decades in seconds, or counts up to ~1e9 —
   and anything outside clamps into the end buckets.  A sample costs
   one log2 and one array increment under the registry mutex. *)

let sub_buckets = 8
let offset = 30 * sub_buckets
let n_buckets = 2 * offset

type h = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let lock = Mutex.create ()
let tbl : (string, h) Hashtbl.t = Hashtbl.create 16

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let bucket_of v =
  if v <= 0. then 0
  else
    let i = offset + int_of_float (Float.floor (Float.log2 v *. float_of_int sub_buckets)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of a bucket — the representative value quantile
   estimates report before clamping to the observed range. *)
let value_of i =
  Float.exp2 ((float_of_int (i - offset) +. 0.5) /. float_of_int sub_buckets)

let observe name v =
  if not (Float.is_finite v) then Telemetry.incr "histogram.dropped"
  else
    protect (fun () ->
        let h =
          match Hashtbl.find_opt tbl name with
          | Some h -> h
          | None ->
            let h =
              { buckets = Array.make n_buckets 0;
                count = 0; sum = 0.; min = infinity; max = neg_infinity }
            in
            Hashtbl.add tbl name h;
            h
        in
        h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min then h.min <- v;
        if v > h.max then h.max <- v)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> observe name (Unix.gettimeofday () -. t0))
    f

let quantile_of (h : h) q =
  let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
  if rank >= h.count then h.max
  else
  let rec walk i seen =
    if i >= n_buckets then h.max
    else
      let seen = seen + h.buckets.(i) in
      if seen >= rank then Float.min h.max (Float.max h.min (value_of i))
      else walk (i + 1) seen
  in
  walk 0 0

let stats_of (h : h) =
  { count = h.count; sum = h.sum; min = h.min; max = h.max;
    p50 = quantile_of h 0.5; p90 = quantile_of h 0.9; p99 = quantile_of h 0.99 }

let find name = protect (fun () -> Hashtbl.find_opt tbl name)

let stats name =
  match find name with
  | Some h when h.count > 0 -> Some (stats_of h)
  | Some _ | None -> None

let quantile name q =
  match find name with
  | Some h when h.count > 0 -> Some (quantile_of h q)
  | Some _ | None -> None

let all () =
  protect (fun () ->
      Hashtbl.fold
        (fun k (h : h) acc -> if h.count > 0 then (k, stats_of h) :: acc else acc)
        tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () = protect (fun () -> Hashtbl.reset tbl)

let pp_table fmt () =
  match all () with
  | [] -> Format.fprintf fmt "no histograms recorded@."
  | hs ->
    Format.fprintf fmt "%-32s %8s %10s %10s %10s %10s@." "histogram" "count"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (name, s) ->
        Format.fprintf fmt "%-32s %8d %10.4g %10.4g %10.4g %10.4g@." name
          s.count s.p50 s.p90 s.p99 s.max)
      hs

let to_json () =
  Jsonx.obj
    (List.map
       (fun (name, s) ->
         ( name,
           Jsonx.obj
             [ ("count", string_of_int s.count);
               ("sum", Jsonx.float s.sum);
               ("min", Jsonx.float s.min);
               ("max", Jsonx.float s.max);
               ("p50", Jsonx.float s.p50);
               ("p90", Jsonx.float s.p90);
               ("p99", Jsonx.float s.p99) ] ))
       (all ()))
