(* Compatibility veneer over Obs.Metrics histogram families (same
   geometric buckets: ratio 2^(1/8), 480 buckets spanning 2^±30).
   Labeled cells written by instrumented call sites merge into the
   unlabeled reads here, so legacy callers keep seeing family-wide
   distributions. *)

type stats = Obs.Metrics.hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let observe name v = Obs.Metrics.observe name v
let time name f = Obs.Metrics.time name f
let stats name = Obs.Metrics.hist_stats name
let quantile name q = Obs.Metrics.hist_quantile name q

let all () =
  List.filter_map
    (fun (f : Obs.Metrics.family) ->
      if f.Obs.Metrics.fam_kind <> Obs.Metrics.Hist then None
      else
        match Obs.Metrics.hist_stats f.Obs.Metrics.fam_name with
        | Some s when s.count > 0 -> Some (f.Obs.Metrics.fam_name, s)
        | Some _ | None -> None)
    (Obs.Metrics.dump ())

let reset () = Obs.Metrics.reset ~kind:Obs.Metrics.Hist ()

let pp_table fmt () =
  match all () with
  | [] -> Format.fprintf fmt "no histograms recorded@."
  | hs ->
    Format.fprintf fmt "%-32s %8s %10s %10s %10s %10s@." "histogram" "count"
      "p50" "p90" "p99" "max";
    List.iter
      (fun (name, s) ->
        Format.fprintf fmt "%-32s %8d %10.4g %10.4g %10.4g %10.4g@." name
          s.count s.p50 s.p90 s.p99 s.max)
      hs

let to_json () =
  Jsonx.obj
    (List.map
       (fun (name, s) ->
         ( name,
           Jsonx.obj
             [ ("count", string_of_int s.count);
               ("sum", Jsonx.float s.sum);
               ("min", Jsonx.float s.min);
               ("max", Jsonx.float s.max);
               ("p50", Jsonx.float s.p50);
               ("p90", Jsonx.float s.p90);
               ("p99", Jsonx.float s.p99) ] ))
       (all ()))
