(** The resident solver daemon: the batch service promoted from a
    one-shot JSONL run to a long-lived server over warm shared state.

    A background accept domain ({!Obs.Netio} listeners — Unix socket
    and/or loopback TCP) takes persistent connections; each connection
    gets a reader and a writer thread speaking the {!Batch.Protocol}
    JSONL codec: the reader parses request lines and hands them to the
    shared scheduler, the writer sends response lines back {e in
    request order}.  All connections share one {!Engine.Memo} (spilling
    to the persistent {!Engine.Cache}) and one process-wide
    {!Engine.Parallel.Pool}, so every request warms state for every
    later request on any connection — the amortization a fleet of
    clients is pointed at.

    {b Admission control and backpressure.}  At most [max_inflight]
    admitted requests exist at once, across all connections.  A request
    arriving beyond that bound is shed immediately with the explicit
    wire response [{"id": ..., "error": "overloaded"}] — the client is
    told to back off ({!Client} retries with exponential backoff) and
    the daemon never builds an unbounded queue.  Each request class
    (protocol op) may carry an {!Engine.Guard.spec} deadline/fuel
    budget applied to its solver run; classes without a spec inherit
    the process default, which keeps the golden-corpus byte-identity
    bar: with default specs, a warm daemon answer equals the cold
    [batch] answer equals the [--sequential] answer, byte for byte.

    {b Drain.}  {!stop} flips the daemon into draining: the accept
    loop exits immediately (waker, no poll interval), [healthy]
    becomes false (the /healthz surface turns 503), connection readers
    stop consuming new lines, in-flight requests finish and their
    responses are written, then connections close and [stop] returns.

    {b Hostile conditions.}  The read side is bounded in space and
    time: a request line larger than [max_request_bytes] (complete or
    still accumulating — the reader never buffers past the cap) is
    answered [{"error": "oversized: ..."}] and the connection reaped; a
    connection silent past [idle_timeout_s], or trickling one request
    line slower than [line_timeout_s] (slow-loris), is reaped with an
    explicit error line the same way.  Reaping one connection frees
    both its systhreads and disturbs nothing else.  A {e watchdog}
    thread supervises the rest: it flags in-flight requests stuck past
    their class deadline plus a grace ([wedge_grace_s]), force-closes
    lingering sockets when a drain is stuck past [drain_grace_s],
    surfaces hard accept-loop errors (EMFILE — the accept loop itself
    retries under exponential backoff, see {!Obs.Netio.accept_loop}),
    revalidates the shared memo against the cache generation stamp
    (so a sibling process's [cache clear] empties the warm tables,
    {!Engine.Memo.revalidate}) and periodically reaps temp-file litter
    from writers SIGKILLed mid-cache-write
    ({!Engine.Cache.sweep_stale_tmp}).  [start] also ignores SIGPIPE
    process-wide: a client vanishing mid-write must cost one [false]
    from [write_all], not the daemon.

    Wire responses that are not solver results:
    - [{"id": I, "error": "overloaded"}] — shed by admission control;
    - [{"id": I, "error": "internal: ..."}] — the request crashed even
      after the pool's bounded retry (fault injection lands here; the
      connection itself survives);
    - [{"error": "parse: ..."}] — the line was not a valid request;
    - [{"error": "oversized: ..."} | {"error": "idle: ..."} |
      {"error": "timeout: ..."}] — hygiene reap, connection closes
      after the line.

    Metrics: ["daemon.requests"]{op,outcome} with outcome one of
    [ok]/[overloaded]/[failed]/[parse_error]/[oversized],
    ["daemon.inflight"] and ["daemon.conn_active"] gauges,
    ["daemon.connections"] counter, ["daemon.queue_wait_s"] histogram
    (admission to execution start), ["daemon.conn_reaped"]{reason} for
    hygiene reaps, and the watchdog family:
    ["daemon.watchdog_wedged"]{op}, ["daemon.watchdog_stuck_drain"],
    ["daemon.watchdog_accept_errors"]{error},
    ["daemon.watchdog_oldest_s"] gauge.  Flight events:
    ["daemon.overloaded"] (Warn) per admission reject,
    ["daemon.conn_failed"] (Warn) on a connection torn down by an
    exception, ["daemon.conn_reaped"] (Warn) per hygiene reap,
    ["daemon.watchdog_wedged"] / ["daemon.watchdog_stuck_drain"] /
    ["daemon.accept_error"] (Warn) from the watchdog and accept loop,
    ["daemon.drained"] on shutdown.

    The ["daemon.stall"] {!Engine.Fault} point delays request
    execution 0.3s so tests can stage a wedged request without a
    pathological instance. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?unix_path:string ->
  ?max_inflight:int ->
  ?classes:(Batch.Protocol.op * Engine.Guard.spec) list ->
  ?pool:Engine.Parallel.Pool.t ->
  ?memo:Engine.Memo.t ->
  ?max_request_bytes:int ->
  ?idle_timeout_s:float option ->
  ?line_timeout_s:float option ->
  ?wedge_grace_s:float ->
  ?drain_grace_s:float ->
  ?watchdog_interval_s:float ->
  unit ->
  t
(** Bind and spawn the accept domain plus the watchdog thread.  At
    least one of [port] / [unix_path] is required ([Invalid_argument]
    otherwise); [port] may be [0] for an ephemeral port ({!port} reads
    it back).  [max_inflight] defaults to 64 (must be >= 1).
    [classes] maps request ops to per-class guard budgets; unlisted
    ops run under the process default spec.  Without [pool] requests
    compute on the connection threads (still correct, no extra
    parallelism); without [memo] nothing is shared between requests.

    Hygiene knobs: [max_request_bytes] caps one request line (default
    1 MiB); [idle_timeout_s] (default 10 min) and [line_timeout_s]
    (default 60s) reap silent and slow-loris connections — pass [None]
    to disable either.  [wedge_grace_s] (default 30s) is the slack
    past a request's class deadline before the watchdog flags it;
    [drain_grace_s] (default 30s) how long a drain may linger before
    its remaining sockets are kicked; [watchdog_interval_s] (default
    0.25s) the supervision tick.  Raises [Unix.Unix_error] if binding
    fails and [Invalid_argument] on non-positive knobs. *)

val port : t -> int option
(** The bound TCP port, if a TCP listener was requested. *)

val healthy : t -> bool
(** [true] until {!stop} begins draining — wire this to
    {!Obs.Serve.start}'s [healthz] so load balancers see the 503 while
    in-flight work finishes. *)

val draining : t -> bool

val served : t -> int
(** Requests answered with a solver result so far. *)

val stop : t -> unit
(** Graceful drain: stop accepting (immediately), let in-flight
    requests finish and their responses flush, close every connection
    and listener, unlink the Unix socket path.  Idempotent; blocks
    until the drain is complete. *)
