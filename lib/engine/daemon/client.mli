(** Blocking client for the resident solver daemon.

    One {!t} is one persistent connection speaking the
    {!Batch.Protocol} JSONL codec.  The daemon answers in request
    order per connection, so the client is a simple
    send-line/read-line pair; {!rpc} adds the backoff loop the
    daemon's admission control expects: an ["overloaded"] response is
    retried after an exponentially growing sleep rather than surfaced,
    up to [retries] attempts.

    The client is not thread-safe — use one connection per client
    domain/thread (that is also what spreads load across the daemon's
    admission slots). *)

type t

val connect : ?host:string -> ?port:int -> ?unix_path:string -> unit -> t
(** Connect over loopback TCP ([port]) or a Unix-domain socket
    ([unix_path] — preferred when both are given... exactly one is
    required, [Invalid_argument] otherwise).  Raises [Unix.Unix_error]
    if the daemon is not there. *)

val close : t -> unit
(** Close the connection.  Idempotent. *)

val send : t -> Batch.Protocol.request -> unit
(** Write one request line.  Raises [Failure] if the connection is
    gone.  Use with {!recv} for manual pipelining (N sends, then N
    recvs, responses in send order). *)

val send_line : t -> string -> unit
(** Write a raw line (tests use this for malformed input). *)

val recv : t -> string option
(** Next response line, [None] on EOF (daemon drained and closed). *)

val overloaded : string -> bool
(** Whether a response line is the daemon's admission-shed
    [{"id": ..., "error": "overloaded"}]. *)

val error_of : string -> string option
(** The [error] field of a response line, if it is an error response
    (overloaded / internal / parse). *)

val rpc :
  ?retries:int -> ?backoff_s:float -> ?deadline_s:float ->
  t -> Batch.Protocol.request ->
  (string, string) result
(** Send one request and wait for its response.  An overloaded
    response sleeps [backoff_s] (default 2ms, doubling each attempt,
    capped at 0.2s) and resends, up to [retries] (default 10) times;
    exhausting the retries returns the last overloaded line as [Ok]
    (the caller sees the shed).  [deadline_s] bounds the {e whole}
    retry loop in wall-clock seconds: once the budget is spent no
    further resend happens and the last overloaded line is returned as
    [Ok] — the backoff sleeps are clipped so the loop never overshoots
    the budget by more than one round trip.  [Error] means the
    connection died. *)
