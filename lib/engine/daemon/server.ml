(* The resident solver daemon.  See server.mli for the architecture;
   the short version:

     accept domain --- Obs.Netio.accept_loop over the listeners + waker
       `- per connection: a reader thread and a writer thread
            reader: select([conn; waker]) -> parse JSONL request
                    -> admission check -> scheduler -> slot queue
            writer: pops slots in order, awaits pool futures, writes
                    response lines

   The scheduler is deliberately small: admission is an atomic
   counter bounded by [max_inflight] (beyond it the request is shed
   with an explicit "overloaded" response), and an admitted request
   becomes a Pool.submit future running Batch.Service.answer against
   the shared memo under the request class's guard spec.  Response
   order per connection is request order because the slot queue is
   FIFO and the writer resolves slots in sequence. *)

module R = Check.Repro

let () =
  Obs.Metrics.declare
    ~help:"Daemon requests, by operation and outcome"
    Obs.Metrics.Counter "daemon.requests";
  Obs.Metrics.declare ~help:"Admitted requests currently in flight"
    Obs.Metrics.Gauge "daemon.inflight";
  Obs.Metrics.declare ~help:"Connections accepted" Obs.Metrics.Counter
    "daemon.connections";
  Obs.Metrics.declare ~help:"Connections currently open" Obs.Metrics.Gauge
    "daemon.conn_active";
  Obs.Metrics.declare ~help:"Admission to execution start" ~unit_s:true
    Obs.Metrics.Hist "daemon.queue_wait_s";
  Obs.Metrics.declare
    ~help:"Connections reaped by hygiene deadlines, by reason"
    Obs.Metrics.Counter "daemon.conn_reaped";
  Obs.Metrics.declare
    ~help:"In-flight requests flagged as wedged by the watchdog, by op"
    Obs.Metrics.Counter "daemon.watchdog_wedged";
  Obs.Metrics.declare
    ~help:"Drains the watchdog found stuck and kicked"
    Obs.Metrics.Counter "daemon.watchdog_stuck_drain";
  Obs.Metrics.declare
    ~help:"Hard accept-loop errors (EMFILE and friends), by errno"
    Obs.Metrics.Counter "daemon.watchdog_accept_errors";
  Obs.Metrics.declare ~help:"Age of the oldest in-flight request"
    ~unit_s:true Obs.Metrics.Gauge "daemon.watchdog_oldest_s"

(* ---------------------------------------------------------------- *)
(* A tiny FIFO handing slots from the reader thread to the writer
   thread of one connection.  [push None] is the end-of-stream
   sentinel. *)

module Fifo = struct
  type 'a t = { m : Mutex.t; cv : Condition.t; q : 'a Queue.t }

  let create () = { m = Mutex.create (); cv = Condition.create (); q = Queue.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.cv;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.cv t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

type slot =
  | Ready of string  (* shed / parse error / inline-computed response *)
  | Pending of string Engine.Parallel.Pool.future

(* What the watchdog knows about one admitted request: enough to decide
   "this has been in flight far longer than its budget allows" and to
   name it when it is. *)
type inflight_entry = {
  if_id : string;
  if_op : Batch.Protocol.op;
  if_since : float;
  if_budget_s : float option;  (* the class's guard deadline, if any *)
  mutable if_flagged : bool;  (* wedge already reported *)
}

type t = {
  socks : Unix.file_descr list;
  unix_path : string option;
  bound_port : int option;
  drain_flag : bool Atomic.t;
  waker : Obs.Netio.waker;
  max_inflight : int;
  inflight : int Atomic.t;
  served_n : int Atomic.t;
  classes : (Batch.Protocol.op * Engine.Guard.spec) list;
  pool : Engine.Parallel.Pool.t option;
  memo : Engine.Memo.t option;
  (* connection hygiene *)
  max_request_bytes : int;
  idle_timeout_s : float option;
  line_timeout_s : float option;
  (* watchdog supervision *)
  wedge_grace_s : float;
  drain_grace_s : float;
  watchdog_interval_s : float;
  inflight_m : Mutex.t;
  inflight_tbl : (int, inflight_entry) Hashtbl.t;
  ticket : int Atomic.t;
  watchdog_stop : bool Atomic.t;
  mutable watchdog : Thread.t option;
  conn_m : Mutex.t;
  conn_cv : Condition.t;
  conn_seq : int Atomic.t;
  mutable conns : int;
  mutable conn_fds : (int * Unix.file_descr) list;
  mutable accept_dom : unit Domain.t option;
}

let port t = t.bound_port
let draining t = Atomic.get t.drain_flag
let healthy t = not (draining t)
let served t = Atomic.get t.served_n

let op_label = function
  | Some op -> Batch.Protocol.op_name op
  | None -> "unknown"

let count_request ?op outcome =
  Obs.Metrics.inc
    ~labels:[ ("op", op_label op); ("outcome", outcome) ]
    "daemon.requests"

let error_line ?id msg =
  R.to_string
    (R.Obj
       ((match id with Some i -> [ ("id", R.Str i) ] | None -> [])
       @ [ ("error", R.Str msg) ]))

(* ------------------------- admission ----------------------------- *)

let rec try_admit t =
  let n = Atomic.get t.inflight in
  if n >= t.max_inflight then false
  else if Atomic.compare_and_set t.inflight n (n + 1) then begin
    Obs.Metrics.set "daemon.inflight" (float_of_int (n + 1));
    true
  end
  else try_admit t

let release t =
  let n = Atomic.fetch_and_add t.inflight (-1) in
  Obs.Metrics.set "daemon.inflight" (float_of_int (n - 1))

(* ---------------------- in-flight registry ----------------------- *)

(* Admitted requests sit in a registry keyed by a process-unique
   ticket from admission until completion, so the watchdog can see
   what is in flight, how old it is and what budget it ran under. *)

let register_inflight t (req : Batch.Protocol.request) =
  let budget_s =
    match List.assoc_opt req.Batch.Protocol.op t.classes with
    | Some s -> s.Engine.Guard.deadline_s
    | None -> (Engine.Guard.default_spec ()).Engine.Guard.deadline_s
  in
  let ticket = Atomic.fetch_and_add t.ticket 1 in
  Mutex.lock t.inflight_m;
  Hashtbl.replace t.inflight_tbl ticket
    { if_id = req.Batch.Protocol.id;
      if_op = req.Batch.Protocol.op;
      if_since = Unix.gettimeofday ();
      if_budget_s = budget_s;
      if_flagged = false };
  Mutex.unlock t.inflight_m;
  ticket

let unregister_inflight t ticket =
  Mutex.lock t.inflight_m;
  Hashtbl.remove t.inflight_tbl ticket;
  Mutex.unlock t.inflight_m

(* ------------------------- scheduler ----------------------------- *)

(* One admitted request: queue-wait observed when execution starts,
   the solver run crash-isolated (bounded retry — an injected worker
   fault degrades to an "internal" error response, never a wedged
   connection), the in-flight slot and registry entry released
   whatever happens.  The ["daemon.stall"] fault point delays
   execution 0.3s so tests can stage a wedged request the watchdog
   must flag. *)
let execute t (req : Batch.Protocol.request) ~admitted_at ~ticket () =
  Obs.Metrics.observe "daemon.queue_wait_s"
    (Float.max 0. (Unix.gettimeofday () -. admitted_at));
  Fun.protect
    ~finally:(fun () ->
      release t;
      unregister_inflight t ticket)
    (fun () ->
      if Engine.Fault.fires "daemon.stall" then Thread.delay 0.3;
      let spec = List.assoc_opt req.Batch.Protocol.op t.classes in
      match
        Engine.Parallel.Pool.isolate
          (fun () -> Batch.Service.answer ?memo:t.memo ?spec req)
          ()
      with
      | Ok line ->
        Atomic.incr t.served_n;
        count_request ~op:req.Batch.Protocol.op "ok";
        line
      | Error (err : Engine.Parallel.error) ->
        count_request ~op:req.Batch.Protocol.op "failed";
        Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.request_failed"
          [ ("id", req.Batch.Protocol.id);
            ("op", Batch.Protocol.op_name req.Batch.Protocol.op);
            ("error", err.Engine.Parallel.message) ];
        error_line ~id:req.Batch.Protocol.id
          ("internal: " ^ err.Engine.Parallel.message))

let schedule t line =
  match Batch.Protocol.parse_request line with
  | Error msg ->
    count_request "parse_error";
    Ready (error_line ("parse: " ^ msg))
  | Ok req ->
    if not (try_admit t) then begin
      count_request ~op:req.Batch.Protocol.op "overloaded";
      Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.overloaded"
        [ ("id", req.Batch.Protocol.id);
          ("op", Batch.Protocol.op_name req.Batch.Protocol.op);
          ("inflight", string_of_int (Atomic.get t.inflight)) ];
      Ready (error_line ~id:req.Batch.Protocol.id "overloaded")
    end
    else
      let ticket = register_inflight t req in
      let task = execute t req ~admitted_at:(Unix.gettimeofday ()) ~ticket in
      match t.pool with
      | Some p -> Pending (Engine.Parallel.Pool.submit p task)
      | None -> Ready (task ())

(* ------------------------ connection ----------------------------- *)

(* Reader: buffered line reads multiplexed against the drain waker, so
   a drain interrupts a blocked read immediately.  Lines already read
   are still scheduled; a partial trailing line is abandoned.

   Hygiene deadlines guard the read side against hostile clients: a
   request line larger than [max_request_bytes] (complete or still
   accumulating) is answered with an explicit oversized error and the
   connection reaped before the buffer can grow without bound; a
   connection idle past [idle_timeout_s], or trickling one line slower
   than [line_timeout_s] (slow-loris), is reaped the same way.  The
   select deadline is the nearest of those budgets capped at a 1s
   supervision tick, never the old infinite (-1.0) — a reaped
   connection frees both its systhreads without disturbing any other
   connection. *)
let reader_loop t fd fifo =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let waker_fd = Obs.Netio.waker_fd t.waker in
  let dead = ref false in
  let last_activity = ref (Unix.gettimeofday ()) in
  let line_started = ref None in
  let reap reason msg =
    dead := true;
    Obs.Metrics.inc ~labels:[ ("reason", reason) ] "daemon.conn_reaped";
    Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.conn_reaped"
      [ ("reason", reason) ];
    Engine.Log.info "daemon: reaping connection (%s)" reason;
    Fifo.push fifo (Some (Ready (error_line msg)))
  in
  let oversized () =
    count_request "oversized";
    reap "oversized"
      (Printf.sprintf "oversized: request line exceeds %d bytes"
         t.max_request_bytes)
  in
  let emit_lines () =
    (* schedule every complete line currently buffered *)
    let rec go () =
      if !dead then ()
      else
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | None -> ()
        | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear buf;
          Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
          if String.length line > t.max_request_bytes then oversized ()
          else begin
            if String.trim line <> "" then
              Fifo.push fifo (Some (schedule t line));
            go ()
          end
    in
    go ();
    if not !dead then
      if Buffer.length buf = 0 then line_started := None
      else begin
        if !line_started = None then line_started := Some (Unix.gettimeofday ());
        if Buffer.length buf > t.max_request_bytes then oversized ()
      end
  in
  (* the nearest hygiene deadline, capped at a 1s tick so drain and
     deadline checks never wait on a silent peer *)
  let select_timeout now =
    let until = ref 1.0 in
    (match t.idle_timeout_s with
     | Some d -> until := Float.min !until (d -. (now -. !last_activity))
     | None -> ());
    (match (t.line_timeout_s, !line_started) with
     | Some d, Some t0 -> until := Float.min !until (d -. (now -. t0))
     | _ -> ());
    Float.max 0.01 !until
  in
  let deadline_hit now =
    match (t.idle_timeout_s, t.line_timeout_s, !line_started) with
    | Some d, _, _ when now -. !last_activity >= d ->
      reap "idle"
        (Printf.sprintf "idle: no request for %.0fs — closing" d);
      true
    | _, Some d, Some t0 when now -. t0 >= d ->
      reap "line_timeout"
        (Printf.sprintf
           "timeout: request line not completed within %.0fs — closing" d);
      true
    | _ -> false
  in
  let rec loop () =
    if draining t || !dead then ()
    else
      let now = Unix.gettimeofday () in
      if deadline_hit now then ()
      else
        match Unix.select [ fd; waker_fd ] [] [] (select_timeout now) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | ready, _, _ ->
          if draining t then ()
          else if List.memq fd ready then (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              last_activity := Unix.gettimeofday ();
              emit_lines ();
              loop ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              -> loop ()
            | exception Unix.Unix_error _ -> ())
          else loop ()
  in
  loop ();
  Fifo.push fifo None

(* Writer: resolve slots in request order and send the lines.  A write
   failure (client gone, send timeout) keeps draining the queue so
   every admitted request still completes and releases its slot. *)
let writer_loop fd fifo =
  let rec loop ok =
    match Fifo.pop fifo with
    | None -> ()
    | Some slot ->
      let line =
        match slot with
        | Ready s -> s
        | Pending fut -> Engine.Parallel.Pool.await fut
      in
      let ok = ok && Obs.Netio.write_all fd (line ^ "\n") in
      loop ok
  in
  loop true

let handle_conn t cid fd =
  let finish () =
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Mutex.lock t.conn_m;
    t.conns <- t.conns - 1;
    t.conn_fds <- List.filter (fun (c, _) -> c <> cid) t.conn_fds;
    Obs.Metrics.set "daemon.conn_active" (float_of_int t.conns);
    Condition.broadcast t.conn_cv;
    Mutex.unlock t.conn_m
  in
  Fun.protect ~finally:finish (fun () ->
      (* a dead client must not wedge the writer *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let fifo = Fifo.create () in
      let writer = Thread.create (fun () -> writer_loop fd fifo) () in
      (try reader_loop t fd fifo
       with e ->
         Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.conn_failed"
           [ ("error", Printexc.to_string e) ];
         Fifo.push fifo None);
      Thread.join writer)

let on_accept t fd _peer =
  if draining t then (try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    let cid = Atomic.fetch_and_add t.conn_seq 1 in
    Mutex.lock t.conn_m;
    t.conns <- t.conns + 1;
    t.conn_fds <- (cid, fd) :: t.conn_fds;
    Obs.Metrics.set "daemon.conn_active" (float_of_int t.conns);
    Mutex.unlock t.conn_m;
    Obs.Metrics.inc "daemon.connections";
    (* the accepted fd inherited O_NONBLOCK on some systems; the
       connection threads want plain blocking reads under select *)
    (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
    ignore (Thread.create (fun () -> handle_conn t cid fd) ())
  end

let on_accept_error t e =
  Obs.Metrics.inc
    ~labels:[ ("error", Unix.error_message e) ]
    "daemon.watchdog_accept_errors";
  Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.accept_error"
    [ ("error", Unix.error_message e);
      ("conns", string_of_int t.conns) ];
  Engine.Log.warn "daemon: accept error (%s) — backing off"
    (Unix.error_message e)

(* --------------------------- watchdog ---------------------------- *)

(* The supervisor thread.  Every tick it
   - flags in-flight requests older than their class deadline plus
     [wedge_grace_s] (each once), and publishes the oldest age;
   - during a drain, force-shuts lingering connection sockets once the
     drain has been stuck past [drain_grace_s] — their readers see EOF
     and unwind, so a silent client cannot pin the drain forever;
   - keeps the shared state coherent with sibling processes: a cache
     generation bump drops the warm memo ({!Engine.Memo.revalidate})
     and dead writers' temp litter is reaped periodically. *)
let watchdog_loop t () =
  let drain_seen = ref None in
  let last_sweep = ref 0. in
  while not (Atomic.get t.watchdog_stop) do
    Thread.delay t.watchdog_interval_s;
    if not (Atomic.get t.watchdog_stop) then begin
      let now = Unix.gettimeofday () in
      (* wedged requests *)
      Mutex.lock t.inflight_m;
      let oldest = ref 0. in
      let wedged = ref [] in
      Hashtbl.iter
        (fun _ e ->
          let age = now -. e.if_since in
          if age > !oldest then oldest := age;
          let allowance =
            Option.value ~default:0. e.if_budget_s +. t.wedge_grace_s
          in
          if (not e.if_flagged) && age > allowance then begin
            e.if_flagged <- true;
            wedged := (e.if_id, e.if_op, age, allowance) :: !wedged
          end)
        t.inflight_tbl;
      Mutex.unlock t.inflight_m;
      Obs.Metrics.set "daemon.watchdog_oldest_s" !oldest;
      List.iter
        (fun (id, op, age, allowance) ->
          Obs.Metrics.inc
            ~labels:[ ("op", Batch.Protocol.op_name op) ]
            "daemon.watchdog_wedged";
          Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.watchdog_wedged"
            [ ("id", id);
              ("op", Batch.Protocol.op_name op);
              ("age_s", Printf.sprintf "%.3f" age);
              ("allowance_s", Printf.sprintf "%.3f" allowance) ];
          Engine.Log.warn
            "daemon: request %s (%s) in flight %.1fs past its %.1fs \
             allowance — wedged?"
            id (Batch.Protocol.op_name op) age allowance)
        !wedged;
      (* stuck drain *)
      if draining t then begin
        (if !drain_seen = None then drain_seen := Some now);
        match !drain_seen with
        | Some t0 when now -. t0 > t.drain_grace_s ->
          Mutex.lock t.conn_m;
          let lingering = t.conn_fds in
          Mutex.unlock t.conn_m;
          if lingering <> [] then begin
            Obs.Metrics.inc "daemon.watchdog_stuck_drain";
            Obs.Flight.record ~severity:Obs.Flight.Warn
              "daemon.watchdog_stuck_drain"
              [ ("connections", string_of_int (List.length lingering));
                ("stuck_s", Printf.sprintf "%.1f" (now -. t0)) ];
            Engine.Log.warn
              "daemon: drain stuck %.1fs with %d connection(s) — forcing \
               them closed"
              (now -. t0) (List.length lingering);
            List.iter
              (fun (_, fd) ->
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
              lingering
          end;
          drain_seen := Some now (* re-arm for stragglers *)
        | _ -> ()
      end
      else drain_seen := None;
      (* cross-process hygiene *)
      (match t.memo with
       | Some m -> ignore (Engine.Memo.revalidate m : bool)
       | None -> ());
      if now -. !last_sweep >= 30. then begin
        last_sweep := now;
        ignore (Engine.Cache.sweep_stale_tmp () : int)
      end
    end
  done

(* --------------------------- lifecycle --------------------------- *)

let start ?(host = "127.0.0.1") ?port ?unix_path ?(max_inflight = 64)
    ?(classes = []) ?pool ?memo ?(max_request_bytes = 1024 * 1024)
    ?(idle_timeout_s = Some 600.) ?(line_timeout_s = Some 60.)
    ?(wedge_grace_s = 30.) ?(drain_grace_s = 30.)
    ?(watchdog_interval_s = 0.25) () =
  if port = None && unix_path = None then
    invalid_arg "Daemon.Server.start: need ~port and/or ~unix_path";
  if max_inflight < 1 then
    invalid_arg "Daemon.Server.start: max_inflight < 1";
  if max_request_bytes < 1 then
    invalid_arg "Daemon.Server.start: max_request_bytes < 1";
  let positive name v =
    if v <= 0. then
      invalid_arg (Printf.sprintf "Daemon.Server.start: %s <= 0" name)
  in
  Option.iter (positive "idle_timeout_s") idle_timeout_s;
  Option.iter (positive "line_timeout_s") line_timeout_s;
  positive "watchdog_interval_s" watchdog_interval_s;
  (* a client vanishing mid-write raises EPIPE in write_all; the
     default SIGPIPE disposition would kill the whole daemon first *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let tcp = Option.map (Obs.Netio.tcp_listener ~host) port in
  let uds =
    try Option.map Obs.Netio.unix_listener unix_path
    with e ->
      Option.iter (fun (s, _) -> try Unix.close s with _ -> ()) tcp;
      raise e
  in
  let socks =
    (match tcp with Some (s, _) -> [ s ] | None -> [])
    @ (match uds with Some s -> [ s ] | None -> [])
  in
  let t =
    { socks;
      unix_path = (match uds with Some _ -> unix_path | None -> None);
      bound_port = Option.map snd tcp;
      drain_flag = Atomic.make false;
      waker = Obs.Netio.waker ();
      max_inflight;
      inflight = Atomic.make 0;
      served_n = Atomic.make 0;
      classes;
      pool;
      memo;
      max_request_bytes;
      idle_timeout_s;
      line_timeout_s;
      wedge_grace_s;
      drain_grace_s;
      watchdog_interval_s;
      inflight_m = Mutex.create ();
      inflight_tbl = Hashtbl.create 64;
      ticket = Atomic.make 0;
      watchdog_stop = Atomic.make false;
      watchdog = None;
      conn_m = Mutex.create ();
      conn_cv = Condition.create ();
      conn_seq = Atomic.make 0;
      conns = 0;
      conn_fds = [];
      accept_dom = None }
  in
  t.accept_dom <-
    Some
      (Domain.spawn
         (Obs.Netio.accept_loop ~listeners:socks ~waker:t.waker
            ~on_error:(on_accept_error t)
            ~stop:(fun () -> draining t)
            ~on_accept:(on_accept t)));
  t.watchdog <- Some (Thread.create (watchdog_loop t) ());
  Engine.Log.info "daemon: listening%s%s"
    (match t.bound_port with
     | Some p -> Printf.sprintf " on 127.0.0.1:%d" p
     | None -> "")
    (match t.unix_path with
     | Some p -> Printf.sprintf " on unix:%s" p
     | None -> "");
  t

let stop t =
  if not (Atomic.exchange t.drain_flag true) then begin
    (* 1. stop accepting — the waker interrupts the blocked select *)
    Obs.Netio.wake t.waker;
    Option.iter Domain.join t.accept_dom;
    t.accept_dom <- None;
    (* 2. finish in-flight: the same waker has every connection reader
       stop consuming; writers flush what was admitted, then each
       connection closes and signals.  The watchdog stays up through
       this wait — a drain stuck past its grace gets its lingering
       sockets kicked. *)
    Mutex.lock t.conn_m;
    while t.conns > 0 do
      Condition.wait t.conn_cv t.conn_m
    done;
    Mutex.unlock t.conn_m;
    (* 3. the drain is complete; retire the watchdog *)
    Atomic.set t.watchdog_stop true;
    Option.iter Thread.join t.watchdog;
    t.watchdog <- None;
    Obs.Netio.close_waker t.waker;
    List.iter
      (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
      t.socks;
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      t.unix_path;
    Option.iter Engine.Memo.observe_occupancy t.memo;
    Obs.Flight.record "daemon.drained"
      [ ("served", string_of_int (served t)) ];
    Engine.Log.info "daemon: drained, %d request(s) served" (served t)
  end
