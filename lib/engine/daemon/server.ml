(* The resident solver daemon.  See server.mli for the architecture;
   the short version:

     accept domain --- Obs.Netio.accept_loop over the listeners + waker
       `- per connection: a reader thread and a writer thread
            reader: select([conn; waker]) -> parse JSONL request
                    -> admission check -> scheduler -> slot queue
            writer: pops slots in order, awaits pool futures, writes
                    response lines

   The scheduler is deliberately small: admission is an atomic
   counter bounded by [max_inflight] (beyond it the request is shed
   with an explicit "overloaded" response), and an admitted request
   becomes a Pool.submit future running Batch.Service.answer against
   the shared memo under the request class's guard spec.  Response
   order per connection is request order because the slot queue is
   FIFO and the writer resolves slots in sequence. *)

module R = Check.Repro

let () =
  Obs.Metrics.declare
    ~help:"Daemon requests, by operation and outcome"
    Obs.Metrics.Counter "daemon.requests";
  Obs.Metrics.declare ~help:"Admitted requests currently in flight"
    Obs.Metrics.Gauge "daemon.inflight";
  Obs.Metrics.declare ~help:"Connections accepted" Obs.Metrics.Counter
    "daemon.connections";
  Obs.Metrics.declare ~help:"Connections currently open" Obs.Metrics.Gauge
    "daemon.conn_active";
  Obs.Metrics.declare ~help:"Admission to execution start" ~unit_s:true
    Obs.Metrics.Hist "daemon.queue_wait_s"

(* ---------------------------------------------------------------- *)
(* A tiny FIFO handing slots from the reader thread to the writer
   thread of one connection.  [push None] is the end-of-stream
   sentinel. *)

module Fifo = struct
  type 'a t = { m : Mutex.t; cv : Condition.t; q : 'a Queue.t }

  let create () = { m = Mutex.create (); cv = Condition.create (); q = Queue.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.cv;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.cv t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

type slot =
  | Ready of string  (* shed / parse error / inline-computed response *)
  | Pending of string Engine.Parallel.Pool.future

type t = {
  socks : Unix.file_descr list;
  unix_path : string option;
  bound_port : int option;
  drain_flag : bool Atomic.t;
  waker : Obs.Netio.waker;
  max_inflight : int;
  inflight : int Atomic.t;
  served_n : int Atomic.t;
  classes : (Batch.Protocol.op * Engine.Guard.spec) list;
  pool : Engine.Parallel.Pool.t option;
  memo : Engine.Memo.t option;
  conn_m : Mutex.t;
  conn_cv : Condition.t;
  mutable conns : int;
  mutable accept_dom : unit Domain.t option;
}

let port t = t.bound_port
let draining t = Atomic.get t.drain_flag
let healthy t = not (draining t)
let served t = Atomic.get t.served_n

let op_label = function
  | Some op -> Batch.Protocol.op_name op
  | None -> "unknown"

let count_request ?op outcome =
  Obs.Metrics.inc
    ~labels:[ ("op", op_label op); ("outcome", outcome) ]
    "daemon.requests"

let error_line ?id msg =
  R.to_string
    (R.Obj
       ((match id with Some i -> [ ("id", R.Str i) ] | None -> [])
       @ [ ("error", R.Str msg) ]))

(* ------------------------- admission ----------------------------- *)

let rec try_admit t =
  let n = Atomic.get t.inflight in
  if n >= t.max_inflight then false
  else if Atomic.compare_and_set t.inflight n (n + 1) then begin
    Obs.Metrics.set "daemon.inflight" (float_of_int (n + 1));
    true
  end
  else try_admit t

let release t =
  let n = Atomic.fetch_and_add t.inflight (-1) in
  Obs.Metrics.set "daemon.inflight" (float_of_int (n - 1))

(* ------------------------- scheduler ----------------------------- *)

(* One admitted request: queue-wait observed when execution starts,
   the solver run crash-isolated (bounded retry — an injected worker
   fault degrades to an "internal" error response, never a wedged
   connection), the in-flight slot released whatever happens. *)
let execute t (req : Batch.Protocol.request) ~admitted_at () =
  Obs.Metrics.observe "daemon.queue_wait_s"
    (Float.max 0. (Unix.gettimeofday () -. admitted_at));
  Fun.protect
    ~finally:(fun () -> release t)
    (fun () ->
      let spec = List.assoc_opt req.Batch.Protocol.op t.classes in
      match
        Engine.Parallel.Pool.isolate
          (fun () -> Batch.Service.answer ?memo:t.memo ?spec req)
          ()
      with
      | Ok line ->
        Atomic.incr t.served_n;
        count_request ~op:req.Batch.Protocol.op "ok";
        line
      | Error (err : Engine.Parallel.error) ->
        count_request ~op:req.Batch.Protocol.op "failed";
        Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.request_failed"
          [ ("id", req.Batch.Protocol.id);
            ("op", Batch.Protocol.op_name req.Batch.Protocol.op);
            ("error", err.Engine.Parallel.message) ];
        error_line ~id:req.Batch.Protocol.id
          ("internal: " ^ err.Engine.Parallel.message))

let schedule t line =
  match Batch.Protocol.parse_request line with
  | Error msg ->
    count_request "parse_error";
    Ready (error_line ("parse: " ^ msg))
  | Ok req ->
    if not (try_admit t) then begin
      count_request ~op:req.Batch.Protocol.op "overloaded";
      Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.overloaded"
        [ ("id", req.Batch.Protocol.id);
          ("op", Batch.Protocol.op_name req.Batch.Protocol.op);
          ("inflight", string_of_int (Atomic.get t.inflight)) ];
      Ready (error_line ~id:req.Batch.Protocol.id "overloaded")
    end
    else
      let task = execute t req ~admitted_at:(Unix.gettimeofday ()) in
      match t.pool with
      | Some p -> Pending (Engine.Parallel.Pool.submit p task)
      | None -> Ready (task ())

(* ------------------------ connection ----------------------------- *)

(* Reader: buffered line reads multiplexed against the drain waker, so
   a drain interrupts a blocked read immediately.  Lines already read
   are still scheduled; a partial trailing line is abandoned. *)
let reader_loop t fd fifo =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let waker_fd = Obs.Netio.waker_fd t.waker in
  let emit_lines () =
    (* schedule every complete line currently buffered *)
    let rec go () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        if String.trim line <> "" then Fifo.push fifo (Some (schedule t line));
        go ()
    in
    go ()
  in
  let rec loop () =
    if draining t then ()
    else
      match Unix.select [ fd; waker_fd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        if draining t then ()
        else if List.memq fd ready then (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            emit_lines ();
            loop ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> loop ()
          | exception Unix.Unix_error _ -> ())
        else loop ()
  in
  loop ();
  Fifo.push fifo None

(* Writer: resolve slots in request order and send the lines.  A write
   failure (client gone, send timeout) keeps draining the queue so
   every admitted request still completes and releases its slot. *)
let writer_loop fd fifo =
  let rec loop ok =
    match Fifo.pop fifo with
    | None -> ()
    | Some slot ->
      let line =
        match slot with
        | Ready s -> s
        | Pending fut -> Engine.Parallel.Pool.await fut
      in
      let ok = ok && Obs.Netio.write_all fd (line ^ "\n") in
      loop ok
  in
  loop true

let handle_conn t fd =
  let finish () =
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Mutex.lock t.conn_m;
    t.conns <- t.conns - 1;
    Obs.Metrics.set "daemon.conn_active" (float_of_int t.conns);
    Condition.broadcast t.conn_cv;
    Mutex.unlock t.conn_m
  in
  Fun.protect ~finally:finish (fun () ->
      (* a dead client must not wedge the writer *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let fifo = Fifo.create () in
      let writer = Thread.create (fun () -> writer_loop fd fifo) () in
      (try reader_loop t fd fifo
       with e ->
         Obs.Flight.record ~severity:Obs.Flight.Warn "daemon.conn_failed"
           [ ("error", Printexc.to_string e) ];
         Fifo.push fifo None);
      Thread.join writer)

let on_accept t fd _peer =
  if draining t then (try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    Mutex.lock t.conn_m;
    t.conns <- t.conns + 1;
    Obs.Metrics.set "daemon.conn_active" (float_of_int t.conns);
    Mutex.unlock t.conn_m;
    Obs.Metrics.inc "daemon.connections";
    (* the accepted fd inherited O_NONBLOCK on some systems; the
       connection threads want plain blocking reads under select *)
    (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
    ignore (Thread.create (fun () -> handle_conn t fd) ())
  end

(* --------------------------- lifecycle --------------------------- *)

let start ?(host = "127.0.0.1") ?port ?unix_path ?(max_inflight = 64)
    ?(classes = []) ?pool ?memo () =
  if port = None && unix_path = None then
    invalid_arg "Daemon.Server.start: need ~port and/or ~unix_path";
  if max_inflight < 1 then
    invalid_arg "Daemon.Server.start: max_inflight < 1";
  let tcp = Option.map (Obs.Netio.tcp_listener ~host) port in
  let uds =
    try Option.map Obs.Netio.unix_listener unix_path
    with e ->
      Option.iter (fun (s, _) -> try Unix.close s with _ -> ()) tcp;
      raise e
  in
  let socks =
    (match tcp with Some (s, _) -> [ s ] | None -> [])
    @ (match uds with Some s -> [ s ] | None -> [])
  in
  let t =
    { socks;
      unix_path = (match uds with Some _ -> unix_path | None -> None);
      bound_port = Option.map snd tcp;
      drain_flag = Atomic.make false;
      waker = Obs.Netio.waker ();
      max_inflight;
      inflight = Atomic.make 0;
      served_n = Atomic.make 0;
      classes;
      pool;
      memo;
      conn_m = Mutex.create ();
      conn_cv = Condition.create ();
      conns = 0;
      accept_dom = None }
  in
  t.accept_dom <-
    Some
      (Domain.spawn
         (Obs.Netio.accept_loop ~listeners:socks ~waker:t.waker
            ~stop:(fun () -> draining t)
            ~on_accept:(on_accept t)));
  Engine.Log.info "daemon: listening%s%s"
    (match t.bound_port with
     | Some p -> Printf.sprintf " on 127.0.0.1:%d" p
     | None -> "")
    (match t.unix_path with
     | Some p -> Printf.sprintf " on unix:%s" p
     | None -> "");
  t

let stop t =
  if not (Atomic.exchange t.drain_flag true) then begin
    (* 1. stop accepting — the waker interrupts the blocked select *)
    Obs.Netio.wake t.waker;
    Option.iter Domain.join t.accept_dom;
    t.accept_dom <- None;
    (* 2. finish in-flight: the same waker has every connection reader
       stop consuming; writers flush what was admitted, then each
       connection closes and signals *)
    Mutex.lock t.conn_m;
    while t.conns > 0 do
      Condition.wait t.conn_cv t.conn_m
    done;
    Mutex.unlock t.conn_m;
    Obs.Netio.close_waker t.waker;
    List.iter
      (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
      t.socks;
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      t.unix_path;
    Option.iter Engine.Memo.observe_occupancy t.memo;
    Obs.Flight.record "daemon.drained"
      [ ("served", string_of_int (served t)) ];
    Engine.Log.info "daemon: drained, %d request(s) served" (served t)
  end
