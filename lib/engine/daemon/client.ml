(* Blocking JSONL client for the daemon.  See client.mli. *)

module R = Check.Repro

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last returned line *)
  mutable open_ : bool;
}

let connect ?host ?port ?unix_path () =
  let addr =
    match (unix_path, port) with
    | Some p, _ -> Unix.ADDR_UNIX p
    | None, Some port ->
      let host = Option.value host ~default:"127.0.0.1" in
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    | None, None ->
      invalid_arg "Daemon.Client.connect: need ~port or ~unix_path"
  in
  let dom = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = Buffer.create 4096; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_line t line =
  if not t.open_ then failwith "Daemon.Client: connection closed";
  if not (Obs.Netio.write_all t.fd (line ^ "\n")) then begin
    close t;
    failwith "Daemon.Client: connection lost on send"
  end

let send t req = send_line t (Batch.Protocol.request_line req)

let recv t =
  if not t.open_ then None
  else
    let chunk = Bytes.create 4096 in
    let rec go () =
      let s = Buffer.contents t.buf in
      match String.index_opt s '\n' with
      | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear t.buf;
        Buffer.add_string t.buf (String.sub s (i + 1) (String.length s - i - 1));
        Some line
      | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes t.buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> None)
    in
    go ()

let error_of line =
  match R.parse line with
  | R.Obj fields -> (
    match List.assoc_opt "error" fields with
    | Some (R.Str e) -> Some e
    | _ -> None)
  | _ | (exception R.Parse_error _) -> None

let overloaded line = error_of line = Some "overloaded"

let rpc ?(retries = 10) ?(backoff_s = 0.002) ?deadline_s t req =
  (* [deadline_s] is a wall-clock budget over the whole retry loop, not
     per attempt: a client under a scheduler deadline must not let the
     overload backoff alone eat it. *)
  let give_up_at =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s
  in
  let expired () =
    match give_up_at with
    | None -> false
    | Some at -> Unix.gettimeofday () >= at
  in
  let rec go attempt backoff =
    send t req;
    match recv t with
    | None -> Error "connection closed by daemon"
    | Some line ->
      if overloaded line && attempt < retries && not (expired ()) then begin
        let sleep =
          match give_up_at with
          | None -> backoff
          | Some at -> Float.min backoff (Float.max 0. (at -. Unix.gettimeofday ()))
        in
        Unix.sleepf sleep;
        if expired () then Ok line
        else go (attempt + 1) (Float.min 0.2 (backoff *. 2.))
      end
      else Ok line
  in
  try go 0 backoff_s with Failure msg -> Error msg
