exception Injected of string

(* All state sits behind one mutex: workers of [Parallel] draw from the
   same stream, so fires are serialised.  [enabled] is additionally
   mirrored in a plain ref read without the lock — the common case
   (injection off) must cost one load on hot paths like [Guard.tick]. *)

type point_spec = {
  prob : float;  (** chance a visit to the point fires, in [0, 1] *)
  cap : int option;  (** stop firing after this many fires ([None] = forever) *)
}

type spec = { seed : int; points : (string * point_spec) list }

let none = { seed = 0; points = [] }

type point_state = { spec_ : point_spec; mutable fired : int }

let () =
  Obs.Metrics.declare ~help:"Injected faults fired, by injection point"
    Obs.Metrics.Counter "fault.injected"

let lock = Mutex.create ()
let enabled = ref false
let table : (string, point_state) Hashtbl.t = Hashtbl.create 8
let rng = ref 0L

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* splitmix64, inlined so the engine keeps zero library dependencies *)
let next_float () =
  rng := Int64.add !rng 0x9E3779B97F4A7C15L;
  let z = !rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. (1. /. 9007199254740992.)

let configure spec =
  protect (fun () ->
      Hashtbl.reset table;
      rng := Int64.of_int spec.seed;
      List.iter
        (fun (point, ps) ->
          Hashtbl.replace table point { spec_ = ps; fired = 0 })
        spec.points;
      enabled := spec.points <> [])

let disable () = configure none

let active () = !enabled

let fired point =
  protect (fun () ->
      match Hashtbl.find_opt table point with
      | Some st -> st.fired
      | None -> 0)

let fires point =
  !enabled
  && protect (fun () ->
         match Hashtbl.find_opt table point with
         | None -> false
         | Some st ->
           let capped =
             match st.spec_.cap with Some c -> st.fired >= c | None -> false
           in
           if capped || next_float () >= st.spec_.prob then false
           else begin
             st.fired <- st.fired + 1;
             true
           end)
  && begin
       (* One labeled family replaces the old per-point dynamic
          counter names; the aggregate [Telemetry.counter
          "fault.injected"] read is the sum across points. *)
       Obs.Metrics.inc ~labels:[ ("point", point) ] "fault.injected";
       Obs.Flight.record ~severity:Obs.Flight.Warn "fault.injected"
         [ ("point", point) ];
       Log.debug "fault: injecting failure at %s" point;
       true
     end

let inject point = if fires point then raise (Injected point)

(* Spec grammar (see DESIGN.md "Resilience"):
     spec   ::= clause ("," clause)*
     clause ::= "seed=" INT | POINT "=" RATE
     RATE   ::= FLOAT [ "x" INT ]          -- probability, optional fire cap
   e.g. "seed=7,cache.write=0.1,parallel.worker=1x2". *)
let parse s =
  let ( let* ) = Result.bind in
  let clause acc part =
    let* acc = acc in
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "fault spec: clause %S is not key=value" part)
    | Some i ->
      let key = String.trim (String.sub part 0 i) in
      let value =
        String.trim (String.sub part (i + 1) (String.length part - i - 1))
      in
      if key = "seed" then
        match int_of_string_opt value with
        | Some seed -> Ok { acc with seed }
        | None -> Error (Printf.sprintf "fault spec: bad seed %S" value)
      else begin
        let rate, cap =
          match String.index_opt value 'x' with
          | None -> (value, Ok None)
          | Some j ->
            let n = String.sub value (j + 1) (String.length value - j - 1) in
            ( String.sub value 0 j,
              match int_of_string_opt n with
              | Some c when c >= 0 -> Ok (Some c)
              | Some _ | None ->
                Error (Printf.sprintf "fault spec: bad fire cap %S" n) )
        in
        let* cap = cap in
        match float_of_string_opt rate with
        | Some p when p >= 0. && p <= 1. ->
          Ok { acc with points = acc.points @ [ (key, { prob = p; cap }) ] }
        | Some _ | None ->
          Error
            (Printf.sprintf "fault spec: rate %S is not a probability in [0,1]"
               rate)
      end
  in
  String.split_on_char ',' s
  |> List.filter (fun p -> String.trim p <> "")
  |> List.fold_left clause (Ok none)

(* The environment hook lets CI enable a standard spec for an entire
   test run (`make faults`) without threading a flag through dune. *)
let () =
  match Sys.getenv_opt "ISECUSTOM_FAULT_SPEC" with
  | None | Some "" -> ()
  | Some s ->
    (match parse s with
     | Ok spec -> configure spec
     | Error msg ->
       Log.warn "ISECUSTOM_FAULT_SPEC ignored: %s" msg)
