(** Iterative Selection (IS) — the state-of-the-art baseline of thesis
    §5.3.3 (Pozzi–Atasu–Ienne's iterative algorithm).

    Per iteration, find the single best custom instruction in the
    not-yet-covered part of the DFG (optimal single-cut identification),
    emit it, remove its nodes, and repeat.  Produces near-optimal
    instruction sets but each iteration pays for a full enumeration,
    which is what makes it orders of magnitude slower than MLGP on large
    basic blocks — the comparison Figures 5.5/5.6 report. *)

val run :
  ?constraints:Isa.Hw_model.constraints ->
  ?budget:Ise.Enumerate.budget ->
  ?generator:Ise.Isegen.choice ->
  ?isegen:Ise.Isegen.params ->
  ?max_instructions:int ->
  ?on_step:(Isa.Custom_inst.t -> unit) ->
  Ir.Dfg.t ->
  Isa.Custom_inst.t list
(** Custom instructions in emission order (each iteration's winner).
    [on_step] is invoked as each instruction is produced, letting the
    benchmark harness timestamp the progress curve. *)
