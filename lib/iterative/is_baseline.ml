module Bitset = Util.Bitset

let run ?constraints ?budget ?(generator = Ise.Isegen.Exhaustive)
    ?(isegen = Ise.Isegen.default_params) ?(max_instructions = 64)
    ?(on_step = fun _ -> ()) dfg =
  let n = Ir.Dfg.node_count dfg in
  let available =
    Bitset.of_list n (List.filter (Ir.Dfg.valid_node dfg) (Ir.Dfg.nodes dfg))
  in
  let best_cut () =
    match generator with
    | Ise.Isegen.Exhaustive ->
      Ise.Enumerate.best_single_cut ?constraints ?budget ~allowed:available dfg
    | Ise.Isegen.Isegen ->
      Ise.Isegen.best_cut ?constraints ~params:isegen ~allowed:available dfg
    | Ise.Isegen.Auto ->
      (* single-cut search over the remaining region: exhaustive while
         it stays exact, iterative once a cap saturates *)
      let cands, saturation =
        Ise.Enumerate.connected_full ?constraints ?budget ~allowed:available
          dfg
      in
      let pool =
        match saturation with
        | None -> cands
        | Some _ ->
          Engine.Telemetry.incr "isegen.auto_switches";
          Ise.Isegen.generate ?constraints ~params:isegen ~allowed:available
            dfg
      in
      List.fold_left
        (fun best ci ->
          match best with
          | Some b when Isa.Custom_inst.gain b >= Isa.Custom_inst.gain ci ->
            best
          | _ -> Some ci)
        None pool
  in
  let rec iterate acc remaining =
    if remaining = 0 then List.rev acc
    else
      match best_cut () with
      | None -> List.rev acc
      | Some ci ->
        if Isa.Custom_inst.gain ci <= 0 then List.rev acc
        else begin
          Bitset.diff_into available ci.Isa.Custom_inst.nodes;
          on_step ci;
          iterate (ci :: acc) (remaining - 1)
        end
  in
  iterate [] max_instructions
