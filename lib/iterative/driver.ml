module Bitset = Util.Bitset

type task_input = { name : string; cfg : Ir.Cfg.t; period : int }

type iteration = { index : int; task : string; utilization : float; area : int }

type result = {
  utilization : float;
  schedulable : bool;
  iterations : iteration list;
  total_area : int;
  instruction_count : int;
}

type block_state = {
  regions : Ir.Region.t array;  (** heaviest first *)
  explored : bool array;
  mutable available : Bitset.t;
  mutable gain : int;  (** accepted cycles saved per block execution *)
}

type task_state = {
  input : task_input;
  blocks : (Ir.Cfg.block * block_state) list;
  mutable wcet : int;
  mutable active : bool;
}

let tasks_of_kernels ~u kernels =
  let n = List.length kernels in
  let share = u /. float_of_int n in
  List.map
    (fun (name, cfg) ->
      let wcet = Ir.Cfg.wcet cfg in
      let period = max 1 (int_of_float (Float.round (float_of_int wcet /. share))) in
      { name; cfg; period })
    kernels

let init_task input =
  let blocks =
    List.map
      (fun (b : Ir.Cfg.block) ->
        let regions = Array.of_list (Ir.Region.of_dfg b.body) in
        let n = Ir.Dfg.node_count b.body in
        let available = Bitset.create n in
        Array.iter
          (fun r -> Bitset.union_into available r.Ir.Region.members)
          regions;
        (b, { regions; explored = Array.map (fun _ -> false) regions; available;
              gain = 0 }))
      (Ir.Cfg.blocks input.cfg)
  in
  { input; blocks; wcet = Ir.Cfg.wcet input.cfg; active = true }

let state_of ts b = List.assq b ts.blocks

let cost_fn ts b =
  let st = state_of ts b in
  max 0 (Ir.Cfg.block_cycles b - st.gain)

let utilization_of tasks =
  Util.Numeric.sum_byf
    (fun ts -> float_of_int ts.wcet /. float_of_int ts.input.period)
    tasks

(* Disjoint cover of [allowed] by ISEGEN candidates: greedy by gain over
   the deterministic pool, skipping overlaps — the iterative-generator
   counterpart of one MLGP partition. *)
let isegen_partition_region ?seed ~isegen dfg ~allowed =
  let params =
    match seed with
    | None -> isegen
    | Some seed -> { isegen with Ise.Isegen.seed }
  in
  let pool = Ise.Isegen.generate ~params ~allowed dfg in
  let taken = Bitset.create (Ir.Dfg.node_count dfg) in
  List.filter
    (fun ci ->
      if Bitset.intersects taken ci.Isa.Custom_inst.nodes then false
      else begin
        Bitset.union_into taken ci.Isa.Custom_inst.nodes;
        true
      end)
    pool

(* Generate custom instructions for the heaviest unexplored regions of
   the block subsequence S until the WCET reduction reaches delta.
   Returns (cycles gained, area added, instructions added). *)
let generate_for_task ?seed ?(generator = Ise.Isegen.Exhaustive)
    ?(isegen = Ise.Isegen.default_params) ts s_blocks delta =
  let gained = ref 0 and area = ref 0 and count = ref 0 in
  (try
     List.iter
       (fun ((b : Ir.Cfg.block), freq) ->
         let st = state_of ts b in
         Array.iteri
           (fun ri region ->
             if !gained < delta && not (st.explored.(ri)) then begin
               st.explored.(ri) <- true;
               let allowed = Bitset.copy region.Ir.Region.members in
               Bitset.inter_into allowed st.available;
               if not (Bitset.is_empty allowed) then begin
                 let cis =
                   match generator with
                   | Ise.Isegen.Exhaustive ->
                     (* legacy flow: MLGP partitions the region *)
                     Mlgp.partition_region ?seed b.body ~allowed
                   | Ise.Isegen.Isegen | Ise.Isegen.Auto ->
                     isegen_partition_region ?seed ~isegen b.body ~allowed
                 in
                 List.iter
                   (fun ci ->
                     let g = Isa.Custom_inst.gain ci in
                     st.gain <- st.gain + g;
                     Bitset.diff_into st.available ci.Isa.Custom_inst.nodes;
                     gained := !gained + (g * freq);
                     area := !area + ci.Isa.Custom_inst.area;
                     incr count)
                   cis
               end
             end)
           st.regions;
         if !gained >= delta then raise Exit)
       s_blocks
   with Exit -> ());
  (!gained, !area, !count)

let run ?(target = 1.0) ?(coverage = 0.9) ?(max_iterations = 200) ?seed
    ?generator ?isegen inputs =
  let tasks = List.map init_task inputs in
  let iterations = ref [] in
  let total_area = ref 0 and instruction_count = ref 0 in
  let index = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let u = utilization_of tasks in
    if u <= target || !index >= max_iterations then continue_ := false
    else begin
      match
        List.filter (fun ts -> ts.active) tasks
        |> List.sort (fun a b ->
               compare
                 (float_of_int b.wcet /. float_of_int b.input.period)
                 (float_of_int a.wcet /. float_of_int a.input.period))
      with
      | [] -> continue_ := false
      | ts :: _ ->
        incr index;
        let delta =
          max 1
            (int_of_float
               (ceil ((u -. target) *. float_of_int ts.input.period)))
        in
        (* The heaviest blocks on the current worst-case path, covering
           [coverage] of the WCET. *)
        let freqs = Ir.Cfg.wcet_frequencies_with ts.input.cfg ~cost:(cost_fn ts) in
        let weighted =
          List.map (fun (b, f) -> ((b, f), f * cost_fn ts b)) freqs
          |> List.sort (fun (_, w1) (_, w2) -> compare w2 w1)
        in
        let threshold = coverage *. float_of_int ts.wcet in
        let rec take acc sum = function
          | [] -> List.rev acc
          | ((bf, w) : (Ir.Cfg.block * int) * int) :: rest ->
            if float_of_int sum >= threshold then List.rev acc
            else take (bf :: acc) (sum + w) rest
        in
        let s_blocks = take [] 0 weighted in
        let gained, area, count =
          generate_for_task ?seed ?generator ?isegen ts s_blocks delta
        in
        if gained = 0 then ts.active <- false
        else begin
          ts.wcet <- Ir.Cfg.wcet_with ts.input.cfg ~cost:(cost_fn ts);
          total_area := !total_area + area;
          instruction_count := !instruction_count + count
        end;
        iterations :=
          { index = !index; task = ts.input.name;
            utilization = utilization_of tasks; area = !total_area }
          :: !iterations
    end
  done;
  let utilization = utilization_of tasks in
  { utilization;
    schedulable = utilization <= target;
    iterations = List.rev !iterations;
    total_area = !total_area;
    instruction_count = !instruction_count }
