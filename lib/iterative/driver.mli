(** The iterative top-down customization scheme — Algorithm 4 of the
    thesis (Chapter 5).

    Instead of generating custom instructions for every task up front
    (the bottom-up flow of Chapters 3–4), the scheme zooms into the
    bottleneck: each iteration picks the task with the highest
    utilization, walks the heaviest unexplored regions of the basic
    blocks on its worst-case path, and generates custom instructions for
    them with MLGP until the required WCET reduction Δ is reached.  A
    task that yields no further gain is dropped from consideration.  The
    loop stops when the target utilization is met or every task is
    exhausted. *)

type task_input = { name : string; cfg : Ir.Cfg.t; period : int }

type iteration = {
  index : int;
  task : string;  (** task customized in this iteration *)
  utilization : float;  (** total utilization after the iteration *)
  area : int;  (** cumulative area of accepted custom instructions *)
}

type result = {
  utilization : float;
  schedulable : bool;  (** final utilization ≤ target *)
  iterations : iteration list;  (** most recent last *)
  total_area : int;
  instruction_count : int;
}

val tasks_of_kernels :
  u:float -> (string * Ir.Cfg.t) list -> task_input list
(** Periods chosen for equal utilization shares summing to [u] (the
    experiment setup of §5.3.2). *)

val run :
  ?target:float ->
  ?coverage:float ->
  ?max_iterations:int ->
  ?seed:int ->
  ?generator:Ise.Isegen.choice ->
  ?isegen:Ise.Isegen.params ->
  task_input list ->
  result
(** [target] defaults to 1.0 (EDF schedulability); [coverage] (default
    0.9) is the share of the WCET that the selected basic-block
    subsequence S must account for.  [generator] picks how each region
    is covered: [Exhaustive] (default) keeps the thesis's MLGP
    partitioning, while [Isegen]/[Auto] cover the region with a
    disjoint greedy selection from the ISEGEN candidate pool ([seed]
    overrides the ISEGEN restart seed). *)
