(* Pool tests: the persistent work-stealing pool's API contract —
   order preservation against the sequential reference, futures
   (including exceptions and repeated await), nested submission from
   inside work items, shutdown idempotence, crash isolation under
   stealing (Engine.Fault), telemetry accounting, and batch-service
   byte-identity through the pool. *)

module Pool = Engine.Parallel.Pool

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_fault_spec spec_string f =
  (match Engine.Fault.parse spec_string with
   | Ok spec -> Engine.Fault.configure spec
   | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec_string msg);
  Fun.protect ~finally:Engine.Fault.disable f

(* ------------------------- order preservation ------------------------ *)

let test_map_order_preserved () =
  let xs = List.init 257 Fun.id in
  let f x = (x * 31) + 7 in
  let want = List.map f xs in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          Pool.with_pool ~jobs @@ fun pool ->
          check (Alcotest.list int)
            (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
            want
            (Pool.map ~chunk pool f xs))
        [ 1; 3; 64; 1000 ])
    [ 1; 2; 4 ]

let test_map_result_order_preserved () =
  let xs = List.init 100 Fun.id in
  let f x = x * x in
  let want = List.map (fun x -> Ok (f x)) xs in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun chunk ->
      check bool
        (Printf.sprintf "chunk=%d matches sequential" chunk)
        true
        (Pool.map_result ~chunk pool f xs = want))
    [ 1; 7; 50 ]

let test_map_many_ops_one_pool () =
  (* the point of persistence: many parallel calls against one handle *)
  Pool.with_pool ~jobs:3 @@ fun pool ->
  for round = 1 to 25 do
    let xs = List.init (10 * round) (fun i -> i + round) in
    let f x = x * round in
    check (Alcotest.list int)
      (Printf.sprintf "round %d" round)
      (List.map f xs) (Pool.map pool f xs)
  done

let test_bad_arguments_rejected () =
  (try
     ignore (Pool.create ~jobs:0 ());
     Alcotest.fail "jobs=0 accepted"
   with Invalid_argument _ -> ());
  Pool.with_pool ~jobs:2 @@ fun pool ->
  (try
     ignore (Pool.map ~chunk:0 pool Fun.id [ 1 ]);
     Alcotest.fail "chunk=0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Pool.map_result ~attempts:0 pool Fun.id [ 1 ]);
    Alcotest.fail "attempts=0 accepted"
  with Invalid_argument _ -> ()

(* ------------------------------ futures ------------------------------ *)

exception Boom of int

let test_submit_await () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let futs = List.init 50 (fun i -> Pool.submit pool (fun () -> i * i)) in
  let got = List.map Pool.await futs in
  check (Alcotest.list int) "futures resolve in submission order"
    (List.init 50 (fun i -> i * i))
    got;
  (* await is repeatable *)
  check int "second await returns the same value" 49
    (Pool.await (List.nth futs 7))

let test_await_reraises () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let fut = Pool.submit pool (fun () -> raise (Boom 3)) in
  (match Pool.await fut with
   | _ -> Alcotest.fail "expected Boom"
   | exception Boom 3 -> ());
  (* and keeps re-raising on every await *)
  match Pool.await fut with
  | _ -> Alcotest.fail "expected Boom again"
  | exception Boom 3 -> ()

let test_submit_inline_on_one_job () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let ran = ref false in
  let fut = Pool.submit pool (fun () -> ran := true; 42) in
  check bool "jobs=1 thunk ran before await" true !ran;
  check int "inline future resolves" 42 (Pool.await fut)

let test_nested_submit () =
  (* a work item that itself maps and awaits on the same pool: helping
     makes this deadlock-free even when every domain is busy *)
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let outer =
    Pool.map pool
      (fun i ->
        let inner = Pool.map pool (fun j -> i + j) (List.init 5 Fun.id) in
        let fut = Pool.submit pool (fun () -> List.fold_left ( + ) 0 inner) in
        Pool.await fut)
      (List.init 20 Fun.id)
  in
  check (Alcotest.list int) "nested results"
    (List.init 20 (fun i -> (5 * i) + 10))
    outer

(* ----------------------------- shutdown ------------------------------ *)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  check (Alcotest.list int) "pool works" [ 2; 3 ] (Pool.map pool succ [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (try
     ignore (Pool.map pool succ [ 1 ]);
     Alcotest.fail "map on a shut-down pool accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Pool.submit pool (fun () -> 1));
    Alcotest.fail "submit on a shut-down pool accepted"
  with Invalid_argument _ -> ()

let test_with_pool_shuts_down_on_exception () =
  let escaped = ref None in
  (try
     Pool.with_pool ~jobs:2 (fun pool ->
         escaped := Some pool;
         failwith "user code failed")
   with Failure _ -> ());
  match !escaped with
  | None -> Alcotest.fail "with_pool never ran its body"
  | Some pool -> (
    try
      ignore (Pool.map pool succ [ 1 ]);
      Alcotest.fail "pool survived with_pool"
    with Invalid_argument _ -> ())

(* -------------------------- crash isolation -------------------------- *)

let test_crash_isolation_under_stealing () =
  (* a high-probability capped fault on a wide pool with many small
     items: crashes land on whichever domain stole the item, and every
     slot must still come back Ok (attempts > cap) in order *)
  with_fault_spec "seed=11,parallel.worker=0.8x6" (fun () ->
      let xs = List.init 60 Fun.id in
      let outcomes =
        Pool.with_pool ~jobs:4 @@ fun pool ->
        Pool.map_result pool ~attempts:7 (fun x -> x * 3) xs
      in
      check bool "fault actually fired" true
        (Engine.Fault.fired "parallel.worker" > 0);
      check bool "all slots recovered in order" true
        (outcomes = List.map (fun x -> Ok (x * 3)) xs))

let test_permanent_failure_isolated_under_stealing () =
  let xs = List.init 40 Fun.id in
  let outcomes =
    Pool.with_pool ~jobs:4 @@ fun pool ->
    Pool.map_result pool ~attempts:2
      (fun x -> if x mod 10 = 3 then failwith "broken" else x)
      xs
  in
  List.iteri
    (fun i o ->
      match o with
      | Ok v -> check int (Printf.sprintf "slot %d" i) i v
      | Error (e : Engine.Parallel.error) ->
        check bool (Printf.sprintf "slot %d is a failing item" i) true
          (i mod 10 = 3);
        check int "attempts spent" 2 e.Engine.Parallel.attempts)
    outcomes;
  check int "exactly the failing items errored" 4
    (List.length
       (List.filter (function Error _ -> true | Ok _ -> false) outcomes))

(* ----------------------------- telemetry ----------------------------- *)

let test_pool_telemetry () =
  let spawned = Engine.Telemetry.counter "pool.spawned" in
  let reused = Engine.Telemetry.counter "pool.reused" in
  let items = Engine.Telemetry.counter "pool.items" in
  Pool.with_pool ~jobs:3 @@ fun pool ->
  ignore (Pool.map pool succ (List.init 30 Fun.id));
  ignore (Pool.map pool succ (List.init 30 Fun.id));
  check int "two domains spawned, once" (spawned + 2)
    (Engine.Telemetry.counter "pool.spawned");
  check bool "both ops reused the resident domains" true
    (Engine.Telemetry.counter "pool.reused" >= reused + 2);
  check bool "work items counted" true
    (Engine.Telemetry.counter "pool.items" >= items + 60)

(* ------------------------- batch byte-identity ------------------------ *)

let test_batch_service_through_pool () =
  let inst = Check.Gen.instance (Util.Prng.create 2026) in
  let reqs = Batch.Props.stream_of inst in
  let sequential = List.map Batch.Service.respond reqs in
  let memo = Engine.Memo.create ~shards:4 ~spill:false ~namespace:"test-pool" () in
  let batched, _ =
    Pool.with_pool ~jobs:4 @@ fun pool -> Batch.Service.run ~pool ~memo reqs
  in
  check bool "batch through the pool is byte-identical" true
    (batched = sequential)

let () =
  Alcotest.run "pool"
    [ ( "order",
        [ Alcotest.test_case "map preserves order across jobs x chunk" `Quick
            test_map_order_preserved;
          Alcotest.test_case "map_result preserves order" `Quick
            test_map_result_order_preserved;
          Alcotest.test_case "many ops reuse one pool" `Quick
            test_map_many_ops_one_pool;
          Alcotest.test_case "bad arguments rejected" `Quick
            test_bad_arguments_rejected ] );
      ( "futures",
        [ Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "await re-raises" `Quick test_await_reraises;
          Alcotest.test_case "jobs=1 submit runs inline" `Quick
            test_submit_inline_on_one_job;
          Alcotest.test_case "nested submit is deadlock-free" `Quick
            test_nested_submit ] );
      ( "shutdown",
        [ Alcotest.test_case "idempotent, then rejects work" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "with_pool shuts down on exception" `Quick
            test_with_pool_shuts_down_on_exception ] );
      ( "faults",
        [ Alcotest.test_case "capped crashes recovered under stealing" `Quick
            test_crash_isolation_under_stealing;
          Alcotest.test_case "permanent failures isolated under stealing"
            `Quick test_permanent_failure_isolated_under_stealing ] );
      ( "telemetry",
        [ Alcotest.test_case "spawned/reused/items counters" `Quick
            test_pool_telemetry ] );
      ( "batch",
        [ Alcotest.test_case "batch service byte-identity through pool"
            `Quick test_batch_service_through_pool ] ) ]
