(* Observability layer tests: span nesting and ordering (also across
   Parallel domains), Chrome trace JSON well-formedness, histogram
   percentile accuracy against known distributions, log-level filtering
   and JSONL sink output, and Telemetry.to_json validity on the edge
   cases PR 1 got wrong (empty tables, names containing quotes). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------- a tiny JSON parser ------------------------- *)
(* The container has no JSON library, so the round-trip checks carry
   their own strict recursive-descent parser.  Failure raises. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec chars () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
           Buffer.add_char b c;
           advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape")
           done;
           Buffer.add_char b '?'
         | _ -> fail "bad escape");
        chars ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        chars ()
    in
    chars ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------- Trace -------------------------------- *)

let with_tracing f =
  Engine.Trace.reset ();
  Engine.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Engine.Trace.set_enabled false;
      Engine.Trace.reset ())
    f

let find_spans name spans =
  List.filter (fun (s : Engine.Trace.span) -> s.name = name) spans

let test_span_nesting () =
  with_tracing @@ fun () ->
  let x =
    Engine.Trace.with_span "outer" ~attrs:[ ("k", "v") ] @@ fun () ->
    ignore (Engine.Trace.with_span "inner.first" (fun () -> 1));
    ignore (Engine.Trace.with_span "inner.second" (fun () -> 2));
    42
  in
  check int "with_span returns the thunk's result" 42 x;
  let spans = Engine.Trace.spans () in
  check int "three spans recorded" 3 (List.length spans);
  match (find_spans "outer" spans, find_spans "inner.first" spans,
         find_spans "inner.second" spans)
  with
  | [ outer ], [ first ], [ second ] ->
    check bool "outer is a root" true (outer.parent = None);
    check bool "first nests under outer" true (first.parent = Some outer.id);
    check bool "second nests under outer" true (second.parent = Some outer.id);
    check bool "children within parent's window" true
      (outer.t_start <= first.t_start && second.t_end <= outer.t_end);
    check bool "siblings ordered" true (first.t_end <= second.t_start);
    check bool "attrs kept" true (outer.attrs = [ ("k", "v") ]);
    (match Engine.Trace.tree () with
     | [ root ] ->
       check int "tree has one root" 2 (List.length root.Engine.Trace.children);
       check bool "children in start order" true
         (List.map
            (fun (t : Engine.Trace.tree) -> t.span.name)
            root.Engine.Trace.children
         = [ "inner.first"; "inner.second" ])
     | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots))
  | _ -> Alcotest.fail "missing spans"

let test_span_exception () =
  with_tracing @@ fun () ->
  (try Engine.Trace.with_span "thrower" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Engine.Trace.spans () with
  | [ s ] ->
    check Alcotest.string "span recorded on exception" "thrower" s.name;
    check bool "span closed" true (s.t_end >= s.t_start)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_span_disabled () =
  Engine.Trace.reset ();
  Engine.Trace.set_enabled false;
  ignore (Engine.Trace.with_span "ghost" (fun () -> 7));
  check int "disabled tracing records nothing" 0
    (List.length (Engine.Trace.spans ()))

let test_spans_across_domains () =
  with_tracing @@ fun () ->
  let items = List.init 16 Fun.id in
  let squares =
    Engine.Trace.with_span "parallel.region" @@ fun () ->
    Engine.Parallel.Pool.with_pool ~jobs:4 @@ fun pool ->
    Engine.Parallel.Pool.map pool
      (fun i ->
        Engine.Trace.with_span "worker.item" (fun () ->
            (* a little real blocking per item so the resident worker
               domains actually get scheduled: with helping-await on a
               single core the caller could otherwise drain every item
               itself and the off-main-domain assertion below would be
               vacuous *)
            Unix.sleepf 0.002;
            i * i))
      items
  in
  check (Alcotest.list int) "results undisturbed" (List.map (fun i -> i * i) items)
    squares;
  let spans = Engine.Trace.spans () in
  let region =
    match find_spans "parallel.region" spans with
    | [ s ] -> s
    | _ -> Alcotest.fail "region span missing"
  in
  let workers = find_spans "worker.item" spans in
  check int "every item traced" (List.length items) (List.length workers);
  List.iter
    (fun (w : Engine.Trace.span) ->
      check bool "worker span parented to the region" true
        (w.parent = Some region.id))
    workers;
  check bool "some span recorded off the main domain" true
    (List.exists (fun (w : Engine.Trace.span) -> w.domain <> region.domain)
       workers);
  (* all workers land under the one region root in the tree *)
  match Engine.Trace.tree () with
  | [ root ] ->
    check int "tree gathers all workers" (List.length items)
      (List.length root.Engine.Trace.children)
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_chrome_json_round_trip () =
  with_tracing @@ fun () ->
  ignore
    (Engine.Trace.with_span "outer" ~attrs:[ ("quote", {|he said "hi"|}) ]
       (fun () -> Engine.Trace.with_span "inner" (fun () -> 0)));
  let j = parse_json (Engine.Trace.to_chrome_json ()) in
  match member "traceEvents" j with
  | Some (Arr events) ->
    check int "one event per span" 2 (List.length events);
    List.iter
      (fun ev ->
        check bool "complete event" true (member "ph" ev = Some (Str "X"));
        (match (member "ts" ev, member "dur" ev) with
         | Some (Num ts), Some (Num dur) ->
           check bool "non-negative timestamps" true (ts >= 0. && dur >= 0.)
         | _ -> Alcotest.fail "ts/dur missing");
        match member "name" ev with
        | Some (Str ("outer" | "inner")) -> ()
        | _ -> Alcotest.fail "unexpected event name")
      events
  | _ -> Alcotest.fail "traceEvents missing"

(* ----------------------------- Histogram ------------------------------ *)

let test_histogram_percentiles () =
  Engine.Histogram.reset ();
  for v = 1 to 1000 do
    Engine.Histogram.observe "t.h" (float_of_int v)
  done;
  match Engine.Histogram.stats "t.h" with
  | None -> Alcotest.fail "stats missing"
  | Some s ->
    check int "count" 1000 s.count;
    check (Alcotest.float 1e-6) "sum" 500500. s.sum;
    check (Alcotest.float 1e-6) "min" 1. s.min;
    check (Alcotest.float 1e-6) "max" 1000. s.max;
    (* log-scale buckets are ~9% wide; quantiles must land within one
       bucket of the true rank value *)
    check bool "p50 near 500" true (s.p50 >= 450. && s.p50 <= 550.);
    check bool "p90 near 900" true (s.p90 >= 810. && s.p90 <= 990.);
    check bool "p99 near 990" true (s.p99 >= 891. && s.p99 <= 1000.);
    check bool "quantiles monotone" true (s.p50 <= s.p90 && s.p90 <= s.p99);
    (match Engine.Histogram.quantile "t.h" 1.0 with
     | Some q -> check (Alcotest.float 1e-6) "q=1 clamps to max" 1000. q
     | None -> Alcotest.fail "quantile missing")

let test_histogram_constant_and_empty () =
  Engine.Histogram.reset ();
  check bool "empty histogram has no stats" true
    (Engine.Histogram.stats "t.none" = None);
  for _ = 1 to 5 do Engine.Histogram.observe "t.const" 42. done;
  (match Engine.Histogram.stats "t.const" with
   | Some s ->
     check (Alcotest.float 1e-6) "constant p50 exact" 42. s.p50;
     check (Alcotest.float 1e-6) "constant p99 exact" 42. s.p99
   | None -> Alcotest.fail "stats missing");
  Engine.Histogram.observe "t.nan" Float.nan;
  check bool "non-finite samples dropped" true
    (Engine.Histogram.stats "t.nan" = None);
  Engine.Histogram.reset ();
  check bool "reset drops histograms" true (Engine.Histogram.all () = [])

let test_histogram_json () =
  Engine.Histogram.reset ();
  check bool "empty registry is valid JSON" true
    (parse_json (Engine.Histogram.to_json ()) = Obj []);
  Engine.Histogram.observe {|na"me|} 3.5;
  let j = parse_json (Engine.Histogram.to_json ()) in
  match member {|na"me|} j with
  | Some h ->
    check bool "count serialised" true (member "count" h = Some (Num 1.))
  | None -> Alcotest.fail "quoted histogram name lost"

(* -------------------------------- Log --------------------------------- *)

let with_log_capture f =
  let buf = Buffer.create 256 in
  let bfmt = Format.formatter_of_buffer buf in
  let saved_level = Engine.Log.level () in
  Engine.Log.set_formatter bfmt;
  Fun.protect
    ~finally:(fun () ->
      Engine.Log.set_formatter Format.err_formatter;
      Engine.Log.set_level saved_level)
    (fun () ->
      f ();
      Format.pp_print_flush bfmt ();
      Buffer.contents buf)

let contains ~needle hay =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_log_level_filtering () =
  let out =
    with_log_capture (fun () ->
        Engine.Log.set_level Engine.Log.Warn;
        Engine.Log.err "e-%d" 1;
        Engine.Log.warn "w-%d" 2;
        Engine.Log.info "i-%d" 3;
        Engine.Log.debug "d-%d" 4)
  in
  check bool "error passes" true (contains ~needle:"e-1" out);
  check bool "warn passes" true (contains ~needle:"w-2" out);
  check bool "info filtered" false (contains ~needle:"i-3" out);
  check bool "debug filtered" false (contains ~needle:"d-4" out);
  check bool "level tag printed" true (contains ~needle:"error" out);
  let verbose =
    with_log_capture (fun () ->
        Engine.Log.set_level Engine.Log.Debug;
        Engine.Log.debug "d-%d" 9)
  in
  check bool "debug passes at Debug" true (contains ~needle:"d-9" verbose)

let test_log_level_of_string () =
  check bool "debug parses" true
    (Engine.Log.level_of_string "DeBuG" = Ok Engine.Log.Debug);
  check bool "warning alias" true
    (Engine.Log.level_of_string "warning" = Ok Engine.Log.Warn);
  check bool "junk rejected" true
    (match Engine.Log.level_of_string "loud" with Error _ -> true | Ok _ -> false)

let test_log_jsonl_sink () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "iselog-test-%d.jsonl" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  ignore
    (with_log_capture (fun () ->
         Engine.Log.set_level Engine.Log.Info;
         Engine.Log.set_json_file (Some path);
         Fun.protect
           ~finally:(fun () -> Engine.Log.set_json_file None)
           (fun () ->
             Engine.Log.info {|said "hi" to %s|} "world";
             Engine.Log.debug "filtered out";
             Engine.Log.warn "second line")));
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let rec all acc =
          match input_line ic with
          | line -> all (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        all [])
  in
  check int "filtered records stay out of the sink" 2 (List.length lines);
  List.iter
    (fun line ->
      let j = parse_json line in
      check bool "ts is a number" true
        (match member "ts" j with Some (Num _) -> true | _ -> false);
      check bool "level is a string" true
        (match member "level" j with Some (Str _) -> true | _ -> false))
    lines;
  match parse_json (List.hd lines) |> member "msg" with
  | Some (Str msg) ->
    check Alcotest.string "message round-trips quotes" {|said "hi" to world|} msg
  | _ -> Alcotest.fail "msg missing"

(* ----------------------------- Telemetry ------------------------------ *)

let test_telemetry_json_valid () =
  Engine.Telemetry.reset ();
  (match parse_json (Engine.Telemetry.to_json ()) with
   | Obj [ ("counters", Obj []); ("timers", Obj []) ] -> ()
   | _ -> Alcotest.fail "empty tables must serialise to empty objects");
  Engine.Telemetry.add {|weird "name"|} 3;
  Engine.Telemetry.add_time "t.inf" Float.infinity;
  let j = parse_json (Engine.Telemetry.to_json ()) in
  (match member "counters" j with
   | Some counters ->
     check bool "quoted counter name survives" true
       (member {|weird "name"|} counters = Some (Num 3.))
   | None -> Alcotest.fail "counters missing");
  (match member "timers" j with
   | Some timers ->
     check bool "non-finite timer becomes null" true
       (member "t.inf" timers = Some Null)
   | None -> Alcotest.fail "timers missing");
  Engine.Telemetry.reset ()

(* ------------------------- pipeline end-to-end ------------------------ *)

let test_pipeline_span_tree () =
  with_tracing @@ fun () ->
  Engine.Histogram.reset ();
  ignore
    (Ise.Curve.generate ~params:Ise.Curve.small (Kernels.find "crc32")
      : Isa.Config.t);
  let spans = Engine.Trace.spans () in
  let generate =
    match find_spans "curve.generate" spans with
    | [ s ] -> s
    | ss -> Alcotest.failf "expected 1 generate span, got %d" (List.length ss)
  in
  let under parent (s : Engine.Trace.span) = s.parent = Some parent.Engine.Trace.id in
  (match find_spans "curve.candidates" spans with
   | [ c ] ->
     check bool "candidates under generate" true (under generate c);
     check bool "enumeration under candidates" true
       (List.for_all (under c) (find_spans "enumerate.connected" spans));
     check bool "enumeration present" true
       (find_spans "enumerate.connected" spans <> [])
   | ss -> Alcotest.failf "expected 1 candidates span, got %d" (List.length ss));
  let selects =
    find_spans "select.bnb" spans @ find_spans "select.greedy" spans
  in
  check bool "selection spans under generate" true
    (selects <> [] && List.for_all (fun s -> under generate s) selects);
  (* the per-curve latency histogram fed by the same run *)
  match Engine.Histogram.stats "curve.generate_s" with
  | Some s -> check int "one latency sample" 1 s.count
  | None -> Alcotest.fail "curve.generate_s histogram missing"

let () =
  Alcotest.run "observability"
    [ ( "trace",
        [ Alcotest.test_case "span nesting and ordering" `Quick
            test_span_nesting;
          Alcotest.test_case "span survives exceptions" `Quick
            test_span_exception;
          Alcotest.test_case "disabled tracing is free" `Quick
            test_span_disabled;
          Alcotest.test_case "spans merge across Parallel domains" `Quick
            test_spans_across_domains;
          Alcotest.test_case "chrome JSON round-trips" `Quick
            test_chrome_json_round_trip ] );
      ( "histogram",
        [ Alcotest.test_case "percentiles of a known distribution" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "constant / empty / non-finite" `Quick
            test_histogram_constant_and_empty;
          Alcotest.test_case "json export" `Quick test_histogram_json ] );
      ( "log",
        [ Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
          Alcotest.test_case "jsonl sink" `Quick test_log_jsonl_sink ] );
      ( "telemetry",
        [ Alcotest.test_case "to_json always valid" `Quick
            test_telemetry_json_valid ] );
      ( "pipeline",
        [ Alcotest.test_case "solver span tree end-to-end" `Quick
            test_pipeline_span_tree ] ) ]
