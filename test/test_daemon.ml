(* The resident solver daemon, exercised in-process: concurrent
   clients must see byte-identical golden answers, admission control
   must shed with explicit `overloaded` responses (and never lose or
   corrupt the surviving ones), a drain must flush in-flight work, and
   fault injection must degrade to error responses rather than wedged
   connections. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (if String.trim l = "" then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let golden file =
  let local = Filename.concat "golden" file in
  if Sys.file_exists local then local else Filename.concat "test/golden" file

let expected = lazy (read_lines (golden "expected.jsonl"))

let requests =
  lazy
    (List.map
       (fun line ->
         match Batch.Protocol.parse_request line with
         | Ok r -> r
         | Error msg ->
           Alcotest.failf "golden case does not parse: %s\n%s" msg line)
       (read_lines (golden "cases.jsonl")))

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "isecustom-daemon-test-%d-%d.sock" (Unix.getpid ())
       !sock_counter)

let fresh_memo () =
  Engine.Memo.create ~shards:4 ~spill:false ~namespace:"daemon-test" ()

(* Start a daemon on a fresh unix socket + a jobs:2 pool, run [f], and
   tear everything down whatever happens. *)
let with_daemon ?max_inflight ?max_request_bytes ?idle_timeout_s
    ?line_timeout_s ?wedge_grace_s ?watchdog_interval_s f =
  let path = fresh_sock () in
  Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d =
    Daemon.Server.start ~unix_path:path ?max_inflight ?max_request_bytes
      ?idle_timeout_s ?line_timeout_s ?wedge_grace_s ?watchdog_interval_s
      ~pool ~memo:(fresh_memo ()) ()
  in
  Fun.protect ~finally:(fun () -> Daemon.Server.stop d) (fun () -> f path d)

let repro_field line name =
  match Check.Repro.parse line with
  | Check.Repro.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Check.Repro.Str s) -> Some s
    | _ -> None)
  | _ | (exception Check.Repro.Parse_error _) -> None

(* N clients, each on its own connection and thread, each replaying the
   whole golden corpus: every response must be byte-identical to the
   committed expectation, concurrently and on a warm memo. *)
let test_concurrent_clients_byte_identical () =
  with_daemon @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let failures = Atomic.make [] in
  let client i () =
    let c = Daemon.Client.connect ~unix_path:path () in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        List.iteri
          (fun j (req, want) ->
            match Daemon.Client.rpc c req with
            | Ok got when got = want -> ()
            | Ok got ->
              Atomic.set failures
                (Printf.sprintf "client %d line %d:\nwant %s\ngot  %s" i j
                   want got
                :: Atomic.get failures)
            | Error msg ->
              Atomic.set failures
                (Printf.sprintf "client %d line %d: %s" i j msg
                :: Atomic.get failures))
          (List.combine reqs want))
  in
  let threads = List.init 4 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  (match Atomic.get failures with
   | [] -> ()
   | fs -> Alcotest.fail (String.concat "\n---\n" fs));
  check bool "every request answered" true (Daemon.Server.served _d >= 4 * List.length reqs)

(* The isegen curve subset of the corpus, replayed over a live
   connection: the daemon's memo/dedup path must keep the iterative
   generator's responses byte-identical to the committed expectations,
   just like the exhaustive ones. *)
let test_isegen_subset_byte_identical () =
  with_daemon @@ fun path _d ->
  let subset =
    List.filter
      (fun ((r : Batch.Protocol.request), _) ->
        r.Batch.Protocol.generator = Ise.Isegen.Isegen)
      (List.combine (Lazy.force requests) (Lazy.force expected))
  in
  check bool "corpus contains isegen cases" true (List.length subset >= 4);
  let c = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      List.iteri
        (fun i ((req : Batch.Protocol.request), want) ->
          match Daemon.Client.rpc c req with
          | Ok got ->
            check string (Printf.sprintf "isegen reply %d intact" i) want got
          | Error msg -> Alcotest.failf "isegen request %d died: %s" i msg)
        subset)

(* max_inflight = 1 with a pool: pipelining the corpus down one
   connection must shed at least one request with an explicit
   `overloaded` response — and every request still gets exactly one
   reply, the surviving ones byte-identical.  The shed itself is a
   race against the pool finishing each request, so the burst is
   retried a few times; in practice the first attempt sheds. *)
let test_overload_sheds_explicitly () =
  with_daemon ~max_inflight:1 @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let n = List.length reqs in
  let burst () =
    let c = Daemon.Client.connect ~unix_path:path () in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        List.iter (Daemon.Client.send c) reqs;
        let got =
          List.init n (fun i ->
              match Daemon.Client.recv c with
              | Some line -> line
              | None -> Alcotest.failf "connection closed after %d replies" i)
        in
        check bool "no extra replies buffered" true true;
        got)
  in
  let rec attempt k =
    let got = burst () in
    let overloaded = List.filter Daemon.Client.overloaded got in
    if overloaded = [] && k < 10 then attempt (k + 1)
    else begin
      check bool "at least one request shed" true (overloaded <> []);
      List.iteri
        (fun i (((req : Batch.Protocol.request), want), got) ->
          if Daemon.Client.overloaded got then
            check string
              (Printf.sprintf "shed reply %d carries the request id" i)
              req.Batch.Protocol.id
              (Option.value ~default:"<none>" (repro_field got "id"))
          else
            check string (Printf.sprintf "surviving reply %d intact" i) want got)
        (List.combine (List.combine reqs want) got)
    end
  in
  attempt 0

(* Drain: a response already computed (or in flight) when [stop] is
   called must still reach the client before the connection closes,
   and once drained the listener is gone. *)
let test_drain_flushes_and_refuses () =
  let path = fresh_sock () in
  Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d =
    Daemon.Server.start ~unix_path:path ~pool ~memo:(fresh_memo ()) ()
  in
  let req = List.hd (Lazy.force requests) in
  let want = List.hd (Lazy.force expected) in
  let c = Daemon.Client.connect ~unix_path:path () in
  Daemon.Client.send c req;
  (* wait until the request has actually executed, so stop() races only
     with the writer, which the drain contract covers *)
  let deadline = Unix.gettimeofday () +. 10. in
  while Daemon.Server.served d < 1 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check int "request executed before stop" 1 (Daemon.Server.served d);
  check bool "healthy before stop" true (Daemon.Server.healthy d);
  Daemon.Server.stop d;
  check bool "draining after stop" true (Daemon.Server.draining d);
  check bool "unhealthy after stop" false (Daemon.Server.healthy d);
  (match Daemon.Client.recv c with
   | Some got -> check string "in-flight response flushed by drain" want got
   | None -> Alcotest.fail "drain dropped the in-flight response");
  check bool "connection closed after drain" true (Daemon.Client.recv c = None);
  Daemon.Client.close c;
  (match Daemon.Client.connect ~unix_path:path () with
   | exception Unix.Unix_error _ -> ()
   | c2 ->
     Daemon.Client.close c2;
     Alcotest.fail "daemon still accepting after drain");
  (* idempotent *)
  Daemon.Server.stop d

(* Fault injection (`parallel.worker`, the spec ISECUSTOM_FAULT_SPEC
   carries in CI): every request still gets exactly one reply on a
   surviving connection — either the correct bytes or an explicit
   internal error, never a hang or a dropped id. *)
let test_fault_injection_never_wedges () =
  let spec =
    match Engine.Fault.parse "seed=11,parallel.worker=0.4" with
    | Ok s -> s
    | Error msg -> Alcotest.failf "fault spec: %s" msg
  in
  Engine.Fault.configure spec;
  Fun.protect ~finally:Engine.Fault.disable @@ fun () ->
  with_daemon @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let c = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      let internals = ref 0 in
      List.iteri
        (fun i ((req : Batch.Protocol.request), want) ->
          match Daemon.Client.rpc c req with
          | Error msg -> Alcotest.failf "request %d: connection died: %s" i msg
          | Ok got -> (
            match Daemon.Client.error_of got with
            | None ->
              check string (Printf.sprintf "reply %d intact under faults" i)
                want got
            | Some err ->
              incr internals;
              check bool
                (Printf.sprintf "reply %d is an internal error" i)
                true
                (String.length err >= 9 && String.sub err 0 9 = "internal:");
              check string
                (Printf.sprintf "error reply %d carries the request id" i)
                req.Batch.Protocol.id
                (Option.value ~default:"<none>" (repro_field got "id"))))
        (List.combine reqs want);
      (* not an assertion on the rate — just surface the count so a
         silently-inert fault point is visible in the test output *)
      Printf.printf "fault test: %d/%d requests degraded to internal errors\n"
        !internals (List.length reqs))

(* ----------------------- hostile conditions ----------------------- *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let counter_delta ?labels name f =
  let before = Option.value ~default:0. (Obs.Metrics.value ?labels name) in
  f ();
  Option.value ~default:0. (Obs.Metrics.value ?labels name) -. before

(* A line past --max-request-bytes is answered with an explicit
   oversized error and the connection closed — and the daemon itself
   survives to serve the next client. *)
let test_oversized_line_reaped () =
  with_daemon ~max_request_bytes:256 @@ fun path d ->
  let delta =
    counter_delta ~labels:[ ("reason", "oversized") ] "daemon.conn_reaped"
      (fun () ->
        let c = Daemon.Client.connect ~unix_path:path () in
        Fun.protect
          ~finally:(fun () -> Daemon.Client.close c)
          (fun () ->
            Daemon.Client.send_line c (String.make 1024 'x');
            (match Daemon.Client.recv c with
             | None -> Alcotest.fail "closed without an error line"
             | Some line ->
               check bool "explicit oversized error" true
                 (match Daemon.Client.error_of line with
                  | Some err -> starts_with "oversized:" err
                  | None -> false));
            check bool "connection closed after the error" true
              (Daemon.Client.recv c = None)))
  in
  check bool "reap counted under its reason" true (delta >= 1.);
  check bool "daemon still healthy" true (Daemon.Server.healthy d);
  (* a fresh connection still gets parse errors answered — alive *)
  let c2 = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c2)
    (fun () ->
      Daemon.Client.send_line c2 "not json";
      match Daemon.Client.recv c2 with
      | Some line ->
        check bool "daemon still answering" true
          (match Daemon.Client.error_of line with
           | Some err -> starts_with "parse:" err
           | None -> false)
      | None -> Alcotest.fail "daemon dead after reaping one client")

(* Garbage is answered with a parse error on a connection that keeps
   working: the next (valid) request on the same connection must still
   come back byte-identical. *)
let test_garbage_keeps_connection () =
  with_daemon @@ fun path _d ->
  let req = List.hd (Lazy.force requests) in
  let want = List.hd (Lazy.force expected) in
  let c = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      Daemon.Client.send_line c "{\"op\": \"no such thing\"";
      (match Daemon.Client.recv c with
       | Some line ->
         check bool "garbage gets a parse error" true
           (match Daemon.Client.error_of line with
            | Some err -> starts_with "parse:" err
            | None -> false)
       | None -> Alcotest.fail "connection dropped on garbage");
      match Daemon.Client.rpc c req with
      | Ok got -> check string "same connection still serves" want got
      | Error msg -> Alcotest.failf "connection dead after garbage: %s" msg)

(* A connection that goes silent past --idle-timeout is reaped with an
   explicit error line, promptly. *)
let test_idle_connection_reaped () =
  with_daemon ~idle_timeout_s:(Some 0.2) @@ fun path _d ->
  let c = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (match Daemon.Client.recv c with
       | Some line ->
         check bool "idle reap is explicit" true
           (match Daemon.Client.error_of line with
            | Some err -> starts_with "idle:" err
            | None -> false)
       | None -> Alcotest.fail "closed without an error line");
      check bool "connection closed" true (Daemon.Client.recv c = None);
      check bool "reaped promptly, not at the old infinite select" true
        (Unix.gettimeofday () -. t0 < 5.))

(* Slow-loris: trickling a request line without ever finishing it must
   trip the line-completion deadline even though the connection is
   never idle long enough for the idle reaper. *)
let test_slow_loris_reaped () =
  with_daemon ~idle_timeout_s:(Some 30.) ~line_timeout_s:(Some 0.3)
  @@ fun path _d ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let t0 = Unix.gettimeofday () in
      (* keep the connection active but never complete the line *)
      let loris =
        Thread.create
          (fun () ->
            try
              for _ = 1 to 20 do
                ignore (Unix.write_substring fd "x" 0 1 : int);
                Unix.sleepf 0.05
              done
            with Unix.Unix_error _ -> ())
          ()
      in
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Thread.join loris;
      let first_line =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      check bool "explicit timeout error before EOF" true
        (match Daemon.Client.error_of first_line with
         | Some err -> starts_with "timeout:" err
         | None -> false);
      check bool "reaped near the line deadline" true
        (Unix.gettimeofday () -. t0 < 5.))

(* A request stuck well past its class allowance must be flagged by the
   watchdog (metric + flight event) while still completing normally —
   the ["daemon.stall"] fault point stages the wedge
   deterministically. *)
let test_watchdog_flags_wedged_request () =
  (match Engine.Fault.parse "seed=7,daemon.stall=1x1" with
   | Ok spec -> Engine.Fault.configure spec
   | Error msg -> Alcotest.failf "fault spec: %s" msg);
  Fun.protect ~finally:Engine.Fault.disable @@ fun () ->
  with_daemon ~wedge_grace_s:0.05 ~watchdog_interval_s:0.02
  @@ fun path _d ->
  let req = List.hd (Lazy.force requests) in
  let want = List.hd (Lazy.force expected) in
  let seq0 =
    match List.rev (Obs.Flight.events ()) with
    | [] -> -1
    | e :: _ -> e.Obs.Flight.seq
  in
  let delta =
    counter_delta
      ~labels:[ ("op", Batch.Protocol.op_name req.Batch.Protocol.op) ]
      "daemon.watchdog_wedged"
      (fun () ->
        let c = Daemon.Client.connect ~unix_path:path () in
        Fun.protect
          ~finally:(fun () -> Daemon.Client.close c)
          (fun () ->
            match Daemon.Client.rpc c req with
            | Ok got ->
              check string "wedged request still completes correctly" want got
            | Error msg -> Alcotest.failf "stalled request died: %s" msg))
  in
  check bool "wedge counted once, not per tick" true (delta = 1.);
  let flagged =
    List.exists
      (fun (e : Obs.Flight.event) ->
        e.Obs.Flight.seq > seq0
        && e.Obs.Flight.kind = "daemon.watchdog_wedged"
        && List.assoc_opt "id" e.Obs.Flight.fields
           = Some req.Batch.Protocol.id)
      (Obs.Flight.events ())
  in
  check bool "flight event names the wedged request" true flagged

(* rpc ~deadline_s: against a server that sheds every request, the
   retry loop must give up at the wall-clock budget — not at the retry
   cap — and surface the last overloaded line. *)
let test_rpc_deadline_bounds_retries () =
  let path = fresh_sock () in
  let lsock = Obs.Netio.unix_listener path in
  let stop = Atomic.make false in
  let server () =
    while not (Atomic.get stop) do
      match Unix.select [ lsock ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept lsock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          let b = Bytes.create 4096 in
          let rec serve () =
            match Unix.read fd b 0 (Bytes.length b) with
            | 0 -> ()
            | n ->
              String.iter
                (fun ch ->
                  if ch = '\n' then
                    ignore
                      (Obs.Netio.write_all fd
                         "{\"id\": \"x\", \"error\": \"overloaded\"}\n"
                        : bool))
                (Bytes.sub_string b 0 n);
              serve ()
            | exception Unix.Unix_error _ -> ()
          in
          serve ();
          (try Unix.close fd with Unix.Unix_error _ -> ()))
    done;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  let th = Thread.create server () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th;
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      let c = Daemon.Client.connect ~unix_path:path () in
      Fun.protect
        ~finally:(fun () -> Daemon.Client.close c)
        (fun () ->
          let req = List.hd (Lazy.force requests) in
          let t0 = Unix.gettimeofday () in
          match
            Daemon.Client.rpc ~retries:1_000_000 ~backoff_s:0.01
              ~deadline_s:0.25 c req
          with
          | Error msg -> Alcotest.failf "rpc died: %s" msg
          | Ok line ->
            let dt = Unix.gettimeofday () -. t0 in
            check bool "last overloaded line surfaced as Ok" true
              (Daemon.Client.overloaded line);
            check bool "kept retrying until the budget" true (dt >= 0.2);
            check bool "gave up at the budget, not the retry cap" true
              (dt < 2.)))

let () =
  Alcotest.run "daemon"
    [ ( "daemon",
        [ Alcotest.test_case "concurrent clients byte-identical" `Quick
            test_concurrent_clients_byte_identical;
          Alcotest.test_case "isegen subset byte-identical" `Quick
            test_isegen_subset_byte_identical;
          Alcotest.test_case "overload sheds explicitly" `Quick
            test_overload_sheds_explicitly;
          Alcotest.test_case "drain flushes and refuses" `Quick
            test_drain_flushes_and_refuses;
          Alcotest.test_case "fault injection never wedges" `Quick
            test_fault_injection_never_wedges ] );
      ( "hostile",
        [ Alcotest.test_case "oversized line reaped" `Quick
            test_oversized_line_reaped;
          Alcotest.test_case "garbage keeps the connection" `Quick
            test_garbage_keeps_connection;
          Alcotest.test_case "idle connection reaped" `Quick
            test_idle_connection_reaped;
          Alcotest.test_case "slow-loris reaped" `Quick
            test_slow_loris_reaped;
          Alcotest.test_case "watchdog flags a wedged request" `Quick
            test_watchdog_flags_wedged_request;
          Alcotest.test_case "rpc deadline bounds retries" `Quick
            test_rpc_deadline_bounds_retries ] ) ]
