(* The resident solver daemon, exercised in-process: concurrent
   clients must see byte-identical golden answers, admission control
   must shed with explicit `overloaded` responses (and never lose or
   corrupt the surviving ones), a drain must flush in-flight work, and
   fault injection must degrade to error responses rather than wedged
   connections. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (if String.trim l = "" then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let golden file =
  let local = Filename.concat "golden" file in
  if Sys.file_exists local then local else Filename.concat "test/golden" file

let expected = lazy (read_lines (golden "expected.jsonl"))

let requests =
  lazy
    (List.map
       (fun line ->
         match Batch.Protocol.parse_request line with
         | Ok r -> r
         | Error msg ->
           Alcotest.failf "golden case does not parse: %s\n%s" msg line)
       (read_lines (golden "cases.jsonl")))

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "isecustom-daemon-test-%d-%d.sock" (Unix.getpid ())
       !sock_counter)

let fresh_memo () =
  Engine.Memo.create ~shards:4 ~spill:false ~namespace:"daemon-test" ()

(* Start a daemon on a fresh unix socket + a jobs:2 pool, run [f], and
   tear everything down whatever happens. *)
let with_daemon ?max_inflight f =
  let path = fresh_sock () in
  Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d =
    Daemon.Server.start ~unix_path:path ?max_inflight ~pool
      ~memo:(fresh_memo ()) ()
  in
  Fun.protect ~finally:(fun () -> Daemon.Server.stop d) (fun () -> f path d)

let repro_field line name =
  match Check.Repro.parse line with
  | Check.Repro.Obj fields -> (
    match List.assoc_opt name fields with
    | Some (Check.Repro.Str s) -> Some s
    | _ -> None)
  | _ | (exception Check.Repro.Parse_error _) -> None

(* N clients, each on its own connection and thread, each replaying the
   whole golden corpus: every response must be byte-identical to the
   committed expectation, concurrently and on a warm memo. *)
let test_concurrent_clients_byte_identical () =
  with_daemon @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let failures = Atomic.make [] in
  let client i () =
    let c = Daemon.Client.connect ~unix_path:path () in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        List.iteri
          (fun j (req, want) ->
            match Daemon.Client.rpc c req with
            | Ok got when got = want -> ()
            | Ok got ->
              Atomic.set failures
                (Printf.sprintf "client %d line %d:\nwant %s\ngot  %s" i j
                   want got
                :: Atomic.get failures)
            | Error msg ->
              Atomic.set failures
                (Printf.sprintf "client %d line %d: %s" i j msg
                :: Atomic.get failures))
          (List.combine reqs want))
  in
  let threads = List.init 4 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  (match Atomic.get failures with
   | [] -> ()
   | fs -> Alcotest.fail (String.concat "\n---\n" fs));
  check bool "every request answered" true (Daemon.Server.served _d >= 4 * List.length reqs)

(* max_inflight = 1 with a pool: pipelining the corpus down one
   connection must shed at least one request with an explicit
   `overloaded` response — and every request still gets exactly one
   reply, the surviving ones byte-identical.  The shed itself is a
   race against the pool finishing each request, so the burst is
   retried a few times; in practice the first attempt sheds. *)
let test_overload_sheds_explicitly () =
  with_daemon ~max_inflight:1 @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let n = List.length reqs in
  let burst () =
    let c = Daemon.Client.connect ~unix_path:path () in
    Fun.protect
      ~finally:(fun () -> Daemon.Client.close c)
      (fun () ->
        List.iter (Daemon.Client.send c) reqs;
        let got =
          List.init n (fun i ->
              match Daemon.Client.recv c with
              | Some line -> line
              | None -> Alcotest.failf "connection closed after %d replies" i)
        in
        check bool "no extra replies buffered" true true;
        got)
  in
  let rec attempt k =
    let got = burst () in
    let overloaded = List.filter Daemon.Client.overloaded got in
    if overloaded = [] && k < 10 then attempt (k + 1)
    else begin
      check bool "at least one request shed" true (overloaded <> []);
      List.iteri
        (fun i (((req : Batch.Protocol.request), want), got) ->
          if Daemon.Client.overloaded got then
            check string
              (Printf.sprintf "shed reply %d carries the request id" i)
              req.Batch.Protocol.id
              (Option.value ~default:"<none>" (repro_field got "id"))
          else
            check string (Printf.sprintf "surviving reply %d intact" i) want got)
        (List.combine (List.combine reqs want) got)
    end
  in
  attempt 0

(* Drain: a response already computed (or in flight) when [stop] is
   called must still reach the client before the connection closes,
   and once drained the listener is gone. *)
let test_drain_flushes_and_refuses () =
  let path = fresh_sock () in
  Engine.Parallel.Pool.with_pool ~jobs:2 @@ fun pool ->
  let d =
    Daemon.Server.start ~unix_path:path ~pool ~memo:(fresh_memo ()) ()
  in
  let req = List.hd (Lazy.force requests) in
  let want = List.hd (Lazy.force expected) in
  let c = Daemon.Client.connect ~unix_path:path () in
  Daemon.Client.send c req;
  (* wait until the request has actually executed, so stop() races only
     with the writer, which the drain contract covers *)
  let deadline = Unix.gettimeofday () +. 10. in
  while Daemon.Server.served d < 1 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check int "request executed before stop" 1 (Daemon.Server.served d);
  check bool "healthy before stop" true (Daemon.Server.healthy d);
  Daemon.Server.stop d;
  check bool "draining after stop" true (Daemon.Server.draining d);
  check bool "unhealthy after stop" false (Daemon.Server.healthy d);
  (match Daemon.Client.recv c with
   | Some got -> check string "in-flight response flushed by drain" want got
   | None -> Alcotest.fail "drain dropped the in-flight response");
  check bool "connection closed after drain" true (Daemon.Client.recv c = None);
  Daemon.Client.close c;
  (match Daemon.Client.connect ~unix_path:path () with
   | exception Unix.Unix_error _ -> ()
   | c2 ->
     Daemon.Client.close c2;
     Alcotest.fail "daemon still accepting after drain");
  (* idempotent *)
  Daemon.Server.stop d

(* Fault injection (`parallel.worker`, the spec ISECUSTOM_FAULT_SPEC
   carries in CI): every request still gets exactly one reply on a
   surviving connection — either the correct bytes or an explicit
   internal error, never a hang or a dropped id. *)
let test_fault_injection_never_wedges () =
  let spec =
    match Engine.Fault.parse "seed=11,parallel.worker=0.4" with
    | Ok s -> s
    | Error msg -> Alcotest.failf "fault spec: %s" msg
  in
  Engine.Fault.configure spec;
  Fun.protect ~finally:Engine.Fault.disable @@ fun () ->
  with_daemon @@ fun path _d ->
  let reqs = Lazy.force requests in
  let want = Lazy.force expected in
  let c = Daemon.Client.connect ~unix_path:path () in
  Fun.protect
    ~finally:(fun () -> Daemon.Client.close c)
    (fun () ->
      let internals = ref 0 in
      List.iteri
        (fun i ((req : Batch.Protocol.request), want) ->
          match Daemon.Client.rpc c req with
          | Error msg -> Alcotest.failf "request %d: connection died: %s" i msg
          | Ok got -> (
            match Daemon.Client.error_of got with
            | None ->
              check string (Printf.sprintf "reply %d intact under faults" i)
                want got
            | Some err ->
              incr internals;
              check bool
                (Printf.sprintf "reply %d is an internal error" i)
                true
                (String.length err >= 9 && String.sub err 0 9 = "internal:");
              check string
                (Printf.sprintf "error reply %d carries the request id" i)
                req.Batch.Protocol.id
                (Option.value ~default:"<none>" (repro_field got "id"))))
        (List.combine reqs want);
      (* not an assertion on the rate — just surface the count so a
         silently-inert fault point is visible in the test output *)
      Printf.printf "fault test: %d/%d requests degraded to internal errors\n"
        !internals (List.length reqs))

let () =
  Alcotest.run "daemon"
    [ ( "daemon",
        [ Alcotest.test_case "concurrent clients byte-identical" `Quick
            test_concurrent_clients_byte_identical;
          Alcotest.test_case "overload sheds explicitly" `Quick
            test_overload_sheds_explicitly;
          Alcotest.test_case "drain flushes and refuses" `Quick
            test_drain_flushes_and_refuses;
          Alcotest.test_case "fault injection never wedges" `Quick
            test_fault_injection_never_wedges ] ) ]
